//! The closed-loop flight graph: `mav_runtime` nodes over the live mission.
//!
//! Before PR 2 the closed loop lived in one sequential function
//! (`MissionContext::fly_trajectory`): capture a frame, update the map,
//! track the path, collision-check, integrate physics — all at one implicit
//! rate. This module decomposes that loop into the ROS-style node graph of
//! the paper's Fig. 7 and schedules it on the [`Executor`]:
//!
//! ```text
//!   EnergyNode ─────────────▶ events (budget / watchdog aborts, telemetry)
//!   DepthCameraNode ──frames─▶ OctoMapNode ──(map in MissionContext)
//!   PathTrackerNode ─────────▶ commands (velocity), events (completed)
//!   CollisionMonitorNode ──alerts─▶ PlannerNode ─▶ events (needs-replan)
//!                                        │
//!                 plan topic (latched)   ▼  PlanInMotion only
//!   PathTrackerNode ◀──── Topic<Arc<Trajectory>> ◀──── fresh trajectory
//!   CollisionMonitorNode ◀──┘  (swap detected by sequence number)
//! ```
//!
//! Since PR 3 the trajectory the tracker and monitor fly is not a frozen
//! `Arc<Trajectory>` handle but a *latched plan topic*
//! (`Topic<Arc<Trajectory>>`): both nodes hold a [`PlanSubscription`] and
//! swap to the newest plan whenever the topic's sequence number advances.
//! Under [`crate::config::ReplanMode::PlanInMotion`] the [`PlannerNode`]
//! reacts to a collision alert by running a multi-round planning job —
//! charging the `MotionPlanning` and `PathSmoothing` kernels across
//! successive executor rounds while the vehicle keeps flying the stale plan —
//! and then publishes the fresh trajectory on the plan topic, so planning
//! latency is paid at cruise velocity instead of at hover. Under the default
//! [`crate::config::ReplanMode::HoverToPlan`] the planner keeps the
//! historical behaviour: the alert ends the episode and the application
//! re-plans while hovering.
//!
//! Each node has its own period from [`crate::config::RateConfig`]; nodes
//! due at the same
//! instant run in registration order (the executor's determinism contract),
//! and the round's serialized kernel latency is charged to mission time by
//! [`FlightCtx::charge`], which integrates vehicle physics, energy and
//! battery drain for the charged duration — the drone literally flies
//! (or hovers) while its compute runs.
//!
//! With [`crate::config::RateConfig::legacy`] every node is tick-synchronous
//! and the graph
//! reproduces the historical loop bit-for-bit (`tests/golden_legacy.rs`).
//! With explicit rates, new phenomena emerge in configuration alone: a slow
//! camera drops frames into a latched topic, a slow mapper starves the
//! collision monitor, a slow planner lets the vehicle fly on a colliding
//! plan until the next replan tick.

use crate::config::BrakePolicy;
use crate::context::MissionContext;
use mav_compute::{KernelId, OperatingPoint};
use mav_control::{PathTracker, PathTrackerConfig};
use mav_planning::{CollisionChecker, PathSmoother, ShortestPathPlanner, SmootherConfig};
use mav_runtime::{ExecStage, Executor, FifoTopic, Node, NodeContext, NodeOutput, Topic};
use mav_sensors::DepthImage;
use mav_types::{Result, SimDuration, SimTime, Trajectory, Vec3};
use std::sync::Arc;

/// A terminal event that ends a closed-loop episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightEvent {
    /// The end of the trajectory (or session) was reached.
    Completed,
    /// The remaining plan is in collision; the application should re-plan.
    NeedsReplan,
    /// A mission-level budget (time, battery, collision, watchdog) was blown.
    Aborted,
}

impl FlightEvent {
    /// Severity used by [`run_to_event`] to resolve rounds that drained more
    /// than one terminal event: an abort always outranks a replan request,
    /// which outranks completion, independent of node registration order.
    fn severity(self) -> u8 {
        match self {
            FlightEvent::Aborted => 2,
            FlightEvent::NeedsReplan => 1,
            FlightEvent::Completed => 0,
        }
    }
}

/// A collision alert raised by the monitor, consumed by the planner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollisionAlert {
    /// When the colliding plan segment was detected.
    pub at: SimTime,
    /// Position of the first colliding plan sample: the in-motion planner
    /// brakes when this threat is inside the stopping distance instead of
    /// blind-flying the stale plan into it.
    pub position: Vec3,
}

/// One energy/battery telemetry sample published by [`EnergyNode`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergySample {
    /// Sample time.
    pub at: SimTime,
    /// Battery percentage remaining.
    pub battery_pct: f64,
    /// Total energy drawn so far, joules.
    pub total_energy_j: f64,
}

/// How a node maps mission time onto the trajectory's timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Timeline {
    /// Sample the trajectory at the mission clock directly (trajectories
    /// smoothed "from now", e.g. the Scanning sweep).
    MissionClock,
    /// Sample at `traj_start + (now - episode_start)` — the trajectory's own
    /// timeline, offset by when the episode began (the historical
    /// `fly_trajectory` arithmetic, kept verbatim for bit-identical replays).
    EpisodeRelative {
        /// Mission time at which the episode began.
        episode_start: SimTime,
        /// Timestamp of the trajectory's first point.
        traj_start: SimTime,
    },
}

impl Timeline {
    /// The trajectory-timeline instant corresponding to mission time `now`.
    pub fn plan_time(&self, now: SimTime) -> SimTime {
        match *self {
            Timeline::MissionClock => now,
            Timeline::EpisodeRelative {
                episode_start,
                traj_start,
            } => traj_start + now.since(episode_start),
        }
    }
}

/// The episode watchdog budget for a plan: generous slack over the plan's
/// own duration, so tracking corrections never trip a healthy episode.
/// Shared by [`MissionContext::fly_trajectory`](crate::context::MissionContext::fly_trajectory)
/// (the initial guard) and [`EnergyNode`]'s plan-watchdog re-arm, so an
/// in-flight replan always restarts the watchdog with the same formula the
/// episode began with.
pub fn episode_watchdog_budget(trajectory: &Trajectory) -> f64 {
    trajectory.duration_secs() * 4.0 + 60.0
}

/// A node's subscription to the latched plan topic.
///
/// The tracker and monitor do not hold frozen `Arc<Trajectory>` handles any
/// more: they hold one of these, and [`PlanSubscription::refresh`] swaps in
/// the newest published plan whenever the topic's sequence number advances —
/// which is how an in-flight replan propagates through the graph. The
/// initial plan (published before the nodes are constructed) keeps the
/// episode's constructor-supplied [`Timeline`]; every *later* plan was
/// smoothed "from now" at publication, so subscribers sample it at
/// [`Timeline::MissionClock`]. Cloned `Topic` handles share state across
/// threads, so subscriptions work unchanged on the `SweepRunner` path.
#[derive(Debug)]
pub struct PlanSubscription {
    topic: Topic<Arc<Trajectory>>,
    sequence: u64,
    trajectory: Arc<Trajectory>,
    timeline: Timeline,
}

impl PlanSubscription {
    /// Subscribes to `topic`, snapshotting the currently latched plan (the
    /// episode's initial trajectory) and sampling it on `timeline`.
    pub fn new(topic: Topic<Arc<Trajectory>>, timeline: Timeline) -> Self {
        let trajectory = topic
            .latest()
            .unwrap_or_else(|| Arc::new(Trajectory::new()));
        let sequence = topic.sequence();
        PlanSubscription {
            topic,
            sequence,
            trajectory,
            timeline,
        }
    }

    /// Swaps in the newest plan if the topic's sequence number advanced since
    /// the last call. Returns `true` when a swap happened.
    pub fn refresh(&mut self) -> bool {
        let sequence = self.topic.sequence();
        if sequence == self.sequence {
            return false;
        }
        self.sequence = sequence;
        if let Some(trajectory) = self.topic.latest() {
            self.trajectory = trajectory;
            // Replanned trajectories are smoothed from the mission clock at
            // publication time, so every subscriber samples them there —
            // no per-subscriber re-anchoring, hence no tracker/monitor skew.
            self.timeline = Timeline::MissionClock;
        }
        true
    }

    /// The currently subscribed plan.
    pub fn trajectory(&self) -> &Arc<Trajectory> {
        &self.trajectory
    }

    /// How mission time maps onto the current plan's timeline.
    pub fn timeline(&self) -> Timeline {
        self.timeline
    }

    /// The topic sequence number of the current plan.
    pub fn sequence(&self) -> u64 {
        self.sequence
    }
}

/// The scheduling context of one closed-loop episode: the live mission plus
/// the graph's shared topics. Implements the executor's latency-charging
/// hook by flying the vehicle for the charged duration under the latest
/// velocity command.
pub struct FlightCtx<'m> {
    /// The live mission state every node reads and writes.
    pub mission: &'m mut MissionContext,
    /// Terminal-event queue; any entry halts the executor round.
    pub events: FifoTopic<FlightEvent>,
    /// Latched latest velocity command from the control node.
    pub commands: Topic<Vec3>,
    /// Minimum round length: even a round of near-zero kernel latency flies
    /// the vehicle this long (50 ms in the historical loop, 100 ms for the
    /// Scanning sweep).
    pub min_tick: SimDuration,
}

impl NodeContext for FlightCtx<'_> {
    fn now(&self) -> SimTime {
        self.mission.clock.now()
    }

    fn halted(&self) -> bool {
        !self.events.is_empty()
    }

    fn charge(&mut self, consumed: SimDuration, _idle_step: SimDuration) -> Result<()> {
        let velocity = self.commands.latest().unwrap_or(Vec3::ZERO);
        self.mission.advance(velocity, consumed.max(self.min_tick));
        Ok(())
    }
}

/// Budget watchdog and energy telemetry.
///
/// Runs first in every graph (registration order), mirroring the historical
/// loop's budget check at the top of each iteration: a blown mission budget
/// (collision, battery, time) or an episode-watchdog overrun publishes
/// [`FlightEvent::Aborted`]; an elapsed filming session publishes
/// [`FlightEvent::Completed`]. Also publishes an [`EnergySample`] each tick.
pub struct EnergyNode {
    events: FifoTopic<FlightEvent>,
    telemetry: Topic<EnergySample>,
    /// Optional episode watchdog: abort once `now - start` exceeds the limit.
    watchdog: Option<(SimTime, f64)>,
    /// Optional plan-topic subscription: an in-flight replan re-arms the
    /// watchdog for the fresh trajectory instead of aborting a healthy
    /// episode that merely outlived the *original* plan's budget.
    watchdog_plan: Option<(Topic<Arc<Trajectory>>, u64)>,
    /// Optional session end (seconds of mission time): completing, not
    /// aborting (aerial photography's "filmed the whole session" success).
    session_end_secs: Option<f64>,
}

impl EnergyNode {
    /// A plain budget monitor.
    pub fn new(events: FifoTopic<FlightEvent>) -> Self {
        EnergyNode {
            events,
            telemetry: Topic::new("flight/energy"),
            watchdog: None,
            watchdog_plan: None,
            session_end_secs: None,
        }
    }

    /// Adds an episode watchdog: abort when more than `max_secs` of mission
    /// time elapse after `start`.
    pub fn with_watchdog(mut self, start: SimTime, max_secs: f64) -> Self {
        self.watchdog = Some((start, max_secs));
        self
    }

    /// Re-arms the watchdog whenever a new plan appears on `plan`: the
    /// deadline restarts at the swap with the fresh trajectory's own budget
    /// (the same `duration × 4 + 60 s` guard the episode started with).
    pub fn with_plan_watchdog(mut self, plan: Topic<Arc<Trajectory>>) -> Self {
        let sequence = plan.sequence();
        self.watchdog_plan = Some((plan, sequence));
        self
    }

    /// Adds a session deadline: complete (successfully) at `end_secs`.
    pub fn with_session_end(mut self, end_secs: f64) -> Self {
        self.session_end_secs = Some(end_secs);
        self
    }

    /// The telemetry topic (latest battery/energy sample).
    pub fn telemetry(&self) -> Topic<EnergySample> {
        self.telemetry.clone()
    }
}

impl Node<FlightCtx<'_>> for EnergyNode {
    fn name(&self) -> &str {
        "energy"
    }

    fn period(&self) -> SimDuration {
        SimDuration::ZERO
    }

    fn stage(&self) -> ExecStage {
        ExecStage::Housekeeping
    }

    fn tick(&mut self, ctx: &mut FlightCtx<'_>, now: SimTime) -> Result<NodeOutput> {
        self.telemetry.publish(EnergySample {
            at: now,
            battery_pct: ctx.mission.battery.percentage(),
            total_energy_j: ctx.mission.energy.total_energy().as_joules(),
        });
        if ctx.mission.budget_failure().is_some() {
            self.events.publish(FlightEvent::Aborted);
            return Ok(NodeOutput::idle());
        }
        if let Some((plan, last_sequence)) = &mut self.watchdog_plan {
            let sequence = plan.sequence();
            if sequence != *last_sequence {
                *last_sequence = sequence;
                if let (Some(trajectory), Some(_)) = (plan.latest(), self.watchdog) {
                    self.watchdog = Some((now, episode_watchdog_budget(&trajectory)));
                }
            }
        }
        if let Some((start, max_secs)) = self.watchdog {
            if now.since(start).as_secs() > max_secs {
                self.events.publish(FlightEvent::Aborted);
                return Ok(NodeOutput::idle());
            }
        }
        if let Some(end_secs) = self.session_end_secs {
            if now.as_secs() >= end_secs {
                self.events.publish(FlightEvent::Completed);
            }
        }
        Ok(NodeOutput::idle())
    }
}

/// Captures a depth frame from the current pose and publishes it on the
/// latched frame topic. At explicit camera rates, frames a slow mapper never
/// consumes are simply overwritten — latest-value semantics are the frame
/// drop model. Frames travel as `Arc`s so consuming the latched value is a
/// pointer clone, not a pixel-buffer copy.
pub struct DepthCameraNode {
    frames: Topic<Arc<DepthImage>>,
    period: SimDuration,
}

impl DepthCameraNode {
    /// Creates the camera node publishing on `frames`.
    pub fn new(frames: Topic<Arc<DepthImage>>, period: SimDuration) -> Self {
        DepthCameraNode { frames, period }
    }
}

impl Node<FlightCtx<'_>> for DepthCameraNode {
    fn name(&self) -> &str {
        "depth_camera"
    }

    fn period(&self) -> SimDuration {
        self.period
    }

    fn stage(&self) -> ExecStage {
        ExecStage::Sensing
    }

    fn tick(&mut self, ctx: &mut FlightCtx<'_>, _now: SimTime) -> Result<NodeOutput> {
        // A fault-injected dropout window returns `None`: no frame is
        // published, the latched topic keeps its stale value, and the
        // mapper's sequence gate simply sees nothing new — exactly the frame
        // drop model the latched-topic semantics already define. Without an
        // injector this is `capture_depth` verbatim.
        if let Some(frame) = ctx.mission.capture_depth_faulted() {
            self.frames.publish(Arc::new(frame));
        }
        Ok(NodeOutput::idle())
    }
}

/// Integrates the newest unseen depth frame into the occupancy map, charging
/// the perception kernels (point-cloud generation, OctoMap update, collision
/// check, localization). Skips rounds with no new frame.
pub struct OctoMapNode {
    frames: Topic<Arc<DepthImage>>,
    period: SimDuration,
    last_sequence: u64,
    /// Per-node operating point for the perception batch (`None`:
    /// mission-global).
    op: Option<OperatingPoint>,
}

impl OctoMapNode {
    /// Creates the mapping node consuming `frames`.
    pub fn new(frames: Topic<Arc<DepthImage>>, period: SimDuration) -> Self {
        OctoMapNode {
            frames,
            period,
            last_sequence: 0,
            op: None,
        }
    }

    /// Pins the node's kernel charges to its own operating point (builder
    /// style): the big.LITTLE-style per-node DVFS hook.
    pub fn with_operating_point(mut self, op: Option<OperatingPoint>) -> Self {
        self.op = op;
        self
    }
}

impl Node<FlightCtx<'_>> for OctoMapNode {
    fn name(&self) -> &str {
        "octomap"
    }

    fn period(&self) -> SimDuration {
        self.period
    }

    fn stage(&self) -> ExecStage {
        ExecStage::Perception
    }

    fn tick(&mut self, ctx: &mut FlightCtx<'_>, _now: SimTime) -> Result<NodeOutput> {
        let sequence = self.frames.sequence();
        if sequence == self.last_sequence {
            return Ok(NodeOutput::idle());
        }
        self.last_sequence = sequence;
        let Some(frame) = self.frames.latest() else {
            return Ok(NodeOutput::idle());
        };
        let kernel_time = ctx.mission.update_map_detailed_at(&frame, self.op);
        Ok(NodeOutput::kernels(kernel_time))
    }
}

/// The stale-perception watchdog state carried by [`PathTrackerNode`] when
/// [`crate::config::DegradationConfig::perception_watchdog`] is on.
///
/// Watches the depth-frame topic's sequence number: while fresh frames keep
/// arriving the guard is inert, but once the sensing age grows past a grace
/// window (a configured multiple of the expected frame interval) it decays
/// the Eq. 2 velocity cap in proportion to the overrun — the degraded-mode
/// alternative to flying blind at full speed on a map that is no longer
/// being updated. The expected interval self-calibrates to the larger of the
/// configured camera period and the tracker's own observed tick gap, so
/// legacy tick-synchronous schedules (camera period zero) are judged against
/// the cadence the graph actually runs at.
#[derive(Debug)]
pub struct StaleGuard {
    frames: Topic<Arc<DepthImage>>,
    last_sequence: u64,
    last_fresh: Option<SimTime>,
    last_tick: Option<SimTime>,
    camera_period: SimDuration,
    grace_factor: f64,
}

/// Hard floor on the stale-perception cap decay: even arbitrarily old
/// sensing keeps the vehicle crawling toward safety instead of freezing it
/// mid-air (a hover burns battery without making progress or re-observing
/// anything new).
const STALE_CAP_FLOOR: f64 = 0.2;

/// How many samples of the stale plan a splice may keep: the validated
/// prefix only ever covers the near future — the far tail was going to be
/// replaced by the fresh segment anyway, and shorter prefixes keep the
/// smoother's waypoint count bounded.
const SPLICE_HORIZON: usize = 32;

/// Downsampling stride from (dense) plan samples to smoother waypoints when
/// splicing: the smoother re-times the corridor, it does not need every
/// sample back.
const SPLICE_STRIDE: usize = 4;

impl StaleGuard {
    /// Creates a guard watching `frames`, expecting a frame roughly every
    /// `camera_period` and tolerating `grace_factor` missed intervals before
    /// the decay starts.
    pub fn new(
        frames: Topic<Arc<DepthImage>>,
        camera_period: SimDuration,
        grace_factor: f64,
    ) -> Self {
        StaleGuard {
            last_sequence: frames.sequence(),
            frames,
            last_fresh: None,
            last_tick: None,
            camera_period,
            grace_factor,
        }
    }

    /// The velocity-cap scale for this tick: `1.0` while sensing is fresh,
    /// `grace / age` (floored at [`STALE_CAP_FLOOR`]) once the sensing age
    /// exceeds the grace window.
    fn cap_scale(&mut self, now: SimTime) -> f64 {
        let own_gap = self
            .last_tick
            .map(|t| now.since(t))
            .unwrap_or(SimDuration::ZERO);
        self.last_tick = Some(now);
        let sequence = self.frames.sequence();
        if sequence != self.last_sequence || self.last_fresh.is_none() {
            self.last_sequence = sequence;
            self.last_fresh = Some(now);
            return 1.0;
        }
        let age = now.since(self.last_fresh.unwrap_or(now)).as_secs();
        let expected = self.camera_period.as_secs().max(own_gap.as_secs());
        let grace = self.grace_factor * expected;
        if grace <= 0.0 || age <= grace {
            1.0
        } else {
            (grace / age).max(STALE_CAP_FLOOR)
        }
    }
}

/// Samples the current plan at the current plan time and publishes a clamped
/// velocity command; publishes [`FlightEvent::Completed`] when the end of
/// the plan has been reached. Charges the configured control kernels
/// each tick (path tracking alone in the mainline graph; localization + path
/// tracking for the Scanning sweep). The plan arrives through a
/// [`PlanSubscription`], so an in-flight replan swaps the trajectory under
/// the tracker between two ticks without ending the episode.
pub struct PathTrackerNode {
    tracker: PathTracker,
    plan: PlanSubscription,
    kernels: Vec<KernelId>,
    cap: f64,
    commands: Topic<Vec3>,
    events: FifoTopic<FlightEvent>,
    period: SimDuration,
    /// In-motion brake guard: the latched threat topic plus the stopping
    /// distance the tracker checks it against on every tick.
    brake_guard: Option<(Topic<Option<Vec3>>, f64)>,
    /// How a close threat maps to a brake command (binary stop by default).
    brake_policy: BrakePolicy,
    /// Stale-perception watchdog (degraded-mode cap decay), off by default.
    stale_guard: Option<StaleGuard>,
    /// Per-node operating point for the control kernels (`None`:
    /// mission-global).
    op: Option<OperatingPoint>,
}

impl PathTrackerNode {
    /// Creates the control node for one trajectory-following episode. The
    /// episode's initial trajectory must already be latched on `plan`; the
    /// same topic handle is shared (not copied) with the collision monitor.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        plan: Topic<Arc<Trajectory>>,
        timeline: Timeline,
        kernels: Vec<KernelId>,
        cap: f64,
        commands: Topic<Vec3>,
        events: FifoTopic<FlightEvent>,
        period: SimDuration,
    ) -> Self {
        PathTrackerNode {
            tracker: PathTracker::new(PathTrackerConfig::default()),
            plan: PlanSubscription::new(plan, timeline),
            kernels,
            cap,
            commands,
            events,
            period,
            brake_guard: None,
            brake_policy: BrakePolicy::Binary,
            stale_guard: None,
            op: None,
        }
    }

    /// Pins the node's kernel charges to its own operating point (builder
    /// style): the big.LITTLE-style per-node DVFS hook.
    pub fn with_operating_point(mut self, op: Option<OperatingPoint>) -> Self {
        self.op = op;
        self
    }

    /// Honours the in-motion planner's latched threat topic (builder style):
    /// while a planning job keeps a threat latched, the tracker checks the
    /// threat's distance against `stopping_distance` on *every* tick and
    /// publishes a stop instead of its tracking command when it is close.
    /// Evaluating proximity here — at the control rate — is what closes the
    /// gap between planner ticks: a threat that crosses into the stopping
    /// distance mid-job brakes the vehicle within one control period, not
    /// one replan period.
    pub fn with_brake_guard(
        mut self,
        threats: Topic<Option<Vec3>>,
        stopping_distance: f64,
    ) -> Self {
        self.brake_guard = Some((threats, stopping_distance));
        self
    }

    /// Selects how a close threat maps to a brake command (builder style).
    /// [`BrakePolicy::Binary`] is the bit-identical historical default.
    pub fn with_brake_policy(mut self, policy: BrakePolicy) -> Self {
        self.brake_policy = policy;
        self
    }

    /// Arms the stale-perception watchdog (builder style): the tracker decays
    /// its velocity cap once the depth-frame topic stops advancing for longer
    /// than `grace_factor` expected frame intervals.
    pub fn with_stale_guard(
        mut self,
        frames: Topic<Arc<DepthImage>>,
        camera_period: SimDuration,
        grace_factor: f64,
    ) -> Self {
        self.stale_guard = Some(StaleGuard::new(frames, camera_period, grace_factor));
        self
    }

    /// The sequence number of the plan the tracker currently flies.
    pub fn plan_sequence(&self) -> u64 {
        self.plan.sequence()
    }
}

impl Node<FlightCtx<'_>> for PathTrackerNode {
    fn name(&self) -> &str {
        "path_tracker"
    }

    fn period(&self) -> SimDuration {
        self.period
    }

    fn stage(&self) -> ExecStage {
        ExecStage::Control
    }

    fn tick(&mut self, ctx: &mut FlightCtx<'_>, now: SimTime) -> Result<NodeOutput> {
        self.plan.refresh();
        let op = self.op;
        let kernel_time: Vec<(KernelId, SimDuration)> = self
            .kernels
            .iter()
            .map(|&k| (k, ctx.mission.charge_kernel_at(k, op)))
            .collect();
        let plan_time = self.plan.timeline().plan_time(now);
        let state = *ctx.mission.quad.state();
        let cmd = self
            .tracker
            .command(self.plan.trajectory(), &state, plan_time);
        if cmd.completed {
            self.events.publish(FlightEvent::Completed);
            return Ok(NodeOutput::kernels(kernel_time));
        }
        // Stale-perception watchdog: with no fresh depth frame for longer
        // than the grace window, the Eq. 2 cap decays with sensing age and
        // the mission is marked degraded until frames resume. Without the
        // guard (the default) `cap == self.cap` and the command below is
        // bit-identical to the historical one.
        let cap = match self.stale_guard.as_mut() {
            Some(guard) => {
                let scale = guard.cap_scale(now);
                if scale < 1.0 {
                    ctx.mission.note_degraded();
                } else {
                    ctx.mission.note_recovered();
                }
                self.cap * scale
            }
            None => self.cap,
        };
        // A latched threat (in-motion planning job in progress) inside the
        // stopping distance overrides the tracking command until the planner
        // releases the latch: a full stop under the binary policy, a
        // slow-down proportional to the remaining threat distance under the
        // graded one.
        let threat_proximity = self.brake_guard.as_ref().and_then(|(threats, stop)| {
            threats
                .latest()
                .flatten()
                .map(|threat| (state.pose.position.distance(&threat), *stop))
                .filter(|(distance, stop)| distance < stop)
        });
        let command = match threat_proximity {
            Some((distance, stop)) => {
                cmd.velocity.clamp_norm(cap) * self.brake_policy.brake_factor(distance, stop)
            }
            None => cmd.velocity.clamp_norm(cap),
        };
        // A fault-injected message drop loses this tick's command: the
        // latched topic keeps the previous one, exactly like a lost wire
        // message under latest-value semantics.
        if !ctx.mission.fault_drop_message() {
            self.commands.publish(command);
        }
        Ok(NodeOutput::kernels(kernel_time))
    }
}

/// Collision-checks the remainder of the plan against the (continuously
/// updated) occupancy map and raises a [`CollisionAlert`] when it is
/// obstructed. The alert is consumed by the [`PlannerNode`]; at explicit
/// replan rates the vehicle keeps flying the stale plan until the planner's
/// next tick — replanning-rate starvation as a schedule property.
pub struct CollisionMonitorNode {
    checker: CollisionChecker,
    plan: PlanSubscription,
    alerts: FifoTopic<CollisionAlert>,
    period: SimDuration,
}

impl CollisionMonitorNode {
    /// Creates the monitor for one episode (subscribing to the same plan
    /// topic as the tracker).
    pub fn new(
        checker: CollisionChecker,
        plan: Topic<Arc<Trajectory>>,
        timeline: Timeline,
        alerts: FifoTopic<CollisionAlert>,
        period: SimDuration,
    ) -> Self {
        CollisionMonitorNode {
            checker,
            plan: PlanSubscription::new(plan, timeline),
            alerts,
            period,
        }
    }

    /// The sequence number of the plan the monitor currently checks.
    pub fn plan_sequence(&self) -> u64 {
        self.plan.sequence()
    }
}

impl Node<FlightCtx<'_>> for CollisionMonitorNode {
    fn name(&self) -> &str {
        "collision_monitor"
    }

    fn period(&self) -> SimDuration {
        self.period
    }

    fn stage(&self) -> ExecStage {
        ExecStage::Planning
    }

    fn tick(&mut self, ctx: &mut FlightCtx<'_>, now: SimTime) -> Result<NodeOutput> {
        self.plan.refresh();
        let plan_time = self.plan.timeline().plan_time(now);
        let points = self.plan.trajectory().points();
        // Only the *remaining* plan is checked. A plan time past the last
        // sample means nothing is left to check; falling back to index 0
        // (the historical bug) re-checked already-flown segments and raised
        // spurious alerts at the end of every episode.
        let from_index = points
            .iter()
            .position(|p| p.time >= plan_time)
            .unwrap_or(points.len());
        if let Some(hit) = self.checker.first_collision_report(
            &ctx.mission.map,
            self.plan.trajectory(),
            from_index,
        ) {
            // Aim the alert at the occupied voxel that actually blocks the
            // plan (reported by the DDA corridor in the same pass that found
            // the collision) rather than the colliding plan *sample*: the
            // in-motion brake guard measures threat distance from this
            // position, and a sample can sit a whole inflation radius away
            // from the obstruction it grazes. Falls back to the sample when
            // the obstruction is not an occupied voxel.
            //
            // A fault-injected message drop loses the alert: the planner
            // stays oblivious until the monitor's next tick re-detects the
            // obstruction — the degraded-mode scenario the stale-perception
            // watchdog exists to survive.
            if !ctx.mission.fault_drop_message() {
                self.alerts.publish(CollisionAlert {
                    at: now,
                    position: hit.blocking_voxel.unwrap_or(points[hit.index].position),
                });
            }
        }
        Ok(NodeOutput::idle())
    }
}

/// The in-motion planning machinery handed to [`PlannerNode::with_in_motion`]:
/// everything the planner needs to produce and publish a fresh plan while
/// the vehicle keeps flying.
pub struct InMotionPlanner {
    /// The latched plan topic shared with tracker and monitor.
    pub plan: Topic<Arc<Trajectory>>,
    /// The path planner (seeded from the mission config — deterministic).
    pub planner: ShortestPathPlanner,
    /// Collision checker matched to the vehicle.
    pub checker: CollisionChecker,
    /// The episode goal: the final waypoint of the original plan.
    pub goal: Vec3,
    /// Airframe acceleration limit for re-smoothing.
    pub max_acceleration: f64,
    /// In-flight replans allowed per episode before falling back to a
    /// [`FlightEvent::NeedsReplan`] (the hover-to-plan escape hatch).
    pub max_replans: u32,
    /// The velocity-command topic: while a job runs with the threat inside
    /// [`InMotionPlanner::stopping_distance`], the planner overrides the
    /// tracker's command with a stop — plan in motion only when it is safe
    /// to keep moving.
    pub commands: Topic<Vec3>,
    /// The latched threat topic the tracker honours via
    /// [`PathTrackerNode::with_brake_guard`]: `Some(position)` of the
    /// nearest flagged obstruction while a job runs, `None` once released.
    /// Latching the *threat* (not a brake flag) lets the tracker re-check
    /// proximity at the control rate, so a threat that crosses into the
    /// stopping distance between two planner ticks still brakes the vehicle
    /// within one control period.
    pub threats: Topic<Option<Vec3>>,
    /// The Eq. 2 stopping-distance budget (metres): closer threats brake the
    /// vehicle for the remainder of the planning job.
    pub stopping_distance: f64,
}

/// The planning node.
///
/// In the default hover-to-plan configuration it is a pure trigger: pending
/// collision alerts become a [`FlightEvent::NeedsReplan`], ending the episode
/// so the application can plan a fresh trajectory while hovering (charging
/// the planning kernels at zero velocity). Runs at the replan rate; in the
/// legacy schedule it reacts in the same round the monitor raised the alert.
///
/// With [`PlannerNode::with_in_motion`] it becomes a real planning node: a
/// collision alert starts a *multi-round planning job* that charges the
/// `MotionPlanning` and `PathSmoothing` kernels on successive executor rounds
/// — mission time during which the tracker keeps flying the stale plan — and
/// then plans from the vehicle's current position to the episode goal on the
/// current map, smooths from the mission clock, and publishes the result on
/// the latched plan topic. Planning failures (blocked goal, exhausted sample
/// budget, too many in-flight replans) fall back to the hover-to-plan
/// episode end instead of aborting the mission.
pub struct PlannerNode {
    alerts: FifoTopic<CollisionAlert>,
    events: FifoTopic<FlightEvent>,
    period: SimDuration,
    in_motion: Option<InMotionPlanner>,
    /// Remaining kernel charges of the active planning job (in charge order).
    job: Vec<KernelId>,
    /// First flagged obstruction of the plan the active job is replacing.
    threat: Option<Vec3>,
    replans: u32,
    /// Hard latency budget for one planning job (degradation response): a
    /// job whose accumulated kernel charges exceed it is abandoned in favour
    /// of the hover-to-plan fallback. `None` (the default) never times out.
    job_budget: Option<SimDuration>,
    /// Kernel latency charged by the active job so far.
    job_spent: SimDuration,
    /// Splice the fresh segment onto the validated prefix of the stale plan
    /// instead of replacing the whole plan (off by default).
    splice: bool,
    /// How a close threat maps to a brake command (binary stop by default).
    brake_policy: BrakePolicy,
    /// Per-node operating point for the planning kernels (`None`:
    /// mission-global).
    op: Option<OperatingPoint>,
}

impl PlannerNode {
    /// Creates the (hover-to-plan) planner trigger.
    pub fn new(
        alerts: FifoTopic<CollisionAlert>,
        events: FifoTopic<FlightEvent>,
        period: SimDuration,
    ) -> Self {
        PlannerNode {
            alerts,
            events,
            period,
            in_motion: None,
            job: Vec::new(),
            threat: None,
            replans: 0,
            job_budget: None,
            job_spent: SimDuration::ZERO,
            splice: false,
            brake_policy: BrakePolicy::Binary,
            op: None,
        }
    }

    /// Caps one planning job's accumulated kernel latency (builder style):
    /// exceeding the budget abandons the job and falls back to the
    /// hover-to-plan path, marking the mission degraded.
    pub fn with_job_budget(mut self, budget: SimDuration) -> Self {
        self.job_budget = Some(budget);
        self
    }

    /// Enables partial-trajectory splicing on replan (builder style): the
    /// fresh segment is grafted onto the still-collision-free prefix of the
    /// stale plan instead of replacing it wholesale.
    pub fn with_splicing(mut self, splice: bool) -> Self {
        self.splice = splice;
        self
    }

    /// Selects how a close threat maps to a brake command (builder style).
    /// [`BrakePolicy::Binary`] is the bit-identical historical default.
    pub fn with_brake_policy(mut self, policy: BrakePolicy) -> Self {
        self.brake_policy = policy;
        self
    }

    /// Pins the node's kernel charges to its own operating point (builder
    /// style): the big.LITTLE-style per-node DVFS hook.
    pub fn with_operating_point(mut self, op: Option<OperatingPoint>) -> Self {
        self.op = op;
        self
    }

    /// Upgrades the trigger into an in-motion planning node (builder style).
    pub fn with_in_motion(mut self, in_motion: InMotionPlanner) -> Self {
        self.in_motion = Some(in_motion);
        self
    }

    /// `true` while a planning job is charging kernels across rounds.
    pub fn planning_in_progress(&self) -> bool {
        !self.job.is_empty()
    }

    /// In-flight replans published so far by this node.
    pub fn replans(&self) -> u32 {
        self.replans
    }

    /// Completes the active job: plans from the current position to the goal
    /// on the current map and publishes the smoothed trajectory, or falls
    /// back to ending the episode when no plan can be found.
    fn finish_plan(&mut self, ctx: &mut FlightCtx<'_>) {
        let Some(im) = &self.in_motion else { return };
        // Partial-trajectory splicing (off by default): plan the fresh
        // segment from the end of the still-collision-free prefix of the
        // stale plan and smooth the concatenated waypoints, instead of
        // throwing the validated prefix away and planning from the current
        // pose. With an empty prefix (splicing off, empty plan, or nothing
        // validated ahead of the vehicle) this is the historical code path
        // verbatim.
        let prefix = if self.splice {
            self.validated_prefix(ctx)
        } else {
            Vec::new()
        };
        let pose = ctx.mission.pose().position;
        let cap = ctx.mission.velocity_cap();
        let now = ctx.mission.clock.now();
        let build = |start: Vec3, prefix: &[Vec3]| {
            im.planner
                .plan(&ctx.mission.map, &im.checker, start, im.goal)
                .map(|path| path.shortcut(&ctx.mission.map, &im.checker))
                .and_then(|path| {
                    let smoother =
                        PathSmoother::new(SmootherConfig::new(cap.max(0.5), im.max_acceleration));
                    if prefix.is_empty() {
                        smoother.smooth(&path.waypoints, now)
                    } else {
                        let mut waypoints = prefix.to_vec();
                        for &w in &path.waypoints {
                            if waypoints.last().is_none_or(|last| last.distance(&w) > 1e-9) {
                                waypoints.push(w);
                            }
                        }
                        smoother.smooth(&waypoints, now)
                    }
                })
        };
        let mut smoothed = match prefix.last().copied() {
            Some(start) => build(start, &prefix),
            None => build(pose, &[]),
        };
        // A spliced trajectory is only published if it is still collision-free
        // end to end on the current map: smoothing across the splice junction
        // can cut a corner the raw prefix samples cleared. On any hit, fall
        // back to the historical replace-the-whole-plan path.
        if !prefix.is_empty() {
            let collides = smoothed.as_ref().map_or(true, |trajectory| {
                im.checker
                    .first_collision_report(&ctx.mission.map, trajectory, 0)
                    .is_some()
            });
            if collides {
                smoothed = build(pose, &[]);
            }
        }
        match smoothed {
            Ok(trajectory) => {
                ctx.mission.note_replan();
                self.replans += 1;
                im.plan.publish(Arc::new(trajectory));
            }
            // No in-flight plan available: hand the episode back to the
            // application, which replans while hovering (the historical
            // path). This keeps blocked-goal scenarios mission-safe.
            Err(_) => self.events.publish(FlightEvent::NeedsReplan),
        }
        // The threat is NOT cleared here: the tracker already published this
        // round's command from the stale plan (it runs earlier in the round),
        // so the publication round must still brake if the threat is close.
        // The caller clears it after that last brake check.
    }

    /// The still-collision-free prefix of the currently latched plan, from
    /// the sample nearest the vehicle forward: downsampled to smoother
    /// waypoints, capped at [`SPLICE_HORIZON`] samples, cut at the first
    /// colliding sample. Empty when nothing ahead of the vehicle is
    /// validated (which makes [`PlannerNode::finish_plan`] fall back to the
    /// replace-the-whole-plan path).
    fn validated_prefix(&self, ctx: &FlightCtx<'_>) -> Vec<Vec3> {
        let Some(im) = &self.in_motion else {
            return Vec::new();
        };
        let Some(plan) = im.plan.latest() else {
            return Vec::new();
        };
        let points = plan.points();
        if points.is_empty() {
            return Vec::new();
        }
        let pose = ctx.mission.pose().position;
        let nearest = points
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.position
                    .distance(&pose)
                    .total_cmp(&b.position.distance(&pose))
            })
            .map(|(i, _)| i)
            .unwrap_or(0);
        let first_hit = im
            .checker
            .first_collision_report(&ctx.mission.map, &plan, nearest)
            .map(|hit| hit.index)
            .unwrap_or(points.len());
        // The flagged obstruction that triggered this replan is typically NOT
        // in the map yet (the alert races map integration), so the map check
        // above cannot see it: cut the prefix before the first sample inside
        // the threat's stopping-distance bubble as well.
        let threat_hit = self
            .threat
            .and_then(|threat| {
                points[nearest..]
                    .iter()
                    .position(|p| p.position.distance(&threat) < im.stopping_distance)
            })
            .map(|offset| nearest + offset)
            .unwrap_or(points.len());
        let end = first_hit.min(threat_hit).min(nearest + SPLICE_HORIZON);
        if end <= nearest + 1 {
            return Vec::new();
        }
        let mut prefix: Vec<Vec3> = points[nearest..end]
            .iter()
            .step_by(SPLICE_STRIDE)
            .map(|p| p.position)
            .collect();
        let tail = points[end - 1].position;
        if prefix.last().is_none_or(|last| last.distance(&tail) > 1e-9) {
            prefix.push(tail);
        }
        prefix
    }

    /// Folds newly drained alerts into the tracked threat, keeping whichever
    /// flagged obstruction is nearest to the vehicle right now.
    fn track_nearest_threat(&mut self, ctx: &FlightCtx<'_>, alerts: &[CollisionAlert]) {
        let pose = ctx.mission.pose().position;
        for alert in alerts {
            let closer = match self.threat {
                Some(threat) => alert.position.distance(&pose) < threat.distance(&pose),
                None => true,
            };
            if closer {
                self.threat = Some(alert.position);
            }
        }
    }

    /// `true` while the tracked threat sits inside the stopping distance.
    fn threat_is_close(&self, ctx: &FlightCtx<'_>) -> bool {
        let (Some(im), Some(threat)) = (&self.in_motion, self.threat) else {
            return false;
        };
        ctx.mission.pose().position.distance(&threat) < im.stopping_distance
    }

    /// The brake command for the currently latched threat: a full stop under
    /// the binary policy, the latest command scaled by the remaining threat
    /// distance (down to the hard-stop core) under the graded one.
    fn braked_command(&self, ctx: &FlightCtx<'_>, im: &InMotionPlanner) -> Vec3 {
        let Some(threat) = self.threat else {
            return Vec3::ZERO;
        };
        let distance = ctx.mission.pose().position.distance(&threat);
        let factor = self
            .brake_policy
            .brake_factor(distance, im.stopping_distance);
        im.commands.latest().unwrap_or(Vec3::ZERO) * factor
    }

    /// While a job runs, flying on towards a threat inside the stopping
    /// distance would blind-fly the vehicle into an obstacle it has already
    /// seen. Latches the nearest threat for the tracker's per-tick proximity
    /// check and, when already close, brakes the command for the current
    /// round's charge (the tracker ran earlier in this round).
    fn brake_if_threat_close(&self, ctx: &mut FlightCtx<'_>) {
        let Some(im) = &self.in_motion else { return };
        im.threats.publish(self.threat);
        if self.threat_is_close(ctx) {
            let command = self.braked_command(ctx, im);
            im.commands.publish(command);
        }
    }

    /// Releases the latched threat so the tracker resumes on its next tick.
    fn release_brake(&self) {
        if let Some(im) = &self.in_motion {
            im.threats.publish(None);
        }
    }

    /// `true` once the active job's accumulated kernel latency blew the
    /// configured budget. Always `false` without a budget (the default).
    fn job_timed_out(&self) -> bool {
        self.job_budget
            .is_some_and(|budget| self.job_spent > budget)
    }

    /// Planner-timeout degradation response: abandons the active job,
    /// releases the brake latch and hands the episode back to the
    /// application through the existing hover-to-plan path, marking the
    /// mission degraded.
    fn abandon_job(&mut self, ctx: &mut FlightCtx<'_>) {
        ctx.mission.note_degraded();
        self.job.clear();
        self.release_brake();
        self.threat = None;
        self.events.publish(FlightEvent::NeedsReplan);
    }
}

impl Node<FlightCtx<'_>> for PlannerNode {
    fn name(&self) -> &str {
        "planner"
    }

    fn period(&self) -> SimDuration {
        self.period
    }

    fn stage(&self) -> ExecStage {
        ExecStage::Planning
    }

    fn tick(&mut self, ctx: &mut FlightCtx<'_>, _now: SimTime) -> Result<NodeOutput> {
        let Some(max_replans) = self.in_motion.as_ref().map(|im| im.max_replans) else {
            // Hover-to-plan: a pending alert ends the episode (bit-identical
            // to the pre-PR 3 trigger).
            if !self.alerts.drain().is_empty() {
                self.events.publish(FlightEvent::NeedsReplan);
            }
            return Ok(NodeOutput::idle());
        };
        // An active job charges one planning kernel per round; the executor
        // turns that latency into flight time on the stale plan (or braking,
        // when the threat is close). The final charge completes the job and
        // publishes the fresh plan.
        if !self.job.is_empty() {
            // The monitor keeps checking the stale plan while the job runs:
            // an alert raised mid-job may flag a *closer* obstruction than
            // the one that started the job, and the brake guard must react
            // to whichever threat is nearest. Draining here also retires the
            // alerts for good — once the fresh plan publishes, the monitor
            // re-checks it from scratch.
            self.track_nearest_threat(ctx, &self.alerts.drain());
            let kernel = self.job.remove(0);
            let latency = ctx.mission.charge_kernel_at(kernel, self.op);
            self.job_spent += latency;
            // Planner-timeout degradation response: a job whose accumulated
            // kernel latency blew the budget (e.g. under injected latency
            // spikes or a plan-timeout stretch) is abandoned — the latch is
            // released and the episode falls back to the existing
            // hover-to-plan path instead of flying the stale plan for an
            // unbounded planning stall. With no budget (the default) the
            // branch is never taken.
            if self.job_timed_out() {
                self.abandon_job(ctx);
            } else if self.job.is_empty() {
                self.finish_plan(ctx);
                // The fresh plan only reaches the tracker *next* round; this
                // round's charge still flies the tracker's stale-plan
                // command, so a close threat brakes it one last time. The
                // latch is released either way — from the next round the
                // tracker flies whatever the plan topic now holds.
                if self.threat_is_close(ctx) {
                    if let Some(im) = &self.in_motion {
                        let command = self.braked_command(ctx, im);
                        im.commands.publish(command);
                    }
                }
                self.release_brake();
                self.threat = None;
            } else {
                self.brake_if_threat_close(ctx);
            }
            return Ok(NodeOutput::kernel(kernel, latency));
        }
        let pending = self.alerts.drain();
        if !pending.is_empty() {
            if self.replans >= max_replans {
                self.events.publish(FlightEvent::NeedsReplan);
                return Ok(NodeOutput::idle());
            }
            // Start the planning job in the alert round itself: motion
            // planning now, smoothing (and publication) next round.
            self.track_nearest_threat(ctx, &pending);
            self.job = vec![KernelId::MotionPlanning, KernelId::PathSmoothing];
            self.job_spent = SimDuration::ZERO;
            let kernel = self.job.remove(0);
            let latency = ctx.mission.charge_kernel_at(kernel, self.op);
            self.job_spent += latency;
            if self.job_timed_out() {
                self.abandon_job(ctx);
            } else {
                self.brake_if_threat_close(ctx);
            }
            return Ok(NodeOutput::kernel(kernel, latency));
        }
        Ok(NodeOutput::idle())
    }
}

/// Drives an episode graph to its first terminal event.
///
/// Steps the executor until a node publishes a [`FlightEvent`]. When a round
/// drains *several* terminal events (one node publishing more than one, or a
/// future graph with several event sources), the winner is decided by
/// severity — `Aborted > NeedsReplan > Completed` — not by the registration
/// order of whichever nodes happened to publish, so episode outcomes stay
/// deterministic under graph refactors. A node or context error (none of the
/// built-in nodes produce any) is propagated so the caller can put the real
/// message into its mission report instead of a generic abort. The event
/// queue is drained so the graph can be reused for a subsequent episode.
///
/// # Errors
///
/// Returns the first error raised by a node's `tick` or the context's
/// `charge`.
pub fn run_to_event<'m>(
    exec: &mut Executor<FlightCtx<'m>>,
    ctx: &mut FlightCtx<'m>,
) -> Result<FlightEvent> {
    loop {
        exec.step(ctx)?;
        let drained = ctx.events.drain();
        // Ties can only be duplicates of the same variant, so max_by_key's
        // last-wins tie-breaking cannot introduce nondeterminism.
        if let Some(&event) = drained.iter().max_by_key(|event| event.severity()) {
            return Ok(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MissionConfig;
    use mav_compute::ApplicationId;

    fn mission() -> MissionContext {
        let mut cfg = MissionConfig::fast_test(ApplicationId::PackageDelivery).with_seed(9);
        cfg.environment.extent = 30.0;
        cfg.environment.obstacle_density = 1.0;
        MissionContext::new(cfg).unwrap()
    }

    fn graph_topics() -> (FifoTopic<FlightEvent>, Topic<Vec3>) {
        (FifoTopic::new("t/events"), Topic::new("t/cmd"))
    }

    #[test]
    fn timeline_arithmetic_matches_legacy_formula() {
        let t = Timeline::EpisodeRelative {
            episode_start: SimTime::from_secs(10.0),
            traj_start: SimTime::from_secs(3.0),
        };
        assert_eq!(
            t.plan_time(SimTime::from_secs(12.5)),
            SimTime::from_secs(3.0) + SimTime::from_secs(12.5).since(SimTime::from_secs(10.0))
        );
        assert_eq!(
            Timeline::MissionClock.plan_time(SimTime::from_secs(7.0)),
            SimTime::from_secs(7.0)
        );
    }

    #[test]
    fn energy_node_aborts_on_blown_budget() {
        let mut m = mission();
        m.config.time_budget_secs = 1.0;
        m.hover(SimDuration::from_secs(2.0));
        let (events, commands) = graph_topics();
        let mut node = EnergyNode::new(events.clone());
        let telemetry = node.telemetry();
        let mut fctx = FlightCtx {
            mission: &mut m,
            events: events.clone(),
            commands,
            min_tick: SimDuration::from_millis(50.0),
        };
        let now = fctx.now();
        node.tick(&mut fctx, now).unwrap();
        assert_eq!(events.drain(), vec![FlightEvent::Aborted]);
        let sample = telemetry.latest().unwrap();
        assert!(sample.battery_pct <= 100.0);
        assert!(sample.total_energy_j > 0.0);
    }

    #[test]
    fn energy_node_watchdog_and_session_end() {
        let mut m = mission();
        m.hover(SimDuration::from_secs(5.0));
        let (events, commands) = graph_topics();
        let mut node = EnergyNode::new(events.clone()).with_watchdog(mav_types::SimTime::ZERO, 2.0);
        let mut fctx = FlightCtx {
            mission: &mut m,
            events: events.clone(),
            commands: commands.clone(),
            min_tick: SimDuration::from_millis(50.0),
        };
        let now = fctx.now();
        node.tick(&mut fctx, now).unwrap();
        assert_eq!(events.drain(), vec![FlightEvent::Aborted]);

        let mut session = EnergyNode::new(events.clone()).with_session_end(4.0);
        let mut fctx = FlightCtx {
            mission: &mut m,
            events: events.clone(),
            commands,
            min_tick: SimDuration::from_millis(50.0),
        };
        let now = fctx.now();
        session.tick(&mut fctx, now).unwrap();
        assert_eq!(events.drain(), vec![FlightEvent::Completed]);
    }

    #[test]
    fn camera_feeds_octomap_through_the_frame_topic() {
        let mut m = mission();
        let (events, commands) = graph_topics();
        let frames: Topic<Arc<DepthImage>> = Topic::new("t/frames");
        let mut camera = DepthCameraNode::new(frames.clone(), SimDuration::ZERO);
        let mut mapper = OctoMapNode::new(frames.clone(), SimDuration::ZERO);
        let mut fctx = FlightCtx {
            mission: &mut m,
            events,
            commands,
            min_tick: SimDuration::from_millis(50.0),
        };
        // No frame yet: the mapper idles.
        let out = mapper.tick(&mut fctx, SimTime::ZERO).unwrap();
        assert!(out.total().is_zero());
        camera.tick(&mut fctx, SimTime::ZERO).unwrap();
        assert_eq!(frames.sequence(), 1);
        let out = mapper.tick(&mut fctx, SimTime::ZERO).unwrap();
        assert!(!out.total().is_zero(), "perception kernels must be charged");
        assert!(fctx.mission.map.known_voxel_count() > 0);
        // Same frame again: the mapper must not re-integrate it.
        let out = mapper.tick(&mut fctx, SimTime::ZERO).unwrap();
        assert!(out.total().is_zero());
    }

    #[test]
    fn monitor_does_not_rescan_flown_segments_past_plan_end() {
        let mut m = mission();
        // A two-point plan whose first sample sits inside an occupied voxel:
        // exactly the state at the end of an episode, where the vehicle has
        // flown past (and mapped) its own departure corridor.
        let p0 = Vec3::new(2.0, 0.0, 2.0);
        let p1 = Vec3::new(12.0, 0.0, 2.0);
        m.map
            .insert_ray(&Vec3::new(0.0, 0.0, 2.0), &Vec3::new(2.0, 0.0, 2.0));
        let mut traj = Trajectory::new();
        traj.push(mav_types::TrajectoryPoint::stationary(p0, SimTime::ZERO));
        traj.push(mav_types::TrajectoryPoint::stationary(
            p1,
            SimTime::from_secs(1.0),
        ));
        let plan: Topic<Arc<Trajectory>> = Topic::new("t/plan");
        plan.publish(Arc::new(traj));
        let alerts: FifoTopic<CollisionAlert> = FifoTopic::new("t/alerts");
        let mut monitor = CollisionMonitorNode::new(
            m.collision_checker(),
            plan,
            Timeline::MissionClock,
            alerts.clone(),
            SimDuration::ZERO,
        );
        let (events, commands) = graph_topics();
        let mut fctx = FlightCtx {
            mission: &mut m,
            events,
            commands,
            min_tick: SimDuration::from_millis(50.0),
        };
        // Mid-plan: the occupied first sample is behind the plan time, the
        // remainder is free — no alert.
        monitor.tick(&mut fctx, SimTime::from_secs(0.5)).unwrap();
        // Past the end of the plan: nothing is left to check. The historical
        // `.unwrap_or(0)` fell back to re-checking the whole (already-flown)
        // trajectory here and raised a spurious alert.
        monitor.tick(&mut fctx, SimTime::from_secs(10.0)).unwrap();
        assert!(
            alerts.drain().is_empty(),
            "monitor re-checked already-flown segments"
        );
        // And at the very start the occupied sample *is* the remaining plan:
        // the monitor must still alert.
        monitor.tick(&mut fctx, SimTime::ZERO).unwrap();
        assert_eq!(alerts.len(), 1, "genuine collision must still alert");
    }

    #[test]
    fn run_to_event_resolves_multi_event_rounds_by_severity() {
        for (published, expected) in [
            (
                vec![FlightEvent::Completed, FlightEvent::Aborted],
                FlightEvent::Aborted,
            ),
            (
                vec![FlightEvent::Aborted, FlightEvent::Completed],
                FlightEvent::Aborted,
            ),
            (
                vec![FlightEvent::Completed, FlightEvent::NeedsReplan],
                FlightEvent::NeedsReplan,
            ),
            (
                vec![FlightEvent::NeedsReplan, FlightEvent::Aborted],
                FlightEvent::Aborted,
            ),
            (vec![FlightEvent::Completed], FlightEvent::Completed),
        ] {
            let mut m = mission();
            let (events, commands) = graph_topics();
            for event in &published {
                events.publish(*event);
            }
            let mut fctx = FlightCtx {
                mission: &mut m,
                events,
                commands,
                min_tick: SimDuration::from_millis(50.0),
            };
            let mut exec: Executor<FlightCtx> = Executor::new();
            assert_eq!(
                run_to_event(&mut exec, &mut fctx).unwrap(),
                expected,
                "wrong winner for {published:?}"
            );
        }
    }

    #[test]
    fn plan_swap_propagates_to_tracker_and_monitor_by_sequence() {
        let mut m = mission();
        let (events, commands) = graph_topics();
        let start = m.pose().position;
        let original = Trajectory::from_waypoints(
            &[start, start + Vec3::new(20.0, 0.0, 0.0)],
            4.0,
            SimTime::ZERO,
        );
        let plan: Topic<Arc<Trajectory>> = Topic::new("t/plan");
        plan.publish(Arc::new(original));
        let alerts: FifoTopic<CollisionAlert> = FifoTopic::new("t/alerts");
        let mut tracker = PathTrackerNode::new(
            plan.clone(),
            Timeline::MissionClock,
            vec![KernelId::PathTracking],
            8.0,
            commands.clone(),
            events.clone(),
            SimDuration::ZERO,
        );
        let mut monitor = CollisionMonitorNode::new(
            m.collision_checker(),
            plan.clone(),
            Timeline::MissionClock,
            alerts,
            SimDuration::ZERO,
        );
        let mut fctx = FlightCtx {
            mission: &mut m,
            events,
            commands: commands.clone(),
            min_tick: SimDuration::from_millis(50.0),
        };
        tracker.tick(&mut fctx, SimTime::from_secs(1.0)).unwrap();
        monitor.tick(&mut fctx, SimTime::from_secs(1.0)).unwrap();
        assert_eq!(tracker.plan_sequence(), 1);
        assert_eq!(monitor.plan_sequence(), 1);
        let cmd = commands.latest().unwrap();
        assert!(cmd.x > 0.0, "original plan points +x, got {cmd:?}");

        // A replan publishes a fresh trajectory pointing the other way; both
        // subscribers must swap on their next tick, by sequence number alone.
        let fresh = Trajectory::from_waypoints(
            &[start, start + Vec3::new(0.0, -20.0, 0.0)],
            4.0,
            SimTime::from_secs(1.0),
        );
        plan.publish(Arc::new(fresh));
        tracker.tick(&mut fctx, SimTime::from_secs(2.0)).unwrap();
        monitor.tick(&mut fctx, SimTime::from_secs(2.0)).unwrap();
        assert_eq!(tracker.plan_sequence(), 2);
        assert_eq!(monitor.plan_sequence(), 2);
        let cmd = commands.latest().unwrap();
        assert!(
            cmd.y < 0.0 && cmd.x.abs() < 1.0,
            "tracker still flying the stale plan: {cmd:?}"
        );
    }

    #[test]
    fn tracker_honours_the_latched_threat_until_released() {
        let mut m = mission();
        let (events, commands) = graph_topics();
        let start = m.pose().position;
        let plan: Topic<Arc<Trajectory>> = Topic::new("t/plan");
        plan.publish(Arc::new(Trajectory::from_waypoints(
            &[start, start + Vec3::new(20.0, 0.0, 0.0)],
            4.0,
            SimTime::ZERO,
        )));
        let threats: Topic<Option<Vec3>> = Topic::new("t/threats");
        let mut tracker = PathTrackerNode::new(
            plan,
            Timeline::MissionClock,
            vec![KernelId::PathTracking],
            8.0,
            commands.clone(),
            events.clone(),
            SimDuration::ZERO,
        )
        .with_brake_guard(threats.clone(), 10.0);
        let mut fctx = FlightCtx {
            mission: &mut m,
            events,
            commands: commands.clone(),
            min_tick: SimDuration::from_millis(50.0),
        };
        tracker.tick(&mut fctx, SimTime::from_secs(1.0)).unwrap();
        assert!(commands.latest().unwrap().x > 0.0);
        // A latched threat beyond the stopping distance does not brake.
        threats.publish(Some(start + Vec3::new(50.0, 0.0, 0.0)));
        tracker.tick(&mut fctx, SimTime::from_secs(1.05)).unwrap();
        assert!(commands.latest().unwrap().x > 0.0);
        // Inside the stopping distance: every tracker tick re-evaluates the
        // proximity and publishes the stop, so the brake holds across rounds
        // in which the planner does not run — and engages within one control
        // period of the threat crossing the boundary.
        threats.publish(Some(start + Vec3::new(5.0, 0.0, 0.0)));
        tracker.tick(&mut fctx, SimTime::from_secs(1.1)).unwrap();
        assert_eq!(commands.latest(), Some(Vec3::ZERO));
        tracker.tick(&mut fctx, SimTime::from_secs(1.2)).unwrap();
        assert_eq!(commands.latest(), Some(Vec3::ZERO));
        // Released: the tracker resumes its tracking command.
        threats.publish(None);
        tracker.tick(&mut fctx, SimTime::from_secs(1.3)).unwrap();
        assert!(commands.latest().unwrap().x > 0.0);
    }

    #[test]
    fn in_motion_replan_flies_the_stale_plan_until_publication() {
        use mav_planning::PlannerKind;
        let mut m = mission();
        let start = m.pose().position;
        let goal = start + Vec3::new(10.0, 0.0, 0.0);
        let plan: Topic<Arc<Trajectory>> = Topic::new("t/plan");
        plan.publish(Arc::new(Trajectory::from_waypoints(
            &[start, goal],
            4.0,
            SimTime::ZERO,
        )));
        let alerts: FifoTopic<CollisionAlert> = FifoTopic::new("t/alerts");
        let (events, commands) = graph_topics();
        let checker = m.collision_checker();
        let planner = m.shortest_path_planner(PlannerKind::Rrt);
        let max_acceleration = m.config.quadrotor.max_acceleration;
        let threats: Topic<Option<Vec3>> = Topic::new("t/threats");
        let mut node = PlannerNode::new(alerts.clone(), events.clone(), SimDuration::ZERO)
            .with_in_motion(InMotionPlanner {
                plan: plan.clone(),
                planner,
                checker,
                goal,
                max_acceleration,
                max_replans: 12,
                commands: commands.clone(),
                threats: threats.clone(),
                stopping_distance: 10.0,
            });
        let mut fctx = FlightCtx {
            mission: &mut m,
            events: events.clone(),
            commands: commands.clone(),
            min_tick: SimDuration::from_millis(50.0),
        };
        // No alert: the planner idles.
        let out = node.tick(&mut fctx, SimTime::ZERO).unwrap();
        assert!(out.total().is_zero());
        assert!(!node.planning_in_progress());

        // Alert round: the job starts and charges motion planning, but the
        // plan topic is untouched — the tracker keeps flying sequence 1.
        // The threat (the far end of the plan) is outside the stopping
        // distance, so the planner must NOT brake the vehicle.
        commands.publish(Vec3::new(4.0, 0.0, 0.0));
        alerts.publish(CollisionAlert {
            at: SimTime::ZERO,
            position: start + Vec3::new(50.0, 0.0, 0.0),
        });
        let out = node.tick(&mut fctx, SimTime::ZERO).unwrap();
        assert_eq!(out.kernel_time.len(), 1);
        assert_eq!(out.kernel_time[0].0, KernelId::MotionPlanning);
        assert!(node.planning_in_progress());
        assert_eq!(plan.sequence(), 1, "no plan may appear mid-job");
        assert_eq!(
            commands.latest(),
            Some(Vec3::new(4.0, 0.0, 0.0)),
            "a distant threat must not brake the vehicle"
        );
        assert_eq!(
            threats.latest(),
            Some(Some(start + Vec3::new(50.0, 0.0, 0.0))),
            "the threat must be latched for the tracker's per-tick check"
        );

        // Mid-job the monitor flags a *closer* obstruction on the stale plan:
        // the brake guard must react to the nearest threat, not the one that
        // started the job.
        alerts.publish(CollisionAlert {
            at: SimTime::from_secs(0.05),
            position: start + Vec3::new(5.0, 0.0, 0.0),
        });

        // Next round: smoothing is charged, the job completes, and the fresh
        // plan lands on the topic; the episode never saw a terminal event.
        let out = node.tick(&mut fctx, SimTime::from_secs(0.05)).unwrap();
        assert_eq!(out.kernel_time[0].0, KernelId::PathSmoothing);
        assert!(!node.planning_in_progress());
        assert_eq!(plan.sequence(), 2, "fresh plan must be published");
        assert_eq!(node.replans(), 1);
        assert_eq!(fctx.mission.replans(), 1);
        assert_eq!(
            commands.latest(),
            Some(Vec3::ZERO),
            "the closer mid-job threat must brake the publication round"
        );
        assert_eq!(
            threats.latest(),
            Some(None),
            "the latch must be released with the publication so the tracker \
             resumes on the fresh plan next round"
        );
        assert!(
            fctx.events.is_empty(),
            "in-motion replan must not end the episode"
        );
    }

    #[test]
    fn in_motion_replan_falls_back_to_needs_replan_when_blocked() {
        use mav_planning::PlannerKind;
        let mut m = mission();
        let start = m.pose().position;
        // Goal inside an occupied voxel: planning must fail and the node must
        // surface the hover-to-plan fallback instead of looping forever.
        let goal = Vec3::new(5.0, 0.0, 2.0);
        m.map.insert_ray(&start, &goal);
        let plan: Topic<Arc<Trajectory>> = Topic::new("t/plan");
        plan.publish(Arc::new(Trajectory::from_waypoints(
            &[start, goal],
            4.0,
            SimTime::ZERO,
        )));
        let alerts: FifoTopic<CollisionAlert> = FifoTopic::new("t/alerts");
        let (events, commands) = graph_topics();
        let checker = m.collision_checker();
        let planner = m.shortest_path_planner(PlannerKind::Rrt);
        let max_acceleration = m.config.quadrotor.max_acceleration;
        let threats: Topic<Option<Vec3>> = Topic::new("t/threats");
        let mut node = PlannerNode::new(alerts.clone(), events.clone(), SimDuration::ZERO)
            .with_in_motion(InMotionPlanner {
                plan: plan.clone(),
                planner,
                checker,
                goal,
                max_acceleration,
                max_replans: 12,
                commands: commands.clone(),
                threats: threats.clone(),
                stopping_distance: 10.0,
            });
        let mut fctx = FlightCtx {
            mission: &mut m,
            events: events.clone(),
            commands: commands.clone(),
            min_tick: SimDuration::from_millis(50.0),
        };
        // The threat is dead ahead, inside the stopping distance: the job
        // must brake the vehicle while it runs — and *latch* the threat, so
        // the tracker re-applies the stop between planner ticks at explicit
        // control rates.
        commands.publish(Vec3::new(4.0, 0.0, 0.0));
        alerts.publish(CollisionAlert {
            at: SimTime::ZERO,
            position: goal,
        });
        node.tick(&mut fctx, SimTime::ZERO).unwrap();
        assert_eq!(
            commands.latest(),
            Some(Vec3::ZERO),
            "a close threat must brake the vehicle during the job"
        );
        assert_eq!(
            threats.latest(),
            Some(Some(goal)),
            "the threat must be latched"
        );
        // The tracker republishes its stale-plan command at the top of the
        // final round; the brake must hold through that round as well — its
        // charge is still flown on the stale command.
        commands.publish(Vec3::new(4.0, 0.0, 0.0));
        // A fresh mid-job alert (the monitor keeps checking the stale plan)
        // must also be folded into the tracked threat.
        alerts.publish(CollisionAlert {
            at: SimTime::from_secs(0.05),
            position: start + Vec3::new(2.0, 0.0, 0.0),
        });
        node.tick(&mut fctx, SimTime::from_secs(0.05)).unwrap();
        assert_eq!(
            commands.latest(),
            Some(Vec3::ZERO),
            "a close threat must brake through the publication round"
        );
        assert_eq!(plan.sequence(), 1, "no plan can exist to a blocked goal");
        assert_eq!(events.drain(), vec![FlightEvent::NeedsReplan]);
    }

    #[test]
    fn plan_topic_handles_share_state_across_threads() {
        // The SweepRunner path: cloned Topic/FifoTopic handles moved into
        // worker threads must observe the same latched plan and alert queue.
        let plan: Topic<Arc<Trajectory>> = Topic::new("t/plan");
        let alerts: FifoTopic<CollisionAlert> = FifoTopic::new("t/alerts");
        let plan2 = plan.clone();
        let alerts2 = alerts.clone();
        let handle = std::thread::spawn(move || {
            plan2.publish(Arc::new(Trajectory::from_waypoints(
                &[Vec3::ZERO, Vec3::new(5.0, 0.0, 0.0)],
                1.0,
                SimTime::ZERO,
            )));
            alerts2.publish(CollisionAlert {
                at: SimTime::from_secs(1.0),
                position: Vec3::new(5.0, 0.0, 0.0),
            });
        });
        handle.join().unwrap();
        let mut sub = PlanSubscription::new(plan.clone(), Timeline::MissionClock);
        assert_eq!(sub.sequence(), 1);
        assert_eq!(sub.trajectory().len(), 2);
        assert!(!sub.refresh(), "no further publication, no swap");
        plan.publish(Arc::new(Trajectory::new()));
        assert!(sub.refresh());
        assert_eq!(sub.sequence(), 2);
        assert_eq!(alerts.drain().len(), 1);
    }

    #[test]
    fn charge_flies_the_latest_command() {
        let mut m = mission();
        let (events, commands) = graph_topics();
        commands.publish(Vec3::new(3.0, 0.0, 0.0));
        let mut fctx = FlightCtx {
            mission: &mut m,
            events,
            commands,
            min_tick: SimDuration::from_millis(50.0),
        };
        fctx.charge(SimDuration::from_secs(2.0), SimDuration::from_millis(50.0))
            .unwrap();
        assert!(fctx.mission.clock.now().as_secs() >= 2.0 - 1e-9);
        assert!(fctx.mission.distance() > 3.0);
        // Zero consumed still advances by the minimum tick.
        let before = fctx.mission.clock.now();
        fctx.charge(SimDuration::ZERO, SimDuration::from_millis(50.0))
            .unwrap();
        assert!(fctx.mission.clock.now().since(before).as_millis() >= 50.0 - 1e-9);
    }
}
