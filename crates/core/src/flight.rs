//! The closed-loop flight graph: `mav_runtime` nodes over the live mission.
//!
//! Before PR 2 the closed loop lived in one sequential function
//! (`MissionContext::fly_trajectory`): capture a frame, update the map,
//! track the path, collision-check, integrate physics — all at one implicit
//! rate. This module decomposes that loop into the ROS-style node graph of
//! the paper's Fig. 7 and schedules it on the
//! [`Executor`](mav_runtime::Executor):
//!
//! ```text
//!   EnergyNode ─────────────▶ events (budget / watchdog aborts, telemetry)
//!   DepthCameraNode ──frames─▶ OctoMapNode ──(map in MissionContext)
//!   PathTrackerNode ─────────▶ commands (velocity), events (completed)
//!   CollisionMonitorNode ──alerts─▶ PlannerNode ─▶ events (needs-replan)
//! ```
//!
//! Each node has its own period from [`crate::config::RateConfig`]; nodes
//! due at the same
//! instant run in registration order (the executor's determinism contract),
//! and the round's serialized kernel latency is charged to mission time by
//! [`FlightCtx::charge`], which integrates vehicle physics, energy and
//! battery drain for the charged duration — the drone literally flies
//! (or hovers) while its compute runs.
//!
//! With [`crate::config::RateConfig::legacy`] every node is tick-synchronous
//! and the graph
//! reproduces the historical loop bit-for-bit (`tests/golden_legacy.rs`).
//! With explicit rates, new phenomena emerge in configuration alone: a slow
//! camera drops frames into a latched topic, a slow mapper starves the
//! collision monitor, a slow planner lets the vehicle fly on a colliding
//! plan until the next replan tick.

use crate::context::MissionContext;
use mav_compute::KernelId;
use mav_control::{PathTracker, PathTrackerConfig};
use mav_planning::CollisionChecker;
use mav_runtime::{Executor, FifoTopic, Node, NodeContext, NodeOutput, Topic};
use mav_sensors::DepthImage;
use mav_types::{Result, SimDuration, SimTime, Trajectory, Vec3};
use std::sync::Arc;

/// A terminal event that ends a closed-loop episode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightEvent {
    /// The end of the trajectory (or session) was reached.
    Completed,
    /// The remaining plan is in collision; the application should re-plan.
    NeedsReplan,
    /// A mission-level budget (time, battery, collision, watchdog) was blown.
    Aborted,
}

/// A collision alert raised by the monitor, consumed by the planner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollisionAlert {
    /// When the colliding plan segment was detected.
    pub at: SimTime,
}

/// One energy/battery telemetry sample published by [`EnergyNode`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergySample {
    /// Sample time.
    pub at: SimTime,
    /// Battery percentage remaining.
    pub battery_pct: f64,
    /// Total energy drawn so far, joules.
    pub total_energy_j: f64,
}

/// How a node maps mission time onto the trajectory's timeline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Timeline {
    /// Sample the trajectory at the mission clock directly (trajectories
    /// smoothed "from now", e.g. the Scanning sweep).
    MissionClock,
    /// Sample at `traj_start + (now - episode_start)` — the trajectory's own
    /// timeline, offset by when the episode began (the historical
    /// `fly_trajectory` arithmetic, kept verbatim for bit-identical replays).
    EpisodeRelative {
        /// Mission time at which the episode began.
        episode_start: SimTime,
        /// Timestamp of the trajectory's first point.
        traj_start: SimTime,
    },
}

impl Timeline {
    /// The trajectory-timeline instant corresponding to mission time `now`.
    pub fn plan_time(&self, now: SimTime) -> SimTime {
        match *self {
            Timeline::MissionClock => now,
            Timeline::EpisodeRelative {
                episode_start,
                traj_start,
            } => traj_start + now.since(episode_start),
        }
    }
}

/// The scheduling context of one closed-loop episode: the live mission plus
/// the graph's shared topics. Implements the executor's latency-charging
/// hook by flying the vehicle for the charged duration under the latest
/// velocity command.
pub struct FlightCtx<'m> {
    /// The live mission state every node reads and writes.
    pub mission: &'m mut MissionContext,
    /// Terminal-event queue; any entry halts the executor round.
    pub events: FifoTopic<FlightEvent>,
    /// Latched latest velocity command from the control node.
    pub commands: Topic<Vec3>,
    /// Minimum round length: even a round of near-zero kernel latency flies
    /// the vehicle this long (50 ms in the historical loop, 100 ms for the
    /// Scanning sweep).
    pub min_tick: SimDuration,
}

impl NodeContext for FlightCtx<'_> {
    fn now(&self) -> SimTime {
        self.mission.clock.now()
    }

    fn halted(&self) -> bool {
        !self.events.is_empty()
    }

    fn charge(&mut self, consumed: SimDuration, _idle_step: SimDuration) -> Result<()> {
        let velocity = self.commands.latest().unwrap_or(Vec3::ZERO);
        self.mission.advance(velocity, consumed.max(self.min_tick));
        Ok(())
    }
}

/// Budget watchdog and energy telemetry.
///
/// Runs first in every graph (registration order), mirroring the historical
/// loop's budget check at the top of each iteration: a blown mission budget
/// (collision, battery, time) or an episode-watchdog overrun publishes
/// [`FlightEvent::Aborted`]; an elapsed filming session publishes
/// [`FlightEvent::Completed`]. Also publishes an [`EnergySample`] each tick.
pub struct EnergyNode {
    events: FifoTopic<FlightEvent>,
    telemetry: Topic<EnergySample>,
    /// Optional episode watchdog: abort once `now - start` exceeds the limit.
    watchdog: Option<(SimTime, f64)>,
    /// Optional session end (seconds of mission time): completing, not
    /// aborting (aerial photography's "filmed the whole session" success).
    session_end_secs: Option<f64>,
}

impl EnergyNode {
    /// A plain budget monitor.
    pub fn new(events: FifoTopic<FlightEvent>) -> Self {
        EnergyNode {
            events,
            telemetry: Topic::new("flight/energy"),
            watchdog: None,
            session_end_secs: None,
        }
    }

    /// Adds an episode watchdog: abort when more than `max_secs` of mission
    /// time elapse after `start`.
    pub fn with_watchdog(mut self, start: SimTime, max_secs: f64) -> Self {
        self.watchdog = Some((start, max_secs));
        self
    }

    /// Adds a session deadline: complete (successfully) at `end_secs`.
    pub fn with_session_end(mut self, end_secs: f64) -> Self {
        self.session_end_secs = Some(end_secs);
        self
    }

    /// The telemetry topic (latest battery/energy sample).
    pub fn telemetry(&self) -> Topic<EnergySample> {
        self.telemetry.clone()
    }
}

impl Node<FlightCtx<'_>> for EnergyNode {
    fn name(&self) -> &str {
        "energy"
    }

    fn period(&self) -> SimDuration {
        SimDuration::ZERO
    }

    fn tick(&mut self, ctx: &mut FlightCtx<'_>, now: SimTime) -> Result<NodeOutput> {
        self.telemetry.publish(EnergySample {
            at: now,
            battery_pct: ctx.mission.battery.percentage(),
            total_energy_j: ctx.mission.energy.total_energy().as_joules(),
        });
        if ctx.mission.budget_failure().is_some() {
            self.events.publish(FlightEvent::Aborted);
            return Ok(NodeOutput::idle());
        }
        if let Some((start, max_secs)) = self.watchdog {
            if now.since(start).as_secs() > max_secs {
                self.events.publish(FlightEvent::Aborted);
                return Ok(NodeOutput::idle());
            }
        }
        if let Some(end_secs) = self.session_end_secs {
            if now.as_secs() >= end_secs {
                self.events.publish(FlightEvent::Completed);
            }
        }
        Ok(NodeOutput::idle())
    }
}

/// Captures a depth frame from the current pose and publishes it on the
/// latched frame topic. At explicit camera rates, frames a slow mapper never
/// consumes are simply overwritten — latest-value semantics are the frame
/// drop model. Frames travel as `Arc`s so consuming the latched value is a
/// pointer clone, not a pixel-buffer copy.
pub struct DepthCameraNode {
    frames: Topic<Arc<DepthImage>>,
    period: SimDuration,
}

impl DepthCameraNode {
    /// Creates the camera node publishing on `frames`.
    pub fn new(frames: Topic<Arc<DepthImage>>, period: SimDuration) -> Self {
        DepthCameraNode { frames, period }
    }
}

impl Node<FlightCtx<'_>> for DepthCameraNode {
    fn name(&self) -> &str {
        "depth_camera"
    }

    fn period(&self) -> SimDuration {
        self.period
    }

    fn tick(&mut self, ctx: &mut FlightCtx<'_>, _now: SimTime) -> Result<NodeOutput> {
        let frame = ctx.mission.capture_depth();
        self.frames.publish(Arc::new(frame));
        Ok(NodeOutput::idle())
    }
}

/// Integrates the newest unseen depth frame into the occupancy map, charging
/// the perception kernels (point-cloud generation, OctoMap update, collision
/// check, localization). Skips rounds with no new frame.
pub struct OctoMapNode {
    frames: Topic<Arc<DepthImage>>,
    period: SimDuration,
    last_sequence: u64,
}

impl OctoMapNode {
    /// Creates the mapping node consuming `frames`.
    pub fn new(frames: Topic<Arc<DepthImage>>, period: SimDuration) -> Self {
        OctoMapNode {
            frames,
            period,
            last_sequence: 0,
        }
    }
}

impl Node<FlightCtx<'_>> for OctoMapNode {
    fn name(&self) -> &str {
        "octomap"
    }

    fn period(&self) -> SimDuration {
        self.period
    }

    fn tick(&mut self, ctx: &mut FlightCtx<'_>, _now: SimTime) -> Result<NodeOutput> {
        let sequence = self.frames.sequence();
        if sequence == self.last_sequence {
            return Ok(NodeOutput::idle());
        }
        self.last_sequence = sequence;
        let Some(frame) = self.frames.latest() else {
            return Ok(NodeOutput::idle());
        };
        let kernel_time = ctx.mission.update_map_detailed(&frame);
        Ok(NodeOutput::kernels(kernel_time))
    }
}

/// Samples the trajectory at the current plan time and publishes a clamped
/// velocity command; publishes [`FlightEvent::Completed`] when the end of
/// the trajectory has been reached. Charges the configured control kernels
/// each tick (path tracking alone in the mainline graph; localization + path
/// tracking for the Scanning sweep).
pub struct PathTrackerNode {
    tracker: PathTracker,
    trajectory: Arc<Trajectory>,
    timeline: Timeline,
    kernels: Vec<KernelId>,
    cap: f64,
    commands: Topic<Vec3>,
    events: FifoTopic<FlightEvent>,
    period: SimDuration,
}

impl PathTrackerNode {
    /// Creates the control node for one trajectory-following episode. The
    /// trajectory handle is shared (not copied) with the collision monitor.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        trajectory: Arc<Trajectory>,
        timeline: Timeline,
        kernels: Vec<KernelId>,
        cap: f64,
        commands: Topic<Vec3>,
        events: FifoTopic<FlightEvent>,
        period: SimDuration,
    ) -> Self {
        PathTrackerNode {
            tracker: PathTracker::new(PathTrackerConfig::default()),
            trajectory,
            timeline,
            kernels,
            cap,
            commands,
            events,
            period,
        }
    }
}

impl Node<FlightCtx<'_>> for PathTrackerNode {
    fn name(&self) -> &str {
        "path_tracker"
    }

    fn period(&self) -> SimDuration {
        self.period
    }

    fn tick(&mut self, ctx: &mut FlightCtx<'_>, now: SimTime) -> Result<NodeOutput> {
        let kernel_time: Vec<(KernelId, SimDuration)> = self
            .kernels
            .iter()
            .map(|&k| (k, ctx.mission.charge_kernel(k)))
            .collect();
        let plan_time = self.timeline.plan_time(now);
        let state = *ctx.mission.quad.state();
        let cmd = self.tracker.command(&self.trajectory, &state, plan_time);
        if cmd.completed {
            self.events.publish(FlightEvent::Completed);
            return Ok(NodeOutput::kernels(kernel_time));
        }
        self.commands.publish(cmd.velocity.clamp_norm(self.cap));
        Ok(NodeOutput::kernels(kernel_time))
    }
}

/// Collision-checks the remainder of the plan against the (continuously
/// updated) occupancy map and raises a [`CollisionAlert`] when it is
/// obstructed. The alert is consumed by the [`PlannerNode`]; at explicit
/// replan rates the vehicle keeps flying the stale plan until the planner's
/// next tick — replanning-rate starvation as a schedule property.
pub struct CollisionMonitorNode {
    checker: CollisionChecker,
    trajectory: Arc<Trajectory>,
    timeline: Timeline,
    alerts: FifoTopic<CollisionAlert>,
    period: SimDuration,
}

impl CollisionMonitorNode {
    /// Creates the monitor for one episode (sharing the tracker's
    /// trajectory handle).
    pub fn new(
        checker: CollisionChecker,
        trajectory: Arc<Trajectory>,
        timeline: Timeline,
        alerts: FifoTopic<CollisionAlert>,
        period: SimDuration,
    ) -> Self {
        CollisionMonitorNode {
            checker,
            trajectory,
            timeline,
            alerts,
            period,
        }
    }
}

impl Node<FlightCtx<'_>> for CollisionMonitorNode {
    fn name(&self) -> &str {
        "collision_monitor"
    }

    fn period(&self) -> SimDuration {
        self.period
    }

    fn tick(&mut self, ctx: &mut FlightCtx<'_>, now: SimTime) -> Result<NodeOutput> {
        let plan_time = self.timeline.plan_time(now);
        let from_index = self
            .trajectory
            .points()
            .iter()
            .position(|p| p.time >= plan_time)
            .unwrap_or(0);
        if self
            .checker
            .first_collision(&ctx.mission.map, &self.trajectory, from_index)
            .is_some()
        {
            self.alerts.publish(CollisionAlert { at: now });
        }
        Ok(NodeOutput::idle())
    }
}

/// Turns pending collision alerts into a [`FlightEvent::NeedsReplan`],
/// ending the episode so the application can plan a fresh trajectory (while
/// hovering, charging the planning kernels). Runs at the replan rate; in the
/// legacy schedule it reacts in the same round the monitor raised the alert.
pub struct PlannerNode {
    alerts: FifoTopic<CollisionAlert>,
    events: FifoTopic<FlightEvent>,
    period: SimDuration,
}

impl PlannerNode {
    /// Creates the planner trigger.
    pub fn new(
        alerts: FifoTopic<CollisionAlert>,
        events: FifoTopic<FlightEvent>,
        period: SimDuration,
    ) -> Self {
        PlannerNode {
            alerts,
            events,
            period,
        }
    }
}

impl Node<FlightCtx<'_>> for PlannerNode {
    fn name(&self) -> &str {
        "planner"
    }

    fn period(&self) -> SimDuration {
        self.period
    }

    fn tick(&mut self, _ctx: &mut FlightCtx<'_>, _now: SimTime) -> Result<NodeOutput> {
        if !self.alerts.drain().is_empty() {
            self.events.publish(FlightEvent::NeedsReplan);
        }
        Ok(NodeOutput::idle())
    }
}

/// Drives an episode graph to its first terminal event.
///
/// Steps the executor until a node publishes a [`FlightEvent`]. A node or
/// context error (none of the built-in nodes produce any) is propagated so
/// the caller can put the real message into its mission report instead of a
/// generic abort. The event queue is drained so the graph can be reused for
/// a subsequent episode.
///
/// # Errors
///
/// Returns the first error raised by a node's `tick` or the context's
/// `charge`.
pub fn run_to_event<'m>(
    exec: &mut Executor<FlightCtx<'m>>,
    ctx: &mut FlightCtx<'m>,
) -> Result<FlightEvent> {
    loop {
        exec.step(ctx)?;
        if let Some(&event) = ctx.events.drain().first() {
            return Ok(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MissionConfig;
    use mav_compute::ApplicationId;

    fn mission() -> MissionContext {
        let mut cfg = MissionConfig::fast_test(ApplicationId::PackageDelivery).with_seed(9);
        cfg.environment.extent = 30.0;
        cfg.environment.obstacle_density = 1.0;
        MissionContext::new(cfg).unwrap()
    }

    fn graph_topics() -> (FifoTopic<FlightEvent>, Topic<Vec3>) {
        (FifoTopic::new("t/events"), Topic::new("t/cmd"))
    }

    #[test]
    fn timeline_arithmetic_matches_legacy_formula() {
        let t = Timeline::EpisodeRelative {
            episode_start: SimTime::from_secs(10.0),
            traj_start: SimTime::from_secs(3.0),
        };
        assert_eq!(
            t.plan_time(SimTime::from_secs(12.5)),
            SimTime::from_secs(3.0) + SimTime::from_secs(12.5).since(SimTime::from_secs(10.0))
        );
        assert_eq!(
            Timeline::MissionClock.plan_time(SimTime::from_secs(7.0)),
            SimTime::from_secs(7.0)
        );
    }

    #[test]
    fn energy_node_aborts_on_blown_budget() {
        let mut m = mission();
        m.config.time_budget_secs = 1.0;
        m.hover(SimDuration::from_secs(2.0));
        let (events, commands) = graph_topics();
        let mut node = EnergyNode::new(events.clone());
        let telemetry = node.telemetry();
        let mut fctx = FlightCtx {
            mission: &mut m,
            events: events.clone(),
            commands,
            min_tick: SimDuration::from_millis(50.0),
        };
        let now = fctx.now();
        node.tick(&mut fctx, now).unwrap();
        assert_eq!(events.drain(), vec![FlightEvent::Aborted]);
        let sample = telemetry.latest().unwrap();
        assert!(sample.battery_pct <= 100.0);
        assert!(sample.total_energy_j > 0.0);
    }

    #[test]
    fn energy_node_watchdog_and_session_end() {
        let mut m = mission();
        m.hover(SimDuration::from_secs(5.0));
        let (events, commands) = graph_topics();
        let mut node = EnergyNode::new(events.clone()).with_watchdog(mav_types::SimTime::ZERO, 2.0);
        let mut fctx = FlightCtx {
            mission: &mut m,
            events: events.clone(),
            commands: commands.clone(),
            min_tick: SimDuration::from_millis(50.0),
        };
        let now = fctx.now();
        node.tick(&mut fctx, now).unwrap();
        assert_eq!(events.drain(), vec![FlightEvent::Aborted]);

        let mut session = EnergyNode::new(events.clone()).with_session_end(4.0);
        let mut fctx = FlightCtx {
            mission: &mut m,
            events: events.clone(),
            commands,
            min_tick: SimDuration::from_millis(50.0),
        };
        let now = fctx.now();
        session.tick(&mut fctx, now).unwrap();
        assert_eq!(events.drain(), vec![FlightEvent::Completed]);
    }

    #[test]
    fn camera_feeds_octomap_through_the_frame_topic() {
        let mut m = mission();
        let (events, commands) = graph_topics();
        let frames: Topic<Arc<DepthImage>> = Topic::new("t/frames");
        let mut camera = DepthCameraNode::new(frames.clone(), SimDuration::ZERO);
        let mut mapper = OctoMapNode::new(frames.clone(), SimDuration::ZERO);
        let mut fctx = FlightCtx {
            mission: &mut m,
            events,
            commands,
            min_tick: SimDuration::from_millis(50.0),
        };
        // No frame yet: the mapper idles.
        let out = mapper.tick(&mut fctx, SimTime::ZERO).unwrap();
        assert!(out.total().is_zero());
        camera.tick(&mut fctx, SimTime::ZERO).unwrap();
        assert_eq!(frames.sequence(), 1);
        let out = mapper.tick(&mut fctx, SimTime::ZERO).unwrap();
        assert!(!out.total().is_zero(), "perception kernels must be charged");
        assert!(fctx.mission.map.known_voxel_count() > 0);
        // Same frame again: the mapper must not re-integrate it.
        let out = mapper.tick(&mut fctx, SimTime::ZERO).unwrap();
        assert!(out.total().is_zero());
    }

    #[test]
    fn charge_flies_the_latest_command() {
        let mut m = mission();
        let (events, commands) = graph_topics();
        commands.publish(Vec3::new(3.0, 0.0, 0.0));
        let mut fctx = FlightCtx {
            mission: &mut m,
            events,
            commands,
            min_tick: SimDuration::from_millis(50.0),
        };
        fctx.charge(SimDuration::from_secs(2.0), SimDuration::from_millis(50.0))
            .unwrap();
        assert!(fctx.mission.clock.now().as_secs() >= 2.0 - 1e-9);
        assert!(fctx.mission.distance() > 3.0);
        // Zero consumed still advances by the minimum tick.
        let before = fctx.mission.clock.now();
        fctx.charge(SimDuration::ZERO, SimDuration::from_millis(50.0))
            .unwrap();
        assert!(fctx.mission.clock.now().since(before).as_millis() >= 50.0 - 1e-9);
    }
}
