//! The closed-loop mission engine shared by every benchmark application.
//!
//! [`MissionContext`] owns the whole simulated system — environment, vehicle,
//! battery, energy accounting, compute platform, sensors and occupancy map —
//! and exposes the operations the five applications compose: charge a kernel's
//! latency to the mission clock, hover while planning, fly a trajectory under
//! the Eq. 2 velocity cap with continuous perception and collision checking,
//! and produce the final QoF report.
//!
//! Since PR 2 the trajectory-following closed loop is not a hand-written
//! `loop` any more: [`MissionContext::fly_trajectory`] assembles the
//! [`crate::flight`] node graph (energy watchdog, depth camera, OctoMap,
//! path tracker, collision monitor, planner trigger) and drives it on the
//! [`mav_runtime::Executor`] at the per-node rates in
//! [`crate::config::RateConfig`].

use crate::config::{MissionConfig, ResolutionPolicy};
use crate::faults::{DegradedState, DegradedSummary, FaultInjector};
use crate::flight::{
    CollisionAlert, CollisionMonitorNode, DepthCameraNode, EnergyNode, FlightCtx, FlightEvent,
    InMotionPlanner, OctoMapNode, PathTrackerNode, PlannerNode, Timeline,
};
use crate::qof::{MissionFailure, MissionReport};
use crate::scratch::{CloudScratch, EpisodeScratch};
use crate::velocity::max_safe_velocity;
use mav_compute::{ComputePlatform, KernelId, OperatingPoint};
use mav_dynamics::Quadrotor;
use mav_energy::{Battery, ComputePowerModel, EnergyAccount, FlightPhaseLabel, RotorPowerModel};
use mav_env::World;
use mav_perception::{OctoMap, OctoMapConfig};
use mav_planning::{CollisionChecker, PlannerConfig, PlannerKind, ShortestPathPlanner};
use mav_runtime::{Executor, FifoTopic, KernelTimer, SimClock, Topic};
use mav_sensors::{DepthCamera, DepthImage, DepthNoiseModel};
use mav_types::{Aabb, Pose, SimDuration, Trajectory, Vec3};
use std::cell::RefCell;
use std::rc::Rc;

/// In-flight replans allowed per episode under
/// [`crate::config::ReplanMode::PlanInMotion`] before the planner falls back
/// to ending the episode (matching the applications' per-leg replan budgets).
const MAX_INFLIGHT_REPLANS: u32 = 12;

/// Why a trajectory-following episode ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightOutcome {
    /// The end of the trajectory was reached.
    Completed,
    /// The continuously updated map shows the remaining plan in collision;
    /// the caller should re-plan.
    NeedsReplan,
    /// The mission-level budget (time, battery, collision) was blown.
    Aborted,
}

/// The closed-loop mission engine.
pub struct MissionContext {
    /// The mission configuration.
    pub config: MissionConfig,
    /// Ground-truth world.
    pub world: World,
    /// The vehicle.
    pub quad: Quadrotor,
    /// The battery pack being drained.
    pub battery: Battery,
    /// Per-subsystem energy account.
    pub energy: EnergyAccount,
    /// Companion-computer model.
    pub platform: ComputePlatform,
    /// Per-kernel simulated-time totals.
    pub timer: KernelTimer,
    /// Mission clock.
    pub clock: SimClock,
    /// The occupancy map being built.
    pub map: OctoMap,
    rotor_power: RotorPowerModel,
    compute_power: ComputePowerModel,
    camera: DepthCamera,
    depth_noise: DepthNoiseModel,
    current_resolution: f64,
    hover_time: SimDuration,
    distance: f64,
    collided: bool,
    replans: u32,
    detections: u32,
    tracking_error_sum: f64,
    tracking_error_samples: u32,
    mapped_volume: f64,
    clouds: CloudScratch,
    scratch: Option<Rc<RefCell<EpisodeScratch>>>,
    /// Compiled fault injector; `None` for the default empty plan, keeping
    /// every historical code path structurally untouched.
    faults: Option<FaultInjector>,
    /// Degraded-mode bookkeeping the flight nodes report into.
    degraded: DegradedState,
}

impl MissionContext {
    /// Builds a mission from its configuration.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message when the configuration is invalid.
    pub fn new(config: MissionConfig) -> Result<Self, String> {
        Self::with_scratch_slot(config, None)
    }

    /// [`MissionContext::new`], optionally sourcing the world, occupancy map
    /// and point-cloud buffers from an [`EpisodeScratch`] slot. The finished
    /// mission deposits its reusable state back into the slot in
    /// [`MissionContext::finish`]. Construction with a slot is bit-identical
    /// to construction without one: the scratch only recycles allocations,
    /// never state.
    pub(crate) fn with_scratch_slot(
        config: MissionConfig,
        scratch: Option<Rc<RefCell<EpisodeScratch>>>,
    ) -> Result<Self, String> {
        config.validate()?;
        let (world, clouds) = match &scratch {
            Some(slot) => {
                let mut s = slot.borrow_mut();
                (s.world_for(&config.environment), s.take_clouds())
            }
            None => (config.environment.generate(), CloudScratch::default()),
        };
        let start = Pose::new(Vec3::new(0.0, 0.0, config.quadrotor.cruise_altitude), 0.0);
        let quad = Quadrotor::new(config.quadrotor.clone(), start);
        let faults = FaultInjector::compile(&config.fault_plan, config.seed);
        // Battery capacity fade: an aged pack starts the mission with part of
        // its rated capacity gone. Gated on the injector so the fault-free
        // constructor input is the exact same `config.battery` as ever.
        let battery = match faults.as_ref().filter(|inj| inj.plan().battery_fade > 0.0) {
            Some(inj) => {
                let mut pack = config.battery;
                pack.capacity_mah *= inj.battery_capacity_scale();
                Battery::new(pack)
            }
            None => Battery::new(config.battery),
        };
        let rotor_power = RotorPowerModel::new(Default::default(), config.quadrotor.mass);
        let platform = match &config.cloud {
            Some(cloud) => mav_compute::ComputePlatform::tx2_with_cloud(
                config.application,
                config.operating_point,
                cloud.clone(),
            ),
            None => mav_compute::ComputePlatform::tx2(config.application, config.operating_point),
        };
        let resolution = config.resolution_policy.initial_resolution();
        let half_extent = config.environment.extent.max(config.environment.height) + 5.0;
        let map = match &scratch {
            Some(slot) => slot
                .borrow_mut()
                .map_for(OctoMapConfig::with_resolution(resolution), half_extent),
            None => OctoMap::new(OctoMapConfig::with_resolution(resolution), half_extent),
        };
        let camera = DepthCamera::new(config.camera);
        let depth_noise = DepthNoiseModel::new(config.depth_noise_std, config.seed);
        Ok(MissionContext {
            world,
            quad,
            battery,
            energy: EnergyAccount::new(),
            platform,
            timer: KernelTimer::new(),
            clock: SimClock::new(),
            map,
            rotor_power,
            compute_power: ComputePowerModel::tx2(),
            camera,
            depth_noise,
            current_resolution: resolution,
            hover_time: SimDuration::ZERO,
            distance: 0.0,
            collided: false,
            replans: 0,
            detections: 0,
            tracking_error_sum: 0.0,
            tracking_error_samples: 0,
            mapped_volume: 0.0,
            clouds,
            scratch,
            faults,
            degraded: DegradedState::default(),
            config,
        })
    }

    /// The vehicle's current pose.
    pub fn pose(&self) -> Pose {
        self.quad.state().pose
    }

    /// Total hover time so far.
    pub fn hover_time(&self) -> SimDuration {
        self.hover_time
    }

    /// Distance travelled so far, metres.
    pub fn distance(&self) -> f64 {
        self.distance
    }

    /// Number of re-planning episodes recorded so far.
    pub fn replans(&self) -> u32 {
        self.replans
    }

    /// Records a re-planning episode.
    pub fn note_replan(&mut self) {
        self.replans += 1;
    }

    /// Records a target detection.
    pub fn note_detection(&mut self) {
        self.detections += 1;
    }

    /// Records one framing-error sample (aerial photography).
    pub fn note_tracking_error(&mut self, error: f64) {
        self.tracking_error_sum += error.abs();
        self.tracking_error_samples += 1;
    }

    /// The current OctoMap resolution in metres.
    pub fn current_resolution(&self) -> f64 {
        self.current_resolution
    }

    /// The collision checker matched to the vehicle.
    pub fn collision_checker(&self) -> CollisionChecker {
        CollisionChecker::new(self.config.quadrotor.radius.max(0.05) + 0.05)
    }

    /// A shortest-path planner over the world bounds.
    pub fn shortest_path_planner(&self, kind: PlannerKind) -> ShortestPathPlanner {
        let b = self.world.bounds();
        let bounds = Aabb::new(
            Vec3::new(b.min.x + 1.0, b.min.y + 1.0, 0.5),
            Vec3::new(b.max.x - 1.0, b.max.y - 1.0, (b.max.z - 1.0).min(12.0)),
        );
        ShortestPathPlanner::new(
            PlannerConfig::new(kind, bounds).with_seed(self.config.seed ^ 0x51ed),
        )
    }

    /// Compute power at the configured operating point.
    fn compute_power_now(&self) -> mav_types::Power {
        self.compute_power.power(
            self.config.operating_point.cores,
            self.config.operating_point.frequency.as_ghz(),
        )
    }

    /// Latency of one invocation of `kernel`, with the OctoMap-resolution cost
    /// multiplier applied to the map-update kernel, charged to the kernel
    /// timer. The caller decides whether the vehicle hovers or flies while the
    /// kernel runs.
    pub fn charge_kernel(&mut self, kernel: KernelId) -> SimDuration {
        self.charge_kernel_at(kernel, None)
    }

    /// [`MissionContext::charge_kernel`] with the edge latency pinned to a
    /// per-node operating point (PR 5): `None` charges at the mission-global
    /// point, bit-identically to the historical accounting. This is how a
    /// flight-graph node carrying its own core/frequency setting turns it
    /// into charged time.
    pub fn charge_kernel_at(
        &mut self,
        kernel: KernelId,
        op: Option<OperatingPoint>,
    ) -> SimDuration {
        let mut latency = match op {
            None => self.platform.kernel_latency(kernel),
            Some(point) => self.platform.kernel_latency_at(kernel, &point),
        };
        if kernel == KernelId::OctomapGeneration {
            latency = latency * ResolutionPolicy::octomap_cost_multiplier(self.current_resolution);
        }
        // Fault injection: kernel latency spikes and planner-latency stretch.
        // This is the single chokepoint every kernel charge passes through,
        // so spiked time lands in the timer, the executor round, and the
        // energy account exactly like honest latency. Absent an injector the
        // expression above is the historical one, untouched.
        if let Some(inj) = self.faults.as_mut() {
            latency = latency * inj.kernel_latency_factor(kernel);
        }
        self.timer.record(kernel, latency);
        latency
    }

    /// Total latency of a set of kernels, each charged to the timer.
    pub fn charge_kernels(&mut self, kernels: &[KernelId]) -> SimDuration {
        kernels.iter().map(|k| self.charge_kernel(*k)).sum()
    }

    /// [`MissionContext::charge_kernels`] at a per-node operating point.
    pub fn charge_kernels_at(
        &mut self,
        kernels: &[KernelId],
        op: Option<OperatingPoint>,
    ) -> SimDuration {
        kernels.iter().map(|k| self.charge_kernel_at(*k, op)).sum()
    }

    /// The per-node operating point charged for `kernel` under the current
    /// [`crate::config::NodeOpConfig`], resolved to *the node that charges
    /// it* in the flight graphs: the OctoMap node's perception batch
    /// (point cloud, map update, collision check, localization) and the other
    /// perception kernels (detection, tracking) at the mapping point; every
    /// planning kernel (motion planning, frontier, lawnmower, smoothing) at
    /// the planner point; PID and path tracking at the control point. `None`
    /// when nothing is overridden (the mission-global point). Used wherever a
    /// charge is not issued by a single flight-graph node — the photography
    /// follow node (which spans the whole pipeline), the applications'
    /// hover-to-plan planning episodes, and the Eq. 2 reaction latency — so a
    /// per-node DVFS mapping means the same thing everywhere.
    pub fn node_op_for_kernel(&self, kernel: KernelId) -> Option<OperatingPoint> {
        match kernel {
            KernelId::PointCloudGeneration
            | KernelId::OctomapGeneration
            | KernelId::CollisionCheck
            | KernelId::Localization
            | KernelId::ObjectDetection
            | KernelId::TrackingBuffered
            | KernelId::TrackingRealTime => self.config.node_ops.mapping,
            KernelId::MotionPlanning
            | KernelId::FrontierExploration
            | KernelId::LawnmowerPlanning
            | KernelId::PathSmoothing => self.config.node_ops.planning,
            KernelId::PidControl | KernelId::PathTracking => self.config.node_ops.control,
            // KernelId is non-exhaustive: future kernels default to the
            // mission-global point until they are mapped to a node.
            _ => None,
        }
    }

    /// The perception-to-actuation latency δt of the reactive path at the
    /// current operating point(s) and map resolution. With per-node operating
    /// points set, each reactive kernel is priced at the point of the node
    /// that charges it — downclocking perception directly erodes the Eq. 2
    /// safe velocity, while a slow *planner* cluster does not (planning
    /// latency determines hover time, not reaction time).
    pub fn reaction_latency(&mut self) -> SimDuration {
        // Only the mapping and control nodes charge reactive kernels, so only
        // their overrides can move δt. Branching on those two (rather than on
        // `is_mission_global`) keeps reaction-irrelevant overrides — a camera
        // point (which scales nothing) or a planner point (hover time, not
        // reaction time) — on the historical expression, whose floating-point
        // association differs from the re-summed per-kernel form below at the
        // ulp level: the cap must be *bit*-identical whenever no reactive
        // kernel is re-priced (golden-legacy pins and the to_bits determinism
        // contracts depend on it).
        let node_ops = self.config.node_ops;
        if node_ops.mapping.is_none() && node_ops.control.is_none() {
            // The historical arithmetic, kept verbatim (and float-identical).
            let base = self.platform.reaction_latency();
            let octo = self.platform.kernel_latency(KernelId::OctomapGeneration);
            let scaled_octo =
                octo * ResolutionPolicy::octomap_cost_multiplier(self.current_resolution);
            return base - octo + scaled_octo;
        }
        let reactive = [
            KernelId::PointCloudGeneration,
            KernelId::OctomapGeneration,
            KernelId::CollisionCheck,
            KernelId::Localization,
            KernelId::ObjectDetection,
            KernelId::TrackingRealTime,
            KernelId::PidControl,
            KernelId::PathTracking,
        ];
        reactive
            .iter()
            .map(|&kernel| {
                let latency = match self.node_op_for_kernel(kernel) {
                    None => self.platform.kernel_latency(kernel),
                    Some(point) => self.platform.kernel_latency_at(kernel, &point),
                };
                if kernel == KernelId::OctomapGeneration {
                    latency * ResolutionPolicy::octomap_cost_multiplier(self.current_resolution)
                } else {
                    latency
                }
            })
            .sum()
    }

    /// The Eq. 2 velocity cap the mission currently flies under: the minimum
    /// of the application cruise limit, the airframe limit and the
    /// compute-bounded maximum safe velocity.
    ///
    /// δt is the reactive-kernel latency plus, for explicit (non-legacy)
    /// [`crate::config::RateConfig`] schedules, the worst-case sensing
    /// staleness: an obstacle appearing right after a frame waits up to one
    /// camera period to be seen and one mapping period to reach the map, so
    /// a slower perception rate directly lowers the safe velocity — the
    /// paper's Fig. 8b trade-off, now emerging from the schedule. The
    /// staleness term only applies to applications whose flight graph
    /// actually schedules the camera → OctoMap pipeline (Table I: the
    /// OctoMap-generation kernel); Scanning and Aerial Photography fly
    /// without an occupancy map, so camera/mapping rates cannot slow them.
    pub fn velocity_cap(&mut self) -> f64 {
        let staleness = if mav_compute::table1_profile(self.config.application)
            .uses(KernelId::OctomapGeneration)
        {
            self.config.rates.sensing_interval()
        } else {
            SimDuration::ZERO
        };
        let dt = self.reaction_latency() + staleness;
        let safe = max_safe_velocity(
            dt,
            self.config.stopping_distance,
            self.config.quadrotor.max_acceleration,
        );
        safe.min(self.config.cruise_velocity)
            .min(self.config.quadrotor.max_velocity)
    }

    /// Advances the whole simulation by `duration` while the vehicle tracks
    /// `velocity_cmd`. Physics, dynamic obstacles, collision detection, energy
    /// and battery are all integrated.
    pub fn advance(&mut self, velocity_cmd: Vec3, duration: SimDuration) {
        let mut remaining = duration.as_secs();
        let dt = self.config.physics_dt;
        let hovering = velocity_cmd.norm() < 0.05;
        while remaining > 1e-9 {
            let step = remaining.min(dt);
            self.quad.step(velocity_cmd, step);
            self.world.step_dynamics(step);
            let state = *self.quad.state();
            // Ground-truth collision check.
            if self
                .world
                .collides_sphere(&state.pose.position, self.config.quadrotor.radius)
            {
                self.collided = true;
            }
            let rotor =
                self.rotor_power
                    .power(&state.twist.linear, &state.acceleration, &Vec3::ZERO);
            let compute = self.compute_power_now();
            let phase = if hovering {
                FlightPhaseLabel::Hovering
            } else {
                FlightPhaseLabel::Flying
            };
            let step_d = SimDuration::from_secs(step);
            self.energy
                .record(self.clock.now(), step_d, rotor, compute, phase);
            self.battery
                .discharge(rotor + compute + mav_types::Power::from_watts(2.0), step_d);
            self.distance += state.twist.linear.norm() * step;
            if hovering {
                self.hover_time += step_d;
            }
            self.degraded.accumulate(step_d);
            self.clock.advance(step_d);
            remaining -= step;
        }
    }

    /// Hovers in place for `duration` (e.g. while a planning kernel runs).
    pub fn hover(&mut self, duration: SimDuration) {
        self.advance(Vec3::ZERO, duration);
    }

    /// Charges the given kernels and hovers for their combined latency — the
    /// "drone waits for its mission planner" behaviour whose cost the paper
    /// attributes to slow compute. Each kernel is priced at the operating
    /// point of the node that owns it ([`MissionContext::node_op_for_kernel`])
    /// so per-node DVFS reaches the applications' hover-to-plan episodes too,
    /// not just the executor graph; with no per-node points set this is the
    /// historical mission-global charge, bit for bit.
    pub fn hover_while_running(&mut self, kernels: &[KernelId]) -> SimDuration {
        let latency = kernels
            .iter()
            .map(|&k| {
                let op = self.node_op_for_kernel(k);
                self.charge_kernel_at(k, op)
            })
            .sum();
        self.hover(latency);
        latency
    }

    /// Captures a depth frame from the current pose (with the configured
    /// noise model applied).
    pub fn capture_depth(&mut self) -> DepthImage {
        let pose = self.pose();
        let mut frame = self.camera.capture(&self.world, &pose);
        self.depth_noise.apply(&mut frame);
        frame
    }

    /// [`MissionContext::capture_depth`] subject to fault injection: `None`
    /// when the frame is lost to a dropout window, and noise bursts stack
    /// extra Gaussian error on top of the configured sensor noise. Without
    /// an injector this is exactly `capture_depth` — the flight graph's
    /// camera node calls this so faults reach the closed loop.
    pub fn capture_depth_faulted(&mut self) -> Option<DepthImage> {
        let dropped = match self.faults.as_mut() {
            None => false,
            Some(inj) => inj.drop_frame(),
        };
        if dropped {
            return None;
        }
        let mut frame = self.capture_depth();
        if let Some(inj) = self.faults.as_mut() {
            inj.maybe_burst(&mut frame);
        }
        Some(frame)
    }

    /// Whether fault injection eats the guarded topic publish happening right
    /// now (collision alerts, velocity commands). Always `false` without an
    /// injector.
    pub fn fault_drop_message(&mut self) -> bool {
        match self.faults.as_mut() {
            None => false,
            Some(inj) => inj.drop_message(),
        }
    }

    /// Marks a degradation response active (stale-perception cap decay,
    /// planner-timeout fallback). Idempotent while already degraded.
    pub fn note_degraded(&mut self) {
        let now = self.clock.now();
        self.degraded.note_degraded(now);
    }

    /// Marks the active degradation response cleared, counting the recovery.
    pub fn note_recovered(&mut self) {
        let now = self.clock.now();
        self.degraded.note_recovered(now);
    }

    /// The degraded-mode summary so far (`None` if never degraded).
    pub fn degraded_summary(&self, failed: bool) -> Option<DegradedSummary> {
        self.degraded.summary(self.clock.now().as_secs(), failed)
    }

    /// Integrates a depth frame into the occupancy map: point-cloud
    /// generation, optional dynamic-resolution switch, and the OctoMap update.
    /// Returns the combined simulated latency of the perception kernels
    /// (charged to the timer, not yet to the clock). Priced at the mapping
    /// node's operating point when one is configured, so the applications'
    /// pre-planning map refreshes agree with the flight graph's accounting.
    pub fn update_map(&mut self, frame: &DepthImage) -> SimDuration {
        let op = self.config.node_ops.mapping;
        self.update_map_detailed_at(frame, op)
            .iter()
            .map(|(_, latency)| *latency)
            .sum()
    }

    /// [`MissionContext::update_map`] with the per-kernel latency breakdown —
    /// what the [`crate::flight::OctoMapNode`] reports to the executor.
    pub fn update_map_detailed(&mut self, frame: &DepthImage) -> Vec<(KernelId, SimDuration)> {
        self.update_map_detailed_at(frame, None)
    }

    /// [`MissionContext::update_map_detailed`] with the perception batch
    /// priced at a per-node operating point (the OctoMap node's own
    /// core/frequency setting); `None` charges at the mission-global point,
    /// bit-identically to the historical accounting.
    pub fn update_map_detailed_at(
        &mut self,
        frame: &DepthImage,
        op: Option<OperatingPoint>,
    ) -> Vec<(KernelId, SimDuration)> {
        // Dynamic resolution policy: sample the local obstacle density and
        // switch the map resolution when the policy asks for it.
        let density = self.world.obstacle_density_near(&self.pose().position, 8.0);
        let wanted = self
            .config
            .resolution_policy
            .resolution_for_density(density);
        if (wanted - self.current_resolution).abs() > 1e-9 {
            self.map = self.map.reresolved(wanted);
            self.current_resolution = wanted;
        }
        let kernel_time: Vec<(KernelId, SimDuration)> = [
            KernelId::PointCloudGeneration,
            KernelId::OctomapGeneration,
            KernelId::CollisionCheck,
            KernelId::Localization,
        ]
        .iter()
        .map(|&kernel| (kernel, self.charge_kernel_at(kernel, op)))
        .collect();
        let CloudScratch {
            raw,
            cells,
            downsampled,
        } = &mut self.clouds;
        raw.fill_from_depth_image(frame);
        raw.downsample_into(self.current_resolution, cells, downsampled);
        // Bit-identical either way (the parallel path is pinned to the serial
        // one); > 1 only changes who does the work.
        if self.config.map_insert_threads > 1 {
            self.map
                .insert_point_cloud_parallel(downsampled, self.config.map_insert_threads);
        } else {
            self.map.insert_point_cloud(downsampled);
        }
        self.mapped_volume = self.map.mapped_volume();
        kernel_time
    }

    /// Checks the mission-level budgets. Returns the failure that ends the
    /// mission, if any.
    pub fn budget_failure(&self) -> Option<MissionFailure> {
        if self.collided {
            return Some(MissionFailure::Collision);
        }
        if self.battery.is_exhausted() {
            return Some(MissionFailure::BatteryExhausted);
        }
        if self.clock.now().as_secs() > self.config.time_budget_secs {
            return Some(MissionFailure::Timeout);
        }
        None
    }

    /// Flies a planned trajectory under the Eq. 2 velocity cap with continuous
    /// perception, by assembling the [`crate::flight`] node graph and driving
    /// it on the [`Executor`]. Per-node periods come from
    /// [`crate::config::RateConfig`]; the legacy schedule runs every node on
    /// every round, reproducing the historical sequential loop bit-for-bit
    /// (depth capture → map update → path tracking → collision check →
    /// physics for the round's serialized kernel latency). The plan travels
    /// on a latched `Topic<Arc<Trajectory>>`; under
    /// [`crate::config::ReplanMode::PlanInMotion`] the planner node answers
    /// collision alerts by publishing a fresh trajectory on that topic while
    /// the vehicle keeps flying, instead of ending the episode. Returns why
    /// the episode ended.
    pub fn fly_trajectory(&mut self, trajectory: &Trajectory) -> FlightOutcome {
        if trajectory.is_empty() {
            return FlightOutcome::Completed;
        }
        let cap = self.velocity_cap();
        let checker = self.collision_checker();
        let start_time = self.clock.now();
        let Some(first) = trajectory.first() else {
            return FlightOutcome::Completed;
        };
        let goal = trajectory.last().map(|p| p.position);
        let timeline = Timeline::EpisodeRelative {
            episode_start: start_time,
            traj_start: first.time,
        };
        // Guard against pathological plans: bound the episode duration.
        let max_episode = crate::flight::episode_watchdog_budget(trajectory);
        let rates = self.config.rates;
        let replan_mode = self.config.replan_mode;

        let events: FifoTopic<FlightEvent> = FifoTopic::new("flight/events");
        let commands: Topic<Vec3> = Topic::new("flight/velocity_cmd");
        let frames: Topic<std::sync::Arc<DepthImage>> = Topic::new("flight/depth_frames");
        let alerts: FifoTopic<CollisionAlert> = FifoTopic::new("flight/collision_alerts");
        // The latched plan topic: seeded with the episode's trajectory,
        // re-published by the planner on an in-motion replan, observed by
        // tracker and monitor through sequence-numbered subscriptions.
        let plan: Topic<std::sync::Arc<Trajectory>> = Topic::new("flight/plan");
        plan.publish(std::sync::Arc::new(trajectory.clone()));
        // Latched threat topic: the nearest flagged obstruction while an
        // in-motion planning job runs (`None` once released). The tracker
        // checks its distance on every tick and brakes inside the stopping
        // distance. Never published in hover-to-plan mode.
        let threats: Topic<Option<Vec3>> = Topic::new("flight/replan_threats");

        // Registration order is dispatch order: sensing feeds mapping feeds
        // control feeds the collision monitor, with the energy watchdog ahead
        // of everything (the budget check opens every round). Each node
        // declares its pipeline stage, so under ExecModel::Pipelined the
        // round charges the critical path (camera capturing while the mapper
        // integrates) instead of the serialized sum; per-node operating
        // points ride in the same way, scaling each node's charged kernel
        // latencies independently.
        let node_ops = self.config.node_ops;
        let degradation = self.config.degradation;
        // A fresh validated plan is the recovery point of every degraded
        // interval that ends in a successful replan: close any open one now.
        if !degradation.is_off() {
            self.note_recovered();
        }
        let mut exec: Executor<FlightCtx> = Executor::new().with_exec_model(self.config.exec_model);
        let mut energy = EnergyNode::new(events.clone()).with_watchdog(start_time, max_episode);
        if replan_mode == crate::config::ReplanMode::PlanInMotion {
            // An in-flight replan re-arms the watchdog for the fresh plan.
            energy = energy.with_plan_watchdog(plan.clone());
        }
        exec.add_node(energy);
        exec.add_node(DepthCameraNode::new(frames.clone(), rates.camera_period()));
        exec.add_node(
            OctoMapNode::new(frames.clone(), rates.mapping_period())
                .with_operating_point(node_ops.mapping),
        );
        let mut tracker_node = PathTrackerNode::new(
            plan.clone(),
            timeline,
            vec![KernelId::PathTracking],
            cap,
            commands.clone(),
            events.clone(),
            rates.control_period(),
        )
        .with_operating_point(node_ops.control)
        .with_brake_policy(degradation.brake_policy);
        if degradation.perception_watchdog {
            tracker_node = tracker_node.with_stale_guard(
                frames,
                rates.camera_period(),
                degradation.stale_grace_factor,
            );
        }
        if replan_mode == crate::config::ReplanMode::PlanInMotion {
            tracker_node =
                tracker_node.with_brake_guard(threats.clone(), self.config.stopping_distance);
        }
        exec.add_node(tracker_node);
        exec.add_node(CollisionMonitorNode::new(
            checker,
            plan.clone(),
            timeline,
            alerts.clone(),
            rates.replan_period(),
        ));
        let mut planner_node = PlannerNode::new(alerts, events.clone(), rates.replan_period())
            .with_operating_point(node_ops.planning)
            .with_brake_policy(degradation.brake_policy)
            .with_splicing(degradation.plan_splicing);
        if let Some(budget) = degradation.plan_timeout_secs {
            planner_node = planner_node.with_job_budget(SimDuration::from_secs(budget));
        }
        if replan_mode == crate::config::ReplanMode::PlanInMotion {
            if let Some(goal) = goal {
                planner_node = planner_node.with_in_motion(InMotionPlanner {
                    plan,
                    planner: self.shortest_path_planner(PlannerKind::Rrt),
                    checker,
                    goal,
                    max_acceleration: self.config.quadrotor.max_acceleration,
                    max_replans: MAX_INFLIGHT_REPLANS,
                    commands: commands.clone(),
                    threats,
                    stopping_distance: self.config.stopping_distance,
                });
            }
        }
        exec.add_node(planner_node);

        let mut flight_ctx = FlightCtx {
            mission: self,
            events,
            commands,
            min_tick: SimDuration::from_millis(50.0),
        };
        match crate::flight::run_to_event(&mut exec, &mut flight_ctx) {
            Ok(FlightEvent::Completed) => FlightOutcome::Completed,
            Ok(FlightEvent::NeedsReplan) => FlightOutcome::NeedsReplan,
            // An executor error cannot carry through the payload-free
            // FlightOutcome; none of the built-in nodes fail, so a bare
            // abort (the budget/watchdog outcome) is the correct collapse.
            Ok(FlightEvent::Aborted) | Err(_) => FlightOutcome::Aborted,
        }
    }

    /// Finalises the mission into a report, depositing the reusable map and
    /// cloud buffers back into the episode scratch when one was attached.
    pub fn finish(mut self, failure: Option<MissionFailure>) -> MissionReport {
        let velocity_cap = self.velocity_cap();
        if let Some(slot) = self.scratch.take() {
            let map = std::mem::replace(
                &mut self.map,
                OctoMap::new(OctoMapConfig::with_resolution(1.0), 1.0),
            );
            let clouds = std::mem::take(&mut self.clouds);
            slot.borrow_mut().deposit(map, clouds);
        }
        let tracking_error = if self.tracking_error_samples > 0 {
            self.tracking_error_sum / self.tracking_error_samples as f64
        } else {
            0.0
        };
        let degraded = self.degraded_summary(failure.is_some());
        MissionReport::from_counters(
            self.config.application,
            self.config.operating_point,
            failure,
            self.clock.now().since(mav_types::SimTime::ZERO),
            self.hover_time,
            self.distance,
            velocity_cap,
            &self.energy,
            self.battery.percentage(),
            self.replans,
            self.detections,
            self.mapped_volume,
            tracking_error,
            self.timer.clone(),
            degraded,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mav_compute::{ApplicationId, OperatingPoint};
    use mav_types::SimTime;

    fn ctx(app: ApplicationId) -> MissionContext {
        MissionContext::new(MissionConfig::fast_test(app)).unwrap()
    }

    #[test]
    fn construction_succeeds_for_every_application() {
        for &app in ApplicationId::all() {
            let c = ctx(app);
            assert_eq!(c.pose().position.z, c.config.quadrotor.cruise_altitude);
            assert_eq!(c.battery.percentage(), 100.0);
        }
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = MissionConfig::fast_test(ApplicationId::Scanning);
        cfg.physics_dt = 0.0;
        assert!(MissionContext::new(cfg).is_err());
    }

    #[test]
    fn advancing_burns_energy_and_moves_the_clock() {
        let mut c = ctx(ApplicationId::Scanning);
        c.advance(Vec3::new(4.0, 0.0, 0.0), SimDuration::from_secs(5.0));
        assert!(c.clock.now().as_secs() >= 5.0 - 1e-9);
        assert!(c.distance() > 5.0);
        assert!(c.energy.total_energy().as_joules() > 0.0);
        assert!(c.battery.percentage() < 100.0);
        assert!(c.energy.rotor_fraction() > 0.9);
    }

    #[test]
    fn hovering_accumulates_hover_time() {
        let mut c = ctx(ApplicationId::Scanning);
        c.hover(SimDuration::from_secs(3.0));
        assert!((c.hover_time().as_secs() - 3.0).abs() < 0.1);
        assert!(c.distance() < 0.5);
    }

    #[test]
    fn kernel_charging_scales_with_operating_point() {
        let mut fast = ctx(ApplicationId::PackageDelivery);
        let mut slow = MissionContext::new(
            MissionConfig::fast_test(ApplicationId::PackageDelivery)
                .with_operating_point(OperatingPoint::slowest()),
        )
        .unwrap();
        let lf = fast.charge_kernel(KernelId::OctomapGeneration);
        let ls = slow.charge_kernel(KernelId::OctomapGeneration);
        assert!(ls > lf);
        assert_eq!(fast.timer.invocations(KernelId::OctomapGeneration), 1);
    }

    #[test]
    fn velocity_cap_improves_with_compute() {
        let mut fast = ctx(ApplicationId::PackageDelivery);
        let mut slow = MissionContext::new(
            MissionConfig::fast_test(ApplicationId::PackageDelivery)
                .with_operating_point(OperatingPoint::slowest()),
        )
        .unwrap();
        assert!(fast.velocity_cap() > slow.velocity_cap());
        // Scanning has almost no reactive kernels, so its cap equals the
        // application cruise limit at every operating point.
        let mut scan = ctx(ApplicationId::Scanning);
        assert!(
            (scan.velocity_cap()
                - scan
                    .config
                    .cruise_velocity
                    .min(scan.config.quadrotor.max_velocity))
            .abs()
                < 1e-6
        );
    }

    #[test]
    fn depth_capture_and_map_update_populate_the_map() {
        let mut c = ctx(ApplicationId::PackageDelivery);
        let frame = c.capture_depth();
        let latency = c.update_map(&frame);
        assert!(!latency.is_zero());
        assert!(c.map.known_voxel_count() > 0);
        assert!(c.timer.invocations(KernelId::OctomapGeneration) == 1);
    }

    #[test]
    fn budget_failure_detects_timeout() {
        let mut cfg = MissionConfig::fast_test(ApplicationId::Scanning);
        cfg.time_budget_secs = 1.0;
        let mut c = MissionContext::new(cfg).unwrap();
        assert!(c.budget_failure().is_none());
        c.hover(SimDuration::from_secs(2.0));
        assert_eq!(c.budget_failure(), Some(MissionFailure::Timeout));
    }

    #[test]
    fn fly_trajectory_reaches_an_open_space_goal() {
        let mut c = ctx(ApplicationId::Scanning);
        let start = c.pose().position;
        let goal = start + Vec3::new(20.0, -15.0, 0.0);
        let traj = Trajectory::from_waypoints(&[start, goal], 4.0, SimTime::ZERO);
        let outcome = c.fly_trajectory(&traj);
        assert_eq!(outcome, FlightOutcome::Completed);
        assert!(c.pose().position.distance(&goal) < 2.0);
        assert!(c.distance() > 15.0);
    }

    #[test]
    fn finish_produces_a_consistent_report() {
        let mut c = ctx(ApplicationId::Scanning);
        c.advance(Vec3::new(3.0, 0.0, 0.0), SimDuration::from_secs(10.0));
        let report = c.finish(None);
        assert!(report.success());
        assert!(report.mission_time_secs >= 10.0 - 1e-6);
        assert!(report.distance_m > 20.0);
        assert!(report.average_velocity > 1.0);
        assert!(report.total_energy.as_joules() > 0.0);
    }
}
