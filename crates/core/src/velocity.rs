//! The compute-bounded maximum safe velocity (the paper's Eq. 2).
//!
//! For a guaranteed collision-free flight, the drone must be able to come to
//! a stop within its sensing horizon even though it only reacts after the
//! perception-to-actuation latency δt has elapsed:
//!
//! `v_max = a_max · (sqrt(δt² + 2 d / a_max) − δt)`
//!
//! where `d` is the stopping distance budget and `a_max` the maximum
//! deceleration. Faster compute (smaller δt) therefore directly raises the
//! safe velocity — the central mechanism linking compute to mission time and
//! energy in MAVBench.

use mav_types::SimDuration;

/// Maximum safe velocity given the perception-to-actuation latency, the
/// available stopping distance and the maximum deceleration (Eq. 2).
///
/// # Panics
///
/// Panics if `stopping_distance` or `max_acceleration` is not strictly
/// positive.
///
/// # Example
///
/// ```
/// use mav_core::velocity::max_safe_velocity;
/// use mav_types::SimDuration;
///
/// let fast = max_safe_velocity(SimDuration::from_millis(100.0), 10.0, 5.0);
/// let slow = max_safe_velocity(SimDuration::from_secs(2.0), 10.0, 5.0);
/// assert!(fast > slow);
/// ```
pub fn max_safe_velocity(
    process_time: SimDuration,
    stopping_distance: f64,
    max_acceleration: f64,
) -> f64 {
    assert!(
        stopping_distance > 0.0,
        "stopping distance must be positive"
    );
    assert!(max_acceleration > 0.0, "max acceleration must be positive");
    let dt = process_time.as_secs();
    max_acceleration * ((dt * dt + 2.0 * stopping_distance / max_acceleration).sqrt() - dt)
}

/// Sweeps Eq. 2 over a range of process times (used by the Fig. 8a
/// reproduction). Returns `(process_time_s, v_max)` pairs.
pub fn velocity_vs_process_time(
    max_process_time_s: f64,
    steps: usize,
    stopping_distance: f64,
    max_acceleration: f64,
) -> Vec<(f64, f64)> {
    let steps = steps.max(2);
    (0..=steps)
        .map(|i| {
            let t = max_process_time_s * i as f64 / steps as f64;
            (
                t,
                max_safe_velocity(
                    SimDuration::from_secs(t),
                    stopping_distance,
                    max_acceleration,
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_latency_gives_kinematic_limit() {
        // With δt = 0 the bound is sqrt(2 a d).
        let v = max_safe_velocity(SimDuration::ZERO, 10.0, 5.0);
        assert!((v - (2.0f64 * 5.0 * 10.0).sqrt()).abs() < 1e-9);
    }

    #[test]
    fn velocity_is_monotone_decreasing_in_latency() {
        let mut last = f64::INFINITY;
        for ms in [0.0, 50.0, 200.0, 500.0, 1000.0, 2000.0, 4000.0] {
            let v = max_safe_velocity(SimDuration::from_millis(ms), 10.0, 5.0);
            assert!(v < last);
            assert!(v > 0.0);
            last = v;
        }
    }

    #[test]
    fn paper_figure_8a_range_is_reproduced() {
        // Fig. 8a: the simulated drone's theoretical max velocity falls from
        // ~8.83 m/s to ~1.57 m/s as the process time grows from 0 to 4 s.
        // With d = 7.8 m and a = 5 m/s² the same envelope appears.
        let fast = max_safe_velocity(SimDuration::ZERO, 7.8, 5.0);
        let slow = max_safe_velocity(SimDuration::from_secs(4.0), 7.8, 5.0);
        assert!((fast - 8.83).abs() < 0.1, "fast bound {fast}");
        assert!((slow - 1.57).abs() < 0.4, "slow bound {slow}");
    }

    #[test]
    fn sweep_has_expected_shape() {
        let sweep = velocity_vs_process_time(4.0, 40, 7.8, 5.0);
        assert_eq!(sweep.len(), 41);
        assert!(sweep.first().unwrap().1 > sweep.last().unwrap().1);
        for w in sweep.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn invalid_parameters_rejected() {
        let _ = max_safe_velocity(SimDuration::ZERO, 0.0, 5.0);
    }
}
