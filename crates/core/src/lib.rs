//! MAVBench-RS core: the closed-loop micro-aerial-vehicle benchmark simulator
//! and the five end-to-end benchmark applications (Scanning, Aerial
//! Photography, Package Delivery, 3D Mapping, Search and Rescue).
//!
//! The crate ties every substrate together: procedural environments
//! (`mav-env`), sensors (`mav-sensors`), the quadrotor and flight controller
//! (`mav-dynamics`), the rotor/compute/battery energy models (`mav-energy`),
//! the Table-I-calibrated compute-latency model (`mav-compute`) and the
//! perception/planning/control kernels (`mav-perception`, `mav-planning`,
//! `mav-control`). A mission is configured with [`MissionConfig`], run with
//! [`run_mission`], and summarised in a [`MissionReport`] carrying the
//! quality-of-flight metrics of the paper.
//!
//! # Example
//!
//! ```no_run
//! use mav_compute::ApplicationId;
//! use mav_core::{run_mission, MissionConfig};
//!
//! let report = run_mission(MissionConfig::fast_test(ApplicationId::PackageDelivery));
//! println!("mission time: {:.1} s, energy: {:.1} kJ", report.mission_time_secs, report.energy_kj());
//! ```

#![warn(missing_docs)]

pub mod apps;
pub mod config;
pub mod context;
pub mod experiments;
pub mod faults;
pub mod flight;
pub mod microbench;
pub mod qof;
pub mod reliability;
pub mod scratch;
pub mod sweep;
pub mod velocity;

pub use apps::{run_mission, run_mission_with_scratch};
pub use config::{
    BrakePolicy, DegradationConfig, MissionConfig, MissionConfigBuilder, NodeOpConfig, RateConfig,
    ReplanMode, ResolutionPolicy,
};
pub use context::{FlightOutcome, MissionContext};
pub use faults::{DegradedMode, DegradedSummary, FaultInjector, FaultPlan, FaultSpec};
pub use flight::{FlightCtx, FlightEvent};
pub use mav_runtime::{ExecModel, ExecStage};
pub use qof::{MissionFailure, MissionReport};
pub use reliability::{
    ClassStats, FaultGridCell, ReliabilityStats, ScenarioGenerator, StreamingHistogram,
};
pub use scratch::{with_episode_scratch, EpisodeScratch};
pub use sweep::{SweepOutcome, SweepPoint, SweepReport, SweepRunner};
