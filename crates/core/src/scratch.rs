//! Cross-episode scratch reuse: the zero-realloc substrate of the
//! Monte-Carlo reliability sweep.
//!
//! Every [`crate::run_mission`] historically built a fresh
//! [`crate::MissionContext`] — a new `OctoMap` arena, new point-cloud
//! buffers, a regenerated world — and threw it all away. At reliability-sweep
//! scale (ROADMAP item 3: 10k–1M episodes) that allocation churn is the
//! bottleneck, so [`EpisodeScratch`] keeps the expensive state alive between
//! episodes: the map is [`mav_perception::OctoMap::clear`]ed (or reshaped
//! with [`mav_perception::OctoMap::reset`]) instead of reallocated, the
//! per-frame cloud buffers keep their capacity, and an identical environment
//! configuration reuses the cached pristine [`World`] instead of regenerating
//! it. Reuse is *bit-transparent*: `run_mission_with_scratch` produces the
//! exact report of `run_mission` (pinned by tests), because every reused
//! structure restores its fresh-constructed state exactly.

use mav_env::{EnvironmentConfig, World};
use mav_perception::{DownsampleScratch, OctoMap, OctoMapConfig, PointCloud};
use std::cell::RefCell;

/// Reusable per-frame perception buffers: the raw depth-frame cloud, the
/// downsampling cell map and the downsampled output cloud. Owned by the
/// running [`crate::MissionContext`] and recovered into the
/// [`EpisodeScratch`] when the mission finishes.
#[derive(Debug, Default)]
pub(crate) struct CloudScratch {
    /// Target of `PointCloud::fill_from_depth_image` for every captured frame.
    pub(crate) raw: PointCloud,
    /// Voxel-cell accumulator reused by `downsample_into`.
    pub(crate) cells: DownsampleScratch,
    /// The downsampled cloud handed to the OctoMap insertion path.
    pub(crate) downsampled: PointCloud,
}

/// Reusable cross-episode state for [`crate::apps::run_mission_with_scratch`].
///
/// One instance per worker amortises the per-episode allocations across every
/// episode that worker runs: the octree arena and its indexes, the
/// point-cloud buffers, and (for repeated identical environment configs) the
/// generated world. A default instance is empty — the first episode populates
/// it — so the type is also the correct "cold start" state.
#[derive(Debug, Default)]
pub struct EpisodeScratch {
    map: Option<OctoMap>,
    clouds: CloudScratch,
    world_cache: Option<(EnvironmentConfig, World)>,
}

impl EpisodeScratch {
    /// An empty scratch: the first episode run with it pays the normal
    /// allocation cost and leaves its buffers behind for the next one.
    pub fn new() -> Self {
        EpisodeScratch::default()
    }

    /// The pristine world for `env`: a clone of the cached generation when
    /// the configuration is identical (environment generation is a pure
    /// function of its config, so the clone is bit-identical to regenerating),
    /// a fresh `generate()` otherwise. The cache keeps the latest config —
    /// sweeps that vary the environment per episode simply miss.
    pub(crate) fn world_for(&mut self, env: &EnvironmentConfig) -> World {
        if let Some((cached, world)) = &self.world_cache {
            if cached == env {
                return world.clone();
            }
        }
        let world = env.generate();
        self.world_cache = Some((env.clone(), world.clone()));
        world
    }

    /// An empty map with the given geometry, reusing the previous episode's
    /// arena and index allocations when available ([`OctoMap::reset`] restores
    /// the exact fresh-map state).
    pub(crate) fn map_for(&mut self, config: OctoMapConfig, half_extent: f64) -> OctoMap {
        match self.map.take() {
            Some(mut map) => {
                map.reset(config, half_extent);
                map
            }
            None => OctoMap::new(config, half_extent),
        }
    }

    /// Hands the cloud buffers to a starting mission.
    pub(crate) fn take_clouds(&mut self) -> CloudScratch {
        std::mem::take(&mut self.clouds)
    }

    /// Recovers the reusable state from a finishing mission.
    pub(crate) fn deposit(&mut self, map: OctoMap, clouds: CloudScratch) {
        self.map = Some(map);
        self.clouds = clouds;
    }
}

thread_local! {
    static EPISODE_SCRATCH: RefCell<EpisodeScratch> = RefCell::new(EpisodeScratch::default());
}

/// Runs `f` with this worker thread's [`EpisodeScratch`] — the per-worker
/// reuse the sharded reliability sweep is built on. The scratch is moved out
/// for the duration of the call, so nested uses simply see a cold scratch.
pub fn with_episode_scratch<R>(f: impl FnOnce(&mut EpisodeScratch) -> R) -> R {
    EPISODE_SCRATCH.with(|cell| {
        let mut scratch = cell.take();
        let result = f(&mut scratch);
        *cell.borrow_mut() = scratch;
        result
    })
}
