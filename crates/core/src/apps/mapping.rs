//! The 3D Mapping application.
//!
//! The MAV explores an unknown polygonal environment by repeatedly sampling
//! its occupancy map for frontiers (free voxels bordering unknown space),
//! flying to the most promising one, and integrating new depth frames until
//! either the exploration target is met or no frontiers remain.

use crate::context::{FlightOutcome, MissionContext};
use crate::qof::{MissionFailure, MissionReport};
use mav_compute::KernelId;
use mav_planning::{FrontierConfig, FrontierExplorer, PathSmoother, PlannerKind, SmootherConfig};

/// Parameters of one exploration run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MappingGoal {
    /// Stop once this many cubic metres of space have been mapped.
    pub target_volume: f64,
    /// Hard cap on exploration iterations (frontier selections).
    pub max_iterations: u32,
}

impl Default for MappingGoal {
    fn default() -> Self {
        MappingGoal {
            target_volume: 3000.0,
            max_iterations: 14,
        }
    }
}

/// Runs one exploration mission with an explicit goal. Shared by 3D Mapping
/// and (with a detection hook) Search and Rescue.
pub fn explore(
    ctx: &mut MissionContext,
    goal: MappingGoal,
    mut per_iteration: impl FnMut(&mut MissionContext) -> Option<MissionFailure>,
) -> Option<MissionFailure> {
    let checker = ctx.collision_checker();
    let planner = ctx.shortest_path_planner(PlannerKind::Rrt);
    let explorer = FrontierExplorer::new(FrontierConfig {
        min_altitude: 0.5,
        max_altitude: (ctx.config.environment.height - 1.0).min(10.0),
        ..FrontierConfig::default()
    });
    let mut consecutive_failures = 0u32;
    for _iteration in 0..goal.max_iterations {
        if let Some(failure) = ctx.budget_failure() {
            return Some(failure);
        }
        // Perception: integrate a fresh frame.
        let frame = ctx.capture_depth();
        let latency = ctx.update_map(&frame);
        ctx.hover(latency);

        // Application-specific hook (e.g. object detection for SAR). A
        // returned value stops exploration and is propagated to the caller;
        // `None` continues exploring.
        if let Some(outcome) = per_iteration(ctx) {
            return Some(outcome);
        }

        if ctx.map.mapped_volume() >= goal.target_volume {
            return None;
        }

        // Planning: pick the next frontier and plan to it while hovering.
        ctx.hover_while_running(&[KernelId::FrontierExploration, KernelId::PathSmoothing]);
        let position = ctx.pose().position;
        let plan = match explorer.plan_exploration(&ctx.map, &checker, &planner, position) {
            Ok((_frontier, path)) => path.shortcut(&ctx.map, &checker),
            Err(_) => {
                // No reachable frontier: either the map is complete or the
                // explorer is boxed in. A couple of retries with fresh frames
                // distinguishes the two.
                consecutive_failures += 1;
                if consecutive_failures >= 3 {
                    return None; // treat as exploration complete
                }
                continue;
            }
        };
        consecutive_failures = 0;
        let cap = ctx.velocity_cap();
        let smoother = PathSmoother::new(SmootherConfig::new(
            cap.max(0.5),
            ctx.config.quadrotor.max_acceleration,
        ));
        let trajectory = match smoother.smooth(&plan.waypoints, ctx.clock.now()) {
            Ok(t) => t,
            Err(e) => return Some(MissionFailure::PlanningFailed(e.to_string())),
        };

        // Control: fly towards the frontier; a re-plan request simply moves on
        // to the next iteration (the map has changed anyway). Under
        // ReplanMode::PlanInMotion the episode replans towards the frontier
        // in-flight over the plan topic and only surfaces NeedsReplan as a
        // fallback when no in-flight plan could be found.
        match ctx.fly_trajectory(&trajectory) {
            FlightOutcome::Completed => {}
            FlightOutcome::NeedsReplan => ctx.note_replan(),
            FlightOutcome::Aborted => {
                return Some(ctx.budget_failure().unwrap_or(MissionFailure::Other(
                    "exploration flight aborted".to_string(),
                )));
            }
        }
    }
    None
}

/// Runs the 3D Mapping mission.
pub fn run(mut ctx: MissionContext) -> MissionReport {
    let goal = MappingGoal::default();
    let failure = explore(&mut ctx, goal, |_| None);
    ctx.finish(failure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MissionConfig;
    use mav_compute::ApplicationId;

    #[test]
    fn mapping_mission_maps_a_nontrivial_volume() {
        let mut cfg = MissionConfig::fast_test(ApplicationId::Mapping3D).with_seed(4);
        cfg.environment.extent = 25.0;
        let report = crate::apps::run_mission(cfg);
        assert!(report.success(), "mapping failed: {:?}", report.failure);
        assert!(
            report.mapped_volume > 50.0,
            "mapped only {} m3",
            report.mapped_volume
        );
        assert!(
            report
                .kernel_timer
                .invocations(KernelId::FrontierExploration)
                >= 1
        );
        assert!(report.kernel_timer.invocations(KernelId::OctomapGeneration) >= 2);
        assert!(report.hover_time_secs > 1.0);
    }

    #[test]
    fn parallel_map_insertion_reproduces_the_serial_mission() {
        // The map_insert_threads knob is purely a wall-clock lever: the
        // whole mission — flight, energy, mapped volume — must come out
        // bit-identical to the serial default.
        let mut cfg = MissionConfig::fast_test(ApplicationId::Mapping3D).with_seed(4);
        cfg.environment.extent = 25.0;
        let serial = crate::apps::run_mission(cfg.clone());
        let threaded = crate::apps::run_mission(cfg.with_map_insert_threads(3));
        assert_eq!(
            serial.mapped_volume.to_bits(),
            threaded.mapped_volume.to_bits()
        );
        assert_eq!(
            serial.mission_time_secs.to_bits(),
            threaded.mission_time_secs.to_bits()
        );
        assert_eq!(
            serial.total_energy.as_joules().to_bits(),
            threaded.total_energy.as_joules().to_bits()
        );
        assert_eq!(serial.replans, threaded.replans);
    }

    #[test]
    fn exploration_stops_at_the_volume_target() {
        let mut cfg = MissionConfig::fast_test(ApplicationId::Mapping3D).with_seed(4);
        cfg.environment.extent = 25.0;
        let mut ctx = crate::context::MissionContext::new(cfg).unwrap();
        let tiny_goal = MappingGoal {
            target_volume: 10.0,
            max_iterations: 10,
        };
        let failure = explore(&mut ctx, tiny_goal, |_| None);
        assert!(failure.is_none());
        assert!(ctx.map.mapped_volume() >= 10.0);
    }
}
