//! The Package Delivery application.
//!
//! The MAV builds an occupancy map of its surroundings, plans a collision-free
//! path to an arbitrary delivery point, smooths it, follows it while
//! continuously updating the map and re-planning whenever new obstacles
//! obstruct the trajectory, delivers, and flies back to its origin.

use crate::context::{FlightOutcome, MissionContext};
use crate::qof::{MissionFailure, MissionReport};
use mav_compute::KernelId;
use mav_planning::{PathSmoother, PlannerKind, SmootherConfig};
use mav_types::Vec3;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Maximum re-planning episodes per leg before the mission is declared failed.
const MAX_REPLANS_PER_LEG: u32 = 12;

/// Picks a delivery destination: a collision-free point roughly
/// `fraction × extent` away from the origin.
pub fn pick_destination(ctx: &MissionContext, fraction: f64) -> Option<Vec3> {
    let mut rng = ChaCha8Rng::seed_from_u64(ctx.config.seed ^ 0xDE57);
    let extent = ctx.config.environment.extent;
    let radius = ctx.config.quadrotor.radius + 0.3;
    let altitude = ctx.config.quadrotor.cruise_altitude;
    for _ in 0..400 {
        let angle: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let dist = extent * fraction * rng.gen_range(0.85..1.0);
        let candidate = Vec3::new(angle.cos() * dist, angle.sin() * dist, altitude);
        if !ctx.world.collides_sphere(&candidate, radius * 2.0) {
            return Some(candidate);
        }
    }
    None
}

/// Flies one leg (current position → `goal`), re-planning as needed.
/// Returns `Ok(())` on arrival or the mission-ending failure.
///
/// Under [`crate::config::ReplanMode::HoverToPlan`] (default) every
/// collision alert surfaces here as [`FlightOutcome::NeedsReplan`] and this
/// loop re-plans while the vehicle hovers. Under
/// [`crate::config::ReplanMode::PlanInMotion`] the episode's planner node
/// answers alerts in-flight through the plan topic (counting its own
/// replans), so this loop only sees `NeedsReplan` as the fallback when no
/// in-flight plan could be found.
pub fn fly_leg(ctx: &mut MissionContext, goal: Vec3) -> Result<(), MissionFailure> {
    let checker = ctx.collision_checker();
    let planner = ctx.shortest_path_planner(PlannerKind::Rrt);
    let mut replans_this_leg = 0u32;
    loop {
        if let Some(failure) = ctx.budget_failure() {
            return Err(failure);
        }
        // Perception: refresh the map before planning.
        let frame = ctx.capture_depth();
        let perception_latency = ctx.update_map(&frame);
        ctx.hover(perception_latency);

        // Planning: shortest path + smoothing while hovering.
        ctx.hover_while_running(&[KernelId::MotionPlanning, KernelId::PathSmoothing]);
        let start = ctx.pose().position;
        let path = match planner.plan(&ctx.map, &checker, start, goal) {
            Ok(p) => p.shortcut(&ctx.map, &checker),
            Err(e) => {
                replans_this_leg += 1;
                if replans_this_leg > MAX_REPLANS_PER_LEG {
                    return Err(MissionFailure::PlanningFailed(e.to_string()));
                }
                ctx.note_replan();
                continue;
            }
        };
        let cap = ctx.velocity_cap();
        let smoother = PathSmoother::new(SmootherConfig::new(
            cap.max(0.5),
            ctx.config.quadrotor.max_acceleration,
        ));
        let trajectory = match smoother.smooth(&path.waypoints, ctx.clock.now()) {
            Ok(t) => t,
            Err(e) => return Err(MissionFailure::PlanningFailed(e.to_string())),
        };

        // Control: follow the plan with continuous perception.
        match ctx.fly_trajectory(&trajectory) {
            FlightOutcome::Completed => {
                if ctx.pose().position.distance(&goal) < 3.0 {
                    return Ok(());
                }
                // Finished the plan but not at the goal (e.g. truncated plan):
                // plan again from where we are.
                replans_this_leg += 1;
                if replans_this_leg > MAX_REPLANS_PER_LEG {
                    return Err(MissionFailure::PlanningFailed(
                        "could not converge on the goal".to_string(),
                    ));
                }
                ctx.note_replan();
            }
            FlightOutcome::NeedsReplan => {
                replans_this_leg += 1;
                if replans_this_leg > MAX_REPLANS_PER_LEG {
                    return Err(MissionFailure::PlanningFailed(
                        "exceeded the re-planning budget".to_string(),
                    ));
                }
                ctx.note_replan();
            }
            FlightOutcome::Aborted => {
                return Err(ctx
                    .budget_failure()
                    .unwrap_or(MissionFailure::Other("flight episode aborted".to_string())));
            }
        }
    }
}

/// Runs the Package Delivery mission: origin → destination → origin.
pub fn run(mut ctx: MissionContext) -> MissionReport {
    let origin = ctx.pose().position;
    let Some(destination) = pick_destination(&ctx, 0.55) else {
        return ctx.finish(Some(MissionFailure::PlanningFailed(
            "no collision-free delivery destination found".to_string(),
        )));
    };
    // Outbound leg, package drop (hover briefly), then the return leg.
    if let Err(failure) = fly_leg(&mut ctx, destination) {
        return ctx.finish(Some(failure));
    }
    ctx.hover(mav_types::SimDuration::from_secs(2.0));
    if let Err(failure) = fly_leg(&mut ctx, origin) {
        return ctx.finish(Some(failure));
    }
    ctx.finish(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MissionConfig;
    use crate::context::MissionContext;
    use mav_compute::ApplicationId;

    fn fast_ctx(seed: u64) -> MissionContext {
        let mut cfg = MissionConfig::fast_test(ApplicationId::PackageDelivery).with_seed(seed);
        cfg.environment.extent = 30.0;
        cfg.environment.obstacle_density = 1.0;
        MissionContext::new(cfg).unwrap()
    }

    #[test]
    fn destination_is_free_and_far_from_origin() {
        let ctx = fast_ctx(5);
        let d = pick_destination(&ctx, 0.5).unwrap();
        assert!(!ctx.world.collides_sphere(&d, ctx.config.quadrotor.radius));
        assert!(d.norm_xy() > 10.0);
    }

    #[test]
    fn delivery_mission_completes_round_trip() {
        let mut cfg = MissionConfig::fast_test(ApplicationId::PackageDelivery).with_seed(9);
        cfg.environment.extent = 30.0;
        cfg.environment.obstacle_density = 1.0;
        let report = crate::apps::run_mission(cfg);
        assert!(report.success(), "delivery failed: {:?}", report.failure);
        // A round trip at >10 m each way.
        assert!(report.distance_m > 20.0);
        assert!(report.kernel_timer.invocations(KernelId::MotionPlanning) >= 2);
        assert!(report.kernel_timer.invocations(KernelId::OctomapGeneration) >= 2);
        assert!(report.hover_time_secs > 0.0);
    }
}
