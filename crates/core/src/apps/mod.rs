//! The five MAVBench benchmark applications.
//!
//! Each application composes the perception / planning / control kernels into
//! the end-to-end closed-loop dataflow of the paper's Fig. 7 and runs it on
//! the [`crate::MissionContext`] engine, producing a [`crate::MissionReport`].

pub mod aerial_photography;
pub mod mapping;
pub mod package_delivery;
pub mod scanning;
pub mod search_rescue;

use crate::config::MissionConfig;
use crate::context::MissionContext;
use crate::qof::{MissionFailure, MissionReport};
use mav_compute::ApplicationId;

/// Runs the benchmark application selected by `config.application` and returns
/// its mission report.
///
/// This is the single entry point used by the examples, the integration tests
/// and every experiment harness.
///
/// # Example
///
/// ```no_run
/// use mav_compute::ApplicationId;
/// use mav_core::{run_mission, MissionConfig};
///
/// let report = run_mission(MissionConfig::fast_test(ApplicationId::Scanning));
/// println!("{report}");
/// ```
pub fn run_mission(config: MissionConfig) -> MissionReport {
    let application = config.application;
    match MissionContext::new(config) {
        Ok(ctx) => match application {
            ApplicationId::Scanning => scanning::run(ctx),
            ApplicationId::AerialPhotography => aerial_photography::run(ctx),
            ApplicationId::PackageDelivery => package_delivery::run(ctx),
            ApplicationId::Mapping3D => mapping::run(ctx),
            ApplicationId::SearchAndRescue => search_rescue::run(ctx),
        },
        Err(reason) => invalid_config_report(application, reason),
    }
}

fn invalid_config_report(application: ApplicationId, reason: String) -> MissionReport {
    use mav_compute::OperatingPoint;
    use mav_energy::EnergyAccount;
    use mav_runtime::KernelTimer;
    use mav_types::SimDuration;
    MissionReport::from_counters(
        application,
        OperatingPoint::reference(),
        Some(MissionFailure::Other(format!(
            "invalid configuration: {reason}"
        ))),
        SimDuration::ZERO,
        SimDuration::ZERO,
        0.0,
        0.0,
        &EnergyAccount::new(),
        100.0,
        0,
        0,
        0.0,
        0.0,
        KernelTimer::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_configuration_yields_a_failed_report() {
        let mut cfg = MissionConfig::fast_test(ApplicationId::Scanning);
        cfg.physics_dt = -1.0;
        let report = run_mission(cfg);
        assert!(!report.success());
        assert_eq!(report.application, ApplicationId::Scanning);
    }
}
