//! The five MAVBench benchmark applications.
//!
//! Each application composes the perception / planning / control kernels into
//! the end-to-end closed-loop dataflow of the paper's Fig. 7 and runs it on
//! the [`crate::MissionContext`] engine, producing a [`crate::MissionReport`].

pub mod aerial_photography;
pub mod mapping;
pub mod package_delivery;
pub mod scanning;
pub mod search_rescue;

use crate::config::MissionConfig;
use crate::context::MissionContext;
use crate::qof::{MissionFailure, MissionReport};
use crate::scratch::EpisodeScratch;
use mav_compute::ApplicationId;
use std::cell::RefCell;
use std::rc::Rc;

/// Runs the benchmark application selected by `config.application` and returns
/// its mission report.
///
/// This is the single entry point used by the examples, the integration tests
/// and every experiment harness.
///
/// # Example
///
/// ```no_run
/// use mav_compute::ApplicationId;
/// use mav_core::{run_mission, MissionConfig};
///
/// let report = run_mission(MissionConfig::fast_test(ApplicationId::Scanning));
/// println!("{report}");
/// ```
pub fn run_mission(config: MissionConfig) -> MissionReport {
    dispatch(config, None)
}

/// [`run_mission`] with cross-episode scratch reuse: the occupancy map, the
/// point-cloud buffers and (for a repeated environment configuration) the
/// generated world are recycled from `scratch` instead of reallocated, and
/// deposited back when the mission finishes. Bit-identical to
/// [`run_mission`] — reuse recycles allocations, never state — which the
/// integration tests pin with full-report equality.
///
/// This is the per-episode engine of the Monte-Carlo reliability sweep: each
/// sweep worker holds one `EpisodeScratch` and folds its shard of episodes
/// through it.
pub fn run_mission_with_scratch(
    config: MissionConfig,
    scratch: &mut EpisodeScratch,
) -> MissionReport {
    let slot = Rc::new(RefCell::new(std::mem::take(scratch)));
    let report = dispatch(config, Some(Rc::clone(&slot)));
    if let Ok(cell) = Rc::try_unwrap(slot) {
        *scratch = cell.into_inner();
    }
    report
}

fn dispatch(config: MissionConfig, scratch: Option<Rc<RefCell<EpisodeScratch>>>) -> MissionReport {
    let application = config.application;
    match MissionContext::with_scratch_slot(config, scratch) {
        Ok(ctx) => match application {
            ApplicationId::Scanning => scanning::run(ctx),
            ApplicationId::AerialPhotography => aerial_photography::run(ctx),
            ApplicationId::PackageDelivery => package_delivery::run(ctx),
            ApplicationId::Mapping3D => mapping::run(ctx),
            ApplicationId::SearchAndRescue => search_rescue::run(ctx),
        },
        Err(reason) => invalid_config_report(application, reason),
    }
}

fn invalid_config_report(application: ApplicationId, reason: String) -> MissionReport {
    use mav_compute::OperatingPoint;
    use mav_energy::EnergyAccount;
    use mav_runtime::KernelTimer;
    use mav_types::SimDuration;
    MissionReport::from_counters(
        application,
        OperatingPoint::reference(),
        Some(MissionFailure::Other(format!(
            "invalid configuration: {reason}"
        ))),
        SimDuration::ZERO,
        SimDuration::ZERO,
        0.0,
        0.0,
        &EnergyAccount::new(),
        100.0,
        0,
        0,
        0.0,
        0.0,
        KernelTimer::new(),
        None,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::quick_config;

    #[test]
    fn scratch_reuse_reproduces_fresh_missions_bit_for_bit() {
        // One scratch carried across every application and two different
        // world shapes: the map is reshaped, the world cache misses and
        // re-fills, the cloud buffers are reused — and every report must
        // equal the allocating run_mission's, field for field.
        let mut scratch = EpisodeScratch::new();
        for &app in ApplicationId::all() {
            for (seed, extent) in [(3u64, 18.0), (5u64, 24.0)] {
                let mut cfg = quick_config(MissionConfig::fast_test(app)).with_seed(seed);
                cfg.environment.extent = extent;
                let fresh = run_mission(cfg.clone());
                let reused = run_mission_with_scratch(cfg, &mut scratch);
                assert_eq!(fresh, reused, "{app:?} seed {seed} extent {extent}");
            }
        }
    }

    #[test]
    fn repeated_config_hits_the_world_cache_and_still_matches() {
        let mut scratch = EpisodeScratch::new();
        let cfg = quick_config(MissionConfig::fast_test(ApplicationId::Scanning)).with_seed(9);
        let first = run_mission_with_scratch(cfg.clone(), &mut scratch);
        // Second run with the identical config: the cached world is cloned
        // instead of regenerated.
        let second = run_mission_with_scratch(cfg.clone(), &mut scratch);
        assert_eq!(first, second);
        assert_eq!(first, run_mission(cfg));
    }

    #[test]
    fn invalid_configuration_yields_a_failed_report() {
        let mut cfg = MissionConfig::fast_test(ApplicationId::Scanning);
        cfg.physics_dt = -1.0;
        let report = run_mission(cfg);
        assert!(!report.success());
        assert_eq!(report.application, ApplicationId::Scanning);
    }
}
