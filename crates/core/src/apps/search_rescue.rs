//! The Search and Rescue application.
//!
//! The MAV explores an unknown disaster area exactly like 3D Mapping, but the
//! perception stage additionally runs an object-detection kernel every
//! iteration; the mission ends successfully as soon as a person has been
//! found (or unsuccessfully when exploration is exhausted without a find).
//! The flight episodes ride on the shared [`explore`] loop, so the PR 3
//! replanning modes (hover-to-plan vs plan-in-motion over the latched plan
//! topic) apply here unchanged.

use crate::apps::mapping::{explore, MappingGoal};
use crate::context::MissionContext;
use crate::qof::{MissionFailure, MissionReport};
use mav_compute::KernelId;
use mav_env::ObstacleClass;
use mav_perception::{DetectorConfig, MultiTargetTracker, ObjectDetector};

/// Sentinel used to break out of the exploration loop when a person is found.
/// Exploration's hook reports "failures" to stop; a successful find is mapped
/// back to success by [`run`].
const FOUND_SENTINEL: &str = "__person_found__";

/// Runs the Search and Rescue mission.
pub fn run(mut ctx: MissionContext) -> MissionReport {
    let mut detector = ObjectDetector::new(DetectorConfig {
        seed: ctx.config.seed,
        ..Default::default()
    });
    let mut tracker = MultiTargetTracker::default();
    let goal = MappingGoal {
        target_volume: f64::INFINITY,
        max_iterations: 16,
    };
    let failure = explore(&mut ctx, goal, |ctx| {
        // Perception hook: charge and run object detection on this iteration's
        // viewpoint; a positive person detection ends the mission. All person
        // detections of the frame feed the multi-target tracker (real
        // disaster sites hold more than one person), but the mission-ending
        // decision stays "any person seen this frame" — identical to the
        // historical single-detection path, which drew the same detector RNG.
        let op = ctx.node_op_for_kernel(KernelId::ObjectDetection);
        let latency = ctx.charge_kernel_at(KernelId::ObjectDetection, op);
        ctx.hover(latency);
        let pose = ctx.pose();
        let people: Vec<_> = detector
            .detect(&ctx.world, &pose)
            .into_iter()
            .filter(|d| d.class == ObstacleClass::Person)
            .collect();
        tracker.update(&people, latency);
        if !people.is_empty() {
            ctx.note_detection();
            return Some(MissionFailure::Other(FOUND_SENTINEL.to_string()));
        }
        None
    });
    let failure = match failure {
        Some(MissionFailure::Other(s)) if s == FOUND_SENTINEL => None,
        Some(other) => Some(other),
        // Exploration exhausted without finding anyone.
        None => Some(MissionFailure::Other(
            "search exhausted without finding a person".to_string(),
        )),
    };
    ctx.finish(failure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MissionConfig;
    use mav_compute::ApplicationId;

    #[test]
    fn search_and_rescue_runs_detection_and_exploration() {
        let mut cfg = MissionConfig::fast_test(ApplicationId::SearchAndRescue).with_seed(6);
        cfg.environment.extent = 25.0;
        cfg.environment.people = 6; // plenty of targets in a small area
        let report = crate::apps::run_mission(cfg);
        // The mission must exercise both detection and frontier exploration.
        assert!(report.kernel_timer.invocations(KernelId::ObjectDetection) >= 1);
        assert!(report.kernel_timer.invocations(KernelId::OctomapGeneration) >= 1);
        // With six people scattered in a 50 m square the search normally
        // succeeds; if it does not, the failure must be the explicit
        // "exhausted" outcome rather than a crash/collision.
        if !report.success() {
            match report.failure.as_ref().unwrap() {
                MissionFailure::Other(msg) => assert!(msg.contains("exhausted")),
                MissionFailure::Timeout | MissionFailure::BatteryExhausted => {}
                other => panic!("unexpected failure {other:?}"),
            }
        } else {
            assert!(report.detections >= 1);
        }
    }
}
