//! The Scanning application: lawnmower coverage of a rectangular area.
//!
//! The MAV locates itself with GPS, plans an energy-efficient lawnmower path
//! over the coverage area once, and then follows it closely while collecting
//! ground data. Planning is done a single time, so (as the paper observes in
//! Fig. 10) compute scaling barely changes this workload's mission metrics.

use crate::context::MissionContext;
use crate::flight::{EnergyNode, FlightCtx, FlightEvent, PathTrackerNode, Timeline};
use crate::qof::{MissionFailure, MissionReport};
use mav_compute::KernelId;
use mav_planning::{plan_lawnmower, LawnmowerConfig, PathSmoother, SmootherConfig};
use mav_runtime::{Executor, FifoTopic, Topic};
use mav_types::{SimDuration, Vec3};

/// Scan-area side length as a fraction of the world extent.
const AREA_FRACTION: f64 = 0.55;
/// Lane spacing of the sweep, metres.
const LANE_SPACING: f64 = 12.0;
/// Scanning altitude, metres (high enough that obstacles are irrelevant).
const SCAN_ALTITUDE: f64 = 14.0;
/// Nominal scanning speed, m/s (the paper's Fig. 10 reports 7.5 m/s).
const SCAN_SPEED: f64 = 7.5;

/// Runs the Scanning mission to completion.
pub fn run(mut ctx: MissionContext) -> MissionReport {
    // Perception: a GPS fix locates the vehicle (charged, but sub-millisecond).
    ctx.hover_while_running(&[KernelId::Localization]);

    // Planning: one lawnmower plan over the coverage area, computed while the
    // vehicle hovers.
    let half = ctx.config.environment.extent * AREA_FRACTION;
    let area = LawnmowerConfig {
        origin: Vec3::new(-half, -half, 0.0),
        width: 2.0 * half,
        length: 2.0 * half,
        lane_spacing: LANE_SPACING,
        altitude: SCAN_ALTITUDE,
    };
    ctx.hover_while_running(&[KernelId::LawnmowerPlanning]);
    let waypoints = match plan_lawnmower(&area) {
        Ok(w) => w,
        Err(e) => return ctx.finish(Some(MissionFailure::PlanningFailed(e.to_string()))),
    };

    // Climb to the scanning altitude first, then sweep. The waypoint chain is
    // smoothed into a dynamically feasible trajectory (corner slow-down and a
    // trapezoidal velocity profile) so the sweep can actually be tracked.
    let climb_target = Vec3::new(waypoints[0].x, waypoints[0].y, SCAN_ALTITUDE);
    let speed = SCAN_SPEED.min(ctx.config.quadrotor.max_velocity);
    let mut full_path = vec![ctx.pose().position, climb_target];
    full_path.extend_from_slice(&waypoints[1..]);
    let smoother = PathSmoother::new(SmootherConfig::new(
        speed,
        ctx.config.quadrotor.max_acceleration,
    ));
    let trajectory = match smoother.smooth(&full_path, ctx.clock.now()) {
        Ok(t) => t,
        Err(e) => return ctx.finish(Some(MissionFailure::PlanningFailed(e.to_string()))),
    };

    // Control: follow the sweep on the executor. Scanning flies over open
    // ground, so the graph is just the energy watchdog plus a tracker node
    // charging localization and path tracking each tick — no camera, map or
    // collision nodes (matching the application's Table I kernel set). The
    // trajectory was smoothed "from now", so the tracker samples it at the
    // mission clock directly. The plan still travels over the latched plan
    // topic (PR 3) — scanning just never publishes a second plan on it.
    let event = {
        let events: FifoTopic<FlightEvent> = FifoTopic::new("scanning/events");
        let commands: Topic<Vec3> = Topic::new("scanning/velocity_cmd");
        let plan: Topic<std::sync::Arc<mav_types::Trajectory>> = Topic::new("scanning/plan");
        plan.publish(std::sync::Arc::new(trajectory));
        let mut exec: Executor<FlightCtx> = Executor::new().with_exec_model(ctx.config.exec_model);
        exec.add_node(EnergyNode::new(events.clone()));
        exec.add_node(
            PathTrackerNode::new(
                plan,
                Timeline::MissionClock,
                vec![KernelId::Localization, KernelId::PathTracking],
                speed,
                commands.clone(),
                events.clone(),
                ctx.config.rates.control_period(),
            )
            .with_operating_point(ctx.config.node_ops.control),
        );
        let mut flight_ctx = FlightCtx {
            mission: &mut ctx,
            events,
            commands,
            min_tick: SimDuration::from_millis(100.0),
        };
        crate::flight::run_to_event(&mut exec, &mut flight_ctx)
    };
    match event {
        Ok(FlightEvent::Completed) => ctx.finish(None),
        Ok(FlightEvent::Aborted | FlightEvent::NeedsReplan) => {
            let failure = ctx
                .budget_failure()
                .unwrap_or(MissionFailure::Other("scanning sweep aborted".to_string()));
            ctx.finish(Some(failure))
        }
        Err(error) => ctx.finish(Some(MissionFailure::Other(format!(
            "scanning executor error: {error}"
        )))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MissionConfig;
    use mav_compute::{ApplicationId, OperatingPoint};

    fn run_fast(point: OperatingPoint) -> MissionReport {
        let mut cfg = MissionConfig::fast_test(ApplicationId::Scanning)
            .with_operating_point(point)
            .with_seed(3);
        // Keep the test sweep small.
        cfg.environment.extent = 30.0;
        crate::apps::run_mission(cfg)
    }

    #[test]
    fn scanning_completes_and_covers_the_area() {
        let report = run_fast(OperatingPoint::reference());
        assert!(report.success(), "scanning failed: {:?}", report.failure);
        assert!(
            report.distance_m > 100.0,
            "swept only {} m",
            report.distance_m
        );
        assert!(report.average_velocity > 2.0);
        assert!(report.total_energy.as_joules() > 0.0);
        assert!(report.kernel_timer.invocations(KernelId::LawnmowerPlanning) >= 1);
        assert_eq!(
            report.kernel_timer.invocations(KernelId::OctomapGeneration),
            0
        );
    }

    #[test]
    fn compute_scaling_barely_affects_scanning() {
        // Fig. 10: velocity, mission time and energy are essentially flat
        // across operating points because planning is amortised.
        let fast = run_fast(OperatingPoint::reference());
        let slow = run_fast(OperatingPoint::slowest());
        assert!(fast.success() && slow.success());
        let time_ratio = slow.mission_time_secs / fast.mission_time_secs;
        assert!(
            time_ratio < 1.15,
            "scanning mission time changed {time_ratio:.2}X across operating points"
        );
        let energy_ratio = slow.energy_kj() / fast.energy_kj();
        assert!(energy_ratio < 1.2, "energy changed {energy_ratio:.2}X");
    }
}
