//! The Aerial Photography application.
//!
//! The MAV follows a moving subject: an object detector finds the subject, a
//! correlation-style tracker keeps the estimate fresh between detections, and
//! a PID controller steers the vehicle to keep the subject centred in frame at
//! a fixed stand-off distance. The mission lasts as long as the subject can be
//! tracked; unlike the other workloads a *longer* mission time is better, and
//! the QoF error metric is the mean framing error. There is no planned
//! trajectory to swap, so this is the one application the PR 3 plan topic
//! does not reach: the follow node *is* the planner, re-aiming every tick —
//! plan-in-motion by construction.

use crate::context::MissionContext;
use crate::flight::{EnergyNode, FlightCtx, FlightEvent};
use crate::qof::{MissionFailure, MissionReport};
use mav_compute::KernelId;
use mav_control::{Pid, PidConfig};
use mav_env::ObstacleClass;
use mav_perception::{DetectorConfig, ObjectDetector, TargetTracker, TrackerConfig};
use mav_runtime::{Executor, FifoTopic, Node, NodeOutput, Topic};
use mav_types::{Result, SimDuration, SimTime, Vec3};

/// Stand-off distance behind the subject, metres.
const STANDOFF: f64 = 6.0;
/// Filming altitude, metres.
const FILM_ALTITUDE: f64 = 4.0;
/// The detector runs once every this many control ticks; the (cheaper)
/// real-time tracker runs every tick.
const DETECTION_PERIOD: u32 = 3;
/// Consecutive ticks without a live track before the subject is declared lost.
const MAX_LOST_TICKS: u32 = 12;
/// Upper bound on the filming session, seconds of mission time.
const MAX_SESSION_SECS: f64 = 150.0;

/// The subject-following node: detection every few ticks, real-time tracking
/// and PID control every tick. Publishes velocity commands (or zero while
/// re-acquiring a lost subject) and [`FlightEvent::Completed`] once the
/// subject escapes for good.
struct SubjectFollowNode {
    detector: ObjectDetector,
    tracker: TargetTracker,
    pid_x: Pid,
    pid_y: Pid,
    pid_z: Pid,
    tick_index: u32,
    lost_ticks: u32,
    last_invocation: Option<SimTime>,
    commands: Topic<Vec3>,
    events: FifoTopic<FlightEvent>,
    period: SimDuration,
    min_tick: SimDuration,
}

impl SubjectFollowNode {
    fn new(
        seed: u64,
        commands: Topic<Vec3>,
        events: FifoTopic<FlightEvent>,
        period: SimDuration,
        min_tick: SimDuration,
    ) -> Self {
        SubjectFollowNode {
            detector: ObjectDetector::new(DetectorConfig {
                seed,
                ..Default::default()
            }),
            tracker: TargetTracker::new(TrackerConfig::default()),
            pid_x: Pid::new(PidConfig::new(0.9, 0.05, 0.2).with_output_limit(8.0)),
            pid_y: Pid::new(PidConfig::new(0.9, 0.05, 0.2).with_output_limit(8.0)),
            pid_z: Pid::new(PidConfig::new(1.0, 0.0, 0.1).with_output_limit(3.0)),
            tick_index: 0,
            lost_ticks: 0,
            last_invocation: None,
            commands,
            events,
            period,
            min_tick,
        }
    }
}

impl Node<FlightCtx<'_>> for SubjectFollowNode {
    fn name(&self) -> &str {
        "subject_follow"
    }

    fn period(&self) -> SimDuration {
        self.period
    }

    fn tick(&mut self, ctx: &mut FlightCtx<'_>, now: SimTime) -> Result<NodeOutput> {
        // Perception: detection every few ticks, real-time tracking every tick.
        let mut kernels = vec![
            KernelId::TrackingRealTime,
            KernelId::PidControl,
            KernelId::PathTracking,
        ];
        let run_detector = self.tick_index.is_multiple_of(DETECTION_PERIOD);
        if run_detector {
            kernels.push(KernelId::ObjectDetection);
            kernels.push(KernelId::TrackingBuffered);
        }
        // The follow node is the whole pipeline in one node (ExecStage's
        // monolithic default), but its kernels still belong to different
        // stages, so each is priced at the operating point of the node group
        // that owns it — per-node DVFS reaches photography too.
        let kernel_time: Vec<(KernelId, SimDuration)> = kernels
            .iter()
            .map(|&k| {
                let op = ctx.mission.node_op_for_kernel(k);
                (k, ctx.mission.charge_kernel_at(k, op))
            })
            .collect();
        // The tracker and PID must integrate over the real time between
        // invocations. Tick-synchronous (legacy) this node is the graph's
        // only latency source, so the upcoming round tick is exactly its
        // kernel total floored by the minimum round length; at an explicit
        // control rate, rounds elapse between invocations, so use the
        // measured inter-invocation interval instead.
        let latency_tick = kernel_time
            .iter()
            .map(|(_, d)| *d)
            .sum::<SimDuration>()
            .max(self.min_tick);
        let tick = if self.period.is_zero() {
            latency_tick
        } else {
            match self.last_invocation {
                Some(last) => now.since(last).max(latency_tick),
                None => latency_tick,
            }
        };
        self.last_invocation = Some(now);
        self.tick_index += 1;

        let pose = ctx.mission.pose();
        let detection = if run_detector {
            self.detector
                .detect_class(&ctx.mission.world, &pose, ObstacleClass::PhotographySubject)
        } else {
            None
        };
        if detection.is_some() {
            ctx.mission.note_detection();
        }
        if let Some(d) = &detection {
            ctx.mission.note_tracking_error(d.image_offset.abs());
        }
        let track = if run_detector {
            self.tracker.update(detection.as_ref(), tick)
        } else {
            self.tracker.predict(tick)
        };

        let Some(track) = track else {
            self.lost_ticks += 1;
            if self.lost_ticks > MAX_LOST_TICKS {
                // The subject escaped: the session ends here. This is not a
                // failure — the mission time *is* the metric — but shorter
                // sessions indicate weaker compute.
                self.events.publish(FlightEvent::Completed);
                return Ok(NodeOutput::kernels(kernel_time));
            }
            // Hover while trying to re-acquire.
            self.commands.publish(Vec3::ZERO);
            return Ok(NodeOutput::kernels(kernel_time));
        };
        self.lost_ticks = 0;

        // Planning/control: PID towards the stand-off point behind the subject,
        // kept inside the world bounds (the subject may hug the boundary).
        let raw_desired = follow_point(&track.position, &track.velocity);
        let b = ctx.mission.world.bounds();
        let desired = raw_desired.clamp(&(b.min + Vec3::splat(2.0)), &(b.max - Vec3::splat(2.0)));
        let error = desired - pose.position;
        let dt = tick.as_secs().max(1e-3);
        let command = Vec3::new(
            self.pid_x.update(error.x, dt),
            self.pid_y.update(error.y, dt),
            self.pid_z.update(error.z, dt),
        );
        let cap = ctx.mission.velocity_cap();
        self.commands.publish(command.clamp_norm(cap));
        Ok(NodeOutput::kernels(kernel_time))
    }
}

/// Runs the Aerial Photography mission.
pub fn run(mut ctx: MissionContext) -> MissionReport {
    if ctx
        .world
        .dynamic_obstacle_of_class(ObstacleClass::PhotographySubject)
        .is_none()
    {
        return ctx.finish(Some(MissionFailure::Other(
            "no photography subject in the environment".to_string(),
        )));
    }

    let session_budget = MAX_SESSION_SECS.min(ctx.config.time_budget_secs);
    let min_tick = SimDuration::from_millis(50.0);
    let event = {
        let events: FifoTopic<FlightEvent> = FifoTopic::new("photo/events");
        let commands: Topic<Vec3> = Topic::new("photo/velocity_cmd");
        let mut exec: Executor<FlightCtx> = Executor::new().with_exec_model(ctx.config.exec_model);
        exec.add_node(EnergyNode::new(events.clone()).with_session_end(session_budget));
        exec.add_node(SubjectFollowNode::new(
            ctx.config.seed,
            commands.clone(),
            events.clone(),
            ctx.config.rates.control_period(),
            min_tick,
        ));
        let mut flight_ctx = FlightCtx {
            mission: &mut ctx,
            events,
            commands,
            min_tick,
        };
        crate::flight::run_to_event(&mut exec, &mut flight_ctx)
    };
    match event {
        // Either the subject was tracked for the whole session (the energy
        // node's session deadline) or it escaped: both end the session
        // successfully — the mission time itself is the metric.
        Ok(FlightEvent::Completed) => ctx.finish(None),
        Ok(FlightEvent::Aborted | FlightEvent::NeedsReplan) => {
            let failure = ctx
                .budget_failure()
                .unwrap_or(MissionFailure::Other("filming session aborted".to_string()));
            ctx.finish(Some(failure))
        }
        Err(error) => ctx.finish(Some(MissionFailure::Other(format!(
            "filming executor error: {error}"
        )))),
    }
}

/// The camera position that keeps the subject framed: a stand-off behind the
/// subject's direction of motion at the filming altitude.
fn follow_point(subject: &Vec3, subject_velocity: &Vec3) -> Vec3 {
    let behind = if subject_velocity.norm_xy() > 0.2 {
        -subject_velocity.horizontal().normalized()
    } else {
        Vec3::new(-1.0, 0.0, 0.0)
    };
    Vec3::new(
        subject.x + behind.x * STANDOFF,
        subject.y + behind.y * STANDOFF,
        FILM_ALTITUDE,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MissionConfig;
    use mav_compute::ApplicationId;

    #[test]
    fn follow_point_sits_behind_the_subject() {
        let p = follow_point(&Vec3::new(10.0, 0.0, 1.0), &Vec3::new(2.0, 0.0, 0.0));
        assert!(p.x < 10.0);
        assert_eq!(p.z, FILM_ALTITUDE);
        // A stationary subject still gets a well-defined stand-off point.
        let q = follow_point(&Vec3::new(5.0, 5.0, 1.0), &Vec3::ZERO);
        assert!((q.distance(&Vec3::new(5.0 - STANDOFF, 5.0, FILM_ALTITUDE))) < 1e-9);
    }

    #[test]
    fn photography_tracks_the_subject_for_a_while() {
        let mut cfg = MissionConfig::fast_test(ApplicationId::AerialPhotography).with_seed(8);
        cfg.environment.extent = 40.0;
        cfg.environment.obstacle_density = 0.2;
        cfg.time_budget_secs = 60.0;
        let report = crate::apps::run_mission(cfg);
        assert!(report.success(), "photography failed: {:?}", report.failure);
        assert!(report.detections >= 1, "subject never detected");
        assert!(report.kernel_timer.invocations(KernelId::TrackingRealTime) >= 5);
        assert!(report.mission_time_secs > 5.0);
        assert!(report.tracking_error >= 0.0);
    }
}
