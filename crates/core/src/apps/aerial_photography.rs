//! The Aerial Photography application.
//!
//! The MAV follows a moving subject: an object detector finds the subject, a
//! correlation-style tracker keeps the estimate fresh between detections, and
//! a PID controller steers the vehicle to keep the subject centred in frame at
//! a fixed stand-off distance. The mission lasts as long as the subject can be
//! tracked; unlike the other workloads a *longer* mission time is better, and
//! the QoF error metric is the mean framing error.

use crate::context::MissionContext;
use crate::qof::{MissionFailure, MissionReport};
use mav_compute::KernelId;
use mav_control::{Pid, PidConfig};
use mav_env::ObstacleClass;
use mav_perception::{DetectorConfig, ObjectDetector, TargetTracker, TrackerConfig};
use mav_types::{SimDuration, Vec3};

/// Stand-off distance behind the subject, metres.
const STANDOFF: f64 = 6.0;
/// Filming altitude, metres.
const FILM_ALTITUDE: f64 = 4.0;
/// The detector runs once every this many control ticks; the (cheaper)
/// real-time tracker runs every tick.
const DETECTION_PERIOD: u32 = 3;
/// Consecutive ticks without a live track before the subject is declared lost.
const MAX_LOST_TICKS: u32 = 12;
/// Upper bound on the filming session, seconds of mission time.
const MAX_SESSION_SECS: f64 = 150.0;

/// Runs the Aerial Photography mission.
pub fn run(mut ctx: MissionContext) -> MissionReport {
    let mut detector = ObjectDetector::new(DetectorConfig {
        seed: ctx.config.seed,
        ..Default::default()
    });
    let mut tracker = TargetTracker::new(TrackerConfig::default());
    let mut pid_x = Pid::new(PidConfig::new(0.9, 0.05, 0.2).with_output_limit(8.0));
    let mut pid_y = Pid::new(PidConfig::new(0.9, 0.05, 0.2).with_output_limit(8.0));
    let mut pid_z = Pid::new(PidConfig::new(1.0, 0.0, 0.1).with_output_limit(3.0));

    if ctx
        .world
        .dynamic_obstacle_of_class(ObstacleClass::PhotographySubject)
        .is_none()
    {
        return ctx.finish(Some(MissionFailure::Other(
            "no photography subject in the environment".to_string(),
        )));
    }

    let mut tick_index = 0u32;
    let mut lost_ticks = 0u32;
    let session_budget = MAX_SESSION_SECS.min(ctx.config.time_budget_secs);
    loop {
        if let Some(failure) = ctx.budget_failure() {
            return ctx.finish(Some(failure));
        }
        if ctx.clock.now().as_secs() >= session_budget {
            // Tracked the subject for the whole session: full success.
            return ctx.finish(None);
        }
        // Perception: detection every few ticks, real-time tracking every tick.
        let mut kernels = vec![
            KernelId::TrackingRealTime,
            KernelId::PidControl,
            KernelId::PathTracking,
        ];
        let run_detector = tick_index.is_multiple_of(DETECTION_PERIOD);
        if run_detector {
            kernels.push(KernelId::ObjectDetection);
            kernels.push(KernelId::TrackingBuffered);
        }
        let tick = ctx
            .charge_kernels(&kernels)
            .max(SimDuration::from_millis(50.0));
        tick_index += 1;

        let pose = ctx.pose();
        let detection = if run_detector {
            detector.detect_class(&ctx.world, &pose, ObstacleClass::PhotographySubject)
        } else {
            None
        };
        if detection.is_some() {
            ctx.note_detection();
        }
        if let Some(d) = &detection {
            ctx.note_tracking_error(d.image_offset.abs());
        }
        let track = if run_detector {
            tracker.update(detection.as_ref(), tick)
        } else {
            tracker.predict(tick)
        };

        let Some(track) = track else {
            lost_ticks += 1;
            if lost_ticks > MAX_LOST_TICKS {
                // The subject escaped: the session ends here. This is not a
                // failure — the mission time *is* the metric — but shorter
                // sessions indicate weaker compute.
                return ctx.finish(None);
            }
            // Hover while trying to re-acquire.
            ctx.advance(Vec3::ZERO, tick);
            continue;
        };
        lost_ticks = 0;

        // Planning/control: PID towards the stand-off point behind the subject,
        // kept inside the world bounds (the subject may hug the boundary).
        let raw_desired = follow_point(&track.position, &track.velocity);
        let b = ctx.world.bounds();
        let desired = raw_desired.clamp(&(b.min + Vec3::splat(2.0)), &(b.max - Vec3::splat(2.0)));
        let error = desired - pose.position;
        let dt = tick.as_secs().max(1e-3);
        let command = Vec3::new(
            pid_x.update(error.x, dt),
            pid_y.update(error.y, dt),
            pid_z.update(error.z, dt),
        );
        let cap = ctx.velocity_cap();
        ctx.advance(command.clamp_norm(cap), tick);
    }
}

/// The camera position that keeps the subject framed: a stand-off behind the
/// subject's direction of motion at the filming altitude.
fn follow_point(subject: &Vec3, subject_velocity: &Vec3) -> Vec3 {
    let behind = if subject_velocity.norm_xy() > 0.2 {
        -subject_velocity.horizontal().normalized()
    } else {
        Vec3::new(-1.0, 0.0, 0.0)
    };
    Vec3::new(
        subject.x + behind.x * STANDOFF,
        subject.y + behind.y * STANDOFF,
        FILM_ALTITUDE,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MissionConfig;
    use mav_compute::ApplicationId;

    #[test]
    fn follow_point_sits_behind_the_subject() {
        let p = follow_point(&Vec3::new(10.0, 0.0, 1.0), &Vec3::new(2.0, 0.0, 0.0));
        assert!(p.x < 10.0);
        assert_eq!(p.z, FILM_ALTITUDE);
        // A stationary subject still gets a well-defined stand-off point.
        let q = follow_point(&Vec3::new(5.0, 5.0, 1.0), &Vec3::ZERO);
        assert!((q.distance(&Vec3::new(5.0 - STANDOFF, 5.0, FILM_ALTITUDE))) < 1e-9);
    }

    #[test]
    fn photography_tracks_the_subject_for_a_while() {
        let mut cfg = MissionConfig::fast_test(ApplicationId::AerialPhotography).with_seed(8);
        cfg.environment.extent = 40.0;
        cfg.environment.obstacle_density = 0.2;
        cfg.time_budget_secs = 60.0;
        let report = crate::apps::run_mission(cfg);
        assert!(report.success(), "photography failed: {:?}", report.failure);
        assert!(report.detections >= 1, "subject never detected");
        assert!(report.kernel_timer.invocations(KernelId::TrackingRealTime) >= 5);
        assert!(report.mission_time_secs > 5.0);
        assert!(report.tracking_error >= 0.0);
    }
}
