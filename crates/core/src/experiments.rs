//! Experiment drivers: the parameter sweeps behind every table and figure of
//! the paper's evaluation.
//!
//! Each function here is called both by the `mav-bench` harness binaries
//! (which print the tables) and by the integration tests (which assert the
//! qualitative shape of the results: who wins, in which direction, by roughly
//! what factor).

use crate::apps::run_mission;
use crate::config::{MissionConfig, ResolutionPolicy};
use crate::qof::MissionReport;
use mav_compute::{ApplicationId, CloudConfig, KernelId, OperatingPoint};
use serde::{Deserialize, Serialize};

/// One cell of an operating-point heat map (Figs. 10–14).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeatmapCell {
    /// Core count of the operating point.
    pub cores: u32,
    /// Clock frequency in GHz.
    pub frequency_ghz: f64,
    /// The mission report produced at this operating point.
    pub report: MissionReport,
}

/// Runs the 3×3 TX2 operating-point sweep for one application.
///
/// `configure` receives the default configuration for the application and may
/// adjust it (seed, environment size, …) before each run.
pub fn operating_point_sweep(
    application: ApplicationId,
    configure: impl Fn(MissionConfig) -> MissionConfig,
) -> Vec<HeatmapCell> {
    OperatingPoint::tx2_sweep()
        .into_iter()
        .map(|point| {
            let config = configure(MissionConfig::new(application)).with_operating_point(point);
            let report = run_mission(config);
            HeatmapCell { cores: point.cores, frequency_ghz: point.frequency.as_ghz(), report }
        })
        .collect()
}

/// Finds the heat-map cell for a specific operating point.
pub fn cell<'a>(cells: &'a [HeatmapCell], cores: u32, frequency_ghz: f64) -> Option<&'a HeatmapCell> {
    cells
        .iter()
        .find(|c| c.cores == cores && (c.frequency_ghz - frequency_ghz).abs() < 1e-9)
}

/// Renders a 3×3 heat map as a text table of the selected metric.
pub fn format_heatmap(cells: &[HeatmapCell], metric_name: &str, metric: impl Fn(&MissionReport) -> f64) -> String {
    let mut out = String::new();
    out.push_str(&format!("{metric_name:<18} |   0.8 GHz |   1.5 GHz |   2.2 GHz\n"));
    out.push_str(&format!("{}\n", "-".repeat(60)));
    for cores in [4u32, 3, 2] {
        out.push_str(&format!("{cores} cores            |"));
        for f in [0.8, 1.5, 2.2] {
            match cell(cells, cores, f) {
                Some(c) => out.push_str(&format!(" {:>9.2} |", metric(&c.report))),
                None => out.push_str("       n/a |"),
            }
        }
        out.push('\n');
    }
    out
}

/// The edge-vs-cloud comparison of the performance case study (Fig. 16).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloudComparison {
    /// Fully-on-edge run.
    pub edge: MissionReport,
    /// Sensor-cloud run (planning offloaded over a gigabit link).
    pub cloud: MissionReport,
}

impl CloudComparison {
    /// Ratio of edge to cloud mission time (>1 means the cloud run is faster).
    pub fn speedup(&self) -> f64 {
        if self.cloud.mission_time_secs <= 0.0 {
            return 1.0;
        }
        self.edge.mission_time_secs / self.cloud.mission_time_secs
    }

    /// Planning time (frontier exploration + motion planning + smoothing) of a
    /// report, seconds.
    pub fn planning_time(report: &MissionReport) -> f64 {
        [
            KernelId::FrontierExploration,
            KernelId::MotionPlanning,
            KernelId::PathSmoothing,
        ]
        .iter()
        .map(|k| report.kernel_timer.total(*k).as_secs())
        .sum()
    }
}

/// Runs the sensor-cloud case study on 3D Mapping.
pub fn cloud_offload_study(
    configure: impl Fn(MissionConfig) -> MissionConfig,
) -> CloudComparison {
    let edge_cfg = configure(MissionConfig::new(ApplicationId::Mapping3D));
    let cloud_cfg = configure(MissionConfig::new(ApplicationId::Mapping3D))
        .with_cloud(CloudConfig::planning_offload());
    CloudComparison { edge: run_mission(edge_cfg), cloud: run_mission(cloud_cfg) }
}

/// One row of the OctoMap-resolution study (Fig. 19).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolutionRow {
    /// Human-readable policy label.
    pub policy: String,
    /// The application it ran on.
    pub application: ApplicationId,
    /// The mission report.
    pub report: MissionReport,
}

/// Runs the static-fine / static-coarse / dynamic resolution study for one
/// application.
pub fn resolution_study(
    application: ApplicationId,
    configure: impl Fn(MissionConfig) -> MissionConfig,
) -> Vec<ResolutionRow> {
    let policies = [
        ("static 0.15 m", ResolutionPolicy::static_fine()),
        ("static 0.80 m", ResolutionPolicy::static_coarse()),
        ("dynamic 0.15/0.80 m", ResolutionPolicy::dynamic_default()),
    ];
    policies
        .iter()
        .map(|(label, policy)| {
            let config = configure(MissionConfig::new(application)).with_resolution_policy(*policy);
            ResolutionRow {
                policy: (*label).to_string(),
                application,
                report: run_mission(config),
            }
        })
        .collect()
}

/// One row of the depth-noise reliability study (Table II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseRow {
    /// Injected noise standard deviation, metres.
    pub noise_std: f64,
    /// Fraction of runs that failed.
    pub failure_rate: f64,
    /// Mean number of re-planning episodes over the successful runs.
    pub mean_replans: f64,
    /// Mean mission time over the successful runs, seconds.
    pub mean_mission_time: f64,
}

/// Runs the Table II reliability study: Package Delivery under increasing
/// depth-image noise, `runs` repetitions per noise level.
pub fn noise_reliability_study(
    noise_levels: &[f64],
    runs: u32,
    configure: impl Fn(MissionConfig) -> MissionConfig,
) -> Vec<NoiseRow> {
    noise_levels
        .iter()
        .map(|&std| {
            let mut failures = 0u32;
            let mut replans = 0.0;
            let mut times = 0.0;
            let mut successes = 0u32;
            for run in 0..runs {
                let config = configure(MissionConfig::new(ApplicationId::PackageDelivery))
                    .with_depth_noise(std)
                    .with_seed(1000 + run as u64 * 17);
                let report = run_mission(config);
                if report.success() {
                    successes += 1;
                    replans += report.replans as f64;
                    times += report.mission_time_secs;
                } else {
                    failures += 1;
                }
            }
            NoiseRow {
                noise_std: std,
                failure_rate: failures as f64 / runs.max(1) as f64,
                mean_replans: if successes > 0 { replans / successes as f64 } else { 0.0 },
                mean_mission_time: if successes > 0 { times / successes as f64 } else { 0.0 },
            }
        })
        .collect()
}

/// Scales a default configuration down so the full experiment sweeps finish
/// quickly (used by tests and the harness `--quick` mode).
pub fn quick_config(config: MissionConfig) -> MissionConfig {
    let mut cfg = config;
    cfg.environment.extent = cfg.environment.extent.min(32.0);
    cfg.environment.obstacle_density = cfg.environment.obstacle_density.min(1.5);
    cfg.camera = mav_sensors::DepthCameraConfig { width: 16, height: 12, ..Default::default() };
    cfg.time_budget_secs = 900.0;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_formatting_contains_all_cells() {
        // Use the cheap Scanning application for a smoke test of the sweep
        // plumbing itself; the shape assertions on the heavier applications
        // live in the integration tests.
        let cells = operating_point_sweep(ApplicationId::Scanning, |cfg| {
            let mut c = quick_config(cfg).with_seed(2);
            c.environment.extent = 20.0;
            c
        });
        assert_eq!(cells.len(), 9);
        assert!(cell(&cells, 4, 2.2).is_some());
        assert!(cell(&cells, 2, 0.8).is_some());
        assert!(cell(&cells, 5, 1.0).is_none());
        let table = format_heatmap(&cells, "mission time (s)", |r| r.mission_time_secs);
        assert!(table.contains("4 cores"));
        assert!(table.contains("2.2 GHz"));
        // Every scanning run succeeds.
        assert!(cells.iter().all(|c| c.report.success()));
    }
}
