//! Experiment drivers: the parameter sweeps behind every table and figure of
//! the paper's evaluation.
//!
//! Each function here is called both by the `mav-bench` harness binaries
//! (which print the tables) and by the integration tests (which assert the
//! qualitative shape of the results: who wins, in which direction, by roughly
//! what factor).
//!
//! All sweeps execute through the parallel [`SweepRunner`]: the default
//! entry points (`operating_point_sweep`, …) use every available core, and
//! each has a `*_with` variant taking an explicit runner so harnesses can
//! honour `--threads`. Results are bit-identical across thread counts — see
//! [`crate::sweep`] for the determinism contract.

use crate::config::{MissionConfig, NodeOpConfig, RateConfig, ReplanMode, ResolutionPolicy};
use crate::qof::MissionReport;
use crate::sweep::{SweepPoint, SweepRunner};
use mav_compute::{ApplicationId, CloudConfig, KernelId, OperatingPoint};
use mav_runtime::ExecModel;
use mav_types::{Json, ToJson};
use serde::{Deserialize, Serialize};

/// One cell of an operating-point heat map (Figs. 10–14).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeatmapCell {
    /// Core count of the operating point.
    pub cores: u32,
    /// Clock frequency in GHz.
    pub frequency_ghz: f64,
    /// The mission report produced at this operating point.
    pub report: MissionReport,
}

impl ToJson for HeatmapCell {
    fn to_json(&self) -> Json {
        Json::object()
            .field("cores", self.cores)
            .field("frequency_ghz", self.frequency_ghz)
            .field("report", self.report.to_json())
    }
}

/// Runs the 3×3 TX2 operating-point sweep for one application on every
/// available core.
///
/// `configure` receives the default configuration for the application and may
/// adjust it (seed, environment size, …) before each run.
pub fn operating_point_sweep(
    application: ApplicationId,
    configure: impl Fn(MissionConfig) -> MissionConfig,
) -> Vec<HeatmapCell> {
    operating_point_sweep_with(&SweepRunner::new(), application, configure)
}

/// [`operating_point_sweep`] on an explicit [`SweepRunner`].
pub fn operating_point_sweep_with(
    runner: &SweepRunner,
    application: ApplicationId,
    configure: impl Fn(MissionConfig) -> MissionConfig,
) -> Vec<HeatmapCell> {
    let grid = OperatingPoint::tx2_sweep();
    let points: Vec<SweepPoint> = grid
        .iter()
        .map(|&point| {
            let config = configure(MissionConfig::new(application)).with_operating_point(point);
            SweepPoint::new(point.label(), config)
        })
        .collect();
    runner
        .run(points)
        .outcomes
        .into_iter()
        .zip(grid)
        .map(|(outcome, point)| HeatmapCell {
            cores: point.cores,
            frequency_ghz: point.frequency.as_ghz(),
            report: outcome.report,
        })
        .collect()
}

/// Finds the heat-map cell for a specific operating point.
pub fn cell(cells: &[HeatmapCell], cores: u32, frequency_ghz: f64) -> Option<&HeatmapCell> {
    cells
        .iter()
        .find(|c| c.cores == cores && (c.frequency_ghz - frequency_ghz).abs() < 1e-9)
}

/// Renders a 3×3 heat map as a text table of the selected metric.
pub fn format_heatmap(
    cells: &[HeatmapCell],
    metric_name: &str,
    metric: impl Fn(&MissionReport) -> f64,
) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{metric_name:<18} |   0.8 GHz |   1.5 GHz |   2.2 GHz\n"
    ));
    out.push_str(&format!("{}\n", "-".repeat(60)));
    for cores in [4u32, 3, 2] {
        out.push_str(&format!("{cores} cores            |"));
        for f in [0.8, 1.5, 2.2] {
            match cell(cells, cores, f) {
                Some(c) => out.push_str(&format!(" {:>9.2} |", metric(&c.report))),
                None => out.push_str("       n/a |"),
            }
        }
        out.push('\n');
    }
    out
}

/// The edge-vs-cloud comparison of the performance case study (Fig. 16).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloudComparison {
    /// Fully-on-edge run.
    pub edge: MissionReport,
    /// Sensor-cloud run (planning offloaded over a gigabit link).
    pub cloud: MissionReport,
}

impl CloudComparison {
    /// Ratio of edge to cloud mission time (>1 means the cloud run is faster).
    pub fn speedup(&self) -> f64 {
        if self.cloud.mission_time_secs <= 0.0 {
            return 1.0;
        }
        self.edge.mission_time_secs / self.cloud.mission_time_secs
    }

    /// Planning time (frontier exploration + motion planning + smoothing) of a
    /// report, seconds.
    pub fn planning_time(report: &MissionReport) -> f64 {
        [
            KernelId::FrontierExploration,
            KernelId::MotionPlanning,
            KernelId::PathSmoothing,
        ]
        .iter()
        .map(|k| report.kernel_timer.total(*k).as_secs())
        .sum()
    }
}

impl ToJson for CloudComparison {
    fn to_json(&self) -> Json {
        Json::object()
            .field("edge", self.edge.to_json())
            .field("cloud", self.cloud.to_json())
            .field("speedup", self.speedup())
    }
}

/// Runs the sensor-cloud case study on 3D Mapping (both runs in parallel).
pub fn cloud_offload_study(configure: impl Fn(MissionConfig) -> MissionConfig) -> CloudComparison {
    cloud_offload_study_with(&SweepRunner::new(), configure)
}

/// [`cloud_offload_study`] on an explicit [`SweepRunner`].
pub fn cloud_offload_study_with(
    runner: &SweepRunner,
    configure: impl Fn(MissionConfig) -> MissionConfig,
) -> CloudComparison {
    let edge_cfg = configure(MissionConfig::new(ApplicationId::Mapping3D));
    let cloud_cfg = configure(MissionConfig::new(ApplicationId::Mapping3D))
        .with_cloud(CloudConfig::planning_offload());
    let mut outcomes = runner
        .run(vec![
            SweepPoint::new("edge", edge_cfg),
            SweepPoint::new("cloud", cloud_cfg),
        ])
        .outcomes;
    let cloud = outcomes.pop().expect("cloud outcome").report;
    let edge = outcomes.pop().expect("edge outcome").report;
    CloudComparison { edge, cloud }
}

/// One row of the OctoMap-resolution study (Fig. 19).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResolutionRow {
    /// Human-readable policy label.
    pub policy: String,
    /// The application it ran on.
    pub application: ApplicationId,
    /// The mission report.
    pub report: MissionReport,
}

impl ToJson for ResolutionRow {
    fn to_json(&self) -> Json {
        Json::object()
            .field("policy", self.policy.as_str())
            .field("application", self.application.to_json())
            .field("report", self.report.to_json())
    }
}

/// Runs the static-fine / static-coarse / dynamic resolution study for one
/// application, all policies in parallel.
pub fn resolution_study(
    application: ApplicationId,
    configure: impl Fn(MissionConfig) -> MissionConfig,
) -> Vec<ResolutionRow> {
    resolution_study_with(&SweepRunner::new(), application, configure)
}

/// [`resolution_study`] on an explicit [`SweepRunner`].
pub fn resolution_study_with(
    runner: &SweepRunner,
    application: ApplicationId,
    configure: impl Fn(MissionConfig) -> MissionConfig,
) -> Vec<ResolutionRow> {
    let policies = [
        ("static 0.15 m", ResolutionPolicy::static_fine()),
        ("static 0.80 m", ResolutionPolicy::static_coarse()),
        ("dynamic 0.15/0.80 m", ResolutionPolicy::dynamic_default()),
    ];
    let points: Vec<SweepPoint> = policies
        .iter()
        .map(|(label, policy)| {
            let config = configure(MissionConfig::new(application)).with_resolution_policy(*policy);
            SweepPoint::new(*label, config)
        })
        .collect();
    runner
        .run(points)
        .outcomes
        .into_iter()
        .map(|outcome| ResolutionRow {
            policy: outcome.label,
            application,
            report: outcome.report,
        })
        .collect()
}

/// One row of the depth-noise reliability study (Table II).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NoiseRow {
    /// Injected noise standard deviation, metres.
    pub noise_std: f64,
    /// Fraction of runs that failed.
    pub failure_rate: f64,
    /// Mean number of re-planning episodes over the successful runs.
    pub mean_replans: f64,
    /// Mean mission time over the successful runs, seconds.
    pub mean_mission_time: f64,
}

impl ToJson for NoiseRow {
    fn to_json(&self) -> Json {
        Json::object()
            .field("noise_std", self.noise_std)
            .field("failure_rate", self.failure_rate)
            .field("mean_replans", self.mean_replans)
            .field("mean_mission_time", self.mean_mission_time)
    }
}

/// Runs the Table II reliability study: Package Delivery under increasing
/// depth-image noise, `runs` repetitions per noise level, every
/// (level, repetition) mission in parallel.
pub fn noise_reliability_study(
    noise_levels: &[f64],
    runs: u32,
    configure: impl Fn(MissionConfig) -> MissionConfig,
) -> Vec<NoiseRow> {
    noise_reliability_study_with(&SweepRunner::new(), noise_levels, runs, configure)
}

/// [`noise_reliability_study`] on an explicit [`SweepRunner`].
pub fn noise_reliability_study_with(
    runner: &SweepRunner,
    noise_levels: &[f64],
    runs: u32,
    configure: impl Fn(MissionConfig) -> MissionConfig,
) -> Vec<NoiseRow> {
    // Flatten the (level × repetition) grid into one parallel sweep; the
    // per-run seeds match the historical serial implementation exactly.
    let points: Vec<SweepPoint> = noise_levels
        .iter()
        .flat_map(|&std| (0..runs).map(move |run| (std, run)))
        .map(|(std, run)| {
            let config = configure(MissionConfig::new(ApplicationId::PackageDelivery))
                .with_depth_noise(std)
                .with_seed(1000 + run as u64 * 17);
            SweepPoint::new(format!("noise {std:.2} m, run {run}"), config)
        })
        .collect();
    let outcomes = runner.run(points).outcomes;
    noise_levels
        .iter()
        .enumerate()
        .map(|(level_idx, &std)| {
            let level_reports = outcomes
                [level_idx * runs as usize..(level_idx + 1) * runs as usize]
                .iter()
                .map(|o| &o.report);
            let mut failures = 0u32;
            let mut replans = 0.0;
            let mut times = 0.0;
            let mut successes = 0u32;
            for report in level_reports {
                if report.success() {
                    successes += 1;
                    replans += report.replans as f64;
                    times += report.mission_time_secs;
                } else {
                    failures += 1;
                }
            }
            NoiseRow {
                noise_std: std,
                failure_rate: failures as f64 / runs.max(1) as f64,
                mean_replans: if successes > 0 {
                    replans / successes as f64
                } else {
                    0.0
                },
                mean_mission_time: if successes > 0 {
                    times / successes as f64
                } else {
                    0.0
                },
            }
        })
        .collect()
}

/// One row of the closed-loop perception-rate sweep (the emergent,
/// full-mission counterpart of the paper's Fig. 8b microbenchmark).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateSweepRow {
    /// Camera and mapping rate of this point, Hz (both nodes run at this
    /// rate; control and replanning stay tick-synchronous).
    pub perception_hz: f64,
    /// The mission report produced under that schedule.
    pub report: MissionReport,
}

impl ToJson for RateSweepRow {
    fn to_json(&self) -> Json {
        Json::object()
            .field("perception_hz", self.perception_hz)
            .field("velocity_cap", self.report.velocity_cap)
            .field("report", self.report.to_json())
    }
}

/// Runs the perception-rate sweep: the same Package Delivery mission under
/// node schedules whose camera + OctoMap rates step through `rates_hz`,
/// every point in parallel.
///
/// This is the first experiment only expressible on the PR 2 node-graph
/// executor: the schedule (not the code) sets how stale the occupancy map
/// is, and the Eq. 2 cap reacts to that staleness — lower perception rate ⇒
/// lower safe velocity ⇒ longer mission time, the paper's Fig. 8b trend at
/// whole-mission scope.
pub fn perception_rate_sweep(
    rates_hz: &[f64],
    configure: impl Fn(MissionConfig) -> MissionConfig,
) -> Vec<RateSweepRow> {
    perception_rate_sweep_with(&SweepRunner::new(), rates_hz, configure)
}

/// [`perception_rate_sweep`] on an explicit [`SweepRunner`].
pub fn perception_rate_sweep_with(
    runner: &SweepRunner,
    rates_hz: &[f64],
    configure: impl Fn(MissionConfig) -> MissionConfig,
) -> Vec<RateSweepRow> {
    let points: Vec<SweepPoint> = rates_hz
        .iter()
        .map(|&hz| {
            let config = configure(MissionConfig::new(ApplicationId::PackageDelivery))
                .with_rates(RateConfig::legacy().with_camera_fps(hz).with_mapping_hz(hz));
            SweepPoint::new(format!("perception {hz:.1} Hz"), config)
        })
        .collect();
    runner
        .run(points)
        .outcomes
        .into_iter()
        .zip(rates_hz)
        .map(|(outcome, &hz)| RateSweepRow {
            perception_hz: hz,
            report: outcome.report,
        })
        .collect()
}

/// One row of the replanning-policy comparison (PR 3): the same mission under
/// [`ReplanMode::HoverToPlan`] and [`ReplanMode::PlanInMotion`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplanModeRow {
    /// The policy this mission flew under.
    pub mode: ReplanMode,
    /// The mission report it produced.
    pub report: MissionReport,
}

impl ToJson for ReplanModeRow {
    fn to_json(&self) -> Json {
        Json::object()
            .field("mode", self.mode.label())
            .field("replans", self.report.replans)
            .field("mission_time_secs", self.report.mission_time_secs)
            .field("hover_time_secs", self.report.hover_time_secs)
            .field("energy_kj", self.report.energy_kj())
            .field("report", self.report.to_json())
    }
}

/// Runs the replanning-policy comparison: the identical Package Delivery
/// mission once per [`ReplanMode`], both missions in parallel.
///
/// The paper charges planning latency while hovering — the most expensive
/// possible policy, since every planner millisecond is a millisecond of
/// zero progress at full rotor power. Plan-in-motion runs the same planning
/// kernels on the node-graph executor *while the vehicle keeps flying the
/// stale plan*, so at equal collision(-alert) counts the mission strictly
/// shortens — compare the rows' `replans` to confirm the counts match.
pub fn replan_mode_sweep(configure: impl Fn(MissionConfig) -> MissionConfig) -> Vec<ReplanModeRow> {
    replan_mode_sweep_with(&SweepRunner::new(), configure)
}

/// [`replan_mode_sweep`] on an explicit [`SweepRunner`].
pub fn replan_mode_sweep_with(
    runner: &SweepRunner,
    configure: impl Fn(MissionConfig) -> MissionConfig,
) -> Vec<ReplanModeRow> {
    let modes = [ReplanMode::HoverToPlan, ReplanMode::PlanInMotion];
    let points: Vec<SweepPoint> = modes
        .iter()
        .map(|&mode| {
            let config = configure(MissionConfig::new(ApplicationId::PackageDelivery))
                .with_replan_mode(mode);
            SweepPoint::new(mode.label(), config)
        })
        .collect();
    runner
        .run(points)
        .outcomes
        .into_iter()
        .zip(modes)
        .map(|(outcome, mode)| ReplanModeRow {
            mode,
            report: outcome.report,
        })
        .collect()
}

/// One row of the executor-model / per-node-DVFS study (PR 5): the same
/// mission under one latency-charging model and one node→operating-point
/// mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecModelRow {
    /// How executor rounds charged latency in this mission.
    pub exec_model: ExecModel,
    /// The per-node operating points the flight graph ran with.
    pub node_ops: NodeOpConfig,
    /// Human-readable row label (`"pipelined / big.LITTLE"`).
    pub label: String,
    /// The mission report it produced.
    pub report: MissionReport,
}

impl ToJson for ExecModelRow {
    fn to_json(&self) -> Json {
        Json::object()
            .field("exec_model", self.exec_model.label())
            .field("node_ops", self.node_ops.label())
            .field("label", self.label.as_str())
            .field("replans", self.report.replans)
            .field("mission_time_secs", self.report.mission_time_secs)
            .field("hover_time_secs", self.report.hover_time_secs)
            .field("velocity_cap", self.report.velocity_cap)
            .field("energy_kj", self.report.energy_kj())
            .field("report", self.report.to_json())
    }
}

/// The (exec model, node ops) grid of [`exec_model_sweep`]:
///
/// 1. `serial / mission-global` — the paper's accounting (the baseline every
///    other figure uses);
/// 2. `pipelined / mission-global` — same mission, rounds charged as the
///    critical path over pipeline stages (camera capturing while the mapper
///    integrates);
/// 3. `pipelined / all-little` — every node parked on the little cluster:
///    the whole stack downclocked;
/// 4. `pipelined / big.LITTLE` — planning kept on the big cluster while
///    perception and control stay on the little one: rows 3 vs 4 isolate
///    what per-node DVFS of the *planner* alone buys at identical
///    perception/control latencies (and therefore an identical Eq. 2
///    velocity cap).
pub fn exec_model_grid() -> Vec<(ExecModel, NodeOpConfig, &'static str)> {
    vec![
        (
            ExecModel::Serial,
            NodeOpConfig::mission_global(),
            "serial / mission-global",
        ),
        (
            ExecModel::Pipelined,
            NodeOpConfig::mission_global(),
            "pipelined / mission-global",
        ),
        (
            ExecModel::Pipelined,
            NodeOpConfig::all_little(),
            "pipelined / all-little",
        ),
        (
            ExecModel::Pipelined,
            NodeOpConfig::big_little(),
            "pipelined / big.LITTLE",
        ),
    ]
}

/// Runs the executor-model / per-node-DVFS study: the identical Package
/// Delivery mission once per [`exec_model_grid`] row, all rows in parallel.
///
/// The paper charges each round's kernel latencies serially — as if camera,
/// mapper, monitor and tracker shared one core. [`ExecModel::Pipelined`]
/// charges the critical path instead, so rounds shorten to the slowest
/// stage: the same mission runs more (finer-grained) control and monitor
/// rounds per simulated second, which tightens tracking and trims the
/// end-of-episode convergence tail — mission time strictly shortens, by an
/// amount bounded by how much of the mission is round-quantized (trajectory
/// cruise time is rate-limited by the Eq. 2 cap, not by rounds; the
/// schedule-free quotable contrast lives in the executor's own
/// camera+mapper direction test, where the same twenty frames cost 33 %
/// less clock). The DVFS rows then split the cluster mapping: rows 3 and 4
/// have identical perception/control latencies — hence the identical,
/// lowered Eq. 2 velocity cap — and differ only in where planning runs, so
/// their delta isolates what keeping the planner on the big cluster buys in
/// hover time.
pub fn exec_model_sweep(configure: impl Fn(MissionConfig) -> MissionConfig) -> Vec<ExecModelRow> {
    exec_model_sweep_with(&SweepRunner::new(), configure)
}

/// [`exec_model_sweep`] on an explicit [`SweepRunner`].
pub fn exec_model_sweep_with(
    runner: &SweepRunner,
    configure: impl Fn(MissionConfig) -> MissionConfig,
) -> Vec<ExecModelRow> {
    let grid = exec_model_grid();
    let points: Vec<SweepPoint> = grid
        .iter()
        .map(|(model, ops, label)| {
            let config = configure(MissionConfig::new(ApplicationId::PackageDelivery))
                .with_exec_model(*model)
                .with_node_ops(*ops);
            SweepPoint::new(*label, config)
        })
        .collect();
    runner
        .run(points)
        .outcomes
        .into_iter()
        .zip(grid)
        .map(|(outcome, (exec_model, node_ops, label))| ExecModelRow {
            exec_model,
            node_ops,
            label: label.to_string(),
            report: outcome.report,
        })
        .collect()
}

/// The scenario the executor-model study (and its direction tests) runs on:
/// the sparse long-leg rate-sweep scenario, so every grid row — including
/// the downclocked DVFS mappings, which fly at a lower Eq. 2 cap — completes
/// its delivery and the four rows stay like-for-like (same routes, same zero
/// collision-alert count). Dense replan-heavy fields are deliberately *not*
/// used here: a different charging model shifts alert timing, which replans
/// onto different routes and makes the mission-time comparison compare
/// routes, not models.
pub fn exec_model_scenario(config: MissionConfig) -> MissionConfig {
    rate_sweep_scenario(config)
}

/// The scenario the replanning-policy comparison (and its direction test)
/// runs on: a dense, initially-unknown obstacle field, so the optimistic
/// initial plan (planned through unexplored space) is reliably obstructed by
/// real obstacles discovered at camera range mid-flight — the situation in
/// which the two policies differ. Legs are long enough that the replanning
/// policy visibly moves the mission time.
pub fn replan_scenario(config: MissionConfig) -> MissionConfig {
    let mut cfg = quick_config(config).with_seed(1);
    cfg.environment.extent = 70.0;
    cfg.environment.obstacle_density = 3.0;
    cfg
}

/// The scenario the perception-rate sweep (and its direction tests) run on:
/// legs long enough that cruise time dominates planning noise, and sparse
/// enough that every schedule completes.
pub fn rate_sweep_scenario(config: MissionConfig) -> MissionConfig {
    let mut cfg = quick_config(config).with_seed(9);
    cfg.environment.extent = 70.0;
    cfg.environment.obstacle_density = 0.3;
    cfg
}

/// Scales a default configuration down so the full experiment sweeps finish
/// quickly (used by tests and the harness `--fast` mode).
pub fn quick_config(config: MissionConfig) -> MissionConfig {
    let mut cfg = config;
    cfg.environment.extent = cfg.environment.extent.min(32.0);
    cfg.environment.obstacle_density = cfg.environment.obstacle_density.min(1.5);
    cfg.camera = mav_sensors::DepthCameraConfig {
        width: 16,
        height: 12,
        ..Default::default()
    };
    cfg.time_budget_secs = 900.0;
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scanning_quick(cfg: MissionConfig) -> MissionConfig {
        let mut c = quick_config(cfg).with_seed(2);
        c.environment.extent = 20.0;
        c
    }

    #[test]
    fn heatmap_formatting_contains_all_cells() {
        // Use the cheap Scanning application for a smoke test of the sweep
        // plumbing itself; the shape assertions on the heavier applications
        // live in the integration tests.
        let cells = operating_point_sweep(ApplicationId::Scanning, scanning_quick);
        assert_eq!(cells.len(), 9);
        assert!(cell(&cells, 4, 2.2).is_some());
        assert!(cell(&cells, 2, 0.8).is_some());
        assert!(cell(&cells, 5, 1.0).is_none());
        let table = format_heatmap(&cells, "mission time (s)", |r| r.mission_time_secs);
        assert!(table.contains("4 cores"));
        assert!(table.contains("2.2 GHz"));
        // Every scanning run succeeds.
        assert!(cells.iter().all(|c| c.report.success()));
    }

    #[test]
    fn heatmap_format_renders_all_nine_metric_values() {
        // Synthetic cells: metric = cores + GHz, so every rendered number is
        // predictable and distinct.
        let template = operating_point_sweep_with(
            &SweepRunner::new().with_threads(2),
            ApplicationId::Scanning,
            scanning_quick,
        );
        let table = format_heatmap(&template, "synthetic", |r| {
            r.operating_point.cores as f64 + r.operating_point.frequency.as_ghz()
        });
        for expected in [
            "4.80", "5.50", "6.20", "3.80", "4.50", "5.20", "2.80", "3.50", "4.20",
        ] {
            assert!(table.contains(expected), "missing {expected} in:\n{table}");
        }
        assert!(!table.contains("n/a"));
    }

    #[test]
    fn heatmap_format_marks_missing_cells() {
        let cells = operating_point_sweep_with(
            &SweepRunner::new().with_threads(2),
            ApplicationId::Scanning,
            scanning_quick,
        );
        let partial: Vec<HeatmapCell> = cells
            .into_iter()
            .filter(|c| !(c.cores == 3 && c.frequency_ghz == 1.5))
            .collect();
        let table = format_heatmap(&partial, "mission time (s)", |r| r.mission_time_secs);
        assert!(table.contains("n/a"));
    }

    #[test]
    fn cell_lookup_tolerates_float_formatting() {
        let cells = operating_point_sweep_with(
            &SweepRunner::new().with_threads(3),
            ApplicationId::Scanning,
            scanning_quick,
        );
        // 2.2 is not exactly representable; lookup must still hit.
        assert!(cell(&cells, 4, 2.2).is_some());
        assert!(cell(&cells, 4, 2.21).is_none());
        assert!(cell(&cells, 9, 2.2).is_none());
    }

    #[test]
    fn operating_point_sweep_is_thread_count_invariant() {
        let serial = operating_point_sweep_with(
            &SweepRunner::new().with_threads(1),
            ApplicationId::Scanning,
            scanning_quick,
        );
        let parallel = operating_point_sweep_with(
            &SweepRunner::new().with_threads(4),
            ApplicationId::Scanning,
            scanning_quick,
        );
        assert_eq!(serial, parallel);
    }
}
