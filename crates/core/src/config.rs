//! Mission configuration: every knob the MAVBench experiments turn.

use crate::faults::FaultPlan;
use mav_compute::{ApplicationId, CloudConfig, OperatingPoint};
use mav_dynamics::QuadrotorConfig;
use mav_energy::BatteryConfig;
use mav_env::EnvironmentConfig;
use mav_runtime::ExecModel;
use mav_sensors::DepthCameraConfig;
use mav_types::{Frequency, FromJson, Json, SimDuration, ToJson};
use serde::{Deserialize, Serialize};

/// Per-node invocation rates of the closed-loop graph (PR 2).
///
/// Every closed-loop node scheduled by the
/// [`Executor`](mav_runtime::Executor) — depth camera, OctoMap update, the
/// collision-monitor/planner pair and the path tracker — has its own period.
/// `None` means *tick-synchronous*: the node runs every executor round, which
/// is exactly the cadence of the historical sequential loop. Setting explicit
/// rates decouples the stages and makes rate-interaction studies (the paper's
/// Fig. 8b SLAM-fps trade-off, control-rate starvation, frame drops under a
/// slow mapper) expressible in configuration instead of code.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RateConfig {
    /// Depth-camera capture rate, frames per second (`None`: every round).
    pub camera_fps: Option<f64>,
    /// OctoMap-update rate, Hz (`None`: every round, i.e. every frame).
    pub mapping_hz: Option<f64>,
    /// Collision-monitor / replan-trigger rate, Hz (`None`: every round).
    pub replan_hz: Option<f64>,
    /// Path-tracker (control) rate, Hz (`None`: every round).
    pub control_hz: Option<f64>,
}

impl RateConfig {
    /// The compatibility schedule: every node tick-synchronous with the loop,
    /// reproducing the pre-refactor sequential closed loop bit-identically
    /// (enforced by `tests/golden_legacy.rs`).
    pub fn legacy() -> Self {
        RateConfig::default()
    }

    /// Returns `true` when every node is tick-synchronous (the legacy loop).
    pub fn is_legacy(&self) -> bool {
        self.camera_fps.is_none()
            && self.mapping_hz.is_none()
            && self.replan_hz.is_none()
            && self.control_hz.is_none()
    }

    /// Overrides the camera rate (builder style).
    pub fn with_camera_fps(mut self, fps: f64) -> Self {
        self.camera_fps = Some(fps);
        self
    }

    /// Overrides the mapping rate (builder style).
    pub fn with_mapping_hz(mut self, hz: f64) -> Self {
        self.mapping_hz = Some(hz);
        self
    }

    /// Overrides the replan rate (builder style).
    pub fn with_replan_hz(mut self, hz: f64) -> Self {
        self.replan_hz = Some(hz);
        self
    }

    /// Overrides the control rate (builder style).
    pub fn with_control_hz(mut self, hz: f64) -> Self {
        self.control_hz = Some(hz);
        self
    }

    fn period_of(rate: Option<f64>) -> SimDuration {
        match rate {
            Some(hz) => SimDuration::from_secs(1.0 / hz.max(1e-6)),
            None => SimDuration::ZERO,
        }
    }

    /// The depth-camera node period ([`SimDuration::ZERO`]: every round).
    pub fn camera_period(&self) -> SimDuration {
        RateConfig::period_of(self.camera_fps)
    }

    /// The OctoMap node period.
    pub fn mapping_period(&self) -> SimDuration {
        RateConfig::period_of(self.mapping_hz)
    }

    /// The collision-monitor / planner node period.
    pub fn replan_period(&self) -> SimDuration {
        RateConfig::period_of(self.replan_hz)
    }

    /// The path-tracker node period.
    pub fn control_period(&self) -> SimDuration {
        RateConfig::period_of(self.control_hz)
    }

    /// Worst-case sensing staleness added to the Eq. 2 reaction latency δt: a
    /// new obstacle waits up to a full camera period to be observed and up to
    /// a full mapping period to land in the occupancy map. Zero for the
    /// legacy schedule, where perception is tick-synchronous.
    pub fn sensing_interval(&self) -> SimDuration {
        RateConfig::period_of(self.camera_fps) + RateConfig::period_of(self.mapping_hz)
    }

    /// Validates the rates.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message for the first invalid rate.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("camera_fps", self.camera_fps),
            ("mapping_hz", self.mapping_hz),
            ("replan_hz", self.replan_hz),
            ("control_hz", self.control_hz),
        ] {
            if let Some(hz) = rate {
                if !(hz.is_finite() && hz > 0.0) {
                    return Err(format!("{name} must be a positive rate, got {hz}"));
                }
            }
        }
        Ok(())
    }

    /// Parses a `cam=15,map=4,plan=2,ctrl=50` rate list (any non-empty subset
    /// of the four keys) and validates it. This is the single source of truth
    /// for the syntax: the harness `--rates` flag and the `mav-server` job
    /// spec both route through it.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message for a malformed clause, an unknown key
    /// or an invalid rate.
    pub fn parse(spec: &str) -> Result<RateConfig, String> {
        let mut rates = RateConfig::legacy();
        for part in spec.split(',') {
            let Some((key, value)) = part.split_once('=') else {
                return Err(format!(
                    "rate `{part}` must look like key=hz (keys: cam, map, plan, ctrl)"
                ));
            };
            let hz: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("invalid rate value `{value}`"))?;
            match key.trim() {
                "cam" => rates.camera_fps = Some(hz),
                "map" => rates.mapping_hz = Some(hz),
                "plan" => rates.replan_hz = Some(hz),
                "ctrl" => rates.control_hz = Some(hz),
                other => {
                    return Err(format!(
                        "unknown rate key `{other}` (expected cam, map, plan or ctrl)"
                    ))
                }
            }
        }
        rates.validate()?;
        Ok(rates)
    }
}

impl ToJson for RateConfig {
    fn to_json(&self) -> Json {
        Json::object()
            .field("camera_fps", self.camera_fps)
            .field("mapping_hz", self.mapping_hz)
            .field("replan_hz", self.replan_hz)
            .field("control_hz", self.control_hz)
    }
}

impl FromJson for RateConfig {
    /// Accepts the structured form (what [`ToJson`] emits; omitted keys stay
    /// tick-synchronous) or the CLI string form (`"cam=15,map=4"`) routed
    /// through [`RateConfig::parse`].
    fn from_json(json: &Json) -> Result<Self, String> {
        if let Some(s) = json.as_str() {
            return RateConfig::parse(s);
        }
        json.check_fields(&["camera_fps", "mapping_hz", "replan_hz", "control_hz"])?;
        let rates = RateConfig {
            camera_fps: json.parse_opt_field("camera_fps")?,
            mapping_hz: json.parse_opt_field("mapping_hz")?,
            replan_hz: json.parse_opt_field("replan_hz")?,
            control_hz: json.parse_opt_field("control_hz")?,
        };
        rates.validate()?;
        Ok(rates)
    }
}

/// Per-node operating points of the closed-loop graph (PR 5).
///
/// [`MissionConfig::operating_point`] pins the *whole* companion computer to
/// one (cores, frequency) setting. Real MAV stacks instead map stages to
/// clusters big.LITTLE-style — planning on the big cores at full clock,
/// perception or control parked on the little cluster — and DVFS them
/// independently. This config makes that mapping a mission knob: each field
/// overrides the operating point used to charge the latencies of one node of
/// the flight graph (`None` = the mission-global point, which reproduces the
/// historical accounting bit-for-bit).
///
/// The fields mirror the [`RateConfig`] node keys:
///
/// * `camera` — the depth-camera node. Capture itself carries no Table I
///   kernel cost, so today this field is accepted (and recorded) but scales
///   nothing; it exists so schedules and operating-point maps use one key
///   set.
/// * `mapping` — the OctoMap node's perception kernels (point-cloud
///   generation, map update, collision check, localization). Also used for
///   perception-stage kernels charged outside the graph (e.g. Search and
///   Rescue's detection hook), so "perception on the little cluster" means
///   the same thing in every application.
/// * `planning` — the planner node's kernels (motion planning, smoothing,
///   frontier/lawnmower planning), both for in-flight planning jobs and for
///   the applications' hover-to-plan episodes.
/// * `control` — the path-tracker node's kernels.
///
/// Latency is the only thing a per-node point changes: the compute *power*
/// model still draws at the mission-global operating point (per-cluster
/// power is a ROADMAP follow-on), so per-node DVFS reaches energy through
/// mission time, not watts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NodeOpConfig {
    /// Depth-camera node operating point (`None`: mission-global).
    pub camera: Option<OperatingPoint>,
    /// OctoMap/perception node operating point (`None`: mission-global).
    pub mapping: Option<OperatingPoint>,
    /// Planner node operating point (`None`: mission-global).
    pub planning: Option<OperatingPoint>,
    /// Path-tracker (control) node operating point (`None`: mission-global).
    pub control: Option<OperatingPoint>,
}

impl NodeOpConfig {
    /// The compatibility mapping: every node at the mission-global operating
    /// point (the historical accounting, pinned by `tests/golden_legacy.rs`).
    pub fn mission_global() -> Self {
        NodeOpConfig::default()
    }

    /// Returns `true` when every node uses the mission-global point.
    pub fn is_mission_global(&self) -> bool {
        self.camera.is_none()
            && self.mapping.is_none()
            && self.planning.is_none()
            && self.control.is_none()
    }

    /// The canonical big.LITTLE split used by the per-node DVFS experiment:
    /// planning on the big cluster at full clock, perception and control
    /// parked on the little cluster at 1.5 GHz.
    pub fn big_little() -> Self {
        NodeOpConfig {
            camera: None,
            mapping: Some(OperatingPoint::little_cluster(Frequency::from_ghz(1.5))),
            planning: Some(OperatingPoint::big_cluster(Frequency::from_ghz(2.2))),
            control: Some(OperatingPoint::little_cluster(Frequency::from_ghz(1.5))),
        }
    }

    /// Every kernel-charging node parked on the little cluster at 1.5 GHz —
    /// the degenerate cluster mapping the per-node DVFS experiment compares
    /// [`NodeOpConfig::big_little`] against: identical perception and control
    /// latencies (hence an identical Eq. 2 velocity cap), differing only in
    /// where planning runs.
    pub fn all_little() -> Self {
        let little = OperatingPoint::little_cluster(Frequency::from_ghz(1.5));
        NodeOpConfig {
            camera: None,
            mapping: Some(little),
            planning: Some(little),
            control: Some(little),
        }
    }

    /// Overrides the camera node's point (builder style).
    pub fn with_camera(mut self, point: OperatingPoint) -> Self {
        self.camera = Some(point);
        self
    }

    /// Overrides the mapping node's point (builder style).
    pub fn with_mapping(mut self, point: OperatingPoint) -> Self {
        self.mapping = Some(point);
        self
    }

    /// Overrides the planner node's point (builder style).
    pub fn with_planning(mut self, point: OperatingPoint) -> Self {
        self.planning = Some(point);
        self
    }

    /// Overrides the control node's point (builder style).
    pub fn with_control(mut self, point: OperatingPoint) -> Self {
        self.control = Some(point);
        self
    }

    /// A compact `plan=4c@2.2,map=2c@1.5` label of the overrides (the CLI
    /// syntax), or `"mission-global"` when nothing is overridden.
    pub fn label(&self) -> String {
        let parts: Vec<String> = [
            ("cam", self.camera),
            ("map", self.mapping),
            ("plan", self.planning),
            ("ctrl", self.control),
        ]
        .iter()
        .filter_map(|(key, point)| point.map(|p| format!("{key}={}", p.label())))
        .collect();
        if parts.is_empty() {
            "mission-global".to_string()
        } else {
            parts.join(",")
        }
    }

    /// Validates the per-node points.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message for the first invalid point.
    pub fn validate(&self) -> Result<(), String> {
        for (name, point) in [
            ("camera", self.camera),
            ("mapping", self.mapping),
            ("planning", self.planning),
            ("control", self.control),
        ] {
            if let Some(p) = point {
                if p.cores == 0 {
                    return Err(format!("{name} operating point needs at least one core"));
                }
                let ghz = p.frequency.as_ghz();
                if !(ghz.is_finite() && ghz > 0.0) {
                    return Err(format!(
                        "{name} operating point needs a positive frequency, got {ghz} GHz"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Parses a `plan=big@2.2,cam=little@1.4` list (any non-empty subset of
    /// the cam/map/plan/ctrl keys; point syntax per
    /// [`OperatingPoint::parse`]) and validates it. The harness `--node-op`
    /// flag and the `mav-server` job spec both route through here.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message for a malformed clause, an unknown key
    /// or an invalid operating point.
    pub fn parse(spec: &str) -> Result<NodeOpConfig, String> {
        let mut ops = NodeOpConfig::mission_global();
        for part in spec.split(',') {
            let Some((key, value)) = part.split_once('=') else {
                return Err(format!(
                    "node op `{part}` must look like key=point (keys: cam, map, plan, ctrl; \
                     points: big@2.2, little@1.4, 3c@1.5)"
                ));
            };
            let point = OperatingPoint::parse(value.trim())?;
            match key.trim() {
                "cam" => ops.camera = Some(point),
                "map" => ops.mapping = Some(point),
                "plan" => ops.planning = Some(point),
                "ctrl" => ops.control = Some(point),
                other => {
                    return Err(format!(
                        "unknown node key `{other}` (expected cam, map, plan or ctrl)"
                    ))
                }
            }
        }
        ops.validate()?;
        Ok(ops)
    }
}

impl ToJson for NodeOpConfig {
    fn to_json(&self) -> Json {
        Json::object()
            .field("camera", self.camera.map(|p| p.to_json()))
            .field("mapping", self.mapping.map(|p| p.to_json()))
            .field("planning", self.planning.map(|p| p.to_json()))
            .field("control", self.control.map(|p| p.to_json()))
    }
}

impl FromJson for NodeOpConfig {
    /// Accepts the structured form (what [`ToJson`] emits; omitted nodes stay
    /// mission-global) or the CLI string form (`"plan=big@2.2"`) routed
    /// through [`NodeOpConfig::parse`].
    fn from_json(json: &Json) -> Result<Self, String> {
        if let Some(s) = json.as_str() {
            return NodeOpConfig::parse(s);
        }
        json.check_fields(&["camera", "mapping", "planning", "control"])?;
        let ops = NodeOpConfig {
            camera: json.parse_opt_field("camera")?,
            mapping: json.parse_opt_field("mapping")?,
            planning: json.parse_opt_field("planning")?,
            control: json.parse_opt_field("control")?,
        };
        ops.validate()?;
        Ok(ops)
    }
}

/// What the closed loop does when the collision monitor finds the remaining
/// plan obstructed (PR 3).
///
/// The paper charges planning latency at zero velocity: the vehicle hovers
/// while the mission planner runs, which is the most expensive place to
/// spend compute time. [`ReplanMode::PlanInMotion`] makes the alternative a
/// schedulable policy: the [`crate::flight::PlannerNode`] runs the planning
/// kernels across executor rounds *while the vehicle keeps flying the stale
/// plan*, then swaps the fresh trajectory in through the latched plan topic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReplanMode {
    /// A collision alert ends the episode; the application re-plans while the
    /// vehicle hovers (the paper's policy, and the historical behaviour —
    /// bit-identical under [`RateConfig::legacy`]).
    #[default]
    HoverToPlan,
    /// A collision alert starts an in-flight planning job: the planner
    /// charges `MotionPlanning`/`PathSmoothing` latency over successive
    /// rounds while the tracker keeps flying the stale plan, then publishes
    /// the fresh trajectory on the plan topic.
    PlanInMotion,
}

impl ReplanMode {
    /// The CLI/figure label of this mode.
    pub fn label(&self) -> &'static str {
        match self {
            ReplanMode::HoverToPlan => "hover-to-plan",
            ReplanMode::PlanInMotion => "plan-in-motion",
        }
    }

    /// Parses the CLI/wire spelling: `hover-to-plan` (alias `hover`) or
    /// `plan-in-motion` (alias `motion`). Shared by the harness
    /// `--replan-mode` flag and the `mav-server` job spec.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted values.
    pub fn parse(value: &str) -> Result<ReplanMode, String> {
        match value.trim() {
            "hover-to-plan" | "hover" => Ok(ReplanMode::HoverToPlan),
            "plan-in-motion" | "motion" => Ok(ReplanMode::PlanInMotion),
            other => Err(format!(
                "unknown replan mode `{other}` (expected hover-to-plan or plan-in-motion)"
            )),
        }
    }
}

impl std::fmt::Display for ReplanMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl ToJson for ReplanMode {
    fn to_json(&self) -> Json {
        Json::String(self.label().to_string())
    }
}

impl FromJson for ReplanMode {
    fn from_json(json: &Json) -> Result<Self, String> {
        let label = json
            .as_str()
            .ok_or_else(|| format!("expected a replan-mode string, got {json}"))?;
        ReplanMode::parse(label)
    }
}

/// How the vehicle reacts when a threat enters the Eq. 2 stopping distance
/// (PR 9, ROADMAP brake-policy carry-over).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BrakePolicy {
    /// The historical Eq. 2 stop: any threat inside the stopping distance
    /// zeroes the velocity command outright (bit-identical default).
    #[default]
    Binary,
    /// Graded slow-down: the command is scaled by `distance / stopping
    /// distance`, so the vehicle sheds speed proportionally to how deep the
    /// threat sits inside the braking envelope instead of slamming to zero.
    Graded,
}

/// Fraction of the stopping distance that stays a hard-stop core under
/// [`BrakePolicy::Graded`]. A purely proportional slow-down decays the
/// command geometrically but never to zero, so over enough control ticks
/// (e.g. a planning job at its timeout budget) the vehicle creeps inside
/// the obstacle's collision radius; the core makes the graded ramp land on
/// a full stop while still well clear of the threat.
pub const GRADED_HARD_STOP_FRACTION: f64 = 0.5;

impl BrakePolicy {
    /// The CLI/figure label of this policy.
    pub fn label(&self) -> &'static str {
        match self {
            BrakePolicy::Binary => "binary",
            BrakePolicy::Graded => "graded",
        }
    }

    /// The velocity-command scale for a threat at `distance` metres with an
    /// Eq. 2 stopping distance of `stop` metres (callers only consult this
    /// inside the braking envelope, `distance < stop`). Binary stops
    /// outright; graded ramps linearly from full speed at the envelope edge
    /// down to a full stop at the [`GRADED_HARD_STOP_FRACTION`] core.
    pub fn brake_factor(&self, distance: f64, stop: f64) -> f64 {
        match self {
            BrakePolicy::Binary => 0.0,
            BrakePolicy::Graded => {
                let core = GRADED_HARD_STOP_FRACTION * stop;
                ((distance - core) / (stop - core).max(f64::EPSILON)).clamp(0.0, 1.0)
            }
        }
    }
}

impl std::fmt::Display for BrakePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl BrakePolicy {
    /// Parses the CLI/wire spelling: `binary` or `graded`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted values.
    pub fn parse(value: &str) -> Result<BrakePolicy, String> {
        match value.trim() {
            "binary" => Ok(BrakePolicy::Binary),
            "graded" => Ok(BrakePolicy::Graded),
            other => Err(format!(
                "unknown brake policy `{other}` (expected binary or graded)"
            )),
        }
    }
}

impl ToJson for BrakePolicy {
    fn to_json(&self) -> Json {
        Json::String(self.label().to_string())
    }
}

impl FromJson for BrakePolicy {
    fn from_json(json: &Json) -> Result<Self, String> {
        let label = json
            .as_str()
            .ok_or_else(|| format!("expected a brake-policy string, got {json}"))?;
        BrakePolicy::parse(label)
    }
}

/// Degraded-mode responses of the flight stack (PR 9). All off by default:
/// the default mission flies exactly the pre-fault-era code paths, pinned by
/// `tests/golden_legacy.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationConfig {
    /// Stale-perception watchdog: when the path tracker sees no fresh depth
    /// frame for longer than the grace interval, it decays the Eq. 2
    /// velocity cap in proportion to the sensing age instead of flying blind
    /// on the last cap.
    pub perception_watchdog: bool,
    /// Grace multiplier on the expected sensing interval before the watchdog
    /// engages (the tracker tolerates this many nominal frame periods of
    /// silence).
    pub stale_grace_factor: f64,
    /// Abandon an in-motion planning job whose charged latency exceeds this
    /// budget, falling back to the hover-to-plan path (`None`: never).
    pub plan_timeout_secs: Option<f64>,
    /// How the vehicle brakes for threats inside the stopping distance.
    pub brake_policy: BrakePolicy,
    /// Partial-trajectory splicing on replan: graft the fresh segment onto
    /// the still-collision-free prefix of the current plan instead of
    /// replacing the whole trajectory.
    pub plan_splicing: bool,
}

impl DegradationConfig {
    /// Every response off: the historical fly-blind behaviour.
    pub fn off() -> Self {
        DegradationConfig {
            perception_watchdog: false,
            stale_grace_factor: 2.0,
            plan_timeout_secs: None,
            brake_policy: BrakePolicy::Binary,
            plan_splicing: false,
        }
    }

    /// The full defensive stack: watchdog + planner-timeout fallback +
    /// graded braking (splicing stays opt-in).
    pub fn defensive() -> Self {
        DegradationConfig {
            perception_watchdog: true,
            stale_grace_factor: 2.0,
            plan_timeout_secs: Some(4.0),
            brake_policy: BrakePolicy::Graded,
            plan_splicing: false,
        }
    }

    /// Whether every response is off (the bit-identical default).
    pub fn is_off(&self) -> bool {
        !self.perception_watchdog
            && self.plan_timeout_secs.is_none()
            && self.brake_policy == BrakePolicy::Binary
            && !self.plan_splicing
    }

    /// Enables the stale-perception watchdog (builder style).
    pub fn with_watchdog(mut self) -> Self {
        self.perception_watchdog = true;
        self
    }

    /// Sets the in-motion planning job budget (builder style).
    pub fn with_plan_timeout(mut self, secs: f64) -> Self {
        self.plan_timeout_secs = Some(secs);
        self
    }

    /// Sets the brake policy (builder style).
    pub fn with_brake_policy(mut self, policy: BrakePolicy) -> Self {
        self.brake_policy = policy;
        self
    }

    /// Enables partial-trajectory splicing on replan (builder style).
    pub fn with_plan_splicing(mut self) -> Self {
        self.plan_splicing = true;
        self
    }

    /// A compact label for reports: `off`, or the enabled responses joined
    /// with `+` (e.g. `watchdog+graded`).
    pub fn label(&self) -> String {
        if self.is_off() {
            return "off".into();
        }
        let mut parts: Vec<&str> = Vec::new();
        if self.perception_watchdog {
            parts.push("watchdog");
        }
        if self.plan_timeout_secs.is_some() {
            parts.push("plan-timeout");
        }
        if self.brake_policy == BrakePolicy::Graded {
            parts.push("graded");
        }
        if self.plan_splicing {
            parts.push("splicing");
        }
        parts.join("+")
    }

    /// Validates the responses.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message for the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.stale_grace_factor.is_finite() && self.stale_grace_factor >= 1.0) {
            return Err(format!(
                "stale_grace_factor must be >= 1, got {}",
                self.stale_grace_factor
            ));
        }
        if let Some(secs) = self.plan_timeout_secs {
            if !(secs.is_finite() && secs > 0.0) {
                return Err(format!("plan_timeout_secs must be positive, got {secs}"));
            }
        }
        Ok(())
    }
}

impl Default for DegradationConfig {
    fn default() -> Self {
        DegradationConfig::off()
    }
}

impl ToJson for DegradationConfig {
    fn to_json(&self) -> Json {
        Json::object()
            .field("perception_watchdog", self.perception_watchdog)
            .field("stale_grace_factor", self.stale_grace_factor)
            .field("plan_timeout_secs", self.plan_timeout_secs)
            .field("brake_policy", self.brake_policy.to_json())
            .field("plan_splicing", self.plan_splicing)
    }
}

impl FromJson for DegradationConfig {
    /// Reads a degradation description; omitted fields keep the
    /// [`DegradationConfig::off`] values, so a sparse spec only names the
    /// responses it enables.
    fn from_json(json: &Json) -> Result<Self, String> {
        json.check_fields(&[
            "perception_watchdog",
            "stale_grace_factor",
            "plan_timeout_secs",
            "brake_policy",
            "plan_splicing",
        ])?;
        let base = DegradationConfig::off();
        let config = DegradationConfig {
            perception_watchdog: json
                .parse_field_or("perception_watchdog", base.perception_watchdog)?,
            stale_grace_factor: json
                .parse_field_or("stale_grace_factor", base.stale_grace_factor)?,
            plan_timeout_secs: json.parse_opt_field("plan_timeout_secs")?,
            brake_policy: json.parse_field_or("brake_policy", base.brake_policy)?,
            plan_splicing: json.parse_field_or("plan_splicing", base.plan_splicing)?,
        };
        config.validate()?;
        Ok(config)
    }
}

/// How the OctoMap resolution is chosen during the mission (the paper's
/// energy case study, Fig. 19).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ResolutionPolicy {
    /// A single resolution for the whole mission.
    Static {
        /// Voxel edge length, metres.
        resolution: f64,
    },
    /// Switch between an outdoor (coarse) and indoor (fine) resolution based
    /// on the obstacle density around the vehicle.
    Dynamic {
        /// Resolution used in open space, metres.
        outdoor: f64,
        /// Resolution used in cluttered space, metres.
        indoor: f64,
        /// Obstacle-density threshold (fraction of nearby volume occupied)
        /// above which the indoor resolution is used.
        density_threshold: f64,
    },
}

impl ResolutionPolicy {
    /// The paper's fine static setting (0.15 m).
    pub fn static_fine() -> Self {
        ResolutionPolicy::Static { resolution: 0.15 }
    }

    /// The paper's coarse static setting (0.80 m).
    pub fn static_coarse() -> Self {
        ResolutionPolicy::Static { resolution: 0.80 }
    }

    /// The paper's dynamic setting: 0.80 m outdoors, 0.15 m indoors.
    pub fn dynamic_default() -> Self {
        ResolutionPolicy::Dynamic {
            outdoor: 0.80,
            indoor: 0.15,
            density_threshold: 0.02,
        }
    }

    /// The resolution to use given the local obstacle density.
    pub fn resolution_for_density(&self, density: f64) -> f64 {
        match *self {
            ResolutionPolicy::Static { resolution } => resolution,
            ResolutionPolicy::Dynamic {
                outdoor,
                indoor,
                density_threshold,
            } => {
                if density >= density_threshold {
                    indoor
                } else {
                    outdoor
                }
            }
        }
    }

    /// The initial resolution (before any density observation).
    pub fn initial_resolution(&self) -> f64 {
        match *self {
            ResolutionPolicy::Static { resolution } => resolution,
            ResolutionPolicy::Dynamic { outdoor, .. } => outdoor,
        }
    }

    /// Multiplier applied to the OctoMap-generation kernel latency relative to
    /// the Table I baseline (profiled at ~0.5 m): finer voxels mean more
    /// leaf updates per ray. The paper's Fig. 18 measures a ≈4.5X processing
    /// time swing across a 6.5X resolution change; a 1/resolution dependence
    /// (normalised at 0.5 m) reproduces that swing.
    pub fn octomap_cost_multiplier(resolution: f64) -> f64 {
        (0.5 / resolution.max(1e-3)).clamp(0.2, 8.0)
    }
}

impl ToJson for ResolutionPolicy {
    fn to_json(&self) -> Json {
        match *self {
            ResolutionPolicy::Static { resolution } => Json::object()
                .field("kind", "static")
                .field("resolution", resolution),
            ResolutionPolicy::Dynamic {
                outdoor,
                indoor,
                density_threshold,
            } => Json::object()
                .field("kind", "dynamic")
                .field("outdoor", outdoor)
                .field("indoor", indoor)
                .field("density_threshold", density_threshold),
        }
    }
}

impl FromJson for ResolutionPolicy {
    /// Accepts the tagged form [`ToJson`] emits (`{"kind": "static", …}` /
    /// `{"kind": "dynamic", …}`) or a bare number as shorthand for a static
    /// resolution.
    fn from_json(json: &Json) -> Result<Self, String> {
        if let Some(resolution) = json.as_f64() {
            if !(resolution.is_finite() && resolution > 0.0) {
                return Err(format!("resolution must be positive, got {resolution}"));
            }
            return Ok(ResolutionPolicy::Static { resolution });
        }
        let kind: String = json.parse_field("kind")?;
        match kind.as_str() {
            "static" => {
                json.check_fields(&["kind", "resolution"])?;
                let resolution: f64 = json.parse_field("resolution")?;
                if !(resolution.is_finite() && resolution > 0.0) {
                    return Err(format!("resolution: must be positive, got {resolution}"));
                }
                Ok(ResolutionPolicy::Static { resolution })
            }
            "dynamic" => {
                json.check_fields(&["kind", "outdoor", "indoor", "density_threshold"])?;
                let policy = ResolutionPolicy::Dynamic {
                    outdoor: json.parse_field("outdoor")?,
                    indoor: json.parse_field("indoor")?,
                    density_threshold: json.parse_field("density_threshold")?,
                };
                if let ResolutionPolicy::Dynamic {
                    outdoor, indoor, ..
                } = policy
                {
                    if !(outdoor.is_finite() && outdoor > 0.0 && indoor.is_finite() && indoor > 0.0)
                    {
                        return Err("outdoor/indoor resolutions must be positive".to_string());
                    }
                }
                Ok(policy)
            }
            other => Err(format!(
                "unknown resolution-policy kind `{other}` (expected static or dynamic)"
            )),
        }
    }
}

/// Full configuration of one closed-loop mission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissionConfig {
    /// Which benchmark application to run.
    pub application: ApplicationId,
    /// Companion-computer operating point.
    pub operating_point: OperatingPoint,
    /// Optional cloud offload (the sensor-cloud case study).
    pub cloud: Option<CloudConfig>,
    /// Airframe.
    pub quadrotor: QuadrotorConfig,
    /// Battery pack.
    pub battery: BatteryConfig,
    /// Environment generator configuration.
    pub environment: EnvironmentConfig,
    /// Depth camera configuration.
    pub camera: DepthCameraConfig,
    /// Standard deviation of depth-image noise, metres (Table II).
    pub depth_noise_std: f64,
    /// OctoMap resolution policy (Fig. 19).
    pub resolution_policy: ResolutionPolicy,
    /// Hard mission time budget, seconds; exceeding it fails the mission.
    pub time_budget_secs: f64,
    /// Stopping-distance budget used in Eq. 2, metres.
    pub stopping_distance: f64,
    /// Application-level cruise velocity cap, m/s (the mission planner never
    /// commands more than this even if Eq. 2 allows it).
    pub cruise_velocity: f64,
    /// Physics integration step, seconds.
    pub physics_dt: f64,
    /// Per-node rates of the closed-loop graph (PR 2). The default,
    /// [`RateConfig::legacy`], reproduces the historical sequential loop.
    pub rates: RateConfig,
    /// What the closed loop does on a collision alert (PR 3). The default,
    /// [`ReplanMode::HoverToPlan`], reproduces the historical
    /// end-the-episode-and-hover behaviour.
    pub replan_mode: ReplanMode,
    /// How executor rounds charge latency (PR 5): the default,
    /// [`ExecModel::Serial`], sums node latencies (the paper's accounting,
    /// bit-identical to history); [`ExecModel::Pipelined`] charges the
    /// critical path over pipeline stages — the camera captures the next
    /// frame while the mapper integrates the last one.
    pub exec_model: ExecModel,
    /// Per-node operating points of the flight graph (PR 5). The default,
    /// [`NodeOpConfig::mission_global`], charges every node at
    /// [`MissionConfig::operating_point`].
    pub node_ops: NodeOpConfig,
    /// Worker threads for OctoMap scan insertion (PR 6). `1` (the default)
    /// takes the serial path; higher values partition each scan's per-voxel
    /// delta map across threads. Every setting produces a bit-identical map
    /// (the parallel path is pinned to the serial one), so this is purely a
    /// wall-clock knob for multi-core hosts.
    pub map_insert_threads: usize,
    /// Seeded fault intensities for this mission (PR 9). The default,
    /// [`FaultPlan::none`], compiles to no injector at all, leaving every
    /// historical code path untouched.
    pub fault_plan: FaultPlan,
    /// Degraded-mode responses of the flight stack (PR 9). The default,
    /// [`DegradationConfig::off`], is the historical fly-blind behaviour.
    pub degradation: DegradationConfig,
    /// RNG seed shared by all stochastic components.
    pub seed: u64,
}

impl MissionConfig {
    /// A sensible default configuration for the given application: the
    /// DJI Matrice 100 with its TB47 battery at the reference operating point
    /// in that application's natural environment.
    pub fn new(application: ApplicationId) -> Self {
        let environment = match application {
            ApplicationId::Scanning => EnvironmentConfig::open_field(),
            ApplicationId::AerialPhotography => EnvironmentConfig::park_with_subject(),
            ApplicationId::PackageDelivery => EnvironmentConfig::urban_outdoor(),
            ApplicationId::Mapping3D => EnvironmentConfig::indoor_outdoor(),
            ApplicationId::SearchAndRescue => EnvironmentConfig::disaster_site(),
        };
        MissionConfig {
            application,
            operating_point: OperatingPoint::reference(),
            cloud: None,
            quadrotor: QuadrotorConfig::dji_matrice_100(),
            battery: BatteryConfig::matrice_tb47(),
            environment,
            camera: DepthCameraConfig::default(),
            depth_noise_std: 0.0,
            resolution_policy: ResolutionPolicy::Static { resolution: 0.5 },
            time_budget_secs: 1800.0,
            stopping_distance: 10.0,
            cruise_velocity: 8.0,
            physics_dt: 0.05,
            rates: RateConfig::legacy(),
            replan_mode: ReplanMode::default(),
            exec_model: ExecModel::default(),
            node_ops: NodeOpConfig::mission_global(),
            map_insert_threads: 1,
            fault_plan: FaultPlan::none(),
            degradation: DegradationConfig::off(),
            seed: 42,
        }
    }

    /// Overrides the operating point (builder style).
    pub fn with_operating_point(mut self, point: OperatingPoint) -> Self {
        self.operating_point = point;
        self
    }

    /// Overrides the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.environment.seed = seed;
        self
    }

    /// Overrides the depth noise (builder style).
    pub fn with_depth_noise(mut self, std_dev: f64) -> Self {
        self.depth_noise_std = std_dev.max(0.0);
        self
    }

    /// Overrides the resolution policy (builder style).
    pub fn with_resolution_policy(mut self, policy: ResolutionPolicy) -> Self {
        self.resolution_policy = policy;
        self
    }

    /// Attaches a cloud offload configuration (builder style).
    pub fn with_cloud(mut self, cloud: CloudConfig) -> Self {
        self.cloud = Some(cloud);
        self
    }

    /// Overrides the closed-loop node rates (builder style).
    pub fn with_rates(mut self, rates: RateConfig) -> Self {
        self.rates = rates;
        self
    }

    /// Overrides the collision-alert replanning policy (builder style).
    pub fn with_replan_mode(mut self, mode: ReplanMode) -> Self {
        self.replan_mode = mode;
        self
    }

    /// Overrides the executor's latency-charging model (builder style).
    pub fn with_exec_model(mut self, model: ExecModel) -> Self {
        self.exec_model = model;
        self
    }

    /// Overrides the per-node operating points (builder style).
    pub fn with_node_ops(mut self, node_ops: NodeOpConfig) -> Self {
        self.node_ops = node_ops;
        self
    }

    /// Overrides the OctoMap insertion worker count (builder style).
    pub fn with_map_insert_threads(mut self, threads: usize) -> Self {
        self.map_insert_threads = threads;
        self
    }

    /// Overrides the fault plan (builder style).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Overrides the degraded-mode responses (builder style).
    pub fn with_degradation(mut self, degradation: DegradationConfig) -> Self {
        self.degradation = degradation;
        self
    }

    /// A scaled-down configuration for fast unit/integration testing: a small
    /// world, a coarse camera and map, and short distances. The physics and
    /// kernels are identical — only the scenario is smaller.
    pub fn fast_test(application: ApplicationId) -> Self {
        let mut cfg = MissionConfig::new(application);
        cfg.environment.extent = cfg.environment.extent.min(45.0);
        cfg.environment.obstacle_density = cfg.environment.obstacle_density.min(1.5);
        cfg.camera = DepthCameraConfig {
            width: 16,
            height: 12,
            ..DepthCameraConfig::default()
        };
        cfg.resolution_policy = ResolutionPolicy::Static { resolution: 0.8 };
        cfg.time_budget_secs = 900.0;
        cfg
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message for the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        self.quadrotor.validate()?;
        if self.physics_dt <= 0.0 || self.physics_dt > 1.0 {
            return Err(format!(
                "physics_dt must be in (0, 1], got {}",
                self.physics_dt
            ));
        }
        if self.time_budget_secs <= 0.0 {
            return Err("time budget must be positive".to_string());
        }
        if self.stopping_distance <= 0.0 {
            return Err("stopping distance must be positive".to_string());
        }
        if self.cruise_velocity <= 0.0 {
            return Err("cruise velocity must be positive".to_string());
        }
        if self.depth_noise_std < 0.0 {
            return Err("depth noise std cannot be negative".to_string());
        }
        if self.map_insert_threads == 0 {
            return Err("map_insert_threads must be at least 1".to_string());
        }
        self.rates.validate()?;
        self.node_ops.validate()?;
        self.fault_plan.validate()?;
        self.degradation.validate()?;
        Ok(())
    }

    /// Starts a [`MissionConfigBuilder`] from this application's default
    /// configuration (the same baseline as [`MissionConfig::new`]).
    pub fn builder(application: ApplicationId) -> MissionConfigBuilder {
        MissionConfigBuilder {
            config: MissionConfig::new(application),
        }
    }
}

impl ToJson for MissionConfig {
    fn to_json(&self) -> Json {
        Json::object()
            .field("application", self.application.to_json())
            .field("operating_point", self.operating_point.to_json())
            .field("cloud", self.cloud.as_ref().map(ToJson::to_json))
            .field("quadrotor", self.quadrotor.to_json())
            .field("battery", self.battery.to_json())
            .field("environment", self.environment.to_json())
            .field("camera", self.camera.to_json())
            .field("depth_noise_std", self.depth_noise_std)
            .field("resolution_policy", self.resolution_policy.to_json())
            .field("time_budget_secs", self.time_budget_secs)
            .field("stopping_distance", self.stopping_distance)
            .field("cruise_velocity", self.cruise_velocity)
            .field("physics_dt", self.physics_dt)
            .field("rates", self.rates.to_json())
            .field("replan_mode", self.replan_mode.to_json())
            .field("exec_model", self.exec_model.to_json())
            .field("node_ops", self.node_ops.to_json())
            .field("map_insert_threads", self.map_insert_threads)
            .field("fault_plan", self.fault_plan.to_json())
            .field("degradation", self.degradation.to_json())
            .field("seed", self.seed)
    }
}

impl FromJson for MissionConfig {
    /// Reads a mission description. Only `application` is required; every
    /// other field defaults from [`MissionConfig::new`] for that application,
    /// so a sparse wire spec names exactly the knobs it turns. Unknown fields
    /// are rejected (a typoed knob must not silently run with defaults), and
    /// the assembled configuration is [`MissionConfig::validate`]d.
    fn from_json(json: &Json) -> Result<Self, String> {
        json.check_fields(&[
            "application",
            "operating_point",
            "cloud",
            "quadrotor",
            "battery",
            "environment",
            "camera",
            "depth_noise_std",
            "resolution_policy",
            "time_budget_secs",
            "stopping_distance",
            "cruise_velocity",
            "physics_dt",
            "rates",
            "replan_mode",
            "exec_model",
            "node_ops",
            "map_insert_threads",
            "fault_plan",
            "degradation",
            "seed",
        ])?;
        let application: ApplicationId = json.parse_field("application")?;
        let base = MissionConfig::new(application);
        let mut config = MissionConfig {
            application,
            operating_point: json.parse_field_or("operating_point", base.operating_point)?,
            cloud: json.parse_opt_field("cloud")?,
            quadrotor: json.parse_field_or("quadrotor", base.quadrotor)?,
            battery: json.parse_field_or("battery", base.battery)?,
            environment: json.parse_field_or("environment", base.environment)?,
            camera: json.parse_field_or("camera", base.camera)?,
            depth_noise_std: json.parse_field_or("depth_noise_std", base.depth_noise_std)?,
            resolution_policy: json.parse_field_or("resolution_policy", base.resolution_policy)?,
            time_budget_secs: json.parse_field_or("time_budget_secs", base.time_budget_secs)?,
            stopping_distance: json.parse_field_or("stopping_distance", base.stopping_distance)?,
            cruise_velocity: json.parse_field_or("cruise_velocity", base.cruise_velocity)?,
            physics_dt: json.parse_field_or("physics_dt", base.physics_dt)?,
            rates: json.parse_field_or("rates", base.rates)?,
            replan_mode: json.parse_field_or("replan_mode", base.replan_mode)?,
            exec_model: json.parse_field_or("exec_model", base.exec_model)?,
            node_ops: json.parse_field_or("node_ops", base.node_ops)?,
            map_insert_threads: json
                .parse_field_or("map_insert_threads", base.map_insert_threads)?,
            fault_plan: json.parse_field_or("fault_plan", base.fault_plan)?,
            degradation: json.parse_field_or("degradation", base.degradation)?,
            seed: base.seed,
        };
        // `seed` mirrors `with_seed`: the mission seed also drives the
        // environment generator unless the spec pins `environment.seed`
        // itself.
        if let Some(seed) = json.parse_opt_field::<u64>("seed")? {
            config.seed = seed;
            if json
                .get("environment")
                .map(|e| e.get("seed").is_none())
                .unwrap_or(true)
            {
                config.environment.seed = seed;
            }
        }
        config.validate()?;
        Ok(config)
    }
}

/// Step-by-step construction of a [`MissionConfig`] with shared-parser
/// setters and a validating [`MissionConfigBuilder::build`].
///
/// Typed setters never fail; the `*_spec` setters parse the same CLI
/// spellings the harness flags use (`--rates`, `--node-op`, `--faults`, …)
/// and fail fast on bad input. `build()` runs [`MissionConfig::validate`] so
/// an out-of-range combination cannot escape the builder.
///
/// # Example
///
/// ```
/// use mav_compute::ApplicationId;
/// use mav_core::MissionConfig;
///
/// let config = MissionConfig::builder(ApplicationId::PackageDelivery)
///     .seed(7)
///     .rates_spec("cam=15,map=4")
///     .unwrap()
///     .faults_spec("cam-drop=0.1,plan-timeout=2x")
///     .unwrap()
///     .build()
///     .unwrap();
/// assert_eq!(config.rates.camera_fps, Some(15.0));
/// assert_eq!(config.fault_plan.plan_timeout_factor, 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct MissionConfigBuilder {
    config: MissionConfig,
}

impl MissionConfigBuilder {
    /// Sets the companion-computer operating point.
    pub fn operating_point(mut self, point: OperatingPoint) -> Self {
        self.config.operating_point = point;
        self
    }

    /// Parses an operating point from the CLI spelling (`big@2.2`, `3c@1.5`).
    ///
    /// # Errors
    ///
    /// Propagates the [`OperatingPoint::parse`] message.
    pub fn operating_point_spec(mut self, spec: &str) -> Result<Self, String> {
        self.config.operating_point = OperatingPoint::parse(spec)?;
        Ok(self)
    }

    /// Attaches a cloud offload configuration.
    pub fn cloud(mut self, cloud: CloudConfig) -> Self {
        self.config.cloud = Some(cloud);
        self
    }

    /// Replaces the airframe.
    pub fn quadrotor(mut self, quadrotor: QuadrotorConfig) -> Self {
        self.config.quadrotor = quadrotor;
        self
    }

    /// Replaces the battery pack.
    pub fn battery(mut self, battery: BatteryConfig) -> Self {
        self.config.battery = battery;
        self
    }

    /// Replaces the environment generator configuration.
    pub fn environment(mut self, environment: EnvironmentConfig) -> Self {
        self.config.environment = environment;
        self
    }

    /// Replaces the depth camera configuration.
    pub fn camera(mut self, camera: DepthCameraConfig) -> Self {
        self.config.camera = camera;
        self
    }

    /// Sets the depth-noise standard deviation, metres.
    pub fn depth_noise_std(mut self, std_dev: f64) -> Self {
        self.config.depth_noise_std = std_dev;
        self
    }

    /// Sets the OctoMap resolution policy.
    pub fn resolution_policy(mut self, policy: ResolutionPolicy) -> Self {
        self.config.resolution_policy = policy;
        self
    }

    /// Sets the mission time budget, seconds.
    pub fn time_budget_secs(mut self, secs: f64) -> Self {
        self.config.time_budget_secs = secs;
        self
    }

    /// Sets the Eq. 2 stopping-distance budget, metres.
    pub fn stopping_distance(mut self, metres: f64) -> Self {
        self.config.stopping_distance = metres;
        self
    }

    /// Sets the application-level cruise velocity cap, m/s.
    pub fn cruise_velocity(mut self, mps: f64) -> Self {
        self.config.cruise_velocity = mps;
        self
    }

    /// Sets the physics integration step, seconds.
    pub fn physics_dt(mut self, dt: f64) -> Self {
        self.config.physics_dt = dt;
        self
    }

    /// Sets the closed-loop node rates.
    pub fn rates(mut self, rates: RateConfig) -> Self {
        self.config.rates = rates;
        self
    }

    /// Parses node rates from the CLI spelling (`cam=15,map=4`).
    ///
    /// # Errors
    ///
    /// Propagates the [`RateConfig::parse`] message.
    pub fn rates_spec(mut self, spec: &str) -> Result<Self, String> {
        self.config.rates = RateConfig::parse(spec)?;
        Ok(self)
    }

    /// Sets the collision-alert replanning policy.
    pub fn replan_mode(mut self, mode: ReplanMode) -> Self {
        self.config.replan_mode = mode;
        self
    }

    /// Sets the executor latency-charging model.
    pub fn exec_model(mut self, model: ExecModel) -> Self {
        self.config.exec_model = model;
        self
    }

    /// Sets the per-node operating points.
    pub fn node_ops(mut self, node_ops: NodeOpConfig) -> Self {
        self.config.node_ops = node_ops;
        self
    }

    /// Parses per-node operating points from the CLI spelling
    /// (`plan=big@2.2,cam=little@1.4`).
    ///
    /// # Errors
    ///
    /// Propagates the [`NodeOpConfig::parse`] message.
    pub fn node_ops_spec(mut self, spec: &str) -> Result<Self, String> {
        self.config.node_ops = NodeOpConfig::parse(spec)?;
        Ok(self)
    }

    /// Sets the OctoMap insertion worker count.
    pub fn map_insert_threads(mut self, threads: usize) -> Self {
        self.config.map_insert_threads = threads;
        self
    }

    /// Sets the fault plan.
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.config.fault_plan = plan;
        self
    }

    /// Parses a fault plan from the CLI spelling
    /// (`cam-drop=0.1,plan-timeout=2x`).
    ///
    /// # Errors
    ///
    /// Propagates the [`FaultPlan::parse`] message.
    pub fn faults_spec(mut self, spec: &str) -> Result<Self, String> {
        self.config.fault_plan = FaultPlan::parse(spec)?;
        Ok(self)
    }

    /// Sets the degraded-mode responses.
    pub fn degradation(mut self, degradation: DegradationConfig) -> Self {
        self.config.degradation = degradation;
        self
    }

    /// Sets the mission seed (also reseeding the environment generator, like
    /// [`MissionConfig::with_seed`]).
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self.config.environment.seed = seed;
        self
    }

    /// Finishes the build, running [`MissionConfig::validate`].
    ///
    /// # Errors
    ///
    /// Returns the first validation failure.
    pub fn build(self) -> Result<MissionConfig, String> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_for_every_application() {
        for &app in ApplicationId::all() {
            assert!(
                MissionConfig::new(app).validate().is_ok(),
                "{app} default invalid"
            );
            assert!(MissionConfig::fast_test(app).validate().is_ok());
        }
    }

    #[test]
    fn builders_override_fields() {
        let cfg = MissionConfig::new(ApplicationId::PackageDelivery)
            .with_operating_point(OperatingPoint::slowest())
            .with_seed(7)
            .with_depth_noise(1.5)
            .with_resolution_policy(ResolutionPolicy::static_fine());
        assert_eq!(cfg.operating_point, OperatingPoint::slowest());
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.environment.seed, 7);
        assert_eq!(cfg.depth_noise_std, 1.5);
        assert_eq!(cfg.resolution_policy, ResolutionPolicy::static_fine());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = MissionConfig::new(ApplicationId::Scanning);
        cfg.physics_dt = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = MissionConfig::new(ApplicationId::Scanning);
        cfg.cruise_velocity = -1.0;
        assert!(cfg.validate().is_err());
        let mut cfg = MissionConfig::new(ApplicationId::Scanning);
        cfg.time_budget_secs = 0.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn resolution_policy_switches_on_density() {
        let dynamic = ResolutionPolicy::dynamic_default();
        assert_eq!(dynamic.resolution_for_density(0.0), 0.80);
        assert_eq!(dynamic.resolution_for_density(0.5), 0.15);
        assert_eq!(dynamic.initial_resolution(), 0.80);
        let fixed = ResolutionPolicy::static_fine();
        assert_eq!(fixed.resolution_for_density(0.0), 0.15);
        assert_eq!(fixed.resolution_for_density(1.0), 0.15);
    }

    #[test]
    fn rate_config_legacy_is_tick_synchronous() {
        let legacy = RateConfig::legacy();
        assert!(legacy.is_legacy());
        assert!(legacy.camera_period().is_zero());
        assert!(legacy.mapping_period().is_zero());
        assert!(legacy.replan_period().is_zero());
        assert!(legacy.control_period().is_zero());
        assert!(legacy.sensing_interval().is_zero());
        assert!(legacy.validate().is_ok());
    }

    #[test]
    fn rate_config_periods_and_staleness() {
        let rates = RateConfig::legacy()
            .with_camera_fps(20.0)
            .with_mapping_hz(4.0)
            .with_replan_hz(2.0)
            .with_control_hz(50.0);
        assert!(!rates.is_legacy());
        assert!((rates.camera_period().as_millis() - 50.0).abs() < 1e-9);
        assert!((rates.mapping_period().as_millis() - 250.0).abs() < 1e-9);
        assert!((rates.replan_period().as_millis() - 500.0).abs() < 1e-9);
        assert!((rates.control_period().as_millis() - 20.0).abs() < 1e-9);
        // Staleness = camera interval + mapping interval.
        assert!((rates.sensing_interval().as_millis() - 300.0).abs() < 1e-9);
        assert!(rates.validate().is_ok());
    }

    #[test]
    fn invalid_rates_are_rejected() {
        let bad = RateConfig::legacy().with_camera_fps(0.0);
        assert!(bad.validate().is_err());
        let mut cfg = MissionConfig::new(ApplicationId::Scanning);
        cfg.rates.control_hz = Some(-3.0);
        assert!(cfg.validate().is_err());
        cfg.rates.control_hz = Some(f64::NAN);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn replan_mode_defaults_to_hover_and_overrides() {
        let cfg = MissionConfig::new(ApplicationId::PackageDelivery);
        assert_eq!(cfg.replan_mode, ReplanMode::HoverToPlan);
        let cfg = cfg.with_replan_mode(ReplanMode::PlanInMotion);
        assert_eq!(cfg.replan_mode, ReplanMode::PlanInMotion);
        assert_eq!(ReplanMode::HoverToPlan.label(), "hover-to-plan");
        assert_eq!(format!("{}", ReplanMode::PlanInMotion), "plan-in-motion");
    }

    #[test]
    fn exec_model_defaults_to_serial_and_overrides() {
        let cfg = MissionConfig::new(ApplicationId::PackageDelivery);
        assert_eq!(cfg.exec_model, ExecModel::Serial);
        let cfg = cfg.with_exec_model(ExecModel::Pipelined);
        assert_eq!(cfg.exec_model, ExecModel::Pipelined);
        assert_eq!(ExecModel::Serial.label(), "serial");
        assert_eq!(format!("{}", ExecModel::Pipelined), "pipelined");
    }

    #[test]
    fn node_ops_default_to_mission_global_and_validate() {
        let cfg = MissionConfig::new(ApplicationId::PackageDelivery);
        assert!(cfg.node_ops.is_mission_global());
        assert_eq!(cfg.node_ops.label(), "mission-global");
        assert!(cfg.validate().is_ok());

        let split = NodeOpConfig::big_little();
        assert!(!split.is_mission_global());
        assert_eq!(split.planning.unwrap().cores, 4);
        assert_eq!(split.mapping.unwrap().cores, 2);
        assert_eq!(split.label(), "map=2c@1.5GHz,plan=4c@2.2GHz,ctrl=2c@1.5GHz");
        let cfg = cfg.with_node_ops(split);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.node_ops, split);
    }

    #[test]
    fn invalid_node_ops_are_rejected() {
        let mut cfg = MissionConfig::new(ApplicationId::PackageDelivery);
        cfg.node_ops.planning = Some(OperatingPoint {
            cores: 0,
            frequency: Frequency::from_ghz(1.5),
        });
        assert!(cfg.validate().is_err());
        assert!(NodeOpConfig::big_little().validate().is_ok());
        let builders = NodeOpConfig::mission_global()
            .with_camera(OperatingPoint::little_cluster(Frequency::from_ghz(1.4)))
            .with_mapping(OperatingPoint::little_cluster(Frequency::from_ghz(1.5)))
            .with_planning(OperatingPoint::big_cluster(Frequency::from_ghz(2.2)))
            .with_control(OperatingPoint::little_cluster(Frequency::from_ghz(1.5)));
        assert!(builders.validate().is_ok());
        assert!(!builders.is_mission_global());
    }

    #[test]
    fn fault_and_degradation_default_off_and_validate() {
        let cfg = MissionConfig::new(ApplicationId::PackageDelivery);
        assert!(cfg.fault_plan.is_none());
        assert!(cfg.degradation.is_off());
        assert_eq!(cfg.degradation.brake_policy, BrakePolicy::Binary);
        assert_eq!(cfg.degradation.label(), "off");
        assert!(cfg.validate().is_ok());

        let defensive = DegradationConfig::defensive();
        assert!(!defensive.is_off());
        assert_eq!(defensive.label(), "watchdog+plan-timeout+graded");
        let cfg = cfg
            .with_fault_plan(FaultPlan::parse("cam-drop=0.1,battery-fade=0.2").unwrap())
            .with_degradation(defensive);
        assert!(cfg.validate().is_ok());
        assert!(!cfg.fault_plan.is_none());

        let mut bad = MissionConfig::new(ApplicationId::PackageDelivery);
        bad.fault_plan.battery_fade = 1.5;
        assert!(bad.validate().is_err());
        let mut bad = MissionConfig::new(ApplicationId::PackageDelivery);
        bad.degradation.stale_grace_factor = 0.0;
        assert!(bad.validate().is_err());
        let bad = DegradationConfig::off().with_plan_timeout(-1.0);
        assert!(bad.validate().is_err());
        assert_eq!(BrakePolicy::Graded.label(), "graded");
        assert_eq!(format!("{}", BrakePolicy::Binary), "binary");
        // Binary always stops; graded ramps from full speed at the envelope
        // edge down to a full stop at the hard-stop core (never a creep).
        assert_eq!(BrakePolicy::Binary.brake_factor(4.9, 5.0), 0.0);
        assert_eq!(BrakePolicy::Graded.brake_factor(5.0, 5.0), 1.0);
        let mid = BrakePolicy::Graded.brake_factor(4.0, 5.0);
        assert!(mid > 0.0 && mid < 1.0, "mid-envelope factor {mid}");
        let core = GRADED_HARD_STOP_FRACTION * 5.0;
        assert_eq!(BrakePolicy::Graded.brake_factor(core, 5.0), 0.0);
        assert_eq!(BrakePolicy::Graded.brake_factor(0.1, 5.0), 0.0);
        assert_eq!(
            DegradationConfig::off()
                .with_watchdog()
                .with_brake_policy(BrakePolicy::Graded)
                .with_plan_splicing()
                .label(),
            "watchdog+graded+splicing"
        );
    }

    #[test]
    fn octomap_cost_multiplier_matches_fig18_shape() {
        // Going from 0.15 m to 1.0 m resolution (≈6.5X coarser) must cut the
        // modelled processing time by roughly 3–5X, like Fig. 18.
        let fine = ResolutionPolicy::octomap_cost_multiplier(0.15);
        let coarse = ResolutionPolicy::octomap_cost_multiplier(1.0);
        let ratio = fine / coarse;
        assert!(ratio > 3.0 && ratio < 8.0, "ratio {ratio}");
        // And the baseline at 0.5 m is 1.0 (Table I calibration point).
        assert!((ResolutionPolicy::octomap_cost_multiplier(0.5) - 1.0).abs() < 1e-9);
    }
}
