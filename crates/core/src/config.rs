//! Mission configuration: every knob the MAVBench experiments turn.

use crate::faults::FaultPlan;
use mav_compute::{ApplicationId, CloudConfig, OperatingPoint};
use mav_dynamics::QuadrotorConfig;
use mav_energy::BatteryConfig;
use mav_env::EnvironmentConfig;
use mav_runtime::ExecModel;
use mav_sensors::DepthCameraConfig;
use mav_types::{Frequency, SimDuration};
use serde::{Deserialize, Serialize};

/// Per-node invocation rates of the closed-loop graph (PR 2).
///
/// Every closed-loop node scheduled by the
/// [`Executor`](mav_runtime::Executor) — depth camera, OctoMap update, the
/// collision-monitor/planner pair and the path tracker — has its own period.
/// `None` means *tick-synchronous*: the node runs every executor round, which
/// is exactly the cadence of the historical sequential loop. Setting explicit
/// rates decouples the stages and makes rate-interaction studies (the paper's
/// Fig. 8b SLAM-fps trade-off, control-rate starvation, frame drops under a
/// slow mapper) expressible in configuration instead of code.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct RateConfig {
    /// Depth-camera capture rate, frames per second (`None`: every round).
    pub camera_fps: Option<f64>,
    /// OctoMap-update rate, Hz (`None`: every round, i.e. every frame).
    pub mapping_hz: Option<f64>,
    /// Collision-monitor / replan-trigger rate, Hz (`None`: every round).
    pub replan_hz: Option<f64>,
    /// Path-tracker (control) rate, Hz (`None`: every round).
    pub control_hz: Option<f64>,
}

impl RateConfig {
    /// The compatibility schedule: every node tick-synchronous with the loop,
    /// reproducing the pre-refactor sequential closed loop bit-identically
    /// (enforced by `tests/golden_legacy.rs`).
    pub fn legacy() -> Self {
        RateConfig::default()
    }

    /// Returns `true` when every node is tick-synchronous (the legacy loop).
    pub fn is_legacy(&self) -> bool {
        self.camera_fps.is_none()
            && self.mapping_hz.is_none()
            && self.replan_hz.is_none()
            && self.control_hz.is_none()
    }

    /// Overrides the camera rate (builder style).
    pub fn with_camera_fps(mut self, fps: f64) -> Self {
        self.camera_fps = Some(fps);
        self
    }

    /// Overrides the mapping rate (builder style).
    pub fn with_mapping_hz(mut self, hz: f64) -> Self {
        self.mapping_hz = Some(hz);
        self
    }

    /// Overrides the replan rate (builder style).
    pub fn with_replan_hz(mut self, hz: f64) -> Self {
        self.replan_hz = Some(hz);
        self
    }

    /// Overrides the control rate (builder style).
    pub fn with_control_hz(mut self, hz: f64) -> Self {
        self.control_hz = Some(hz);
        self
    }

    fn period_of(rate: Option<f64>) -> SimDuration {
        match rate {
            Some(hz) => SimDuration::from_secs(1.0 / hz.max(1e-6)),
            None => SimDuration::ZERO,
        }
    }

    /// The depth-camera node period ([`SimDuration::ZERO`]: every round).
    pub fn camera_period(&self) -> SimDuration {
        RateConfig::period_of(self.camera_fps)
    }

    /// The OctoMap node period.
    pub fn mapping_period(&self) -> SimDuration {
        RateConfig::period_of(self.mapping_hz)
    }

    /// The collision-monitor / planner node period.
    pub fn replan_period(&self) -> SimDuration {
        RateConfig::period_of(self.replan_hz)
    }

    /// The path-tracker node period.
    pub fn control_period(&self) -> SimDuration {
        RateConfig::period_of(self.control_hz)
    }

    /// Worst-case sensing staleness added to the Eq. 2 reaction latency δt: a
    /// new obstacle waits up to a full camera period to be observed and up to
    /// a full mapping period to land in the occupancy map. Zero for the
    /// legacy schedule, where perception is tick-synchronous.
    pub fn sensing_interval(&self) -> SimDuration {
        RateConfig::period_of(self.camera_fps) + RateConfig::period_of(self.mapping_hz)
    }

    /// Validates the rates.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message for the first invalid rate.
    pub fn validate(&self) -> Result<(), String> {
        for (name, rate) in [
            ("camera_fps", self.camera_fps),
            ("mapping_hz", self.mapping_hz),
            ("replan_hz", self.replan_hz),
            ("control_hz", self.control_hz),
        ] {
            if let Some(hz) = rate {
                if !(hz.is_finite() && hz > 0.0) {
                    return Err(format!("{name} must be a positive rate, got {hz}"));
                }
            }
        }
        Ok(())
    }
}

/// Per-node operating points of the closed-loop graph (PR 5).
///
/// [`MissionConfig::operating_point`] pins the *whole* companion computer to
/// one (cores, frequency) setting. Real MAV stacks instead map stages to
/// clusters big.LITTLE-style — planning on the big cores at full clock,
/// perception or control parked on the little cluster — and DVFS them
/// independently. This config makes that mapping a mission knob: each field
/// overrides the operating point used to charge the latencies of one node of
/// the flight graph (`None` = the mission-global point, which reproduces the
/// historical accounting bit-for-bit).
///
/// The fields mirror the [`RateConfig`] node keys:
///
/// * `camera` — the depth-camera node. Capture itself carries no Table I
///   kernel cost, so today this field is accepted (and recorded) but scales
///   nothing; it exists so schedules and operating-point maps use one key
///   set.
/// * `mapping` — the OctoMap node's perception kernels (point-cloud
///   generation, map update, collision check, localization). Also used for
///   perception-stage kernels charged outside the graph (e.g. Search and
///   Rescue's detection hook), so "perception on the little cluster" means
///   the same thing in every application.
/// * `planning` — the planner node's kernels (motion planning, smoothing,
///   frontier/lawnmower planning), both for in-flight planning jobs and for
///   the applications' hover-to-plan episodes.
/// * `control` — the path-tracker node's kernels.
///
/// Latency is the only thing a per-node point changes: the compute *power*
/// model still draws at the mission-global operating point (per-cluster
/// power is a ROADMAP follow-on), so per-node DVFS reaches energy through
/// mission time, not watts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NodeOpConfig {
    /// Depth-camera node operating point (`None`: mission-global).
    pub camera: Option<OperatingPoint>,
    /// OctoMap/perception node operating point (`None`: mission-global).
    pub mapping: Option<OperatingPoint>,
    /// Planner node operating point (`None`: mission-global).
    pub planning: Option<OperatingPoint>,
    /// Path-tracker (control) node operating point (`None`: mission-global).
    pub control: Option<OperatingPoint>,
}

impl NodeOpConfig {
    /// The compatibility mapping: every node at the mission-global operating
    /// point (the historical accounting, pinned by `tests/golden_legacy.rs`).
    pub fn mission_global() -> Self {
        NodeOpConfig::default()
    }

    /// Returns `true` when every node uses the mission-global point.
    pub fn is_mission_global(&self) -> bool {
        self.camera.is_none()
            && self.mapping.is_none()
            && self.planning.is_none()
            && self.control.is_none()
    }

    /// The canonical big.LITTLE split used by the per-node DVFS experiment:
    /// planning on the big cluster at full clock, perception and control
    /// parked on the little cluster at 1.5 GHz.
    pub fn big_little() -> Self {
        NodeOpConfig {
            camera: None,
            mapping: Some(OperatingPoint::little_cluster(Frequency::from_ghz(1.5))),
            planning: Some(OperatingPoint::big_cluster(Frequency::from_ghz(2.2))),
            control: Some(OperatingPoint::little_cluster(Frequency::from_ghz(1.5))),
        }
    }

    /// Every kernel-charging node parked on the little cluster at 1.5 GHz —
    /// the degenerate cluster mapping the per-node DVFS experiment compares
    /// [`NodeOpConfig::big_little`] against: identical perception and control
    /// latencies (hence an identical Eq. 2 velocity cap), differing only in
    /// where planning runs.
    pub fn all_little() -> Self {
        let little = OperatingPoint::little_cluster(Frequency::from_ghz(1.5));
        NodeOpConfig {
            camera: None,
            mapping: Some(little),
            planning: Some(little),
            control: Some(little),
        }
    }

    /// Overrides the camera node's point (builder style).
    pub fn with_camera(mut self, point: OperatingPoint) -> Self {
        self.camera = Some(point);
        self
    }

    /// Overrides the mapping node's point (builder style).
    pub fn with_mapping(mut self, point: OperatingPoint) -> Self {
        self.mapping = Some(point);
        self
    }

    /// Overrides the planner node's point (builder style).
    pub fn with_planning(mut self, point: OperatingPoint) -> Self {
        self.planning = Some(point);
        self
    }

    /// Overrides the control node's point (builder style).
    pub fn with_control(mut self, point: OperatingPoint) -> Self {
        self.control = Some(point);
        self
    }

    /// A compact `plan=4c@2.2,map=2c@1.5` label of the overrides (the CLI
    /// syntax), or `"mission-global"` when nothing is overridden.
    pub fn label(&self) -> String {
        let parts: Vec<String> = [
            ("cam", self.camera),
            ("map", self.mapping),
            ("plan", self.planning),
            ("ctrl", self.control),
        ]
        .iter()
        .filter_map(|(key, point)| point.map(|p| format!("{key}={}", p.label())))
        .collect();
        if parts.is_empty() {
            "mission-global".to_string()
        } else {
            parts.join(",")
        }
    }

    /// Validates the per-node points.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message for the first invalid point.
    pub fn validate(&self) -> Result<(), String> {
        for (name, point) in [
            ("camera", self.camera),
            ("mapping", self.mapping),
            ("planning", self.planning),
            ("control", self.control),
        ] {
            if let Some(p) = point {
                if p.cores == 0 {
                    return Err(format!("{name} operating point needs at least one core"));
                }
                let ghz = p.frequency.as_ghz();
                if !(ghz.is_finite() && ghz > 0.0) {
                    return Err(format!(
                        "{name} operating point needs a positive frequency, got {ghz} GHz"
                    ));
                }
            }
        }
        Ok(())
    }
}

/// What the closed loop does when the collision monitor finds the remaining
/// plan obstructed (PR 3).
///
/// The paper charges planning latency at zero velocity: the vehicle hovers
/// while the mission planner runs, which is the most expensive place to
/// spend compute time. [`ReplanMode::PlanInMotion`] makes the alternative a
/// schedulable policy: the [`crate::flight::PlannerNode`] runs the planning
/// kernels across executor rounds *while the vehicle keeps flying the stale
/// plan*, then swaps the fresh trajectory in through the latched plan topic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReplanMode {
    /// A collision alert ends the episode; the application re-plans while the
    /// vehicle hovers (the paper's policy, and the historical behaviour —
    /// bit-identical under [`RateConfig::legacy`]).
    #[default]
    HoverToPlan,
    /// A collision alert starts an in-flight planning job: the planner
    /// charges `MotionPlanning`/`PathSmoothing` latency over successive
    /// rounds while the tracker keeps flying the stale plan, then publishes
    /// the fresh trajectory on the plan topic.
    PlanInMotion,
}

impl ReplanMode {
    /// The CLI/figure label of this mode.
    pub fn label(&self) -> &'static str {
        match self {
            ReplanMode::HoverToPlan => "hover-to-plan",
            ReplanMode::PlanInMotion => "plan-in-motion",
        }
    }
}

impl std::fmt::Display for ReplanMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How the vehicle reacts when a threat enters the Eq. 2 stopping distance
/// (PR 9, ROADMAP brake-policy carry-over).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum BrakePolicy {
    /// The historical Eq. 2 stop: any threat inside the stopping distance
    /// zeroes the velocity command outright (bit-identical default).
    #[default]
    Binary,
    /// Graded slow-down: the command is scaled by `distance / stopping
    /// distance`, so the vehicle sheds speed proportionally to how deep the
    /// threat sits inside the braking envelope instead of slamming to zero.
    Graded,
}

/// Fraction of the stopping distance that stays a hard-stop core under
/// [`BrakePolicy::Graded`]. A purely proportional slow-down decays the
/// command geometrically but never to zero, so over enough control ticks
/// (e.g. a planning job at its timeout budget) the vehicle creeps inside
/// the obstacle's collision radius; the core makes the graded ramp land on
/// a full stop while still well clear of the threat.
pub const GRADED_HARD_STOP_FRACTION: f64 = 0.5;

impl BrakePolicy {
    /// The CLI/figure label of this policy.
    pub fn label(&self) -> &'static str {
        match self {
            BrakePolicy::Binary => "binary",
            BrakePolicy::Graded => "graded",
        }
    }

    /// The velocity-command scale for a threat at `distance` metres with an
    /// Eq. 2 stopping distance of `stop` metres (callers only consult this
    /// inside the braking envelope, `distance < stop`). Binary stops
    /// outright; graded ramps linearly from full speed at the envelope edge
    /// down to a full stop at the [`GRADED_HARD_STOP_FRACTION`] core.
    pub fn brake_factor(&self, distance: f64, stop: f64) -> f64 {
        match self {
            BrakePolicy::Binary => 0.0,
            BrakePolicy::Graded => {
                let core = GRADED_HARD_STOP_FRACTION * stop;
                ((distance - core) / (stop - core).max(f64::EPSILON)).clamp(0.0, 1.0)
            }
        }
    }
}

impl std::fmt::Display for BrakePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Degraded-mode responses of the flight stack (PR 9). All off by default:
/// the default mission flies exactly the pre-fault-era code paths, pinned by
/// `tests/golden_legacy.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradationConfig {
    /// Stale-perception watchdog: when the path tracker sees no fresh depth
    /// frame for longer than the grace interval, it decays the Eq. 2
    /// velocity cap in proportion to the sensing age instead of flying blind
    /// on the last cap.
    pub perception_watchdog: bool,
    /// Grace multiplier on the expected sensing interval before the watchdog
    /// engages (the tracker tolerates this many nominal frame periods of
    /// silence).
    pub stale_grace_factor: f64,
    /// Abandon an in-motion planning job whose charged latency exceeds this
    /// budget, falling back to the hover-to-plan path (`None`: never).
    pub plan_timeout_secs: Option<f64>,
    /// How the vehicle brakes for threats inside the stopping distance.
    pub brake_policy: BrakePolicy,
    /// Partial-trajectory splicing on replan: graft the fresh segment onto
    /// the still-collision-free prefix of the current plan instead of
    /// replacing the whole trajectory.
    pub plan_splicing: bool,
}

impl DegradationConfig {
    /// Every response off: the historical fly-blind behaviour.
    pub fn off() -> Self {
        DegradationConfig {
            perception_watchdog: false,
            stale_grace_factor: 2.0,
            plan_timeout_secs: None,
            brake_policy: BrakePolicy::Binary,
            plan_splicing: false,
        }
    }

    /// The full defensive stack: watchdog + planner-timeout fallback +
    /// graded braking (splicing stays opt-in).
    pub fn defensive() -> Self {
        DegradationConfig {
            perception_watchdog: true,
            stale_grace_factor: 2.0,
            plan_timeout_secs: Some(4.0),
            brake_policy: BrakePolicy::Graded,
            plan_splicing: false,
        }
    }

    /// Whether every response is off (the bit-identical default).
    pub fn is_off(&self) -> bool {
        !self.perception_watchdog
            && self.plan_timeout_secs.is_none()
            && self.brake_policy == BrakePolicy::Binary
            && !self.plan_splicing
    }

    /// Enables the stale-perception watchdog (builder style).
    pub fn with_watchdog(mut self) -> Self {
        self.perception_watchdog = true;
        self
    }

    /// Sets the in-motion planning job budget (builder style).
    pub fn with_plan_timeout(mut self, secs: f64) -> Self {
        self.plan_timeout_secs = Some(secs);
        self
    }

    /// Sets the brake policy (builder style).
    pub fn with_brake_policy(mut self, policy: BrakePolicy) -> Self {
        self.brake_policy = policy;
        self
    }

    /// Enables partial-trajectory splicing on replan (builder style).
    pub fn with_plan_splicing(mut self) -> Self {
        self.plan_splicing = true;
        self
    }

    /// A compact label for reports: `off`, or the enabled responses joined
    /// with `+` (e.g. `watchdog+graded`).
    pub fn label(&self) -> String {
        if self.is_off() {
            return "off".into();
        }
        let mut parts: Vec<&str> = Vec::new();
        if self.perception_watchdog {
            parts.push("watchdog");
        }
        if self.plan_timeout_secs.is_some() {
            parts.push("plan-timeout");
        }
        if self.brake_policy == BrakePolicy::Graded {
            parts.push("graded");
        }
        if self.plan_splicing {
            parts.push("splicing");
        }
        parts.join("+")
    }

    /// Validates the responses.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message for the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.stale_grace_factor.is_finite() && self.stale_grace_factor >= 1.0) {
            return Err(format!(
                "stale_grace_factor must be >= 1, got {}",
                self.stale_grace_factor
            ));
        }
        if let Some(secs) = self.plan_timeout_secs {
            if !(secs.is_finite() && secs > 0.0) {
                return Err(format!("plan_timeout_secs must be positive, got {secs}"));
            }
        }
        Ok(())
    }
}

impl Default for DegradationConfig {
    fn default() -> Self {
        DegradationConfig::off()
    }
}

/// How the OctoMap resolution is chosen during the mission (the paper's
/// energy case study, Fig. 19).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ResolutionPolicy {
    /// A single resolution for the whole mission.
    Static {
        /// Voxel edge length, metres.
        resolution: f64,
    },
    /// Switch between an outdoor (coarse) and indoor (fine) resolution based
    /// on the obstacle density around the vehicle.
    Dynamic {
        /// Resolution used in open space, metres.
        outdoor: f64,
        /// Resolution used in cluttered space, metres.
        indoor: f64,
        /// Obstacle-density threshold (fraction of nearby volume occupied)
        /// above which the indoor resolution is used.
        density_threshold: f64,
    },
}

impl ResolutionPolicy {
    /// The paper's fine static setting (0.15 m).
    pub fn static_fine() -> Self {
        ResolutionPolicy::Static { resolution: 0.15 }
    }

    /// The paper's coarse static setting (0.80 m).
    pub fn static_coarse() -> Self {
        ResolutionPolicy::Static { resolution: 0.80 }
    }

    /// The paper's dynamic setting: 0.80 m outdoors, 0.15 m indoors.
    pub fn dynamic_default() -> Self {
        ResolutionPolicy::Dynamic {
            outdoor: 0.80,
            indoor: 0.15,
            density_threshold: 0.02,
        }
    }

    /// The resolution to use given the local obstacle density.
    pub fn resolution_for_density(&self, density: f64) -> f64 {
        match *self {
            ResolutionPolicy::Static { resolution } => resolution,
            ResolutionPolicy::Dynamic {
                outdoor,
                indoor,
                density_threshold,
            } => {
                if density >= density_threshold {
                    indoor
                } else {
                    outdoor
                }
            }
        }
    }

    /// The initial resolution (before any density observation).
    pub fn initial_resolution(&self) -> f64 {
        match *self {
            ResolutionPolicy::Static { resolution } => resolution,
            ResolutionPolicy::Dynamic { outdoor, .. } => outdoor,
        }
    }

    /// Multiplier applied to the OctoMap-generation kernel latency relative to
    /// the Table I baseline (profiled at ~0.5 m): finer voxels mean more
    /// leaf updates per ray. The paper's Fig. 18 measures a ≈4.5X processing
    /// time swing across a 6.5X resolution change; a 1/resolution dependence
    /// (normalised at 0.5 m) reproduces that swing.
    pub fn octomap_cost_multiplier(resolution: f64) -> f64 {
        (0.5 / resolution.max(1e-3)).clamp(0.2, 8.0)
    }
}

/// Full configuration of one closed-loop mission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissionConfig {
    /// Which benchmark application to run.
    pub application: ApplicationId,
    /// Companion-computer operating point.
    pub operating_point: OperatingPoint,
    /// Optional cloud offload (the sensor-cloud case study).
    pub cloud: Option<CloudConfig>,
    /// Airframe.
    pub quadrotor: QuadrotorConfig,
    /// Battery pack.
    pub battery: BatteryConfig,
    /// Environment generator configuration.
    pub environment: EnvironmentConfig,
    /// Depth camera configuration.
    pub camera: DepthCameraConfig,
    /// Standard deviation of depth-image noise, metres (Table II).
    pub depth_noise_std: f64,
    /// OctoMap resolution policy (Fig. 19).
    pub resolution_policy: ResolutionPolicy,
    /// Hard mission time budget, seconds; exceeding it fails the mission.
    pub time_budget_secs: f64,
    /// Stopping-distance budget used in Eq. 2, metres.
    pub stopping_distance: f64,
    /// Application-level cruise velocity cap, m/s (the mission planner never
    /// commands more than this even if Eq. 2 allows it).
    pub cruise_velocity: f64,
    /// Physics integration step, seconds.
    pub physics_dt: f64,
    /// Per-node rates of the closed-loop graph (PR 2). The default,
    /// [`RateConfig::legacy`], reproduces the historical sequential loop.
    pub rates: RateConfig,
    /// What the closed loop does on a collision alert (PR 3). The default,
    /// [`ReplanMode::HoverToPlan`], reproduces the historical
    /// end-the-episode-and-hover behaviour.
    pub replan_mode: ReplanMode,
    /// How executor rounds charge latency (PR 5): the default,
    /// [`ExecModel::Serial`], sums node latencies (the paper's accounting,
    /// bit-identical to history); [`ExecModel::Pipelined`] charges the
    /// critical path over pipeline stages — the camera captures the next
    /// frame while the mapper integrates the last one.
    pub exec_model: ExecModel,
    /// Per-node operating points of the flight graph (PR 5). The default,
    /// [`NodeOpConfig::mission_global`], charges every node at
    /// [`MissionConfig::operating_point`].
    pub node_ops: NodeOpConfig,
    /// Worker threads for OctoMap scan insertion (PR 6). `1` (the default)
    /// takes the serial path; higher values partition each scan's per-voxel
    /// delta map across threads. Every setting produces a bit-identical map
    /// (the parallel path is pinned to the serial one), so this is purely a
    /// wall-clock knob for multi-core hosts.
    pub map_insert_threads: usize,
    /// Seeded fault intensities for this mission (PR 9). The default,
    /// [`FaultPlan::none`], compiles to no injector at all, leaving every
    /// historical code path untouched.
    pub fault_plan: FaultPlan,
    /// Degraded-mode responses of the flight stack (PR 9). The default,
    /// [`DegradationConfig::off`], is the historical fly-blind behaviour.
    pub degradation: DegradationConfig,
    /// RNG seed shared by all stochastic components.
    pub seed: u64,
}

impl MissionConfig {
    /// A sensible default configuration for the given application: the
    /// DJI Matrice 100 with its TB47 battery at the reference operating point
    /// in that application's natural environment.
    pub fn new(application: ApplicationId) -> Self {
        let environment = match application {
            ApplicationId::Scanning => EnvironmentConfig::open_field(),
            ApplicationId::AerialPhotography => EnvironmentConfig::park_with_subject(),
            ApplicationId::PackageDelivery => EnvironmentConfig::urban_outdoor(),
            ApplicationId::Mapping3D => EnvironmentConfig::indoor_outdoor(),
            ApplicationId::SearchAndRescue => EnvironmentConfig::disaster_site(),
        };
        MissionConfig {
            application,
            operating_point: OperatingPoint::reference(),
            cloud: None,
            quadrotor: QuadrotorConfig::dji_matrice_100(),
            battery: BatteryConfig::matrice_tb47(),
            environment,
            camera: DepthCameraConfig::default(),
            depth_noise_std: 0.0,
            resolution_policy: ResolutionPolicy::Static { resolution: 0.5 },
            time_budget_secs: 1800.0,
            stopping_distance: 10.0,
            cruise_velocity: 8.0,
            physics_dt: 0.05,
            rates: RateConfig::legacy(),
            replan_mode: ReplanMode::default(),
            exec_model: ExecModel::default(),
            node_ops: NodeOpConfig::mission_global(),
            map_insert_threads: 1,
            fault_plan: FaultPlan::none(),
            degradation: DegradationConfig::off(),
            seed: 42,
        }
    }

    /// Overrides the operating point (builder style).
    pub fn with_operating_point(mut self, point: OperatingPoint) -> Self {
        self.operating_point = point;
        self
    }

    /// Overrides the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.environment.seed = seed;
        self
    }

    /// Overrides the depth noise (builder style).
    pub fn with_depth_noise(mut self, std_dev: f64) -> Self {
        self.depth_noise_std = std_dev.max(0.0);
        self
    }

    /// Overrides the resolution policy (builder style).
    pub fn with_resolution_policy(mut self, policy: ResolutionPolicy) -> Self {
        self.resolution_policy = policy;
        self
    }

    /// Attaches a cloud offload configuration (builder style).
    pub fn with_cloud(mut self, cloud: CloudConfig) -> Self {
        self.cloud = Some(cloud);
        self
    }

    /// Overrides the closed-loop node rates (builder style).
    pub fn with_rates(mut self, rates: RateConfig) -> Self {
        self.rates = rates;
        self
    }

    /// Overrides the collision-alert replanning policy (builder style).
    pub fn with_replan_mode(mut self, mode: ReplanMode) -> Self {
        self.replan_mode = mode;
        self
    }

    /// Overrides the executor's latency-charging model (builder style).
    pub fn with_exec_model(mut self, model: ExecModel) -> Self {
        self.exec_model = model;
        self
    }

    /// Overrides the per-node operating points (builder style).
    pub fn with_node_ops(mut self, node_ops: NodeOpConfig) -> Self {
        self.node_ops = node_ops;
        self
    }

    /// Overrides the OctoMap insertion worker count (builder style).
    pub fn with_map_insert_threads(mut self, threads: usize) -> Self {
        self.map_insert_threads = threads;
        self
    }

    /// Overrides the fault plan (builder style).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Overrides the degraded-mode responses (builder style).
    pub fn with_degradation(mut self, degradation: DegradationConfig) -> Self {
        self.degradation = degradation;
        self
    }

    /// A scaled-down configuration for fast unit/integration testing: a small
    /// world, a coarse camera and map, and short distances. The physics and
    /// kernels are identical — only the scenario is smaller.
    pub fn fast_test(application: ApplicationId) -> Self {
        let mut cfg = MissionConfig::new(application);
        cfg.environment.extent = cfg.environment.extent.min(45.0);
        cfg.environment.obstacle_density = cfg.environment.obstacle_density.min(1.5);
        cfg.camera = DepthCameraConfig {
            width: 16,
            height: 12,
            ..DepthCameraConfig::default()
        };
        cfg.resolution_policy = ResolutionPolicy::Static { resolution: 0.8 };
        cfg.time_budget_secs = 900.0;
        cfg
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a descriptive message for the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        self.quadrotor.validate()?;
        if self.physics_dt <= 0.0 || self.physics_dt > 1.0 {
            return Err(format!(
                "physics_dt must be in (0, 1], got {}",
                self.physics_dt
            ));
        }
        if self.time_budget_secs <= 0.0 {
            return Err("time budget must be positive".to_string());
        }
        if self.stopping_distance <= 0.0 {
            return Err("stopping distance must be positive".to_string());
        }
        if self.cruise_velocity <= 0.0 {
            return Err("cruise velocity must be positive".to_string());
        }
        if self.depth_noise_std < 0.0 {
            return Err("depth noise std cannot be negative".to_string());
        }
        if self.map_insert_threads == 0 {
            return Err("map_insert_threads must be at least 1".to_string());
        }
        self.rates.validate()?;
        self.node_ops.validate()?;
        self.fault_plan.validate()?;
        self.degradation.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_for_every_application() {
        for &app in ApplicationId::all() {
            assert!(
                MissionConfig::new(app).validate().is_ok(),
                "{app} default invalid"
            );
            assert!(MissionConfig::fast_test(app).validate().is_ok());
        }
    }

    #[test]
    fn builders_override_fields() {
        let cfg = MissionConfig::new(ApplicationId::PackageDelivery)
            .with_operating_point(OperatingPoint::slowest())
            .with_seed(7)
            .with_depth_noise(1.5)
            .with_resolution_policy(ResolutionPolicy::static_fine());
        assert_eq!(cfg.operating_point, OperatingPoint::slowest());
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.environment.seed, 7);
        assert_eq!(cfg.depth_noise_std, 1.5);
        assert_eq!(cfg.resolution_policy, ResolutionPolicy::static_fine());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = MissionConfig::new(ApplicationId::Scanning);
        cfg.physics_dt = 0.0;
        assert!(cfg.validate().is_err());
        let mut cfg = MissionConfig::new(ApplicationId::Scanning);
        cfg.cruise_velocity = -1.0;
        assert!(cfg.validate().is_err());
        let mut cfg = MissionConfig::new(ApplicationId::Scanning);
        cfg.time_budget_secs = 0.0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn resolution_policy_switches_on_density() {
        let dynamic = ResolutionPolicy::dynamic_default();
        assert_eq!(dynamic.resolution_for_density(0.0), 0.80);
        assert_eq!(dynamic.resolution_for_density(0.5), 0.15);
        assert_eq!(dynamic.initial_resolution(), 0.80);
        let fixed = ResolutionPolicy::static_fine();
        assert_eq!(fixed.resolution_for_density(0.0), 0.15);
        assert_eq!(fixed.resolution_for_density(1.0), 0.15);
    }

    #[test]
    fn rate_config_legacy_is_tick_synchronous() {
        let legacy = RateConfig::legacy();
        assert!(legacy.is_legacy());
        assert!(legacy.camera_period().is_zero());
        assert!(legacy.mapping_period().is_zero());
        assert!(legacy.replan_period().is_zero());
        assert!(legacy.control_period().is_zero());
        assert!(legacy.sensing_interval().is_zero());
        assert!(legacy.validate().is_ok());
    }

    #[test]
    fn rate_config_periods_and_staleness() {
        let rates = RateConfig::legacy()
            .with_camera_fps(20.0)
            .with_mapping_hz(4.0)
            .with_replan_hz(2.0)
            .with_control_hz(50.0);
        assert!(!rates.is_legacy());
        assert!((rates.camera_period().as_millis() - 50.0).abs() < 1e-9);
        assert!((rates.mapping_period().as_millis() - 250.0).abs() < 1e-9);
        assert!((rates.replan_period().as_millis() - 500.0).abs() < 1e-9);
        assert!((rates.control_period().as_millis() - 20.0).abs() < 1e-9);
        // Staleness = camera interval + mapping interval.
        assert!((rates.sensing_interval().as_millis() - 300.0).abs() < 1e-9);
        assert!(rates.validate().is_ok());
    }

    #[test]
    fn invalid_rates_are_rejected() {
        let bad = RateConfig::legacy().with_camera_fps(0.0);
        assert!(bad.validate().is_err());
        let mut cfg = MissionConfig::new(ApplicationId::Scanning);
        cfg.rates.control_hz = Some(-3.0);
        assert!(cfg.validate().is_err());
        cfg.rates.control_hz = Some(f64::NAN);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn replan_mode_defaults_to_hover_and_overrides() {
        let cfg = MissionConfig::new(ApplicationId::PackageDelivery);
        assert_eq!(cfg.replan_mode, ReplanMode::HoverToPlan);
        let cfg = cfg.with_replan_mode(ReplanMode::PlanInMotion);
        assert_eq!(cfg.replan_mode, ReplanMode::PlanInMotion);
        assert_eq!(ReplanMode::HoverToPlan.label(), "hover-to-plan");
        assert_eq!(format!("{}", ReplanMode::PlanInMotion), "plan-in-motion");
    }

    #[test]
    fn exec_model_defaults_to_serial_and_overrides() {
        let cfg = MissionConfig::new(ApplicationId::PackageDelivery);
        assert_eq!(cfg.exec_model, ExecModel::Serial);
        let cfg = cfg.with_exec_model(ExecModel::Pipelined);
        assert_eq!(cfg.exec_model, ExecModel::Pipelined);
        assert_eq!(ExecModel::Serial.label(), "serial");
        assert_eq!(format!("{}", ExecModel::Pipelined), "pipelined");
    }

    #[test]
    fn node_ops_default_to_mission_global_and_validate() {
        let cfg = MissionConfig::new(ApplicationId::PackageDelivery);
        assert!(cfg.node_ops.is_mission_global());
        assert_eq!(cfg.node_ops.label(), "mission-global");
        assert!(cfg.validate().is_ok());

        let split = NodeOpConfig::big_little();
        assert!(!split.is_mission_global());
        assert_eq!(split.planning.unwrap().cores, 4);
        assert_eq!(split.mapping.unwrap().cores, 2);
        assert_eq!(split.label(), "map=2c@1.5GHz,plan=4c@2.2GHz,ctrl=2c@1.5GHz");
        let cfg = cfg.with_node_ops(split);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.node_ops, split);
    }

    #[test]
    fn invalid_node_ops_are_rejected() {
        let mut cfg = MissionConfig::new(ApplicationId::PackageDelivery);
        cfg.node_ops.planning = Some(OperatingPoint {
            cores: 0,
            frequency: Frequency::from_ghz(1.5),
        });
        assert!(cfg.validate().is_err());
        assert!(NodeOpConfig::big_little().validate().is_ok());
        let builders = NodeOpConfig::mission_global()
            .with_camera(OperatingPoint::little_cluster(Frequency::from_ghz(1.4)))
            .with_mapping(OperatingPoint::little_cluster(Frequency::from_ghz(1.5)))
            .with_planning(OperatingPoint::big_cluster(Frequency::from_ghz(2.2)))
            .with_control(OperatingPoint::little_cluster(Frequency::from_ghz(1.5)));
        assert!(builders.validate().is_ok());
        assert!(!builders.is_mission_global());
    }

    #[test]
    fn fault_and_degradation_default_off_and_validate() {
        let cfg = MissionConfig::new(ApplicationId::PackageDelivery);
        assert!(cfg.fault_plan.is_none());
        assert!(cfg.degradation.is_off());
        assert_eq!(cfg.degradation.brake_policy, BrakePolicy::Binary);
        assert_eq!(cfg.degradation.label(), "off");
        assert!(cfg.validate().is_ok());

        let defensive = DegradationConfig::defensive();
        assert!(!defensive.is_off());
        assert_eq!(defensive.label(), "watchdog+plan-timeout+graded");
        let cfg = cfg
            .with_fault_plan(FaultPlan::parse("cam-drop=0.1,battery-fade=0.2").unwrap())
            .with_degradation(defensive);
        assert!(cfg.validate().is_ok());
        assert!(!cfg.fault_plan.is_none());

        let mut bad = MissionConfig::new(ApplicationId::PackageDelivery);
        bad.fault_plan.battery_fade = 1.5;
        assert!(bad.validate().is_err());
        let mut bad = MissionConfig::new(ApplicationId::PackageDelivery);
        bad.degradation.stale_grace_factor = 0.0;
        assert!(bad.validate().is_err());
        let bad = DegradationConfig::off().with_plan_timeout(-1.0);
        assert!(bad.validate().is_err());
        assert_eq!(BrakePolicy::Graded.label(), "graded");
        assert_eq!(format!("{}", BrakePolicy::Binary), "binary");
        // Binary always stops; graded ramps from full speed at the envelope
        // edge down to a full stop at the hard-stop core (never a creep).
        assert_eq!(BrakePolicy::Binary.brake_factor(4.9, 5.0), 0.0);
        assert_eq!(BrakePolicy::Graded.brake_factor(5.0, 5.0), 1.0);
        let mid = BrakePolicy::Graded.brake_factor(4.0, 5.0);
        assert!(mid > 0.0 && mid < 1.0, "mid-envelope factor {mid}");
        let core = GRADED_HARD_STOP_FRACTION * 5.0;
        assert_eq!(BrakePolicy::Graded.brake_factor(core, 5.0), 0.0);
        assert_eq!(BrakePolicy::Graded.brake_factor(0.1, 5.0), 0.0);
        assert_eq!(
            DegradationConfig::off()
                .with_watchdog()
                .with_brake_policy(BrakePolicy::Graded)
                .with_plan_splicing()
                .label(),
            "watchdog+graded+splicing"
        );
    }

    #[test]
    fn octomap_cost_multiplier_matches_fig18_shape() {
        // Going from 0.15 m to 1.0 m resolution (≈6.5X coarser) must cut the
        // modelled processing time by roughly 3–5X, like Fig. 18.
        let fine = ResolutionPolicy::octomap_cost_multiplier(0.15);
        let coarse = ResolutionPolicy::octomap_cost_multiplier(1.0);
        let ratio = fine / coarse;
        assert!(ratio > 3.0 && ratio < 8.0, "ratio {ratio}");
        // And the baseline at 0.5 m is 1.0 (Table I calibration point).
        assert!((ResolutionPolicy::octomap_cost_multiplier(0.5) - 1.0).abs() < 1e-9);
    }
}
