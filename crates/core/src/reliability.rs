//! Monte-Carlo reliability sweeps: many randomized episodes, streaming
//! aggregates, deterministic sharding.
//!
//! The paper evaluates each application on a handful of hand-picked
//! scenarios; the reliability sweep asks the statistical question instead —
//! *across thousands of randomized scenarios, how often does the mission
//! succeed, and what do the time/energy tails look like?* Three pieces make
//! that affordable and reproducible:
//!
//! * [`ScenarioGenerator`] — a pure function `(base_seed, index) → MissionConfig`
//!   drawing every knob (obstacle density, world extent, depth noise, node
//!   rates, replan mode, executor model) from configurable choice lists via
//!   SplitMix64. No RNG state is carried between episodes, so episode `i` is
//!   the same mission no matter which worker runs it or in what order.
//! * [`ReliabilityStats`] / [`StreamingHistogram`] — streaming aggregates
//!   (success/collision counters plus log-spaced histograms for mission time
//!   and energy) so a million-episode sweep never materialises a per-episode
//!   report `Vec`. Histogram merges add integer bin counts; f64 sums are
//!   folded in fixed shard order, so aggregates are bit-identical at every
//!   thread count.
//! * [`reliability_sweep_with`] — shards the episode range into fixed
//!   contiguous blocks via [`SweepRunner::run_sharded`], runs each shard's
//!   episodes through that worker's [`crate::EpisodeScratch`]
//!   (zero-realloc episode reuse), and merges the shard accumulators in
//!   shard order.

use crate::apps::run_mission_with_scratch;
use crate::config::{MissionConfig, RateConfig, ReplanMode};
use crate::experiments::quick_config;
use crate::qof::{MissionFailure, MissionReport};
use crate::scratch::with_episode_scratch;
use crate::sweep::{splitmix64, SweepRunner};
use mav_compute::ApplicationId;
use mav_runtime::ExecModel;
use mav_types::{Json, ToJson};

/// A streaming quantile sketch over positive values: log-spaced bins with
/// integer counts, plus exact count/sum/min/max.
///
/// Bin `i` covers `[FLOOR·RATIO^i, FLOOR·RATIO^(i+1))`, so a quantile read
/// back from a bin midpoint is within a factor `RATIO` of the exact
/// nearest-rank value (the oracle test pins this). Merging adds bin counts —
/// pure integer arithmetic — which is what makes the sharded sweep's
/// quantiles invariant to thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl StreamingHistogram {
    /// Smallest resolvable value; everything below lands in bin 0.
    const FLOOR: f64 = 1e-2;
    /// Geometric bin width: quantiles are exact to within this factor.
    const RATIO: f64 = 1.05;
    /// Bin count. `FLOOR · RATIO^BINS ≈ 5e10`, far above any mission time in
    /// seconds or energy in kilojoules; larger values clamp into the top bin.
    const BINS: usize = 600;

    /// An empty histogram.
    pub fn new() -> Self {
        StreamingHistogram {
            counts: vec![0; Self::BINS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bin_of(value: f64) -> usize {
        if value <= Self::FLOOR {
            return 0;
        }
        let bin = ((value / Self::FLOOR).ln() / Self::RATIO.ln()).floor();
        (bin as usize).min(Self::BINS - 1)
    }

    fn bin_midpoint(bin: usize) -> f64 {
        Self::FLOOR * Self::RATIO.powf(bin as f64 + 0.5)
    }

    /// Records one value. Values must be finite; negatives clamp to zero.
    pub fn record(&mut self, value: f64) {
        assert!(value.is_finite(), "histogram values must be finite");
        let value = value.max(0.0);
        self.counts[Self::bin_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one. Bin counts add exactly; the
    /// sums add in call order, so merging shards in a fixed order yields
    /// bit-identical aggregates regardless of which threads filled them.
    pub fn merge(&mut self, other: &StreamingHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded values (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded value (zero when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded value (zero when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The nearest-rank `q`-quantile, read back as the geometric midpoint of
    /// the bin holding that rank, clamped to the observed `[min, max]`.
    /// Within a factor `RATIO` of the exact sorted-array answer.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (bin, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bin_midpoint(bin).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        StreamingHistogram::new()
    }
}

/// Streaming aggregate of a reliability sweep: success/collision counters and
/// the mission-time / energy distributions. Never holds per-episode state, so
/// it is O(1) in the episode count.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReliabilityStats {
    /// Episodes recorded.
    pub episodes: u64,
    /// Episodes that completed successfully.
    pub successes: u64,
    /// Episodes that ended in a collision.
    pub collisions: u64,
    /// Total re-planning episodes across all missions.
    pub replans: u64,
    /// Mission-time distribution, seconds.
    pub time: StreamingHistogram,
    /// Total-energy distribution, kilojoules.
    pub energy: StreamingHistogram,
}

impl ReliabilityStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        ReliabilityStats::default()
    }

    /// Folds one mission report into the aggregate.
    pub fn record(&mut self, report: &MissionReport) {
        self.episodes += 1;
        if report.success() {
            self.successes += 1;
        }
        if matches!(report.failure, Some(MissionFailure::Collision)) {
            self.collisions += 1;
        }
        self.replans += u64::from(report.replans);
        self.time.record(report.mission_time_secs);
        self.energy.record(report.energy_kj());
    }

    /// Folds another accumulator (one shard) into this one. Call in fixed
    /// shard order for bit-identical aggregates at every thread count.
    pub fn merge(&mut self, other: &ReliabilityStats) {
        self.episodes += other.episodes;
        self.successes += other.successes;
        self.collisions += other.collisions;
        self.replans += other.replans;
        self.time.merge(&other.time);
        self.energy.merge(&other.energy);
    }

    /// Fraction of episodes that succeeded (zero when empty).
    pub fn success_rate(&self) -> f64 {
        if self.episodes == 0 {
            0.0
        } else {
            self.successes as f64 / self.episodes as f64
        }
    }

    /// Fraction of episodes that ended in a collision (zero when empty).
    pub fn collision_rate(&self) -> f64 {
        if self.episodes == 0 {
            0.0
        } else {
            self.collisions as f64 / self.episodes as f64
        }
    }
}

impl ToJson for ReliabilityStats {
    fn to_json(&self) -> Json {
        Json::object()
            .field("episodes", self.episodes)
            .field("successes", self.successes)
            .field("success_rate", self.success_rate())
            .field("collisions", self.collisions)
            .field("collision_rate", self.collision_rate())
            .field("replans", self.replans)
            .field("time_p50_secs", self.time.quantile(0.5))
            .field("time_p99_secs", self.time.quantile(0.99))
            .field("mean_time_secs", self.time.mean())
            .field("energy_p50_kj", self.energy.quantile(0.5))
            .field("energy_p99_kj", self.energy.quantile(0.99))
            .field("mean_energy_kj", self.energy.mean())
    }
}

/// A seeded scenario generator: a pure function `(base_seed, index) →`
/// [`MissionConfig`], drawing every mission knob from a configurable choice
/// list via SplitMix64. Pin a knob by giving it a single-element list.
///
/// Purity is the determinism contract: episode `i` is the same mission on
/// every worker, at every thread count, in any execution order.
#[derive(Debug, Clone)]
pub struct ScenarioGenerator {
    /// The application every episode runs.
    pub application: ApplicationId,
    /// Base seed; episode draws mix it with the episode index.
    pub base_seed: u64,
    /// Obstacle-density choices, obstacles per 1000 m².
    pub densities: Vec<f64>,
    /// World half-extent choices, metres.
    pub extents: Vec<f64>,
    /// Depth-noise standard-deviation choices, metres.
    pub noise_levels: Vec<f64>,
    /// Node-rate schedule choices.
    pub rates: Vec<RateConfig>,
    /// Collision-alert replanning policy choices.
    pub replan_modes: Vec<ReplanMode>,
    /// Executor-model choices.
    pub exec_models: Vec<ExecModel>,
}

impl ScenarioGenerator {
    /// The default scenario space: a small grid over density, extent, depth
    /// noise, replan rate/mode and executor model around the fast-test
    /// mission shape.
    pub fn new(application: ApplicationId, base_seed: u64) -> Self {
        ScenarioGenerator {
            application,
            base_seed,
            densities: vec![0.4, 0.8, 1.5],
            extents: vec![18.0, 24.0, 32.0],
            noise_levels: vec![0.0, 0.25, 0.5],
            rates: vec![
                RateConfig::legacy(),
                RateConfig::legacy().with_replan_hz(2.0),
            ],
            replan_modes: vec![ReplanMode::HoverToPlan, ReplanMode::PlanInMotion],
            exec_models: vec![ExecModel::Serial, ExecModel::Pipelined],
        }
    }

    /// Replaces the obstacle-density choices (builder style).
    pub fn with_densities(mut self, densities: Vec<f64>) -> Self {
        self.densities = densities;
        self
    }

    /// Replaces the world-extent choices (builder style).
    pub fn with_extents(mut self, extents: Vec<f64>) -> Self {
        self.extents = extents;
        self
    }

    /// Replaces the depth-noise choices (builder style).
    pub fn with_noise_levels(mut self, noise_levels: Vec<f64>) -> Self {
        self.noise_levels = noise_levels;
        self
    }

    /// Replaces the node-rate schedule choices (builder style).
    pub fn with_rate_choices(mut self, rates: Vec<RateConfig>) -> Self {
        self.rates = rates;
        self
    }

    /// Replaces the replan-mode choices (builder style).
    pub fn with_replan_modes(mut self, modes: Vec<ReplanMode>) -> Self {
        self.replan_modes = modes;
        self
    }

    /// Replaces the executor-model choices (builder style).
    pub fn with_exec_models(mut self, models: Vec<ExecModel>) -> Self {
        self.exec_models = models;
        self
    }

    /// The mission configuration of episode `index` — a pure function of
    /// `(base_seed, index)` and the choice lists.
    pub fn episode(&self, index: u64) -> MissionConfig {
        let mut state = splitmix64(self.base_seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut pick = |len: usize| -> usize {
            assert!(len > 0, "scenario choice lists must be non-empty");
            state = splitmix64(state);
            (state % len as u64) as usize
        };
        let density_at = pick(self.densities.len());
        let extent_at = pick(self.extents.len());
        let noise_at = pick(self.noise_levels.len());
        let rates_at = pick(self.rates.len());
        let mode_at = pick(self.replan_modes.len());
        let exec_at = pick(self.exec_models.len());
        let episode_seed = splitmix64(state);
        let mut cfg = quick_config(MissionConfig::fast_test(self.application));
        cfg.environment.obstacle_density = self.densities[density_at];
        cfg.environment.extent = self.extents[extent_at];
        cfg.with_depth_noise(self.noise_levels[noise_at])
            .with_rates(self.rates[rates_at])
            .with_replan_mode(self.replan_modes[mode_at])
            .with_exec_model(self.exec_models[exec_at])
            .with_seed(episode_seed)
    }
}

/// Episodes per shard of the sharded sweep. Shard boundaries are part of the
/// determinism contract (they fix the f64 summation order), so the default is
/// a named constant rather than a tuning knob.
pub const DEFAULT_SHARD_SIZE: u64 = 32;

/// [`reliability_sweep_with`] with an explicit shard size (tests use small
/// shards to exercise multi-shard merging with few episodes).
pub fn reliability_sweep_sharded(
    runner: &SweepRunner,
    generator: &ScenarioGenerator,
    episodes: u64,
    shard_size: u64,
) -> ReliabilityStats {
    let shards = runner.run_sharded(episodes, shard_size, |range| {
        with_episode_scratch(|scratch| {
            let mut acc = ReliabilityStats::new();
            for index in range {
                let report = run_mission_with_scratch(generator.episode(index), scratch);
                acc.record(&report);
            }
            acc
        })
    });
    let mut total = ReliabilityStats::new();
    for shard in &shards {
        total.merge(shard);
    }
    total
}

/// Runs `episodes` scenario-generator episodes and returns the streaming
/// aggregate. Episodes are sharded into fixed contiguous blocks; each worker
/// folds its shard through its thread-local [`crate::EpisodeScratch`]
/// (zero-realloc episode reuse) and the shard accumulators merge in shard
/// order — aggregates are bit-identical at every thread count.
pub fn reliability_sweep_with(
    runner: &SweepRunner,
    generator: &ScenarioGenerator,
    episodes: u64,
) -> ReliabilityStats {
    reliability_sweep_sharded(runner, generator, episodes, DEFAULT_SHARD_SIZE)
}

/// One cell of the replan-rate × replan-mode reliability grid.
#[derive(Debug, Clone, PartialEq)]
pub struct RateGridCell {
    /// Replan-trigger rate, Hz (`None`: the legacy every-round schedule).
    pub replan_hz: Option<f64>,
    /// Collision-alert replanning policy of this cell.
    pub replan_mode: ReplanMode,
    /// The cell's aggregate over its episodes.
    pub stats: ReliabilityStats,
}

impl RateGridCell {
    /// A compact `"hover@legacy"` / `"in-motion@2Hz"` cell label.
    pub fn label(&self) -> String {
        let rate = match self.replan_hz {
            None => "legacy".to_string(),
            Some(hz) => format!("{hz}Hz"),
        };
        format!("{}@{rate}", self.replan_mode.label())
    }
}

impl ToJson for RateGridCell {
    fn to_json(&self) -> Json {
        Json::object()
            .field("label", self.label().as_str())
            .field("replan_hz", self.replan_hz.unwrap_or(0.0))
            .field("replan_mode", self.replan_mode.label())
            .field("stats", self.stats.to_json())
    }
}

/// The replan-Hz × replan-mode reliability grid: every combination of replan
/// rate (legacy plus explicit rates) and [`ReplanMode`], each cell a pinned
/// scenario sweep over the same seed base so cells see comparable scenario
/// draws. The executor model is pinned to `Serial` so the grid isolates the
/// replanning policy.
pub fn reliability_rate_grid_with(
    runner: &SweepRunner,
    application: ApplicationId,
    base_seed: u64,
    episodes_per_cell: u64,
) -> Vec<RateGridCell> {
    let hz_choices = [None, Some(1.0), Some(2.0), Some(5.0)];
    let modes = [ReplanMode::HoverToPlan, ReplanMode::PlanInMotion];
    let mut cells = Vec::with_capacity(hz_choices.len() * modes.len());
    for &replan_mode in &modes {
        for &replan_hz in &hz_choices {
            let rates = match replan_hz {
                None => RateConfig::legacy(),
                Some(hz) => RateConfig::legacy().with_replan_hz(hz),
            };
            let generator = ScenarioGenerator::new(application, base_seed)
                .with_rate_choices(vec![rates])
                .with_replan_modes(vec![replan_mode])
                .with_exec_models(vec![ExecModel::Serial]);
            let stats = reliability_sweep_with(runner, &generator, episodes_per_cell);
            cells.push(RateGridCell {
                replan_hz,
                replan_mode,
                stats,
            });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::run_mission;

    /// A small pinned scenario space so tests run quickly.
    fn tiny_generator() -> ScenarioGenerator {
        ScenarioGenerator::new(ApplicationId::Scanning, 11)
            .with_densities(vec![0.5])
            .with_extents(vec![16.0])
            .with_noise_levels(vec![0.0])
            .with_rate_choices(vec![RateConfig::legacy()])
    }

    #[test]
    fn streaming_quantiles_track_the_exact_oracle() {
        let mut hist = StreamingHistogram::new();
        let mut values = Vec::new();
        for i in 0..5000u64 {
            let u = (splitmix64(i ^ 0xabcdef) % 100_000) as f64 / 100_000.0;
            // Log-uniform over roughly [0.05, 1100].
            let value = 0.05 * (u * 10.0).exp();
            hist.record(value);
            values.push(value);
        }
        // The sum is accumulated in the exact record order: bit-identical.
        assert_eq!(hist.sum().to_bits(), values.iter().sum::<f64>().to_bits());
        values.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(hist.count(), 5000);
        for q in [0.01f64, 0.25, 0.5, 0.9, 0.99] {
            let rank = ((q * 5000.0).ceil() as usize).clamp(1, 5000);
            let exact = values[rank - 1];
            let approx = hist.quantile(q);
            let ratio = approx / exact;
            assert!(
                (1.0 / 1.06..=1.06).contains(&ratio),
                "q={q}: approx {approx} vs exact {exact} (ratio {ratio})"
            );
        }
        assert!(hist.min() > 0.0);
        assert!(hist.max() <= 1101.0);
    }

    #[test]
    fn histogram_merge_adds_counts_exactly() {
        let mut left = StreamingHistogram::new();
        let mut right = StreamingHistogram::new();
        for i in 0..100u64 {
            let value = 0.1 + i as f64;
            if i < 60 {
                left.record(value);
            } else {
                right.record(value);
            }
        }
        let mut merged = left.clone();
        merged.merge(&right);
        assert_eq!(merged.count(), 100);
        assert_eq!(merged.min(), 0.1);
        assert_eq!(merged.max(), 99.1);
        assert_eq!(merged.sum(), left.sum() + right.sum());
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let hist = StreamingHistogram::new();
        assert_eq!(hist.quantile(0.5), 0.0);
        assert_eq!(hist.mean(), 0.0);
        assert_eq!(hist.min(), 0.0);
        assert_eq!(hist.max(), 0.0);
    }

    #[test]
    fn scenario_generator_is_a_pure_function_of_seed_and_index() {
        let a = ScenarioGenerator::new(ApplicationId::Scanning, 42);
        let b = ScenarioGenerator::new(ApplicationId::Scanning, 42);
        // Same generator, any evaluation order: identical configs.
        for index in (0..16u64).rev() {
            assert_eq!(a.episode(index), b.episode(index), "episode {index}");
        }
        // Episodes draw distinct seeds, and the base seed matters.
        assert_ne!(a.episode(0).seed, a.episode(1).seed);
        let c = ScenarioGenerator::new(ApplicationId::Scanning, 43);
        assert_ne!(a.episode(0).seed, c.episode(0).seed);
        // The environment seed follows the mission seed.
        let cfg = a.episode(5);
        assert_eq!(cfg.seed, cfg.environment.seed);
    }

    #[test]
    fn sweep_aggregates_match_a_serial_fresh_mission_loop() {
        // Six episodes fit one shard, so the sharded sweep accumulates in the
        // same order as this serial loop — and the loop uses the allocating
        // run_mission, so this also pins scratch reuse to fresh missions at
        // the aggregate level.
        let generator = tiny_generator();
        let mut expected = ReliabilityStats::new();
        for index in 0..6 {
            expected.record(&run_mission(generator.episode(index)));
        }
        let swept = reliability_sweep_with(&SweepRunner::new().with_threads(2), &generator, 6);
        assert_eq!(expected, swept);
    }

    #[test]
    fn aggregates_are_bit_identical_across_thread_counts() {
        let generator = tiny_generator();
        // 40 episodes over shards of 8: five shards to schedule.
        let baseline =
            reliability_sweep_sharded(&SweepRunner::new().with_threads(1), &generator, 40, 8);
        assert_eq!(baseline.episodes, 40);
        for threads in [2, 4, 8] {
            let parallel = reliability_sweep_sharded(
                &SweepRunner::new().with_threads(threads),
                &generator,
                40,
                8,
            );
            assert_eq!(baseline, parallel, "diverged at {threads} threads");
            assert_eq!(
                baseline.time.sum().to_bits(),
                parallel.time.sum().to_bits(),
                "time sum bits diverged at {threads} threads"
            );
            assert_eq!(
                baseline.energy.sum().to_bits(),
                parallel.energy.sum().to_bits(),
                "energy sum bits diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn rate_grid_covers_every_cell_once() {
        let cells = reliability_rate_grid_with(
            &SweepRunner::new().with_threads(2),
            ApplicationId::Scanning,
            7,
            2,
        );
        assert_eq!(cells.len(), 8);
        let labels: Vec<String> = cells.iter().map(RateGridCell::label).collect();
        let mut unique = labels.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), labels.len(), "duplicate cells: {labels:?}");
        for cell in &cells {
            assert_eq!(cell.stats.episodes, 2);
            let json = cell.to_json().to_string_pretty();
            assert!(json.contains("\"success_rate\""));
        }
    }
}
