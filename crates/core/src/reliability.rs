//! Monte-Carlo reliability sweeps: many randomized episodes, streaming
//! aggregates, deterministic sharding.
//!
//! The paper evaluates each application on a handful of hand-picked
//! scenarios; the reliability sweep asks the statistical question instead —
//! *across thousands of randomized scenarios, how often does the mission
//! succeed, and what do the time/energy tails look like?* Three pieces make
//! that affordable and reproducible:
//!
//! * [`ScenarioGenerator`] — a pure function `(base_seed, index) → MissionConfig`
//!   drawing every knob (obstacle density, world extent, depth noise, node
//!   rates, replan mode, executor model) from configurable choice lists via
//!   SplitMix64. No RNG state is carried between episodes, so episode `i` is
//!   the same mission no matter which worker runs it or in what order.
//! * [`ReliabilityStats`] / [`StreamingHistogram`] — streaming aggregates
//!   (success/collision counters plus log-spaced histograms for mission time
//!   and energy) so a million-episode sweep never materialises a per-episode
//!   report `Vec`. Histogram merges add integer bin counts; f64 sums are
//!   folded in fixed shard order, so aggregates are bit-identical at every
//!   thread count.
//! * [`reliability_sweep_with`] — shards the episode range into fixed
//!   contiguous blocks via [`SweepRunner::run_sharded`], runs each shard's
//!   episodes through that worker's [`crate::EpisodeScratch`]
//!   (zero-realloc episode reuse), and merges the shard accumulators in
//!   shard order.

use crate::apps::run_mission_with_scratch;
use crate::config::{DegradationConfig, MissionConfig, RateConfig, ReplanMode};
use crate::experiments::quick_config;
use crate::faults::FaultPlan;
use crate::qof::{MissionFailure, MissionReport};
use crate::scratch::with_episode_scratch;
use crate::sweep::{splitmix64, SweepRunner};
use mav_compute::ApplicationId;
use mav_runtime::ExecModel;
use mav_types::{Json, ToJson};
use std::collections::BTreeMap;

/// A streaming quantile sketch over positive values: log-spaced bins with
/// integer counts, plus exact count/sum/min/max.
///
/// Bin `i` covers `[FLOOR·RATIO^i, FLOOR·RATIO^(i+1))`, so a quantile read
/// back from a bin midpoint is within a factor `RATIO` of the exact
/// nearest-rank value (the oracle test pins this). Merging adds bin counts —
/// pure integer arithmetic — which is what makes the sharded sweep's
/// quantiles invariant to thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl StreamingHistogram {
    /// Smallest resolvable value; everything below lands in bin 0.
    const FLOOR: f64 = 1e-2;
    /// Geometric bin width: quantiles are exact to within this factor.
    const RATIO: f64 = 1.05;
    /// Bin count. `FLOOR · RATIO^BINS ≈ 5e10`, far above any mission time in
    /// seconds or energy in kilojoules; larger values clamp into the top bin.
    const BINS: usize = 600;

    /// An empty histogram.
    pub fn new() -> Self {
        StreamingHistogram {
            counts: vec![0; Self::BINS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bin_of(value: f64) -> usize {
        if value <= Self::FLOOR {
            return 0;
        }
        let bin = ((value / Self::FLOOR).ln() / Self::RATIO.ln()).floor();
        (bin as usize).min(Self::BINS - 1)
    }

    fn bin_midpoint(bin: usize) -> f64 {
        Self::FLOOR * Self::RATIO.powf(bin as f64 + 0.5)
    }

    /// Records one value. Values must be finite; negatives clamp to zero.
    pub fn record(&mut self, value: f64) {
        assert!(value.is_finite(), "histogram values must be finite");
        let value = value.max(0.0);
        self.counts[Self::bin_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds another histogram into this one. Bin counts add exactly; the
    /// sums add in call order, so merging shards in a fixed order yields
    /// bit-identical aggregates regardless of which threads filled them.
    pub fn merge(&mut self, other: &StreamingHistogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded values (zero when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded value (zero when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded value (zero when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The nearest-rank `q`-quantile, read back as the geometric midpoint of
    /// the bin holding that rank, clamped to the observed `[min, max]`.
    /// Within a factor `RATIO` of the exact sorted-array answer.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (bin, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bin_midpoint(bin).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        StreamingHistogram::new()
    }
}

/// Streaming aggregate of a reliability sweep: success/collision counters and
/// the mission-time / energy distributions. Never holds per-episode state, so
/// it is O(1) in the episode count.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ReliabilityStats {
    /// Episodes recorded.
    pub episodes: u64,
    /// Episodes that completed successfully.
    pub successes: u64,
    /// Episodes that ended in a collision.
    pub collisions: u64,
    /// Total re-planning episodes across all missions.
    pub replans: u64,
    /// Episodes whose report carried a degraded-mode summary.
    pub degraded_episodes: u64,
    /// Total simulated seconds spent degraded, across all episodes.
    pub degraded_time_secs: f64,
    /// Total Degraded → Nominal recoveries, across all episodes.
    pub recoveries: u64,
    /// Total seconds from entering Degraded to recovering, across all
    /// episodes (`mean × count` per episode, folded in record order).
    pub recover_time_secs: f64,
    /// Mission-time distribution, seconds.
    pub time: StreamingHistogram,
    /// Total-energy distribution, kilojoules.
    pub energy: StreamingHistogram,
}

impl ReliabilityStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        ReliabilityStats::default()
    }

    /// Folds one mission report into the aggregate.
    pub fn record(&mut self, report: &MissionReport) {
        self.episodes += 1;
        if report.success() {
            self.successes += 1;
        }
        if matches!(report.failure, Some(MissionFailure::Collision)) {
            self.collisions += 1;
        }
        self.replans += u64::from(report.replans);
        if let Some(degraded) = &report.degraded {
            self.degraded_episodes += 1;
            self.degraded_time_secs += degraded.degraded_secs;
            self.recoveries += u64::from(degraded.recoveries);
            self.recover_time_secs += degraded.mean_recover_secs * f64::from(degraded.recoveries);
        }
        self.time.record(report.mission_time_secs);
        self.energy.record(report.energy_kj());
    }

    /// Folds another accumulator (one shard) into this one. Call in fixed
    /// shard order for bit-identical aggregates at every thread count.
    pub fn merge(&mut self, other: &ReliabilityStats) {
        self.episodes += other.episodes;
        self.successes += other.successes;
        self.collisions += other.collisions;
        self.replans += other.replans;
        self.degraded_episodes += other.degraded_episodes;
        self.degraded_time_secs += other.degraded_time_secs;
        self.recoveries += other.recoveries;
        self.recover_time_secs += other.recover_time_secs;
        self.time.merge(&other.time);
        self.energy.merge(&other.energy);
    }

    /// Fraction of episodes that succeeded (zero when empty).
    pub fn success_rate(&self) -> f64 {
        if self.episodes == 0 {
            0.0
        } else {
            self.successes as f64 / self.episodes as f64
        }
    }

    /// Fraction of episodes that ended in a collision (zero when empty).
    pub fn collision_rate(&self) -> f64 {
        if self.episodes == 0 {
            0.0
        } else {
            self.collisions as f64 / self.episodes as f64
        }
    }

    /// Fraction of episodes the vehicle survived (did not collide). Under a
    /// fault plan this is the headline robustness number: an abort or timeout
    /// is a failed mission but a surviving vehicle.
    pub fn survival_rate(&self) -> f64 {
        if self.episodes == 0 {
            0.0
        } else {
            1.0 - self.collision_rate()
        }
    }

    /// Fraction of total simulated mission time spent degraded.
    pub fn degraded_time_fraction(&self) -> f64 {
        if self.time.sum() > 0.0 {
            self.degraded_time_secs / self.time.sum()
        } else {
            0.0
        }
    }

    /// Mean seconds from entering Degraded to recovering (zero if no
    /// recovery ever happened).
    pub fn mean_recover_secs(&self) -> f64 {
        if self.recoveries == 0 {
            0.0
        } else {
            self.recover_time_secs / self.recoveries as f64
        }
    }
}

impl ToJson for ReliabilityStats {
    fn to_json(&self) -> Json {
        Json::object()
            .field("episodes", self.episodes)
            .field("successes", self.successes)
            .field("success_rate", self.success_rate())
            .field("collisions", self.collisions)
            .field("collision_rate", self.collision_rate())
            .field("replans", self.replans)
            .field("time_p50_secs", self.time.quantile(0.5))
            .field("time_p99_secs", self.time.quantile(0.99))
            .field("mean_time_secs", self.time.mean())
            .field("energy_p50_kj", self.energy.quantile(0.5))
            .field("energy_p99_kj", self.energy.quantile(0.99))
            .field("mean_energy_kj", self.energy.mean())
    }
}

/// A seeded scenario generator: a pure function `(base_seed, index) →`
/// [`MissionConfig`], drawing every mission knob from a configurable choice
/// list via SplitMix64. Pin a knob by giving it a single-element list.
///
/// Purity is the determinism contract: episode `i` is the same mission on
/// every worker, at every thread count, in any execution order.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioGenerator {
    /// The application every episode runs.
    pub application: ApplicationId,
    /// Base seed; episode draws mix it with the episode index.
    pub base_seed: u64,
    /// Obstacle-density choices, obstacles per 1000 m².
    pub densities: Vec<f64>,
    /// World half-extent choices, metres.
    pub extents: Vec<f64>,
    /// Depth-noise standard-deviation choices, metres.
    pub noise_levels: Vec<f64>,
    /// Node-rate schedule choices.
    pub rates: Vec<RateConfig>,
    /// Collision-alert replanning policy choices.
    pub replan_modes: Vec<ReplanMode>,
    /// Executor-model choices.
    pub exec_models: Vec<ExecModel>,
    /// Fault-plan choices. The default single-element `[FaultPlan::none()]`
    /// list draws nothing (keeping every episode seed bit-identical to the
    /// pre-fault generator); a multi-element list samples a fault profile
    /// per episode.
    pub fault_plans: Vec<FaultPlan>,
    /// Degradation policy applied to every episode (never drawn: the policy
    /// is the experiment variable, not part of the scenario randomness).
    pub degradation: DegradationConfig,
}

impl ScenarioGenerator {
    /// The default scenario space: a small grid over density, extent, depth
    /// noise, replan rate/mode and executor model around the fast-test
    /// mission shape.
    pub fn new(application: ApplicationId, base_seed: u64) -> Self {
        ScenarioGenerator {
            application,
            base_seed,
            densities: vec![0.4, 0.8, 1.5],
            extents: vec![18.0, 24.0, 32.0],
            noise_levels: vec![0.0, 0.25, 0.5],
            rates: vec![
                RateConfig::legacy(),
                RateConfig::legacy().with_replan_hz(2.0),
            ],
            replan_modes: vec![ReplanMode::HoverToPlan, ReplanMode::PlanInMotion],
            exec_models: vec![ExecModel::Serial, ExecModel::Pipelined],
            fault_plans: vec![FaultPlan::none()],
            degradation: DegradationConfig::off(),
        }
    }

    /// Replaces the obstacle-density choices (builder style).
    pub fn with_densities(mut self, densities: Vec<f64>) -> Self {
        self.densities = densities;
        self
    }

    /// Replaces the world-extent choices (builder style).
    pub fn with_extents(mut self, extents: Vec<f64>) -> Self {
        self.extents = extents;
        self
    }

    /// Replaces the depth-noise choices (builder style).
    pub fn with_noise_levels(mut self, noise_levels: Vec<f64>) -> Self {
        self.noise_levels = noise_levels;
        self
    }

    /// Replaces the node-rate schedule choices (builder style).
    pub fn with_rate_choices(mut self, rates: Vec<RateConfig>) -> Self {
        self.rates = rates;
        self
    }

    /// Replaces the replan-mode choices (builder style).
    pub fn with_replan_modes(mut self, modes: Vec<ReplanMode>) -> Self {
        self.replan_modes = modes;
        self
    }

    /// Replaces the executor-model choices (builder style).
    pub fn with_exec_models(mut self, models: Vec<ExecModel>) -> Self {
        self.exec_models = models;
        self
    }

    /// Replaces the fault-plan choices (builder style). A single-element
    /// list applies that plan to every episode without spending a draw.
    pub fn with_fault_plans(mut self, plans: Vec<FaultPlan>) -> Self {
        self.fault_plans = plans;
        self
    }

    /// Sets the degradation policy every episode runs under (builder style).
    pub fn with_degradation(mut self, degradation: DegradationConfig) -> Self {
        self.degradation = degradation;
        self
    }

    /// The raw choice-list indices (plus the episode seed) of episode
    /// `index`: the single source of truth shared by [`Self::episode`] and
    /// [`Self::episode_class`], so the class label always matches the
    /// mission actually generated.
    fn draws(&self, index: u64) -> EpisodeDraws {
        let mut state = splitmix64(self.base_seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut pick = |len: usize| -> usize {
            assert!(len > 0, "scenario choice lists must be non-empty");
            state = splitmix64(state);
            (state % len as u64) as usize
        };
        let density = pick(self.densities.len());
        let extent = pick(self.extents.len());
        let noise = pick(self.noise_levels.len());
        let rates = pick(self.rates.len());
        let mode = pick(self.replan_modes.len());
        let exec = pick(self.exec_models.len());
        // The fault draw only happens when there is a real choice to make: a
        // single-plan list (the default) leaves the draw sequence — and with
        // it every episode seed — bit-identical to the pre-fault generator.
        let fault = if self.fault_plans.len() > 1 {
            pick(self.fault_plans.len())
        } else {
            0
        };
        let episode_seed = splitmix64(state);
        EpisodeDraws {
            density,
            extent,
            noise,
            rates,
            mode,
            exec,
            fault,
            episode_seed,
        }
    }

    /// The mission configuration of episode `index` — a pure function of
    /// `(base_seed, index)` and the choice lists.
    pub fn episode(&self, index: u64) -> MissionConfig {
        let d = self.draws(index);
        let mut cfg = quick_config(MissionConfig::fast_test(self.application));
        cfg.environment.obstacle_density = self.densities[d.density];
        cfg.environment.extent = self.extents[d.extent];
        cfg.with_depth_noise(self.noise_levels[d.noise])
            .with_rates(self.rates[d.rates])
            .with_replan_mode(self.replan_modes[d.mode])
            .with_exec_model(self.exec_models[d.exec])
            .with_fault_plan(self.fault_plans[d.fault])
            .with_degradation(self.degradation)
            .with_seed(d.episode_seed)
    }

    /// The scenario class of episode `index`: the replan policy plus the
    /// fault cohort, e.g. `"hover+faults:none"` or
    /// `"in-motion+faults:cam-drop=0.1"`. Keys the per-class breakdown of
    /// [`reliability_sweep_classified`], so fault cohorts are separable from
    /// one sweep's JSON without re-running.
    pub fn episode_class(&self, index: u64) -> String {
        let d = self.draws(index);
        format!(
            "{}+faults:{}",
            self.replan_modes[d.mode].label(),
            self.fault_plans[d.fault].label()
        )
    }
}

impl ToJson for ScenarioGenerator {
    fn to_json(&self) -> Json {
        Json::object()
            .field("application", self.application.to_json())
            .field("base_seed", self.base_seed)
            .field("densities", self.densities.as_slice())
            .field("extents", self.extents.as_slice())
            .field("noise_levels", self.noise_levels.as_slice())
            .field(
                "rates",
                Json::Array(self.rates.iter().map(ToJson::to_json).collect()),
            )
            .field(
                "replan_modes",
                Json::Array(self.replan_modes.iter().map(ToJson::to_json).collect()),
            )
            .field(
                "exec_models",
                Json::Array(self.exec_models.iter().map(ToJson::to_json).collect()),
            )
            .field(
                "fault_plans",
                Json::Array(self.fault_plans.iter().map(ToJson::to_json).collect()),
            )
            .field("degradation", self.degradation.to_json())
    }
}

impl mav_types::FromJson for ScenarioGenerator {
    /// Reads a scenario-space description. Only `application` is required;
    /// omitted choice lists keep the [`ScenarioGenerator::new`] defaults.
    /// Present lists must be non-empty — the per-episode draws have no
    /// sensible meaning for an empty choice list.
    fn from_json(json: &Json) -> Result<Self, String> {
        json.check_fields(&[
            "application",
            "base_seed",
            "densities",
            "extents",
            "noise_levels",
            "rates",
            "replan_modes",
            "exec_models",
            "fault_plans",
            "degradation",
        ])?;
        let application: ApplicationId = json.parse_field("application")?;
        let base_seed: u64 = json.parse_field_or("base_seed", 42)?;
        let base = ScenarioGenerator::new(application, base_seed);
        let generator = ScenarioGenerator {
            application,
            base_seed,
            densities: json.parse_field_or("densities", base.densities)?,
            extents: json.parse_field_or("extents", base.extents)?,
            noise_levels: json.parse_field_or("noise_levels", base.noise_levels)?,
            rates: json.parse_field_or("rates", base.rates)?,
            replan_modes: json.parse_field_or("replan_modes", base.replan_modes)?,
            exec_models: json.parse_field_or("exec_models", base.exec_models)?,
            fault_plans: json.parse_field_or("fault_plans", base.fault_plans)?,
            degradation: json.parse_field_or("degradation", base.degradation)?,
        };
        for (name, len) in [
            ("densities", generator.densities.len()),
            ("extents", generator.extents.len()),
            ("noise_levels", generator.noise_levels.len()),
            ("rates", generator.rates.len()),
            ("replan_modes", generator.replan_modes.len()),
            ("exec_models", generator.exec_models.len()),
            ("fault_plans", generator.fault_plans.len()),
        ] {
            if len == 0 {
                return Err(format!("{name}: choice list must be non-empty"));
            }
        }
        Ok(generator)
    }
}

/// The per-episode choice-list indices drawn by [`ScenarioGenerator::draws`].
struct EpisodeDraws {
    density: usize,
    extent: usize,
    noise: usize,
    rates: usize,
    mode: usize,
    exec: usize,
    fault: usize,
    episode_seed: u64,
}

/// Episodes per shard of the sharded sweep. Shard boundaries are part of the
/// determinism contract (they fix the f64 summation order), so the default is
/// a named constant rather than a tuning knob.
pub const DEFAULT_SHARD_SIZE: u64 = 32;

/// All-integer per-scenario-class counters: the per-class leg of a
/// classified sweep. Merging adds counts, so the breakdown is trivially
/// thread-count invariant.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ClassStats {
    /// Episodes recorded in this class.
    pub episodes: u64,
    /// Episodes that completed successfully.
    pub successes: u64,
    /// Episodes that ended in a collision.
    pub collisions: u64,
    /// Episodes that failed without colliding (timeout, battery, watchdog).
    pub aborts: u64,
}

impl ClassStats {
    /// Folds one mission report into the class.
    pub fn record(&mut self, report: &MissionReport) {
        self.episodes += 1;
        if report.success() {
            self.successes += 1;
        } else if matches!(report.failure, Some(MissionFailure::Collision)) {
            self.collisions += 1;
        } else {
            self.aborts += 1;
        }
    }

    /// Adds another accumulator's counts into this one.
    pub fn merge(&mut self, other: &ClassStats) {
        self.episodes += other.episodes;
        self.successes += other.successes;
        self.collisions += other.collisions;
        self.aborts += other.aborts;
    }

    fn rate(&self, count: u64) -> f64 {
        if self.episodes == 0 {
            0.0
        } else {
            count as f64 / self.episodes as f64
        }
    }

    /// Fraction of the class's episodes that completed their mission.
    pub fn success_rate(&self) -> f64 {
        self.rate(self.successes)
    }

    /// Fraction of the class's episodes that ended in a collision.
    pub fn collision_rate(&self) -> f64 {
        self.rate(self.collisions)
    }

    /// Fraction of the class's episodes that aborted without a collision.
    pub fn abort_rate(&self) -> f64 {
        self.rate(self.aborts)
    }
}

impl ToJson for ClassStats {
    fn to_json(&self) -> Json {
        Json::object()
            .field("episodes", self.episodes)
            .field("successes", self.successes)
            .field("success_rate", self.rate(self.successes))
            .field("collisions", self.collisions)
            .field("collision_rate", self.rate(self.collisions))
            .field("aborts", self.aborts)
            .field("abort_rate", self.rate(self.aborts))
    }
}

/// [`reliability_sweep_sharded`] plus a per-scenario-class breakdown keyed by
/// [`ScenarioGenerator::episode_class`]. The aggregate is recorded in the
/// same episode order as the plain sweep, so its bits are unchanged; the
/// class map is all-integer and merges in shard order.
pub fn reliability_sweep_classified(
    runner: &SweepRunner,
    generator: &ScenarioGenerator,
    episodes: u64,
    shard_size: u64,
) -> (ReliabilityStats, BTreeMap<String, ClassStats>) {
    reliability_sweep_classified_observed(runner, generator, episodes, shard_size, &|_| {})
}

/// [`reliability_sweep_classified`] with an episode-completion observer: the
/// callback fires once per finished episode, from whichever worker thread ran
/// it. The observer sees only *that* an episode completed — never its data —
/// so it cannot perturb the aggregates; `mav-server` uses it to publish job
/// progress counters while a sweep runs. The plain entry points route through
/// here with a no-op observer, so there is exactly one sweep loop to keep
/// bit-identical.
pub fn reliability_sweep_classified_observed(
    runner: &SweepRunner,
    generator: &ScenarioGenerator,
    episodes: u64,
    shard_size: u64,
    observe_episode_done: &(dyn Fn(u64) + Sync),
) -> (ReliabilityStats, BTreeMap<String, ClassStats>) {
    let shards = runner.run_sharded(episodes, shard_size, |range| {
        with_episode_scratch(|scratch| {
            let mut acc = ReliabilityStats::new();
            let mut classes: BTreeMap<String, ClassStats> = BTreeMap::new();
            for index in range {
                let report = run_mission_with_scratch(generator.episode(index), scratch);
                acc.record(&report);
                classes
                    .entry(generator.episode_class(index))
                    .or_default()
                    .record(&report);
                observe_episode_done(index);
            }
            (acc, classes)
        })
    });
    let mut total = ReliabilityStats::new();
    let mut classes: BTreeMap<String, ClassStats> = BTreeMap::new();
    for (shard, shard_classes) in &shards {
        total.merge(shard);
        for (class, stats) in shard_classes {
            classes.entry(class.clone()).or_default().merge(stats);
        }
    }
    (total, classes)
}

/// [`reliability_sweep_with`] with an explicit shard size (tests use small
/// shards to exercise multi-shard merging with few episodes).
pub fn reliability_sweep_sharded(
    runner: &SweepRunner,
    generator: &ScenarioGenerator,
    episodes: u64,
    shard_size: u64,
) -> ReliabilityStats {
    reliability_sweep_classified(runner, generator, episodes, shard_size).0
}

/// Runs `episodes` scenario-generator episodes and returns the streaming
/// aggregate. Episodes are sharded into fixed contiguous blocks; each worker
/// folds its shard through its thread-local [`crate::EpisodeScratch`]
/// (zero-realloc episode reuse) and the shard accumulators merge in shard
/// order — aggregates are bit-identical at every thread count.
pub fn reliability_sweep_with(
    runner: &SweepRunner,
    generator: &ScenarioGenerator,
    episodes: u64,
) -> ReliabilityStats {
    reliability_sweep_sharded(runner, generator, episodes, DEFAULT_SHARD_SIZE)
}

/// One cell of the replan-rate × replan-mode reliability grid.
#[derive(Debug, Clone, PartialEq)]
pub struct RateGridCell {
    /// Replan-trigger rate, Hz (`None`: the legacy every-round schedule).
    pub replan_hz: Option<f64>,
    /// Collision-alert replanning policy of this cell.
    pub replan_mode: ReplanMode,
    /// The cell's aggregate over its episodes.
    pub stats: ReliabilityStats,
}

impl RateGridCell {
    /// A compact `"hover@legacy"` / `"in-motion@2Hz"` cell label.
    pub fn label(&self) -> String {
        let rate = match self.replan_hz {
            None => "legacy".to_string(),
            Some(hz) => format!("{hz}Hz"),
        };
        format!("{}@{rate}", self.replan_mode.label())
    }
}

impl ToJson for RateGridCell {
    fn to_json(&self) -> Json {
        Json::object()
            .field("label", self.label().as_str())
            .field("replan_hz", self.replan_hz.unwrap_or(0.0))
            .field("replan_mode", self.replan_mode.label())
            .field("stats", self.stats.to_json())
    }
}

/// The replan-Hz × replan-mode reliability grid: every combination of replan
/// rate (legacy plus explicit rates) and [`ReplanMode`], each cell a pinned
/// scenario sweep over the same seed base so cells see comparable scenario
/// draws. The executor model is pinned to `Serial` so the grid isolates the
/// replanning policy.
pub fn reliability_rate_grid_with(
    runner: &SweepRunner,
    application: ApplicationId,
    base_seed: u64,
    episodes_per_cell: u64,
) -> Vec<RateGridCell> {
    let hz_choices = [None, Some(1.0), Some(2.0), Some(5.0)];
    let modes = [ReplanMode::HoverToPlan, ReplanMode::PlanInMotion];
    let mut cells = Vec::with_capacity(hz_choices.len() * modes.len());
    for &replan_mode in &modes {
        for &replan_hz in &hz_choices {
            let rates = match replan_hz {
                None => RateConfig::legacy(),
                Some(hz) => RateConfig::legacy().with_replan_hz(hz),
            };
            let generator = ScenarioGenerator::new(application, base_seed)
                .with_rate_choices(vec![rates])
                .with_replan_modes(vec![replan_mode])
                .with_exec_models(vec![ExecModel::Serial]);
            let stats = reliability_sweep_with(runner, &generator, episodes_per_cell);
            cells.push(RateGridCell {
                replan_hz,
                replan_mode,
                stats,
            });
        }
    }
    cells
}

/// One cell of the fault-intensity × degradation-policy matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultGridCell {
    /// Fault-intensity scale in `[0, 1]` applied to the base plan.
    pub intensity: f64,
    /// The scaled fault plan every episode of this cell ran under.
    pub plan: FaultPlan,
    /// Short name of the cell's degradation policy (`"fly-blind"`, …).
    pub policy: &'static str,
    /// The degradation policy itself.
    pub degradation: DegradationConfig,
    /// The cell's aggregate over its episodes.
    pub stats: ReliabilityStats,
}

impl FaultGridCell {
    /// A compact `"fly-blind@x0.5"` cell label.
    pub fn label(&self) -> String {
        format!("{}@x{}", self.policy, self.intensity)
    }
}

impl ToJson for FaultGridCell {
    fn to_json(&self) -> Json {
        Json::object()
            .field("label", self.label().as_str())
            .field("intensity", self.intensity)
            .field("faults", self.plan.label().as_str())
            .field("policy", self.policy)
            .field("degradation", self.degradation.label().as_str())
            .field("survival_rate", self.stats.survival_rate())
            .field(
                "degraded_time_fraction",
                self.stats.degraded_time_fraction(),
            )
            .field("mean_recover_secs", self.stats.mean_recover_secs())
            .field("degraded_episodes", self.stats.degraded_episodes)
            .field("stats", self.stats.to_json())
    }
}

/// The degradation-policy axis of [`reliability_fault_grid_with`]: fly-blind
/// (no response at all), the stale-perception watchdog with the binary
/// brake, and the full defensive posture (watchdog + planner timeout +
/// graded brake).
pub fn fault_grid_policies() -> [(&'static str, DegradationConfig); 3] {
    [
        ("fly-blind", DegradationConfig::off()),
        (
            "watchdog",
            DegradationConfig::off()
                .with_watchdog()
                .with_plan_timeout(4.0),
        ),
        ("watchdog+graded", DegradationConfig::defensive()),
    ]
}

/// The fault-intensity × degradation-policy reliability matrix: the base
/// fault plan scaled to each intensity, crossed with
/// [`fault_grid_policies`]. Every cell sweeps the same scenario seeds, so
/// the *only* thing that varies across a row is the degradation policy —
/// the survival comparison the fault matrix exists to make.
pub fn reliability_fault_grid_with(
    runner: &SweepRunner,
    application: ApplicationId,
    base_seed: u64,
    episodes_per_cell: u64,
    plan: &FaultPlan,
) -> Vec<FaultGridCell> {
    let intensities = [0.0, 0.5, 1.0];
    let policies = fault_grid_policies();
    let mut cells = Vec::with_capacity(intensities.len() * policies.len());
    for &intensity in &intensities {
        let scaled = plan.scaled(intensity);
        for (policy, degradation) in &policies {
            let generator = ScenarioGenerator::new(application, base_seed)
                .with_fault_plans(vec![scaled])
                .with_degradation(*degradation);
            let stats = reliability_sweep_with(runner, &generator, episodes_per_cell);
            cells.push(FaultGridCell {
                intensity,
                plan: scaled,
                policy,
                degradation: *degradation,
                stats,
            });
        }
    }
    cells
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::run_mission;

    /// A small pinned scenario space so tests run quickly.
    fn tiny_generator() -> ScenarioGenerator {
        ScenarioGenerator::new(ApplicationId::Scanning, 11)
            .with_densities(vec![0.5])
            .with_extents(vec![16.0])
            .with_noise_levels(vec![0.0])
            .with_rate_choices(vec![RateConfig::legacy()])
    }

    #[test]
    fn streaming_quantiles_track_the_exact_oracle() {
        let mut hist = StreamingHistogram::new();
        let mut values = Vec::new();
        for i in 0..5000u64 {
            let u = (splitmix64(i ^ 0xabcdef) % 100_000) as f64 / 100_000.0;
            // Log-uniform over roughly [0.05, 1100].
            let value = 0.05 * (u * 10.0).exp();
            hist.record(value);
            values.push(value);
        }
        // The sum is accumulated in the exact record order: bit-identical.
        assert_eq!(hist.sum().to_bits(), values.iter().sum::<f64>().to_bits());
        values.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(hist.count(), 5000);
        for q in [0.01f64, 0.25, 0.5, 0.9, 0.99] {
            let rank = ((q * 5000.0).ceil() as usize).clamp(1, 5000);
            let exact = values[rank - 1];
            let approx = hist.quantile(q);
            let ratio = approx / exact;
            assert!(
                (1.0 / 1.06..=1.06).contains(&ratio),
                "q={q}: approx {approx} vs exact {exact} (ratio {ratio})"
            );
        }
        assert!(hist.min() > 0.0);
        assert!(hist.max() <= 1101.0);
    }

    #[test]
    fn histogram_merge_adds_counts_exactly() {
        let mut left = StreamingHistogram::new();
        let mut right = StreamingHistogram::new();
        for i in 0..100u64 {
            let value = 0.1 + i as f64;
            if i < 60 {
                left.record(value);
            } else {
                right.record(value);
            }
        }
        let mut merged = left.clone();
        merged.merge(&right);
        assert_eq!(merged.count(), 100);
        assert_eq!(merged.min(), 0.1);
        assert_eq!(merged.max(), 99.1);
        assert_eq!(merged.sum(), left.sum() + right.sum());
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let hist = StreamingHistogram::new();
        assert_eq!(hist.quantile(0.5), 0.0);
        assert_eq!(hist.mean(), 0.0);
        assert_eq!(hist.min(), 0.0);
        assert_eq!(hist.max(), 0.0);
    }

    #[test]
    fn scenario_generator_is_a_pure_function_of_seed_and_index() {
        let a = ScenarioGenerator::new(ApplicationId::Scanning, 42);
        let b = ScenarioGenerator::new(ApplicationId::Scanning, 42);
        // Same generator, any evaluation order: identical configs.
        for index in (0..16u64).rev() {
            assert_eq!(a.episode(index), b.episode(index), "episode {index}");
        }
        // Episodes draw distinct seeds, and the base seed matters.
        assert_ne!(a.episode(0).seed, a.episode(1).seed);
        let c = ScenarioGenerator::new(ApplicationId::Scanning, 43);
        assert_ne!(a.episode(0).seed, c.episode(0).seed);
        // The environment seed follows the mission seed.
        let cfg = a.episode(5);
        assert_eq!(cfg.seed, cfg.environment.seed);
    }

    #[test]
    fn sweep_aggregates_match_a_serial_fresh_mission_loop() {
        // Six episodes fit one shard, so the sharded sweep accumulates in the
        // same order as this serial loop — and the loop uses the allocating
        // run_mission, so this also pins scratch reuse to fresh missions at
        // the aggregate level.
        let generator = tiny_generator();
        let mut expected = ReliabilityStats::new();
        for index in 0..6 {
            expected.record(&run_mission(generator.episode(index)));
        }
        let swept = reliability_sweep_with(&SweepRunner::new().with_threads(2), &generator, 6);
        assert_eq!(expected, swept);
    }

    #[test]
    fn aggregates_are_bit_identical_across_thread_counts() {
        let generator = tiny_generator();
        // 40 episodes over shards of 8: five shards to schedule.
        let baseline =
            reliability_sweep_sharded(&SweepRunner::new().with_threads(1), &generator, 40, 8);
        assert_eq!(baseline.episodes, 40);
        for threads in [2, 4, 8] {
            let parallel = reliability_sweep_sharded(
                &SweepRunner::new().with_threads(threads),
                &generator,
                40,
                8,
            );
            assert_eq!(baseline, parallel, "diverged at {threads} threads");
            assert_eq!(
                baseline.time.sum().to_bits(),
                parallel.time.sum().to_bits(),
                "time sum bits diverged at {threads} threads"
            );
            assert_eq!(
                baseline.energy.sum().to_bits(),
                parallel.energy.sum().to_bits(),
                "energy sum bits diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn single_fault_plan_spends_no_draw_and_default_matches_pre_fault_generator() {
        // The default generator and one with a pinned *non-none* single plan
        // must draw identical episode seeds: the plan is applied without
        // consuming RNG state, so fault cohorts see the same scenarios.
        let plain = tiny_generator();
        let faulted = tiny_generator()
            .with_fault_plans(vec![FaultPlan::parse("cam-drop=0.2").unwrap()])
            .with_degradation(DegradationConfig::defensive());
        for index in 0..8u64 {
            let a = plain.episode(index);
            let b = faulted.episode(index);
            assert_eq!(a.seed, b.seed, "episode {index} seed diverged");
            assert!(a.fault_plan.is_none());
            assert!(!b.fault_plan.is_none());
            assert!(b.degradation.perception_watchdog);
        }
        // A multi-plan list does draw, and the class label tracks the drawn
        // cohort of the episode actually generated.
        let mixed = tiny_generator().with_fault_plans(vec![
            FaultPlan::none(),
            FaultPlan::parse("cam-drop=0.5").unwrap(),
        ]);
        for index in 0..16u64 {
            let cfg = mixed.episode(index);
            let class = mixed.episode_class(index);
            assert_eq!(
                class.ends_with("faults:none"),
                cfg.fault_plan.is_none(),
                "episode {index}: class {class} vs plan {:?}",
                cfg.fault_plan
            );
        }
    }

    #[test]
    fn classified_sweep_breakdown_adds_up_and_keeps_aggregate_bits() {
        let generator = tiny_generator().with_fault_plans(vec![
            FaultPlan::none(),
            FaultPlan::parse("kernel-spike=0.3").unwrap(),
        ]);
        let runner = SweepRunner::new().with_threads(2);
        let (stats, classes) = reliability_sweep_classified(&runner, &generator, 12, 4);
        assert_eq!(stats.episodes, 12);
        assert!(!classes.is_empty());
        let class_total: u64 = classes.values().map(|c| c.episodes).sum();
        assert_eq!(class_total, 12);
        let successes: u64 = classes.values().map(|c| c.successes).sum();
        assert_eq!(successes, stats.successes);
        for class in classes.values() {
            assert_eq!(
                class.episodes,
                class.successes + class.collisions + class.aborts
            );
            assert!(class.to_json().to_string_pretty().contains("abort_rate"));
        }
        // The classified aggregate is bit-identical to the plain sweep, and
        // invariant to thread count.
        for threads in [1, 4] {
            let (again, classes_again) = reliability_sweep_classified(
                &SweepRunner::new().with_threads(threads),
                &generator,
                12,
                4,
            );
            assert_eq!(stats, again, "aggregate diverged at {threads} threads");
            assert_eq!(
                classes, classes_again,
                "classes diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn fault_grid_covers_the_matrix_and_zero_intensity_rows_match() {
        let plan = FaultPlan::parse("cam-drop=0.3,plan-timeout=3x").unwrap();
        let cells = reliability_fault_grid_with(
            &SweepRunner::new().with_threads(2),
            ApplicationId::Scanning,
            5,
            2,
            &plan,
        );
        assert_eq!(cells.len(), 9);
        let labels: Vec<String> = cells.iter().map(FaultGridCell::label).collect();
        let mut unique = labels.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), labels.len(), "duplicate cells: {labels:?}");
        for cell in &cells {
            assert_eq!(cell.stats.episodes, 2);
            assert!((cell.intensity - 0.0).abs() < 1e-12 || !cell.plan.is_none());
            let json = cell.to_json().to_string_pretty();
            assert!(json.contains("survival_rate"));
            assert!(json.contains("degraded_time_fraction"));
        }
        // Intensity 0 with the fly-blind policy is the plain sweep: no
        // faults, no degradation, no degraded episodes.
        let baseline = &cells[0];
        assert_eq!(baseline.policy, "fly-blind");
        assert!(baseline.plan.is_none());
        assert_eq!(baseline.stats.degraded_episodes, 0);
    }

    #[test]
    fn rate_grid_covers_every_cell_once() {
        let cells = reliability_rate_grid_with(
            &SweepRunner::new().with_threads(2),
            ApplicationId::Scanning,
            7,
            2,
        );
        assert_eq!(cells.len(), 8);
        let labels: Vec<String> = cells.iter().map(RateGridCell::label).collect();
        let mut unique = labels.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), labels.len(), "duplicate cells: {labels:?}");
        for cell in &cells {
            assert_eq!(cell.stats.episodes, 2);
            let json = cell.to_json().to_string_pretty();
            assert!(json.contains("\"success_rate\""));
        }
    }
}
