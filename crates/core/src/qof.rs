//! Quality-of-Flight (QoF) metrics and the per-mission report.
//!
//! The paper's QoF metrics are mission time and total energy (universal),
//! plus application-specific figures such as the aerial-photography framing
//! error and the mapped volume. A [`MissionReport`] carries all of them plus
//! the per-kernel time breakdown used by Table I and Fig. 15.

use crate::faults::DegradedSummary;
use mav_compute::{ApplicationId, OperatingPoint};
use mav_energy::EnergyAccount;
use mav_runtime::KernelTimer;
use mav_types::{Energy, SimDuration};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a mission failed, when it did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MissionFailure {
    /// The vehicle hit an obstacle.
    Collision,
    /// The battery ran out before completion.
    BatteryExhausted,
    /// The configured time budget was exceeded.
    Timeout,
    /// A planner could not find a path.
    PlanningFailed(String),
    /// Localization was lost and never recovered.
    LocalizationLost,
    /// Any other failure.
    Other(String),
}

impl fmt::Display for MissionFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MissionFailure::Collision => f.write_str("collision"),
            MissionFailure::BatteryExhausted => f.write_str("battery exhausted"),
            MissionFailure::Timeout => f.write_str("time budget exceeded"),
            MissionFailure::PlanningFailed(r) => write!(f, "planning failed: {r}"),
            MissionFailure::LocalizationLost => f.write_str("localization lost"),
            MissionFailure::Other(r) => write!(f, "failure: {r}"),
        }
    }
}

/// The complete outcome of one closed-loop mission.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissionReport {
    /// Which application ran.
    pub application: ApplicationId,
    /// Operating point it ran at.
    pub operating_point: OperatingPoint,
    /// `None` when the mission succeeded, otherwise the failure reason.
    pub failure: Option<MissionFailure>,
    /// Total mission time, seconds.
    pub mission_time_secs: f64,
    /// Time spent hovering (waiting for planning), seconds.
    pub hover_time_secs: f64,
    /// Distance travelled, metres.
    pub distance_m: f64,
    /// Average velocity over the mission, m/s.
    pub average_velocity: f64,
    /// The Eq. 2 velocity cap the mission flew under, m/s.
    pub velocity_cap: f64,
    /// Total system energy, joules.
    pub total_energy: Energy,
    /// Rotor energy, joules.
    pub rotor_energy: Energy,
    /// Compute energy, joules.
    pub compute_energy: Energy,
    /// Battery percentage remaining at mission end.
    pub battery_remaining_pct: f64,
    /// Number of re-planning episodes.
    pub replans: u32,
    /// Number of target detections (search and rescue / photography).
    pub detections: u32,
    /// Volume mapped, cubic metres (3D mapping).
    pub mapped_volume: f64,
    /// Mean framing error, normalised image units (aerial photography).
    pub tracking_error: f64,
    /// Per-kernel simulated time totals.
    pub kernel_timer: KernelTimer,
    /// Degraded-mode summary: `None` for a mission that never degraded
    /// (including every fault-free mission), so legacy reports — and their
    /// JSON — are untouched by the fault-injection subsystem.
    pub degraded: Option<DegradedSummary>,
}

impl MissionReport {
    /// Returns `true` when the mission completed successfully.
    pub fn success(&self) -> bool {
        self.failure.is_none()
    }

    /// Total energy in kilojoules (the unit the paper's heat maps use).
    pub fn energy_kj(&self) -> f64 {
        self.total_energy.as_kilojoules()
    }

    /// Builds a report from the raw mission counters.
    #[allow(clippy::too_many_arguments)]
    pub fn from_counters(
        application: ApplicationId,
        operating_point: OperatingPoint,
        failure: Option<MissionFailure>,
        mission_time: SimDuration,
        hover_time: SimDuration,
        distance_m: f64,
        velocity_cap: f64,
        energy: &EnergyAccount,
        battery_remaining_pct: f64,
        replans: u32,
        detections: u32,
        mapped_volume: f64,
        tracking_error: f64,
        kernel_timer: KernelTimer,
        degraded: Option<DegradedSummary>,
    ) -> Self {
        let mission_time_secs = mission_time.as_secs();
        MissionReport {
            application,
            operating_point,
            failure,
            mission_time_secs,
            hover_time_secs: hover_time.as_secs(),
            distance_m,
            average_velocity: if mission_time_secs > 0.0 {
                distance_m / mission_time_secs
            } else {
                0.0
            },
            velocity_cap,
            total_energy: energy.total_energy(),
            rotor_energy: energy.rotor_energy(),
            compute_energy: energy.compute_energy(),
            battery_remaining_pct,
            replans,
            detections,
            mapped_volume,
            tracking_error,
            kernel_timer,
            degraded,
        }
    }
}

impl mav_types::ToJson for MissionFailure {
    fn to_json(&self) -> mav_types::Json {
        mav_types::Json::String(self.to_string())
    }
}

impl mav_types::ToJson for MissionReport {
    fn to_json(&self) -> mav_types::Json {
        use mav_types::{Json, ToJson};
        let json = Json::object()
            .field("application", self.application.to_json())
            .field("operating_point", self.operating_point.to_json())
            .field("failure", self.failure.as_ref().map(ToJson::to_json))
            .field("mission_time_secs", self.mission_time_secs)
            .field("hover_time_secs", self.hover_time_secs)
            .field("distance_m", self.distance_m)
            .field("average_velocity", self.average_velocity)
            .field("velocity_cap", self.velocity_cap)
            .field("total_energy_j", self.total_energy.as_joules())
            .field("rotor_energy_j", self.rotor_energy.as_joules())
            .field("compute_energy_j", self.compute_energy.as_joules())
            .field("battery_remaining_pct", self.battery_remaining_pct)
            .field("replans", self.replans)
            .field("detections", self.detections)
            .field("mapped_volume", self.mapped_volume)
            .field("tracking_error", self.tracking_error)
            .field("kernel_timer", self.kernel_timer.to_json());
        // Only degraded missions carry the extra section: fault-free reports
        // stay byte-identical to every pre-fault-injection harness output.
        match &self.degraded {
            Some(degraded) => json.field("degraded", degraded.to_json()),
            None => json,
        }
    }
}

impl fmt::Display for MissionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {}: {} | {:.1} s, {:.1} m, {:.2} m/s avg, {:.1} kJ, battery {:.0}%",
            self.application,
            self.operating_point.label(),
            if self.success() {
                "success".to_string()
            } else {
                format!("{}", self.failure.as_ref().unwrap())
            },
            self.mission_time_secs,
            self.distance_m,
            self.average_velocity,
            self.energy_kj(),
            self.battery_remaining_pct
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mav_energy::FlightPhaseLabel;
    use mav_types::{Power, SimTime};

    fn sample_energy() -> EnergyAccount {
        let mut acc = EnergyAccount::new();
        acc.record(
            SimTime::ZERO,
            SimDuration::from_secs(100.0),
            Power::from_watts(320.0),
            Power::from_watts(13.0),
            FlightPhaseLabel::Flying,
        );
        acc
    }

    fn sample_report(failure: Option<MissionFailure>) -> MissionReport {
        MissionReport::from_counters(
            ApplicationId::PackageDelivery,
            OperatingPoint::reference(),
            failure,
            SimDuration::from_secs(100.0),
            SimDuration::from_secs(12.0),
            250.0,
            4.5,
            &sample_energy(),
            64.0,
            3,
            0,
            0.0,
            0.0,
            KernelTimer::new(),
            None,
        )
    }

    #[test]
    fn derived_metrics_are_consistent() {
        let r = sample_report(None);
        assert!(r.success());
        assert!((r.average_velocity - 2.5).abs() < 1e-9);
        assert!((r.energy_kj() - 33.5).abs() < 0.01);
        assert!(r.rotor_energy > r.compute_energy);
        assert_eq!(r.replans, 3);
    }

    #[test]
    fn failures_are_reported() {
        let r = sample_report(Some(MissionFailure::Collision));
        assert!(!r.success());
        assert!(format!("{r}").contains("collision"));
        for f in [
            MissionFailure::Collision,
            MissionFailure::BatteryExhausted,
            MissionFailure::Timeout,
            MissionFailure::PlanningFailed("x".into()),
            MissionFailure::LocalizationLost,
            MissionFailure::Other("y".into()),
        ] {
            assert!(!format!("{f}").is_empty());
        }
    }

    #[test]
    fn zero_duration_mission_has_zero_average_velocity() {
        let r = MissionReport::from_counters(
            ApplicationId::Scanning,
            OperatingPoint::reference(),
            None,
            SimDuration::ZERO,
            SimDuration::ZERO,
            0.0,
            1.0,
            &EnergyAccount::new(),
            100.0,
            0,
            0,
            0.0,
            0.0,
            KernelTimer::new(),
            None,
        );
        assert_eq!(r.average_velocity, 0.0);
        assert!(!format!("{r}").is_empty());
    }
}
