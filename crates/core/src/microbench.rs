//! The SLAM-throughput microbenchmark (the paper's Fig. 8b) and the
//! steady-state power/endurance helpers behind Figs. 2 and 9.
//!
//! The paper tasks the drone with a circular path of radius 25 m, throttles
//! ORB-SLAM2 to different frame rates, bounds the localization-failure rate at
//! 20 %, and reports the resulting maximum velocity and total energy. Here the
//! same sweep is driven by the [`mav_perception::SlamConfig`] failure model
//! plus the Eq. 1 energy model.

use mav_dynamics::QuadrotorConfig;
use mav_energy::{ComputePowerModel, RotorPowerModel};
use mav_perception::{Localizer, SlamConfig, VisualSlam};
use mav_types::{Pose, SimTime, Vec3};
use serde::{Deserialize, Serialize};

/// One point of the Fig. 8b sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlamSweepPoint {
    /// SLAM frame rate, frames per second (the compute knob).
    pub fps: f64,
    /// Maximum velocity permitted at the 20 % failure budget, m/s.
    pub max_velocity: f64,
    /// Mission time to complete the circular path at that velocity, seconds.
    pub mission_time_secs: f64,
    /// Total system energy for the lap, kilojoules.
    pub energy_kj: f64,
    /// Localization failure rate actually observed when simulating the lap.
    pub observed_failure_rate: f64,
}

/// Configuration of the microbenchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlamMicrobenchConfig {
    /// Radius of the circular path, metres (25 m in the paper).
    pub radius: f64,
    /// Failure-rate budget (0.2 in the paper).
    pub failure_budget: f64,
    /// Airframe mechanical velocity limit, m/s.
    pub mechanical_limit: f64,
}

impl Default for SlamMicrobenchConfig {
    fn default() -> Self {
        SlamMicrobenchConfig {
            radius: 25.0,
            failure_budget: 0.2,
            mechanical_limit: 12.0,
        }
    }
}

/// Runs the Fig. 8b sweep over the given SLAM frame rates.
pub fn slam_fps_sweep(fps_values: &[f64], config: SlamMicrobenchConfig) -> Vec<SlamSweepPoint> {
    let rotor = RotorPowerModel::dji_matrice_100();
    let compute = ComputePowerModel::tx2();
    let quad = QuadrotorConfig::dji_matrice_100();
    fps_values
        .iter()
        .map(|&fps| {
            let slam_cfg = SlamConfig::with_fps(fps);
            let budgeted = slam_cfg.max_velocity_for_failure_budget(config.failure_budget);
            let velocity = budgeted.min(config.mechanical_limit).min(quad.max_velocity);
            let circumference = std::f64::consts::TAU * config.radius;
            let mission_time = circumference / velocity.max(0.1);
            // Energy: rotor power at the cruise velocity plus compute power,
            // integrated over the lap.
            let rotor_power = rotor.power(&Vec3::new(velocity, 0.0, 0.0), &Vec3::ZERO, &Vec3::ZERO);
            let compute_power = compute.power(4, 2.2);
            let energy_kj =
                (rotor_power.as_watts() + compute_power.as_watts()) * mission_time / 1000.0;
            // Validate the analytic budget by actually simulating the lap with
            // the stochastic SLAM model.
            let observed_failure_rate = simulate_lap(&slam_cfg, velocity, config.radius, fps);
            SlamSweepPoint {
                fps,
                max_velocity: velocity,
                mission_time_secs: mission_time,
                energy_kj,
                observed_failure_rate,
            }
        })
        .collect()
}

/// Simulates one lap of the circle at constant speed, feeding the SLAM model
/// one frame per 1/fps seconds, and returns the observed failure rate.
fn simulate_lap(slam_cfg: &SlamConfig, velocity: f64, radius: f64, fps: f64) -> f64 {
    let mut slam = VisualSlam::new(*slam_cfg);
    let circumference = std::f64::consts::TAU * radius;
    let lap_time = circumference / velocity.max(0.1);
    let frames = (lap_time * fps).ceil().max(1.0) as usize;
    let mut t = 0.0;
    for _ in 0..frames.min(20_000) {
        let angle = (velocity * t) / radius;
        let position = Vec3::new(radius * angle.cos(), radius * angle.sin(), 2.0);
        let tangent = Vec3::new(-angle.sin(), angle.cos(), 0.0) * velocity;
        slam.localize(
            &Pose::new(position, tangent.heading()),
            &tangent,
            SimTime::from_secs(t),
        );
        t += 1.0 / fps;
    }
    slam.failure_rate()
}

/// Endurance of a hovering MAV given battery capacity (mAh at the given
/// nominal voltage) and hover power — the simple model behind Fig. 2a's trend.
pub fn hover_endurance_minutes(battery_mah: f64, nominal_voltage: f64, hover_watts: f64) -> f64 {
    if hover_watts <= 0.0 {
        return 0.0;
    }
    let energy_j = battery_mah * nominal_voltage * 3.6;
    energy_j / hover_watts / 60.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn faster_slam_permits_faster_laps_and_less_energy() {
        let sweep = slam_fps_sweep(&[1.0, 2.0, 4.0, 8.0], SlamMicrobenchConfig::default());
        assert_eq!(sweep.len(), 4);
        for w in sweep.windows(2) {
            assert!(
                w[1].max_velocity >= w[0].max_velocity,
                "velocity not monotone"
            );
            assert!(w[1].mission_time_secs <= w[0].mission_time_secs + 1e-9);
        }
        // The paper reports ≈4X energy reduction for a 5X FPS increase; our
        // model must show a clear (>1.5X) energy reduction from 1 to 8 FPS.
        let slow = &sweep[0];
        let fast = &sweep[3];
        assert!(
            slow.energy_kj / fast.energy_kj > 1.5,
            "energy ratio {:.2}",
            slow.energy_kj / fast.energy_kj
        );
    }

    #[test]
    fn observed_failure_rate_respects_the_budget() {
        let sweep = slam_fps_sweep(&[2.0, 5.0, 10.0], SlamMicrobenchConfig::default());
        for point in sweep {
            assert!(
                point.observed_failure_rate <= 0.35,
                "fps {} exceeded the failure budget with {:.2}",
                point.fps,
                point.observed_failure_rate
            );
        }
    }

    #[test]
    fn velocity_saturates_at_the_mechanical_limit() {
        let cfg = SlamMicrobenchConfig {
            mechanical_limit: 6.0,
            ..Default::default()
        };
        let sweep = slam_fps_sweep(&[50.0, 100.0], cfg);
        for p in sweep {
            assert!((p.max_velocity - 6.0).abs() < 1e-9);
        }
    }

    #[test]
    fn hover_endurance_matches_off_the_shelf_numbers() {
        // A 3DR-Solo-class pack (5200 mAh, 14.8 V) at ~287 W hovers for
        // roughly 16 minutes — under the 20-minute figure the paper quotes.
        let minutes = hover_endurance_minutes(5200.0, 14.8, 287.0);
        assert!(minutes > 10.0 && minutes < 20.0, "endurance {minutes}");
        assert_eq!(hover_endurance_minutes(5000.0, 14.8, 0.0), 0.0);
        // Bigger battery, longer endurance.
        assert!(hover_endurance_minutes(10_000.0, 14.8, 287.0) > minutes);
    }
}
