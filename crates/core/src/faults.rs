//! Deterministic fault injection and degraded-mode accounting.
//!
//! The paper's closed loop assumes every sensor frame arrives, every kernel
//! finishes on time, and the battery never surprises the planner. This module
//! makes failure a first-class, *seeded* input to the simulator: a
//! [`FaultPlan`] describes per-mission fault intensities (camera frame-dropout
//! windows, depth-noise bursts, kernel latency spikes, planner-latency
//! stretch, topic message drops, battery capacity fade), and a
//! [`FaultInjector`] compiled from it draws every fault decision from
//! splitmix64 chains keyed on the episode seed and a per-site counter — so
//! identical seeds give bit-identical fault traces at any `--threads`.
//!
//! The injector is deliberately *absent* (`FaultInjector::compile` returns
//! `None`) when the plan is [`FaultPlan::none`]: every hook site gates on
//! `Option<FaultInjector>`, so the fault-free paths are structurally the same
//! code the golden fixtures pinned before this module existed.
//!
//! Degradation responses live in the flight nodes (`crate::flight`) and are
//! configured by `crate::config::DegradationConfig`; this module provides the
//! [`DegradedState`] bookkeeping they report into and the [`DegradedSummary`]
//! surfaced in `MissionReport`.

use crate::sweep::splitmix64;
use mav_compute::KernelId;
use mav_sensors::{DepthImage, DepthNoiseModel};
use mav_types::json::{Json, ToJson};
use mav_types::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Default length, in frames, of a camera dropout window once one starts.
const DEFAULT_DROPOUT_FRAMES: u32 = 3;
/// Default extra depth-noise standard deviation during a burst, metres.
const DEFAULT_BURST_STD: f64 = 1.0;
/// Default latency multiplier applied to a spiked kernel charge.
const DEFAULT_SPIKE_FACTOR: f64 = 4.0;

/// One parsed fault clause of a `--faults` argument.
///
/// A [`FaultPlan`] is a fold of these; `FaultPlan::parse` produces one spec
/// per comma-separated `key=value` clause.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultSpec {
    /// `cam-drop=P` or `cam-drop=P@N`: with probability `P` per captured
    /// frame, start a dropout window that loses `N` consecutive frames.
    CameraDropout {
        /// Per-frame probability that a dropout window starts.
        probability: f64,
        /// Consecutive frames lost once a window starts.
        frames: u32,
    },
    /// `noise-burst=P` or `noise-burst=P@S`: with probability `P` per frame,
    /// add a Gaussian depth-noise burst of standard deviation `S` metres on
    /// top of the configured sensor noise.
    NoiseBurst {
        /// Per-frame probability of a burst.
        probability: f64,
        /// Burst noise standard deviation, metres.
        std_dev: f64,
    },
    /// `kernel-spike=P` or `kernel-spike=P@F`: with probability `P` per
    /// kernel charge, multiply that charge's latency by `F`.
    KernelSpike {
        /// Per-charge probability of a spike.
        probability: f64,
        /// Latency multiplier applied to a spiked charge.
        factor: f64,
    },
    /// `plan-timeout=Fx`: multiply every planning-kernel latency by `F`
    /// (models a planner that blows its deadline by that factor).
    PlanTimeout {
        /// Latency stretch applied to every planning-kernel charge.
        factor: f64,
    },
    /// `topic-drop=P`: with probability `P`, a guarded topic publish
    /// (collision alerts, velocity commands) is silently lost.
    TopicDrop {
        /// Per-publish probability that the message is lost.
        probability: f64,
    },
    /// `battery-fade=F`: the pack starts the mission with fraction `F` of its
    /// rated capacity already gone (aged cells).
    BatteryFade {
        /// Fraction of rated capacity already gone at mission start.
        fraction: f64,
    },
}

/// Per-mission fault intensities, all off by default.
///
/// The plan is plain data: compiling it against an episode seed produces the
/// stateful [`FaultInjector`] that actually draws fault decisions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability, per captured frame, that a dropout window starts.
    pub camera_dropout: f64,
    /// Consecutive frames lost once a dropout window starts.
    pub camera_dropout_frames: u32,
    /// Probability, per captured frame, of a depth-noise burst.
    pub noise_burst: f64,
    /// Extra depth-noise standard deviation during a burst, metres.
    pub noise_burst_std: f64,
    /// Probability, per kernel charge, of a latency spike.
    pub kernel_spike: f64,
    /// Latency multiplier applied to a spiked charge.
    pub kernel_spike_factor: f64,
    /// Latency multiplier applied to every planning-kernel charge
    /// (`1.0` = off).
    pub plan_timeout_factor: f64,
    /// Probability that a guarded topic publish is dropped.
    pub topic_drop: f64,
    /// Fraction of rated battery capacity already lost at mission start.
    pub battery_fade: f64,
}

impl FaultPlan {
    /// The empty plan: no faults. This is the default everywhere, and it
    /// compiles to *no* injector, leaving every legacy code path untouched.
    pub fn none() -> Self {
        FaultPlan {
            camera_dropout: 0.0,
            camera_dropout_frames: DEFAULT_DROPOUT_FRAMES,
            noise_burst: 0.0,
            noise_burst_std: DEFAULT_BURST_STD,
            kernel_spike: 0.0,
            kernel_spike_factor: DEFAULT_SPIKE_FACTOR,
            plan_timeout_factor: 1.0,
            topic_drop: 0.0,
            battery_fade: 0.0,
        }
    }

    /// Whether every fault channel is off.
    pub fn is_none(&self) -> bool {
        self.camera_dropout == 0.0
            && self.noise_burst == 0.0
            && self.kernel_spike == 0.0
            && self.plan_timeout_factor == 1.0
            && self.topic_drop == 0.0
            && self.battery_fade == 0.0
    }

    /// Folds one parsed clause into the plan.
    pub fn with(mut self, spec: FaultSpec) -> Self {
        match spec {
            FaultSpec::CameraDropout {
                probability,
                frames,
            } => {
                self.camera_dropout = probability;
                self.camera_dropout_frames = frames;
            }
            FaultSpec::NoiseBurst {
                probability,
                std_dev,
            } => {
                self.noise_burst = probability;
                self.noise_burst_std = std_dev;
            }
            FaultSpec::KernelSpike {
                probability,
                factor,
            } => {
                self.kernel_spike = probability;
                self.kernel_spike_factor = factor;
            }
            FaultSpec::PlanTimeout { factor } => self.plan_timeout_factor = factor,
            FaultSpec::TopicDrop { probability } => self.topic_drop = probability,
            FaultSpec::BatteryFade { fraction } => self.battery_fade = fraction,
        }
        self
    }

    /// Parses a `--faults` argument: comma-separated `key=value` clauses,
    /// e.g. `cam-drop=0.1,plan-timeout=2x,battery-fade=0.2`. The literal
    /// `none` yields the empty plan.
    pub fn parse(arg: &str) -> Result<Self, String> {
        let trimmed = arg.trim();
        if trimmed.is_empty() || trimmed == "none" {
            return Ok(FaultPlan::none());
        }
        let mut plan = FaultPlan::none();
        for clause in trimmed.split(',') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause '{clause}' is not key=value"))?;
            plan = plan.with(FaultSpec::parse(key.trim(), value.trim())?);
        }
        plan.validate()?;
        Ok(plan)
    }

    /// Scales every fault *intensity* (probabilities, fade, planner stretch)
    /// by `factor`, keeping window lengths and per-event magnitudes. Used by
    /// the reliability fault matrix to build a none → half → full intensity
    /// axis from one plan.
    pub fn scaled(&self, factor: f64) -> Self {
        let f = factor.clamp(0.0, 1.0);
        let mut plan = *self;
        plan.camera_dropout = (self.camera_dropout * f).clamp(0.0, 1.0);
        plan.noise_burst = (self.noise_burst * f).clamp(0.0, 1.0);
        plan.kernel_spike = (self.kernel_spike * f).clamp(0.0, 1.0);
        plan.plan_timeout_factor = 1.0 + (self.plan_timeout_factor - 1.0) * f;
        plan.topic_drop = (self.topic_drop * f).clamp(0.0, 1.0);
        plan.battery_fade = self.battery_fade * f;
        plan
    }

    /// Checks every channel is in range. Probabilities live in `[0, 1]`,
    /// multipliers in `[1, ∞)`, the fade fraction in `[0, 1)`.
    pub fn validate(&self) -> Result<(), String> {
        let prob = |name: &str, p: f64| -> Result<(), String> {
            if p.is_finite() && (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(format!("{name} probability {p} outside [0, 1]"))
            }
        };
        prob("cam-drop", self.camera_dropout)?;
        prob("noise-burst", self.noise_burst)?;
        prob("kernel-spike", self.kernel_spike)?;
        prob("topic-drop", self.topic_drop)?;
        if self.camera_dropout > 0.0 && self.camera_dropout_frames == 0 {
            return Err("cam-drop window must lose at least one frame".into());
        }
        if !(self.noise_burst_std.is_finite() && self.noise_burst_std >= 0.0) {
            return Err(format!("noise-burst std {} invalid", self.noise_burst_std));
        }
        if !(self.kernel_spike_factor.is_finite() && self.kernel_spike_factor >= 1.0) {
            return Err(format!(
                "kernel-spike factor {} must be >= 1",
                self.kernel_spike_factor
            ));
        }
        if !(self.plan_timeout_factor.is_finite() && self.plan_timeout_factor >= 1.0) {
            return Err(format!(
                "plan-timeout factor {} must be >= 1",
                self.plan_timeout_factor
            ));
        }
        if !(self.battery_fade.is_finite() && (0.0..1.0).contains(&self.battery_fade)) {
            return Err(format!("battery-fade {} outside [0, 1)", self.battery_fade));
        }
        Ok(())
    }

    /// Canonical compact label, `none` or the same `key=value` syntax
    /// [`FaultPlan::parse`] accepts (round-trips through it).
    pub fn label(&self) -> String {
        if self.is_none() {
            return "none".into();
        }
        let mut parts: Vec<String> = Vec::new();
        if self.camera_dropout > 0.0 {
            if self.camera_dropout_frames == DEFAULT_DROPOUT_FRAMES {
                parts.push(format!("cam-drop={}", self.camera_dropout));
            } else {
                parts.push(format!(
                    "cam-drop={}@{}",
                    self.camera_dropout, self.camera_dropout_frames
                ));
            }
        }
        if self.noise_burst > 0.0 {
            if self.noise_burst_std == DEFAULT_BURST_STD {
                parts.push(format!("noise-burst={}", self.noise_burst));
            } else {
                parts.push(format!(
                    "noise-burst={}@{}",
                    self.noise_burst, self.noise_burst_std
                ));
            }
        }
        if self.kernel_spike > 0.0 {
            if self.kernel_spike_factor == DEFAULT_SPIKE_FACTOR {
                parts.push(format!("kernel-spike={}", self.kernel_spike));
            } else {
                parts.push(format!(
                    "kernel-spike={}@{}",
                    self.kernel_spike, self.kernel_spike_factor
                ));
            }
        }
        if self.plan_timeout_factor != 1.0 {
            parts.push(format!("plan-timeout={}x", self.plan_timeout_factor));
        }
        if self.topic_drop > 0.0 {
            parts.push(format!("topic-drop={}", self.topic_drop));
        }
        if self.battery_fade > 0.0 {
            parts.push(format!("battery-fade={}", self.battery_fade));
        }
        parts.join(",")
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

impl FaultSpec {
    /// Parses one `key=value` clause.
    pub fn parse(key: &str, value: &str) -> Result<Self, String> {
        let num = |v: &str| -> Result<f64, String> {
            v.parse::<f64>()
                .map_err(|_| format!("fault value '{v}' is not a number"))
        };
        // `P@X` suffixes carry the per-event magnitude (window length, burst
        // std, spike factor) next to the probability.
        let split_at = |v: &str| -> (String, Option<String>) {
            match v.split_once('@') {
                Some((p, x)) => (p.to_string(), Some(x.to_string())),
                None => (v.to_string(), None),
            }
        };
        match key {
            "cam-drop" => {
                let (p, at) = split_at(value);
                let frames = match at {
                    Some(n) => n
                        .parse::<u32>()
                        .map_err(|_| format!("cam-drop window '{n}' is not an integer"))?,
                    None => DEFAULT_DROPOUT_FRAMES,
                };
                Ok(FaultSpec::CameraDropout {
                    probability: num(&p)?,
                    frames,
                })
            }
            "noise-burst" => {
                let (p, at) = split_at(value);
                let std_dev = match at {
                    Some(s) => num(&s)?,
                    None => DEFAULT_BURST_STD,
                };
                Ok(FaultSpec::NoiseBurst {
                    probability: num(&p)?,
                    std_dev,
                })
            }
            "kernel-spike" => {
                let (p, at) = split_at(value);
                let factor = match at {
                    Some(s) => num(&s)?,
                    None => DEFAULT_SPIKE_FACTOR,
                };
                Ok(FaultSpec::KernelSpike {
                    probability: num(&p)?,
                    factor,
                })
            }
            "plan-timeout" => {
                let stripped = value.strip_suffix('x').unwrap_or(value);
                Ok(FaultSpec::PlanTimeout {
                    factor: num(stripped)?,
                })
            }
            "topic-drop" => Ok(FaultSpec::TopicDrop {
                probability: num(value)?,
            }),
            "battery-fade" => Ok(FaultSpec::BatteryFade {
                fraction: num(value)?,
            }),
            other => Err(format!(
                "unknown fault kind '{other}' (expected cam-drop, noise-burst, \
                 kernel-spike, plan-timeout, topic-drop or battery-fade)"
            )),
        }
    }
}

// Per-site salts for the draw chains. Each hook site owns a counter and a
// salt, so adding draws at one site never perturbs another site's stream.
const SITE_FRAME: u64 = 0x66_72_61_6d_65; // "frame"
const SITE_BURST: u64 = 0x62_75_72_73_74; // "burst"
const SITE_KERNEL: u64 = 0x6b_65_72_6e; // "kern"
const SITE_TOPIC: u64 = 0x74_6f_70_69_63; // "topic"

/// The compiled, stateful form of a [`FaultPlan`] for one mission.
///
/// Every decision is a pure function of `(seed, site, counter)` through
/// splitmix64, and each hook site owns its own counter — the trace is
/// bit-reproducible regardless of host thread count or which other sites
/// fired.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
    frame_draws: u64,
    dropout_left: u32,
    burst_draws: u64,
    kernel_draws: u64,
    topic_draws: u64,
    burst_noise: DepthNoiseModel,
}

impl FaultInjector {
    /// Compiles a plan against the mission seed. Returns `None` for the
    /// empty plan so fault-free missions carry no injector at all.
    pub fn compile(plan: &FaultPlan, seed: u64) -> Option<FaultInjector> {
        if plan.is_none() {
            return None;
        }
        let injector_seed = splitmix64(seed ^ INJECTOR_SALT);
        Some(FaultInjector {
            plan: *plan,
            seed: injector_seed,
            frame_draws: 0,
            dropout_left: 0,
            burst_draws: 0,
            kernel_draws: 0,
            topic_draws: 0,
            burst_noise: DepthNoiseModel::new(
                plan.noise_burst_std,
                splitmix64(injector_seed ^ SITE_BURST),
            ),
        })
    }

    /// The plan this injector was compiled from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Uniform draw in `[0, 1)` for `(site, counter)`.
    fn unit_draw(&self, site: u64, counter: u64) -> f64 {
        let x =
            splitmix64(self.seed ^ site.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ splitmix64(!counter));
        (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Whether the frame captured right now is lost to a dropout window.
    pub fn drop_frame(&mut self) -> bool {
        if self.dropout_left > 0 {
            self.dropout_left -= 1;
            return true;
        }
        let counter = self.frame_draws;
        self.frame_draws += 1;
        if self.plan.camera_dropout > 0.0
            && self.unit_draw(SITE_FRAME, counter) < self.plan.camera_dropout
        {
            self.dropout_left = self.plan.camera_dropout_frames.saturating_sub(1);
            return true;
        }
        false
    }

    /// Applies a depth-noise burst to the frame, if this frame drew one.
    pub fn maybe_burst(&mut self, image: &mut DepthImage) {
        if self.plan.noise_burst == 0.0 {
            return;
        }
        let counter = self.burst_draws;
        self.burst_draws += 1;
        if self.unit_draw(SITE_BURST, counter) < self.plan.noise_burst {
            self.burst_noise.apply(image);
        }
    }

    /// Latency multiplier for the kernel charge happening right now:
    /// the spike draw times the planner stretch (for planning kernels).
    pub fn kernel_latency_factor(&mut self, kernel: KernelId) -> f64 {
        let mut factor = 1.0;
        if self.plan.kernel_spike > 0.0 {
            let counter = self.kernel_draws;
            self.kernel_draws += 1;
            if self.unit_draw(SITE_KERNEL, counter) < self.plan.kernel_spike {
                factor *= self.plan.kernel_spike_factor;
            }
        }
        if self.plan.plan_timeout_factor != 1.0 && is_planning_kernel(kernel) {
            factor *= self.plan.plan_timeout_factor;
        }
        factor
    }

    /// Whether the guarded topic publish happening right now is lost.
    pub fn drop_message(&mut self) -> bool {
        if self.plan.topic_drop == 0.0 {
            return false;
        }
        let counter = self.topic_draws;
        self.topic_draws += 1;
        self.unit_draw(SITE_TOPIC, counter) < self.plan.topic_drop
    }

    /// Multiplier on rated battery capacity (`1 - fade`).
    pub fn battery_capacity_scale(&self) -> f64 {
        1.0 - self.plan.battery_fade
    }
}

/// Kernels whose latency the `plan-timeout` fault stretches: the ones that
/// produce or refine trajectories.
fn is_planning_kernel(kernel: KernelId) -> bool {
    matches!(
        kernel,
        KernelId::MotionPlanning
            | KernelId::PathSmoothing
            | KernelId::FrontierExploration
            | KernelId::LawnmowerPlanning
    )
}

/// Salt mixed into the injector seed so fault draws never collide with the
/// scenario generator's or sensor models' use of the same episode seed.
const INJECTOR_SALT: u64 = 0xFA17_1EC7_0B5E_55ED;

/// Mission-level degraded-mode state machine: Nominal → Degraded →
/// Aborted. `Degraded` means a watchdog or fallback is actively limiting
/// the vehicle; recovery returns to `Nominal`; a mission that fails while
/// (or after) being degraded ends `Aborted`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DegradedMode {
    /// Full-capability flight.
    #[default]
    Nominal,
    /// A degradation response (cap decay, planner-timeout fallback) is
    /// active.
    Degraded,
    /// The mission failed during or after degraded operation.
    Aborted,
}

impl DegradedMode {
    /// Stable lowercase label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            DegradedMode::Nominal => "nominal",
            DegradedMode::Degraded => "degraded",
            DegradedMode::Aborted => "aborted",
        }
    }
}

impl fmt::Display for DegradedMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Running degraded-mode bookkeeping for one mission. Owned by
/// `MissionContext`; flight nodes report transitions into it and the
/// physics step accumulates degraded time.
#[derive(Debug, Clone, Default)]
pub struct DegradedState {
    degraded: bool,
    entered_at: Option<SimTime>,
    degraded_time: SimDuration,
    recoveries: u32,
    recover_time: SimDuration,
    ever_degraded: bool,
}

impl DegradedState {
    /// Marks a degradation response active (idempotent while active).
    pub fn note_degraded(&mut self, now: SimTime) {
        if !self.degraded {
            self.degraded = true;
            self.ever_degraded = true;
            self.entered_at = Some(now);
        }
    }

    /// Marks the response cleared; counts a recovery and its duration.
    pub fn note_recovered(&mut self, now: SimTime) {
        if self.degraded {
            self.degraded = false;
            if let Some(entered) = self.entered_at.take() {
                self.recoveries += 1;
                self.recover_time += now - entered;
            }
        }
    }

    /// Accumulates one physics step while degraded.
    pub fn accumulate(&mut self, step: SimDuration) {
        if self.degraded {
            self.degraded_time += step;
        }
    }

    /// Whether any degradation response ever engaged this mission.
    pub fn ever_degraded(&self) -> bool {
        self.ever_degraded
    }

    /// Final summary, or `None` for a mission that never degraded — the
    /// report stays byte-identical to the pre-fault era in that case.
    pub fn summary(&self, mission_secs: f64, failed: bool) -> Option<DegradedSummary> {
        if !self.ever_degraded {
            return None;
        }
        let mode = if failed {
            DegradedMode::Aborted
        } else if self.degraded {
            DegradedMode::Degraded
        } else {
            DegradedMode::Nominal
        };
        let degraded_secs = self.degraded_time.as_secs();
        Some(DegradedSummary {
            mode,
            degraded_secs,
            degraded_fraction: if mission_secs > 0.0 {
                degraded_secs / mission_secs
            } else {
                0.0
            },
            recoveries: self.recoveries,
            mean_recover_secs: if self.recoveries > 0 {
                self.recover_time.as_secs() / self.recoveries as f64
            } else {
                0.0
            },
        })
    }
}

/// Degraded-mode metrics surfaced in `MissionReport` when a mission spent
/// any time degraded.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegradedSummary {
    /// Final state of the Nominal → Degraded → Aborted machine.
    pub mode: DegradedMode,
    /// Total simulated seconds spent with a degradation response active.
    pub degraded_secs: f64,
    /// `degraded_secs` over total mission seconds.
    pub degraded_fraction: f64,
    /// Number of Degraded → Nominal transitions.
    pub recoveries: u32,
    /// Mean seconds from entering Degraded to recovering (0 if never).
    pub mean_recover_secs: f64,
}

impl ToJson for FaultPlan {
    fn to_json(&self) -> Json {
        Json::object()
            .field("camera_dropout", self.camera_dropout)
            .field("camera_dropout_frames", self.camera_dropout_frames)
            .field("noise_burst", self.noise_burst)
            .field("noise_burst_std", self.noise_burst_std)
            .field("kernel_spike", self.kernel_spike)
            .field("kernel_spike_factor", self.kernel_spike_factor)
            .field("plan_timeout_factor", self.plan_timeout_factor)
            .field("topic_drop", self.topic_drop)
            .field("battery_fade", self.battery_fade)
    }
}

impl mav_types::FromJson for FaultPlan {
    /// Accepts the structured form (what [`ToJson`] emits; omitted fields
    /// stay off) or the CLI clause string (`"cam-drop=0.1,plan-timeout=2x"`)
    /// routed through [`FaultPlan::parse`] — one syntax for `--faults` and
    /// the `mav-server` job spec.
    fn from_json(json: &Json) -> Result<Self, String> {
        if let Some(s) = json.as_str() {
            return FaultPlan::parse(s);
        }
        json.check_fields(&[
            "camera_dropout",
            "camera_dropout_frames",
            "noise_burst",
            "noise_burst_std",
            "kernel_spike",
            "kernel_spike_factor",
            "plan_timeout_factor",
            "topic_drop",
            "battery_fade",
        ])?;
        let base = FaultPlan::none();
        let plan = FaultPlan {
            camera_dropout: json.parse_field_or("camera_dropout", base.camera_dropout)?,
            camera_dropout_frames: json
                .parse_field_or("camera_dropout_frames", base.camera_dropout_frames)?,
            noise_burst: json.parse_field_or("noise_burst", base.noise_burst)?,
            noise_burst_std: json.parse_field_or("noise_burst_std", base.noise_burst_std)?,
            kernel_spike: json.parse_field_or("kernel_spike", base.kernel_spike)?,
            kernel_spike_factor: json
                .parse_field_or("kernel_spike_factor", base.kernel_spike_factor)?,
            plan_timeout_factor: json
                .parse_field_or("plan_timeout_factor", base.plan_timeout_factor)?,
            topic_drop: json.parse_field_or("topic_drop", base.topic_drop)?,
            battery_fade: json.parse_field_or("battery_fade", base.battery_fade)?,
        };
        plan.validate()?;
        Ok(plan)
    }
}

impl ToJson for DegradedSummary {
    fn to_json(&self) -> Json {
        Json::object()
            .field("mode", self.mode.label())
            .field("degraded_secs", self.degraded_secs)
            .field("degraded_fraction", self.degraded_fraction)
            .field("recoveries", self.recoveries as u64)
            .field("mean_recover_secs", self.mean_recover_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_compiles_to_no_injector() {
        assert!(FaultPlan::none().is_none());
        assert!(FaultInjector::compile(&FaultPlan::none(), 42).is_none());
        assert_eq!(FaultPlan::none().label(), "none");
    }

    #[test]
    fn parse_round_trips_through_label() {
        let arg = "cam-drop=0.1,plan-timeout=2x,battery-fade=0.2";
        let plan = FaultPlan::parse(arg).unwrap();
        assert_eq!(plan.camera_dropout, 0.1);
        assert_eq!(plan.camera_dropout_frames, 3);
        assert_eq!(plan.plan_timeout_factor, 2.0);
        assert_eq!(plan.battery_fade, 0.2);
        let relabel = plan.label();
        assert_eq!(FaultPlan::parse(&relabel).unwrap(), plan);
    }

    #[test]
    fn parse_magnitude_suffixes() {
        let plan =
            FaultPlan::parse("cam-drop=0.2@5,noise-burst=0.3@1.5,kernel-spike=0.05@8").unwrap();
        assert_eq!(plan.camera_dropout_frames, 5);
        assert_eq!(plan.noise_burst_std, 1.5);
        assert_eq!(plan.kernel_spike_factor, 8.0);
        assert_eq!(FaultPlan::parse(&plan.label()).unwrap(), plan);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(FaultPlan::parse("cam-drop=1.5").is_err());
        assert!(FaultPlan::parse("battery-fade=1.0").is_err());
        assert!(FaultPlan::parse("plan-timeout=0.5x").is_err());
        assert!(FaultPlan::parse("warp-core-breach=0.1").is_err());
        assert!(FaultPlan::parse("cam-drop").is_err());
    }

    #[test]
    fn injector_draws_are_seed_deterministic() {
        let plan = FaultPlan::parse("cam-drop=0.3,kernel-spike=0.2,topic-drop=0.1").unwrap();
        let mut a = FaultInjector::compile(&plan, 7).unwrap();
        let mut b = FaultInjector::compile(&plan, 7).unwrap();
        for _ in 0..256 {
            assert_eq!(a.drop_frame(), b.drop_frame());
            assert_eq!(
                a.kernel_latency_factor(KernelId::MotionPlanning).to_bits(),
                b.kernel_latency_factor(KernelId::MotionPlanning).to_bits()
            );
            assert_eq!(a.drop_message(), b.drop_message());
        }
        let mut c = FaultInjector::compile(&plan, 8).unwrap();
        let same: usize = (0..256)
            .filter(|_| {
                let mut fresh = FaultInjector::compile(&plan, 7).unwrap();
                fresh.drop_frame() == c.drop_frame()
            })
            .count();
        // Different seeds must not replay the same trace.
        assert!(same < 256);
    }

    #[test]
    fn dropout_windows_lose_consecutive_frames() {
        let plan = FaultPlan::parse("cam-drop=0.5@4").unwrap();
        let mut inj = FaultInjector::compile(&plan, 11).unwrap();
        let trace: Vec<bool> = (0..128).map(|_| inj.drop_frame()).collect();
        // Every dropout run must be at least the window length (runs can
        // chain when a new window starts on the draw after one ends).
        let mut run = 0usize;
        let mut runs = Vec::new();
        for dropped in &trace {
            if *dropped {
                run += 1;
            } else {
                if run > 0 {
                    runs.push(run);
                }
                run = 0;
            }
        }
        assert!(!runs.is_empty(), "p=0.5 must drop something in 128 frames");
        assert!(runs.iter().all(|r| *r >= 4), "{runs:?}");
    }

    #[test]
    fn scaled_interpolates_intensity() {
        let plan = FaultPlan::parse("cam-drop=0.4,plan-timeout=3x,battery-fade=0.3").unwrap();
        let half = plan.scaled(0.5);
        assert_eq!(half.camera_dropout, 0.2);
        assert_eq!(half.plan_timeout_factor, 2.0);
        assert_eq!(half.battery_fade, 0.15);
        assert_eq!(
            plan.scaled(0.0),
            FaultPlan::none()
                .with(FaultSpec::CameraDropout {
                    probability: 0.0,
                    frames: 3
                })
                .with(FaultSpec::PlanTimeout { factor: 1.0 })
        );
        assert!(plan.scaled(0.0).is_none());
        assert_eq!(plan.scaled(1.0), plan);
    }

    #[test]
    fn plan_timeout_stretches_only_planning_kernels() {
        let plan = FaultPlan::parse("plan-timeout=2x").unwrap();
        let mut inj = FaultInjector::compile(&plan, 3).unwrap();
        assert_eq!(inj.kernel_latency_factor(KernelId::MotionPlanning), 2.0);
        assert_eq!(inj.kernel_latency_factor(KernelId::PathSmoothing), 2.0);
        assert_eq!(inj.kernel_latency_factor(KernelId::OctomapGeneration), 1.0);
        assert_eq!(inj.kernel_latency_factor(KernelId::PathTracking), 1.0);
    }

    #[test]
    fn degraded_state_tracks_time_and_recoveries() {
        let mut state = DegradedState::default();
        let t = |s: f64| SimTime::from_secs(s);
        assert!(state.summary(10.0, false).is_none());
        state.note_degraded(t(1.0));
        state.accumulate(SimDuration::from_secs(0.5));
        state.note_degraded(t(1.5)); // idempotent
        state.note_recovered(t(2.0));
        state.note_recovered(t(2.5)); // idempotent
        let summary = state.summary(10.0, false).unwrap();
        assert_eq!(summary.mode, DegradedMode::Nominal);
        assert_eq!(summary.recoveries, 1);
        assert_eq!(summary.mean_recover_secs, 1.0);
        assert_eq!(summary.degraded_secs, 0.5);
        assert_eq!(summary.degraded_fraction, 0.05);
        let failed = state.summary(10.0, true).unwrap();
        assert_eq!(failed.mode, DegradedMode::Aborted);
    }
}
