//! The parallel sweep subsystem: run many labelled missions at once.
//!
//! Every experiment in the paper's evaluation is a *sweep*: the same mission
//! re-run over a grid of configurations (operating points, resolution
//! policies, noise levels, cloud placements). The seed implementation ran
//! them strictly serially; [`SweepRunner`] executes the points in parallel
//! via rayon while keeping results **bit-identical to a serial run**:
//!
//! * [`run_mission`] is a pure function of its [`MissionConfig`] — no point
//!   observes another point's state;
//! * results are collected in input order regardless of which worker finished
//!   first;
//! * per-point seeds, when derived, depend only on the base seed and the
//!   point index, never on thread scheduling.
//!
//! The experiment drivers in [`crate::experiments`] are all thin wrappers
//! that build a point list and hand it to a runner; harness binaries pass a
//! runner configured from `--threads`.

use crate::apps::run_mission;
use crate::config::MissionConfig;
use crate::qof::MissionReport;
use mav_types::{Json, ToJson};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// One labelled configuration of a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Human-readable label, e.g. `"4c@2.2GHz"` or `"noise 0.5 m, run 3"`.
    pub label: String,
    /// The full mission configuration to run at this point.
    pub config: MissionConfig,
}

impl SweepPoint {
    /// Creates a labelled point.
    pub fn new(label: impl Into<String>, config: MissionConfig) -> Self {
        SweepPoint {
            label: label.into(),
            config,
        }
    }
}

/// The outcome of one sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepOutcome {
    /// The point's label.
    pub label: String,
    /// The seed the mission actually ran with.
    pub seed: u64,
    /// The mission report.
    pub report: MissionReport,
}

impl ToJson for SweepOutcome {
    fn to_json(&self) -> Json {
        Json::object()
            .field("label", self.label.as_str())
            .field("seed", self.seed)
            .field("report", self.report.to_json())
    }
}

/// The outcome of a whole sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepReport {
    /// Per-point outcomes, in the same order as the input points.
    pub outcomes: Vec<SweepOutcome>,
    /// Number of worker threads the sweep ran on.
    pub threads: usize,
    /// Wall-clock time of the whole sweep, seconds. Excluded from
    /// [`SweepReport::same_results`] comparisons: it varies run to run.
    ///
    /// This is the only wall-clock value in the simulation crates, and it is
    /// throughput metadata only — nothing in `outcomes` is derived from it.
    /// `mav-lint`'s DET-WALLCLOCK allowlist and the root `clippy.toml` both
    /// point at this boundary.
    pub wall_secs: f64,
}

impl SweepReport {
    /// Returns `true` when both sweeps produced identical outcomes
    /// (labels, seeds and full reports), ignoring wall-clock and thread
    /// metadata. This is the determinism contract of [`SweepRunner`].
    pub fn same_results(&self, other: &SweepReport) -> bool {
        self.outcomes == other.outcomes
    }

    /// The reports alone, in point order.
    pub fn reports(&self) -> impl Iterator<Item = &MissionReport> {
        self.outcomes.iter().map(|o| &o.report)
    }
}

impl ToJson for SweepReport {
    fn to_json(&self) -> Json {
        Json::object()
            .field("threads", self.threads)
            .field("wall_secs", self.wall_secs)
            .field("outcomes", self.outcomes.to_json())
    }
}

/// SplitMix64: the mixer used to derive independent per-point seeds (and,
/// in [`crate::reliability`], independent per-episode scenario draws).
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Executes a list of [`SweepPoint`]s in parallel.
///
/// # Example
///
/// ```no_run
/// use mav_compute::ApplicationId;
/// use mav_core::sweep::{SweepPoint, SweepRunner};
/// use mav_core::MissionConfig;
///
/// let points: Vec<SweepPoint> = (0..4)
///     .map(|i| SweepPoint::new(format!("run {i}"), MissionConfig::fast_test(ApplicationId::Scanning)))
///     .collect();
/// let report = SweepRunner::new().with_threads(4).run(points);
/// assert_eq!(report.outcomes.len(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SweepRunner {
    threads: Option<usize>,
    seed_base: Option<u64>,
}

impl SweepRunner {
    /// A runner using every available core and the seeds already present in
    /// the point configurations.
    pub fn new() -> Self {
        SweepRunner::default()
    }

    /// Pins the worker thread count (`0` or omitted: all available cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = if threads == 0 { None } else { Some(threads) };
        self
    }

    /// Derives an independent deterministic seed for every point:
    /// `splitmix64(base ^ index)`. Identical base + point order means
    /// identical seeds, regardless of thread count.
    pub fn with_derived_seeds(mut self, base: u64) -> Self {
        self.seed_base = Some(base);
        self
    }

    /// The worker thread count this runner will use.
    pub fn threads(&self) -> usize {
        self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
    }

    /// Runs every point and collects the outcomes in input order.
    pub fn run(&self, points: Vec<SweepPoint>) -> SweepReport {
        let seeded: Vec<SweepPoint> = match self.seed_base {
            None => points,
            Some(base) => points
                .into_iter()
                .enumerate()
                .map(|(index, point)| {
                    let seed = splitmix64(base ^ index as u64);
                    SweepPoint {
                        config: point.config.with_seed(seed),
                        ..point
                    }
                })
                .collect(),
        };
        let threads = self.threads();
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("sweep thread pool");
        // Wall-clock boundary (audited): this Instant times the host-side
        // sweep for `wall_secs` throughput metadata and never reaches the
        // mission outcomes — every value in `outcomes` is produced by
        // `run_mission` on the simulated clock. This file is on
        // mav-lint's DET-WALLCLOCK allowlist and clippy's disallowed-methods
        // list is waived here for the same reason.
        #[allow(clippy::disallowed_methods)]
        let started = std::time::Instant::now();
        let outcomes: Vec<SweepOutcome> = pool.install(|| {
            seeded
                .par_iter()
                .map(|point| SweepOutcome {
                    label: point.label.clone(),
                    seed: point.config.seed,
                    report: run_mission(point.config.clone()),
                })
                .collect()
        });
        SweepReport {
            outcomes,
            threads,
            wall_secs: started.elapsed().as_secs_f64(),
        }
    }

    /// Runs `episodes` episodes as fixed contiguous shards of at most
    /// `shard_size`, mapping each shard through `shard` on this runner's
    /// worker pool and returning the per-shard results **in shard order**.
    ///
    /// The shard boundaries depend only on `episodes` and `shard_size` —
    /// never on the thread count — and results come back in input order, so
    /// any shard-order fold over the returned accumulators (including
    /// floating-point sums) is bit-identical at every thread count. This is
    /// the determinism backbone of the Monte-Carlo reliability sweep.
    pub fn run_sharded<A: Send>(
        &self,
        episodes: u64,
        shard_size: u64,
        shard: impl Fn(std::ops::Range<u64>) -> A + Sync,
    ) -> Vec<A> {
        assert!(shard_size > 0, "shard_size must be positive");
        let ranges: Vec<std::ops::Range<u64>> = (0..episodes)
            .step_by(shard_size.min(usize::MAX as u64) as usize)
            .map(|start| start..(start + shard_size).min(episodes))
            .collect();
        rayon::parallel_map_slice(&ranges, self.threads(), |range| shard(range.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::quick_config;
    use mav_compute::ApplicationId;

    fn tiny_points(n: usize) -> Vec<SweepPoint> {
        (0..n)
            .map(|i| {
                let mut cfg = quick_config(MissionConfig::fast_test(ApplicationId::Scanning))
                    .with_seed(100 + i as u64);
                cfg.environment.extent = 18.0;
                SweepPoint::new(format!("point {i}"), cfg)
            })
            .collect()
    }

    #[test]
    fn outcomes_keep_input_order_and_labels() {
        let report = SweepRunner::new().with_threads(2).run(tiny_points(3));
        assert_eq!(report.threads, 2);
        assert_eq!(
            report
                .outcomes
                .iter()
                .map(|o| o.label.as_str())
                .collect::<Vec<_>>(),
            vec!["point 0", "point 1", "point 2"]
        );
        assert!(report.wall_secs >= 0.0);
    }

    #[test]
    fn reports_are_bit_identical_across_thread_counts() {
        let serial = SweepRunner::new().with_threads(1).run(tiny_points(4));
        for threads in [2, 3, 8] {
            let parallel = SweepRunner::new().with_threads(threads).run(tiny_points(4));
            assert!(
                serial.same_results(&parallel),
                "diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn derived_seeds_are_deterministic_and_distinct() {
        let a = SweepRunner::new()
            .with_threads(2)
            .with_derived_seeds(7)
            .run(tiny_points(3));
        let b = SweepRunner::new()
            .with_threads(1)
            .with_derived_seeds(7)
            .run(tiny_points(3));
        assert!(a.same_results(&b));
        let seeds: Vec<u64> = a.outcomes.iter().map(|o| o.seed).collect();
        assert_eq!(seeds.len(), 3);
        assert!(
            seeds.windows(2).all(|w| w[0] != w[1]),
            "seeds must differ: {seeds:?}"
        );
        // A different base changes every seed.
        let c = SweepRunner::new()
            .with_threads(2)
            .with_derived_seeds(8)
            .run(tiny_points(3));
        assert!(c
            .outcomes
            .iter()
            .zip(&a.outcomes)
            .all(|(x, y)| x.seed != y.seed));
    }

    #[test]
    fn sweep_report_serializes_to_json() {
        let report = SweepRunner::new().with_threads(1).run(tiny_points(1));
        let json = report.to_json();
        let rendered = json.to_string_pretty();
        assert!(rendered.contains("\"outcomes\""));
        assert!(rendered.contains("\"mission_time_secs\""));
        let outcomes = json.get("outcomes").and_then(Json::as_array).unwrap();
        assert_eq!(outcomes.len(), 1);
        assert_eq!(
            outcomes[0].get("label").and_then(Json::as_str),
            Some("point 0")
        );
    }
}
