//! Paired A/B probe for the episode-reuse layer: fresh-allocation episodes
//! vs [`EpisodeScratch`]-reuse episodes of the same fast-profile 3D Mapping
//! mission (the `mapping_mission` criterion bench's configuration).
//!
//! Episodes run in alternating same-arm *blocks*, not alternating pairs,
//! because that is the shape of the production workload: a `SweepRunner`
//! worker runs scratch-reuse episodes back to back, and the fresh-context
//! baseline it replaces ran fresh episodes back to back. Strict pair
//! interleaving makes each arm churn the other's heap between episodes —
//! cross-arm allocator interference that never occurs in a sweep — while
//! per-arm blocks let each arm reach its own allocator steady state. The
//! first episodes of every block are discarded as the transition, and
//! alternating many short blocks still cancels slow host drift the way pair
//! interleaving does. A counting global allocator reports per-episode
//! allocation counts/bytes for both arms.
//!
//! Usage: `episode_ab [rounds] [extent_m] [resolution_m]`
//! (defaults: 8 rounds of one fresh + one scratch block, 25 m, 0.40 m).
use mav_core::config::ResolutionPolicy;
use mav_core::{run_mission, run_mission_with_scratch, EpisodeScratch, MissionConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

struct Counting;

unsafe impl GlobalAlloc for Counting {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: Counting = Counting;

/// Episodes per block (override with `EPISODE_AB_BLOCK`); the first fifth of
/// every block is the transition out of the other arm's heap state and is
/// not recorded.
fn block_len() -> usize {
    std::env::var("EPISODE_AB_BLOCK")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(25)
}

fn alloc_snapshot() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

fn arg(n: usize, default: f64) -> f64 {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn median(xs: &mut [f64]) -> f64 {
    xs.sort_by(|a, b| a.total_cmp(b));
    xs[xs.len() / 2]
}

fn main() {
    let rounds = arg(1, 8.0) as usize;
    let extent = arg(2, 25.0);
    let resolution = arg(3, 0.4);
    let episode_config = || {
        let mut cfg = MissionConfig::fast_test(mav_compute::ApplicationId::Mapping3D).with_seed(4);
        cfg.environment.extent = extent;
        cfg.resolution_policy = ResolutionPolicy::Static { resolution };
        cfg
    };
    let mut scratch = EpisodeScratch::new();
    for _ in 0..3 {
        run_mission(episode_config());
        run_mission_with_scratch(episode_config(), &mut scratch);
    }
    let mut fresh = Vec::new();
    let mut reused = Vec::new();
    let mut round_ratios = Vec::with_capacity(rounds);
    let block = block_len();
    let skip = block / 5;
    for _ in 0..rounds {
        let mut f_block = Vec::with_capacity(block - skip);
        let mut s_block = Vec::with_capacity(block - skip);
        for i in 0..block {
            // Harness timing (that is the point of this A/B probe).
            #[allow(clippy::disallowed_methods)]
            let t = Instant::now();
            run_mission(episode_config());
            if i >= skip {
                f_block.push(t.elapsed().as_secs_f64() * 1e3);
            }
        }
        for i in 0..block {
            #[allow(clippy::disallowed_methods)]
            let t = Instant::now();
            run_mission_with_scratch(episode_config(), &mut scratch);
            if i >= skip {
                s_block.push(t.elapsed().as_secs_f64() * 1e3);
            }
        }
        round_ratios.push(median(&mut f_block) / median(&mut s_block));
        fresh.extend_from_slice(&f_block);
        reused.extend_from_slice(&s_block);
    }
    let (a0, b0) = alloc_snapshot();
    run_mission(episode_config());
    let (a1, b1) = alloc_snapshot();
    run_mission_with_scratch(episode_config(), &mut scratch);
    let (a2, b2) = alloc_snapshot();
    let fm = median(&mut fresh);
    let sm = median(&mut reused);
    println!(
        "config: extent {extent} m, resolution {resolution} m, {rounds} rounds x {block} episodes/arm ({skip} warmup)"
    );
    println!(
        "fresh   median {fm:.3} ms  ({:.1} episodes/sec)  {} allocs {} bytes/episode",
        1e3 / fm,
        a1 - a0,
        b1 - b0
    );
    println!(
        "scratch median {sm:.3} ms  ({:.1} episodes/sec)  {} allocs {} bytes/episode",
        1e3 / sm,
        a2 - a1,
        b2 - b1
    );
    // After the in-place median sorts, index 0 is each arm's minimum: the
    // cleanest estimate of the true per-episode cost on a noisy shared host
    // (timing noise is strictly additive).
    println!(
        "speedup: {:.3}x (median of per-round block ratios {:.3}x, min-vs-min {:.3}x)",
        fm / sm,
        median(&mut round_ratios),
        fresh[0] / reused[0]
    );
}
