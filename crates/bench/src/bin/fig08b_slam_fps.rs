//! Fig. 8b — SLAM throughput vs maximum velocity and energy (circular-path microbenchmark).
use mav_bench::{figures, run_figure};

fn main() {
    run_figure(
        "fig08b_slam_fps",
        "SLAM throughput vs maximum velocity and energy, circular-path microbenchmark (Fig. 8b)",
        figures::fig08b_slam_fps,
    );
}
