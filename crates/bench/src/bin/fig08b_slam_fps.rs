//! Fig. 8b — SLAM throughput vs maximum velocity and energy (circular-path microbenchmark).
use mav_bench::print_table;
use mav_core::microbench::{slam_fps_sweep, SlamMicrobenchConfig};

fn main() {
    println!("== Fig. 8b: SLAM FPS vs max velocity and energy (r = 25 m, failure budget 20%) ==");
    let sweep = slam_fps_sweep(&[0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0], SlamMicrobenchConfig::default());
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}", p.fps),
                format!("{:.2}", p.max_velocity),
                format!("{:.1}", p.mission_time_secs),
                format!("{:.1}", p.energy_kj),
                format!("{:.2}", p.observed_failure_rate),
            ]
        })
        .collect();
    print_table(
        &["SLAM FPS", "max velocity (m/s)", "lap time (s)", "energy (kJ)", "observed failure rate"],
        &rows,
    );
    let first = sweep.first().unwrap();
    let last = sweep.last().unwrap();
    println!();
    println!(
        "energy reduction from {:.1} to {:.1} FPS: {:.2}X (paper: ~4X for a 5X FPS increase)",
        first.fps,
        last.fps,
        first.energy_kj / last.energy_kj
    );
}
