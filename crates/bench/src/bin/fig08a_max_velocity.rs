//! Fig. 8a — theoretical maximum velocity vs perception-to-actuation latency (Eq. 2).
use mav_bench::{figures, run_figure};

fn main() {
    run_figure(
        "fig08a_max_velocity",
        "theoretical maximum velocity vs perception-to-actuation latency, Eq. 2 (Fig. 8a)",
        figures::fig08a_max_velocity,
    );
}
