//! Fig. 8a — theoretical maximum velocity vs perception-to-actuation latency (Eq. 2).
use mav_bench::print_table;
use mav_core::velocity::velocity_vs_process_time;

fn main() {
    println!("== Fig. 8a: max safe velocity vs process time (Eq. 2, d = 7.8 m, a = 5 m/s^2) ==");
    let sweep = velocity_vs_process_time(4.0, 16, 7.8, 5.0);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|(t, v)| vec![format!("{t:.2}"), format!("{v:.2}")])
        .collect();
    print_table(&["process time (s)", "max velocity (m/s)"], &rows);
    println!();
    println!(
        "paper envelope: 8.83 m/s at 0 s .. 1.57 m/s at 4 s; measured: {:.2} .. {:.2}",
        sweep.first().unwrap().1,
        sweep.last().unwrap().1
    );
}
