//! Table I — per-application kernel time profile at 4 cores / 2.2 GHz.
use mav_bench::{figures, run_figure};

fn main() {
    run_figure(
        "table1_kernel_profile",
        "per-application kernel make-up and time profile at 4 cores / 2.2 GHz (Table I)",
        figures::table1_kernel_profile,
    );
}
