//! Table I — per-application kernel time profile at 4 cores / 2.2 GHz.
use mav_bench::print_table;
use mav_compute::{table1_profile, ApplicationId, OperatingPoint};

fn main() {
    println!("== Table I: kernel make-up and time profile (ms at 4 cores / 2.2 GHz) ==");
    let reference = OperatingPoint::reference();
    for &app in ApplicationId::all() {
        println!();
        println!("-- {app} --");
        let profile = table1_profile(app);
        let rows: Vec<Vec<String>> = profile
            .iter()
            .map(|(kernel, prof)| {
                vec![
                    kernel.short_name().to_string(),
                    format!("{}", kernel.stage()),
                    format!("{:.1}", prof.latency(&reference).as_millis()),
                    format!("{:.0}%", prof.parallel_fraction * 100.0),
                ]
            })
            .collect();
        print_table(&["kernel", "stage", "latency (ms)", "parallel fraction"], &rows);
    }
}
