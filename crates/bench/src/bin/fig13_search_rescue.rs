//! Fig. 13 — Search and Rescue heat maps (velocity, mission time, energy) over the TX2 sweep.
use mav_bench::{quick_mode, run_and_print_heatmaps};
use mav_compute::ApplicationId;

fn main() {
    run_and_print_heatmaps(ApplicationId::SearchAndRescue, quick_mode(), 6);
}
