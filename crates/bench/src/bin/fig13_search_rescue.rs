//! Fig. 13 — Search and Rescue heat maps (velocity, mission time, energy) over the TX2 sweep.
use mav_bench::{figures, run_figure};

fn main() {
    run_figure(
        "fig13_search_rescue",
        "Search and Rescue heat maps (velocity, mission time, energy) over the TX2 sweep (Fig. 13)",
        figures::fig13_search_rescue,
    );
}
