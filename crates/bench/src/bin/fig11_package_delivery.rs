//! Fig. 11 — Package Delivery heat maps (velocity, mission time, energy) over the TX2 sweep.
use mav_bench::{figures, run_figure};

fn main() {
    run_figure(
        "fig11_package_delivery",
        "Package Delivery heat maps (velocity, mission time, energy) over the TX2 sweep (Fig. 11)",
        figures::fig11_package_delivery,
    );
}
