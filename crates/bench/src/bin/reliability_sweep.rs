//! PR 7 — Monte-Carlo reliability sweep: randomized scenarios, streaming
//! aggregates, deterministic sharding, plus the replan-Hz × replan-mode grid,
//! a per-scenario-class breakdown, and (with `--faults`) the fault-intensity ×
//! degradation-policy matrix.
use mav_bench::{figures, run_figure};

fn main() {
    run_figure(
        "reliability_sweep",
        "Monte-Carlo reliability sweep over randomized scenarios (success/collision rates, time/energy p50/p99, episodes/sec) with a replan-Hz x replan-mode grid, per-class breakdown, and an optional --faults degradation matrix",
        figures::reliability_sweep,
    );
}
