//! Fig. 2 — endurance and size vs battery capacity for commercial MAVs.
use mav_bench::{figures, run_figure};

fn main() {
    run_figure(
        "fig02_endurance",
        "endurance and size vs battery capacity for commercial MAVs (Fig. 2)",
        figures::fig02_endurance,
    );
}
