//! Fig. 2 — endurance and size vs battery capacity for commercial MAVs.
use mav_bench::print_table;
use mav_core::microbench::hover_endurance_minutes;
use mav_energy::{commercial_mav_catalog, WingType};

fn main() {
    println!("== Fig. 2a: flight endurance vs battery capacity ==");
    let rows: Vec<Vec<String>> = commercial_mav_catalog()
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                format!("{:?}", m.wing),
                format!("{:.0}", m.battery_mah),
                format!("{:.2}", m.endurance_hours()),
                format!("{:.2}", m.endurance_per_ah()),
            ]
        })
        .collect();
    print_table(&["model", "wing", "battery (mAh)", "endurance (h)", "h per Ah"], &rows);

    println!();
    println!("== Fig. 2b: size vs battery capacity ==");
    let rows: Vec<Vec<String>> = commercial_mav_catalog()
        .iter()
        .map(|m| {
            vec![m.name.to_string(), m.segment.to_string(), format!("{:.0}", m.battery_mah), format!("{:.0}", m.size_mm)]
        })
        .collect();
    print_table(&["model", "segment", "battery (mAh)", "size (mm)"], &rows);

    println!();
    println!("== model cross-check: hover endurance from the energy model ==");
    let rows: Vec<Vec<String>> = commercial_mav_catalog()
        .iter()
        .filter(|m| m.wing == WingType::Rotor)
        .map(|m| {
            let est = hover_endurance_minutes(m.battery_mah, 14.8, 287.0);
            vec![m.name.to_string(), format!("{:.1}", m.endurance_minutes), format!("{:.1}", est)]
        })
        .collect();
    print_table(&["model", "quoted endurance (min)", "modelled hover endurance (min)"], &rows);
}
