//! Fig. 12 — 3D Mapping heat maps (velocity, mission time, energy) over the TX2 sweep.
use mav_bench::{figures, run_figure};

fn main() {
    run_figure(
        "fig12_mapping",
        "3D Mapping heat maps (velocity, mission time, energy) over the TX2 sweep (Fig. 12)",
        figures::fig12_mapping,
    );
}
