//! Fig. 14 — Aerial Photography heat maps (error, mission time, energy) over the TX2 sweep.
use mav_bench::{quick_mode, run_and_print_heatmaps};
use mav_compute::ApplicationId;

fn main() {
    run_and_print_heatmaps(ApplicationId::AerialPhotography, quick_mode(), 8);
}
