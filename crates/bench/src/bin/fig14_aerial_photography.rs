//! Fig. 14 — Aerial Photography heat maps (error, mission time, energy) over the TX2 sweep.
use mav_bench::{figures, run_figure};

fn main() {
    run_figure(
        "fig14_aerial_photography",
        "Aerial Photography heat maps (error, mission time, energy) over the TX2 sweep (Fig. 14)",
        figures::fig14_aerial_photography,
    );
}
