//! Table II — impact of depth-image noise on Package Delivery reliability.
use mav_bench::{print_table, quick_mode, scale};
use mav_core::experiments::noise_reliability_study;

fn main() {
    let quick = quick_mode();
    let runs = if quick { 3 } else { 5 };
    println!("== Table II: depth-noise reliability study (Package Delivery, {runs} runs per level) ==");
    let rows: Vec<Vec<String>> =
        noise_reliability_study(&[0.0, 0.5, 1.0, 1.5], runs, |cfg| scale(cfg, quick).with_seed(21))
            .into_iter()
            .map(|row| {
                vec![
                    format!("{:.1}", row.noise_std),
                    format!("{:.0}%", row.failure_rate * 100.0),
                    format!("{:.1}", row.mean_replans),
                    format!("{:.1}", row.mean_mission_time),
                ]
            })
            .collect();
    print_table(&["noise std (m)", "failure rate", "mean re-plans", "mean mission time (s)"], &rows);
    println!();
    println!("paper: 0 -> 1.5 m noise raises re-planning from 2 to 8 episodes and mission time by ~90%, with 10% failures at 1.5 m");
}
