//! Table II — impact of depth-image noise on Package Delivery reliability.
use mav_bench::{figures, run_figure};

fn main() {
    run_figure(
        "table2_noise_reliability",
        "impact of depth-image noise on Package Delivery reliability (Table II)",
        figures::table2_noise_reliability,
    );
}
