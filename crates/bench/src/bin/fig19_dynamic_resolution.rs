//! Fig. 19 — static vs dynamic OctoMap resolution (flight time and battery remaining).
use mav_bench::{print_table, quick_mode, scale};
use mav_compute::ApplicationId;
use mav_core::experiments::resolution_study;

fn main() {
    let quick = quick_mode();
    println!("== Fig. 19: OctoMap resolution policy vs mission outcome ==");
    for app in [ApplicationId::Mapping3D, ApplicationId::SearchAndRescue, ApplicationId::PackageDelivery] {
        println!();
        println!("-- {app} --");
        let rows: Vec<Vec<String>> = resolution_study(app, |cfg| scale(cfg, quick).with_seed(13))
            .into_iter()
            .map(|row| {
                let outcome = match &row.report.failure {
                    None => "success".to_string(),
                    Some(f) => format!("fail ({f})"),
                };
                vec![
                    row.policy,
                    outcome,
                    format!("{:.1}", row.report.mission_time_secs),
                    format!("{:.1}", row.report.battery_remaining_pct),
                    format!("{:.1}", row.report.energy_kj()),
                ]
            })
            .collect();
        print_table(
            &["policy", "outcome", "flight time (s)", "battery left (%)", "energy (kJ)"],
            &rows,
        );
    }
}
