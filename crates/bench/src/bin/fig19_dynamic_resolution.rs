//! Fig. 19 — static vs dynamic OctoMap resolution (flight time and battery remaining).
use mav_bench::{figures, run_figure};

fn main() {
    run_figure(
        "fig19_dynamic_resolution",
        "static vs dynamic OctoMap resolution: flight time and battery remaining (Fig. 19)",
        figures::fig19_dynamic_resolution,
    );
}
