//! Fig. 18 — OctoMap processing time vs resolution (measured on the host).
use mav_bench::{figures, run_figure};

fn main() {
    run_figure(
        "fig18_octomap_resolution",
        "OctoMap processing time vs resolution, measured on the host (Fig. 18)",
        figures::fig18_octomap_resolution,
    );
}
