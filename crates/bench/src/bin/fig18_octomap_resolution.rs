//! Fig. 18 — OctoMap processing time vs resolution (measured on the host).
use mav_bench::print_table;
use mav_env::EnvironmentConfig;
use mav_perception::{OctoMap, OctoMapConfig, PointCloud};
use mav_sensors::{DepthCamera, DepthCameraConfig};
use mav_types::{Pose, Vec3};
use std::time::Instant;

fn main() {
    println!("== Fig. 18: OctoMap update time vs resolution (host-measured) ==");
    let world = EnvironmentConfig::urban_outdoor().with_seed(3).generate();
    let camera = DepthCamera::new(DepthCameraConfig::high_resolution());
    // Capture a fixed set of frames once; time only the map updates.
    let poses: Vec<Pose> = (0..6)
        .map(|i| Pose::new(Vec3::new(i as f64 * 6.0 - 15.0, (i % 3) as f64 * 8.0 - 8.0, 2.5), i as f64))
        .collect();
    let clouds: Vec<PointCloud> = poses
        .iter()
        .map(|p| PointCloud::from_depth_image(&camera.capture(&world, p)))
        .collect();
    let mut rows = Vec::new();
    let mut times = Vec::new();
    for resolution in [0.15, 0.2, 0.3, 0.4, 0.5, 0.65, 0.8, 1.0] {
        let start = Instant::now();
        let mut map = OctoMap::new(OctoMapConfig::with_resolution(resolution), 96.0);
        for cloud in &clouds {
            map.insert_point_cloud(cloud);
        }
        let elapsed = start.elapsed().as_secs_f64();
        times.push((resolution, elapsed));
        rows.push(vec![
            format!("{resolution:.2}"),
            format!("{:.1}", elapsed * 1000.0),
            format!("{}", map.update_count()),
            format!("{}", map.known_voxel_count()),
        ]);
    }
    print_table(&["resolution (m)", "update time (ms)", "leaf updates", "known voxels"], &rows);
    let fine = times.first().unwrap();
    let coarse = times.last().unwrap();
    println!();
    println!(
        "processing-time ratio {:.2} m -> {:.2} m: {:.1}X (paper: ~4.5X over a 6.5X resolution change)",
        fine.0,
        coarse.0,
        fine.1 / coarse.1
    );
}
