//! Fig. 17 — the drone's perception of a doorway at different OctoMap resolutions.
use mav_bench::{figures, run_figure};

fn main() {
    run_figure(
        "fig17_resolution_maps",
        "the drone's perception of a doorway at different OctoMap resolutions (Fig. 17)",
        figures::fig17_resolution_maps,
    );
}
