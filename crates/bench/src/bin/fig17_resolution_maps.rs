//! Fig. 17 — the drone's perception of a doorway at different OctoMap resolutions.
use mav_bench::print_table;
use mav_perception::{OctoMap, OctoMapConfig};
use mav_types::Vec3;

/// Builds a wall with a door-width (0.82 m) opening and maps it at `resolution`.
fn map_doorway(resolution: f64) -> OctoMap {
    let mut map = OctoMap::new(OctoMapConfig::with_resolution(resolution), 32.0);
    let origin = Vec3::new(-5.0, 0.0, 1.0);
    for i in -40..=40 {
        let y = i as f64 * 0.1;
        if y.abs() < 0.41 {
            continue; // the doorway
        }
        for z in [0.5, 1.0, 1.5, 2.0, 2.5] {
            map.insert_ray(&origin, &Vec3::new(3.0, y, z));
        }
    }
    map
}

fn main() {
    println!("== Fig. 17: perceived environment vs OctoMap resolution (0.82 m doorway) ==");
    let mut rows = Vec::new();
    for resolution in [0.15, 0.5, 0.8] {
        let map = map_doorway(resolution);
        let doorway = Vec3::new(3.0, 0.0, 1.0);
        let passable = !map.is_occupied_with_inflation(&doorway, 0.325);
        rows.push(vec![
            format!("{resolution:.2}"),
            format!("{}", map.occupied_voxel_count()),
            format!("{}", map.known_voxel_count()),
            format!("{}", if passable { "open" } else { "blocked" }),
        ]);
    }
    print_table(
        &["resolution (m)", "occupied voxels", "known voxels", "doorway perceived as"],
        &rows,
    );
    println!();
    println!("paper: at 0.80 m the drone no longer recognises the opening as a passageway");
}
