//! Fig. 9 — measured power breakdown and mission power trace for a 3DR-Solo-class MAV.
use mav_bench::{figures, run_figure};

fn main() {
    run_figure(
        "fig09_power_breakdown",
        "measured power breakdown and mission power trace for a 3DR-Solo-class MAV (Fig. 9)",
        figures::fig09_power_breakdown,
    );
}
