//! Fig. 9 — measured power breakdown and mission power trace for a 3DR-Solo-class MAV.
use mav_bench::print_table;
use mav_energy::{ComputePowerModel, EnergyAccount, FlightPhaseLabel, RotorPowerModel};
use mav_types::{Power, SimDuration, SimTime, Vec3};

fn trace(cruise: f64) -> EnergyAccount {
    let rotor = RotorPowerModel::solo_3dr();
    let compute = ComputePowerModel::tx2().power(4, 2.2);
    let mut acc = EnergyAccount::new();
    let dt = SimDuration::from_millis(200.0);
    let mut t = SimTime::ZERO;
    let phases: &[(f64, FlightPhaseLabel, Vec3)] = &[
        (5.0, FlightPhaseLabel::Arming, Vec3::ZERO),
        (10.0, FlightPhaseLabel::Hovering, Vec3::ZERO),
        (30.0, FlightPhaseLabel::Flying, Vec3::new(cruise, 0.0, 0.0)),
        (5.0, FlightPhaseLabel::Landing, Vec3::new(0.0, 0.0, -1.0)),
    ];
    for (duration, phase, velocity) in phases {
        let steps = (duration / dt.as_secs()) as usize;
        for _ in 0..steps {
            let rotor_p = if *phase == FlightPhaseLabel::Arming {
                Power::from_watts(80.0)
            } else {
                rotor.power(velocity, &Vec3::ZERO, &Vec3::ZERO)
            };
            acc.record(t, dt, rotor_p, compute, *phase);
            t += dt;
        }
    }
    acc
}

fn main() {
    println!("== Fig. 9a: power breakdown while flying (3DR Solo class) ==");
    let acc = trace(5.0);
    let rows = vec![
        vec!["quad rotors".to_string(), format!("{:.1}", RotorPowerModel::solo_3dr().hover_power().as_watts())],
        vec!["compute platform (TX2)".to_string(), format!("{:.1}", ComputePowerModel::tx2().power(4, 2.2).as_watts())],
        vec!["other electronics".to_string(), format!("{:.1}", 2.0)],
    ];
    print_table(&["subsystem", "power (W)"], &rows);
    println!(
        "rotor share of total energy over a mission: {:.1}% (compute {:.1}%)",
        acc.rotor_fraction() * 100.0,
        acc.compute_fraction() * 100.0
    );

    for cruise in [5.0, 10.0] {
        println!();
        println!("== Fig. 9b: mission power trace at {cruise} m/s ==");
        let acc = trace(cruise);
        let rows: Vec<Vec<String>> = [
            FlightPhaseLabel::Arming,
            FlightPhaseLabel::Hovering,
            FlightPhaseLabel::Flying,
            FlightPhaseLabel::Landing,
        ]
        .iter()
        .map(|phase| {
            let p = acc.average_power_in_phase(*phase).map(|p| p.as_watts()).unwrap_or(0.0);
            vec![format!("{phase}"), format!("{p:.1}")]
        })
        .collect();
        print_table(&["phase", "avg total power (W)"], &rows);
    }
}
