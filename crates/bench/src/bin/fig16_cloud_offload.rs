//! Fig. 16 — fully-on-edge vs sensor-cloud 3D Mapping (performance and energy).
use mav_bench::{print_table, quick_mode, scale};
use mav_core::experiments::{cloud_offload_study, CloudComparison};

fn main() {
    let quick = quick_mode();
    println!("== Fig. 16: edge vs sensor-cloud (3D Mapping, planning offloaded over 1 Gb/s) ==");
    let cmp = cloud_offload_study(|cfg| scale(cfg, quick).with_seed(4));
    let rows = vec![
        vec![
            "edge (TX2 only)".to_string(),
            format!("{:.1}", cmp.edge.mission_time_secs),
            format!("{:.1}", CloudComparison::planning_time(&cmp.edge)),
            format!("{:.1}", cmp.edge.energy_kj()),
            format!("{}", cmp.edge.success()),
        ],
        vec![
            "sensor-cloud".to_string(),
            format!("{:.1}", cmp.cloud.mission_time_secs),
            format!("{:.1}", CloudComparison::planning_time(&cmp.cloud)),
            format!("{:.1}", cmp.cloud.energy_kj()),
            format!("{}", cmp.cloud.success()),
        ],
    ];
    print_table(&["configuration", "mission time (s)", "planning time (s)", "energy (kJ)", "success"], &rows);
    println!();
    println!(
        "mission-time speed-up from cloud offload: {:.2}X (paper: up to ~2X / 50% reduction)",
        cmp.speedup()
    );
}
