//! Fig. 16 — fully-on-edge vs sensor-cloud 3D Mapping (performance and energy).
use mav_bench::{figures, run_figure};

fn main() {
    run_figure(
        "fig16_cloud_offload",
        "fully-on-edge vs sensor-cloud 3D Mapping, performance and energy (Fig. 16)",
        figures::fig16_cloud_offload,
    );
}
