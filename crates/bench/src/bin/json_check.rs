//! Validates harness JSON on stdin: `fig… --json | json_check`.
//!
//! CI pipes one `--fast --json` harness binary through this check so a
//! malformed machine-readable document (a NaN rendered bare, a truncated
//! object, an unescaped string) fails the build instead of surfacing weeks
//! later in a figure script. Exits 0 and prints a one-line summary when the
//! document parses via `mav_types::json`; exits 1 with the parse error
//! otherwise.

use mav_types::Json;
use std::io::Read;

fn main() {
    let mut input = String::new();
    if let Err(error) = std::io::stdin().read_to_string(&mut input) {
        eprintln!("json_check: could not read stdin: {error}");
        std::process::exit(1);
    }
    if input.trim().is_empty() {
        eprintln!("json_check: empty input (did the harness binary run with --json?)");
        std::process::exit(1);
    }
    match Json::parse(&input) {
        Ok(document) => {
            let shape = match &document {
                Json::Object(fields) => format!("object with {} fields", fields.len()),
                Json::Array(items) => format!("array with {} items", items.len()),
                other => format!("{other:?}"),
            };
            let figure = document
                .get("figure")
                .and_then(Json::as_str)
                .unwrap_or("<unnamed>");
            println!(
                "json_check: OK — {} bytes, {shape}, figure `{figure}`",
                input.len()
            );
        }
        Err(error) => {
            eprintln!("json_check: {error}");
            std::process::exit(1);
        }
    }
}
