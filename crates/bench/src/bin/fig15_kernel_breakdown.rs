//! Fig. 15 — per-kernel runtime breakdown for every application across the TX2 sweep.
use mav_bench::print_table;
use mav_compute::{table1_profile, ApplicationId, KernelId, OperatingPoint};

fn main() {
    println!("== Fig. 15: kernel runtime (ms per invocation) across operating points ==");
    let kernels_of_interest = [
        KernelId::MotionPlanning,
        KernelId::OctomapGeneration,
        KernelId::FrontierExploration,
        KernelId::ObjectDetection,
        KernelId::TrackingBuffered,
        KernelId::TrackingRealTime,
        KernelId::LawnmowerPlanning,
        KernelId::PathSmoothing,
    ];
    for &app in ApplicationId::all() {
        let profile = table1_profile(app);
        let used: Vec<KernelId> = kernels_of_interest
            .iter()
            .copied()
            .filter(|k| profile.uses(*k))
            .collect();
        if used.is_empty() {
            continue;
        }
        println!();
        println!("-- {app} --");
        let mut rows = Vec::new();
        for point in OperatingPoint::tx2_sweep() {
            let mut row = vec![point.label()];
            for k in &used {
                let ms = profile.kernel(*k).unwrap().latency(&point).as_millis();
                row.push(format!("{ms:.0}"));
            }
            rows.push(row);
        }
        let mut headers: Vec<&str> = vec!["operating point"];
        let names: Vec<String> = used.iter().map(|k| k.short_name().to_string()).collect();
        headers.extend(names.iter().map(|s| s.as_str()));
        print_table(&headers, &rows);
    }
}
