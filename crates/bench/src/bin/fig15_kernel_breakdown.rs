//! Fig. 15 — per-kernel runtime breakdown for every application across the TX2 sweep.
use mav_bench::{figures, run_figure};

fn main() {
    run_figure(
        "fig15_kernel_breakdown",
        "per-kernel runtime breakdown for every application across the TX2 sweep (Fig. 15)",
        figures::fig15_kernel_breakdown,
    );
}
