//! Fig. 10 — Scanning heat maps (velocity, mission time, energy) over the TX2 sweep.
use mav_bench::{figures, run_figure};

fn main() {
    run_figure(
        "fig10_scanning",
        "Scanning heat maps (velocity, mission time, energy) over the TX2 sweep (Fig. 10)",
        figures::fig10_scanning,
    );
}
