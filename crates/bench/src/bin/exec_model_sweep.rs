//! PR 5 — executor model (serial vs pipelined) × per-node DVFS study.
use mav_bench::{figures, run_figure};

fn main() {
    run_figure(
        "exec_model_sweep",
        "Serial vs pipelined round charging and mission-global vs per-node (big.LITTLE) operating points on the same delivery mission",
        figures::exec_model_sweep,
    );
}
