//! The shared command-line driver for every `fig*`/`table*` harness binary.
//!
//! All 18 harness binaries accept the same flags:
//!
//! * `--fast` (alias `--quick`) — run on scaled-down scenarios that finish in
//!   seconds instead of the paper-sized ones;
//! * `--json` — print the figure's data as a JSON document instead of text
//!   tables;
//! * `--threads N` — number of worker threads for mission sweeps
//!   (default: all cores, `1` reproduces the historical serial behaviour);
//! * `--rates cam=15,map=4,plan=2,ctrl=50` — per-node closed-loop rates
//!   (camera fps, OctoMap Hz, replan Hz, control Hz; any subset — omitted
//!   nodes stay tick-synchronous, i.e. the legacy schedule);
//! * `--replan-mode hover-to-plan|plan-in-motion` — what the closed loop
//!   does on a collision alert (default: the figure's configuration,
//!   normally hover-to-plan);
//! * `--exec-model serial|pipelined` — how executor rounds charge latency
//!   (serial sums node latencies, the paper's accounting; pipelined charges
//!   the critical path over pipeline stages);
//! * `--node-op plan=big@2.2,cam=little@1.4` — per-node operating points
//!   (big.LITTLE-style cluster mapping; keys cam/map/plan/ctrl, values
//!   `big@GHz`, `little@GHz` or `<cores>c@GHz` — omitted nodes stay at the
//!   mission-global point);
//! * `--faults cam-drop=0.1,plan-timeout=2x,battery-fade=0.2` — a seeded
//!   fault plan every mission runs under (keys cam-drop, noise-burst,
//!   kernel-spike, plan-timeout, topic-drop, battery-fade — omitted faults
//!   stay off; omitting the flag keeps every mission bit-identical to the
//!   fault-free build);
//! * `--help` — usage.
//!
//! A binary is a one-liner: `run_figure(NAME, DESCRIPTION, figures::NAME)`.
//! The figure builder receives the parsed [`Cli`] and returns a
//! [`FigureOutput`] carrying both renderings; the driver prints the one the
//! user asked for.

use mav_core::sweep::SweepRunner;
use mav_core::{ExecModel, FaultPlan, MissionConfig, NodeOpConfig, RateConfig, ReplanMode};
use mav_types::Json;

/// Parsed command-line options shared by every harness binary.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Cli {
    /// Run scaled-down scenarios (`--fast`).
    pub fast: bool,
    /// Emit JSON instead of text (`--json`).
    pub json: bool,
    /// Worker threads for sweeps; 0 means all cores (`--threads N`).
    pub threads: usize,
    /// Closed-loop node rates to impose on every mission (`--rates`); `None`
    /// leaves each figure's configuration (normally the legacy schedule).
    pub rates: Option<RateConfig>,
    /// Collision-alert replanning policy to impose on every mission
    /// (`--replan-mode`); `None` leaves each figure's configuration
    /// (normally hover-to-plan).
    pub replan_mode: Option<ReplanMode>,
    /// Executor latency-charging model to impose on every mission
    /// (`--exec-model`); `None` leaves each figure's configuration
    /// (normally serial).
    pub exec_model: Option<ExecModel>,
    /// Per-node operating points to impose on every mission (`--node-op`);
    /// `None` leaves each figure's configuration (normally mission-global).
    pub node_ops: Option<NodeOpConfig>,
    /// Fault plan to impose on every mission (`--faults`); `None` keeps
    /// faults off (the bit-identical default).
    pub faults: Option<FaultPlan>,
}

/// What a figure builder hands back to the driver.
#[derive(Debug, Clone)]
pub struct FigureOutput {
    /// Human-readable rendering (tables and commentary).
    pub text: String,
    /// Machine-readable rendering of the same data.
    pub json: Json,
}

impl Cli {
    /// Parses `std::env::args`. Exits with usage on `--help` or an unknown
    /// flag.
    pub fn parse(name: &str, description: &str) -> Cli {
        match Cli::try_parse(std::env::args().skip(1)) {
            Ok(cli) => cli,
            Err(CliError::Help) => {
                println!("{}", usage(name, description));
                std::process::exit(0);
            }
            Err(CliError::Invalid(message)) => {
                eprintln!("error: {message}\n\n{}", usage(name, description));
                std::process::exit(2);
            }
        }
    }

    /// Parses an argument iterator (testable core of [`Cli::parse`]).
    pub fn try_parse(args: impl Iterator<Item = String>) -> Result<Cli, CliError> {
        let mut cli = Cli::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--fast" | "--quick" => cli.fast = true,
                "--json" => cli.json = true,
                "--threads" => {
                    let value = args
                        .next()
                        .ok_or_else(|| CliError::Invalid("--threads needs a value".into()))?;
                    cli.threads = value.parse().map_err(|_| {
                        CliError::Invalid(format!("invalid thread count `{value}`"))
                    })?;
                }
                "--rates" => {
                    let value = args
                        .next()
                        .ok_or_else(|| CliError::Invalid("--rates needs a value".into()))?;
                    cli.rates = Some(parse_rates(&value)?);
                }
                "--replan-mode" => {
                    let value = args
                        .next()
                        .ok_or_else(|| CliError::Invalid("--replan-mode needs a value".into()))?;
                    cli.replan_mode = Some(parse_replan_mode(&value)?);
                }
                "--exec-model" => {
                    let value = args
                        .next()
                        .ok_or_else(|| CliError::Invalid("--exec-model needs a value".into()))?;
                    cli.exec_model = Some(parse_exec_model(&value)?);
                }
                "--node-op" => {
                    let value = args
                        .next()
                        .ok_or_else(|| CliError::Invalid("--node-op needs a value".into()))?;
                    cli.node_ops = Some(parse_node_ops(&value)?);
                }
                "--faults" => {
                    let value = args
                        .next()
                        .ok_or_else(|| CliError::Invalid("--faults needs a value".into()))?;
                    cli.faults = Some(FaultPlan::parse(&value).map_err(|reason| {
                        CliError::Invalid(format!("invalid --faults: {reason}"))
                    })?);
                }
                "--help" | "-h" => return Err(CliError::Help),
                other => return Err(CliError::Invalid(format!("unknown argument `{other}`"))),
            }
        }
        Ok(cli)
    }

    /// A sweep runner honouring `--threads`.
    pub fn runner(&self) -> SweepRunner {
        SweepRunner::new().with_threads(self.threads)
    }

    /// Applies `--fast` scaling and any `--rates` schedule to a mission
    /// configuration. Every fig*/table* mission runs through here, so a
    /// non-legacy schedule is one flag away on each of them.
    pub fn scale(&self, config: MissionConfig) -> MissionConfig {
        let config = if self.fast {
            mav_core::experiments::quick_config(config)
        } else {
            config
        };
        let config = match self.rates {
            Some(rates) => config.with_rates(rates),
            None => config,
        };
        let config = match self.replan_mode {
            Some(mode) => config.with_replan_mode(mode),
            None => config,
        };
        let config = match self.exec_model {
            Some(model) => config.with_exec_model(model),
            None => config,
        };
        let config = match self.node_ops {
            Some(node_ops) => config.with_node_ops(node_ops),
            None => config,
        };
        match self.faults {
            Some(plan) => config.with_fault_plan(plan),
            None => config,
        }
    }
}

/// Parses an `--exec-model` value through the shared [`ExecModel::parse`]
/// parser (HTTP job specs route through the same function).
fn parse_exec_model(value: &str) -> Result<ExecModel, CliError> {
    ExecModel::parse(value).map_err(CliError::Invalid)
}

/// Parses a `--node-op plan=big@2.2,cam=little@1.4` list through the shared
/// [`NodeOpConfig::parse`] parser (HTTP job specs route through the same
/// function).
fn parse_node_ops(spec: &str) -> Result<NodeOpConfig, CliError> {
    NodeOpConfig::parse(spec)
        .map_err(|reason| CliError::Invalid(format!("invalid --node-op: {reason}")))
}

/// Parses a `--replan-mode` value through the shared [`ReplanMode::parse`]
/// parser (HTTP job specs route through the same function).
fn parse_replan_mode(value: &str) -> Result<ReplanMode, CliError> {
    ReplanMode::parse(value).map_err(CliError::Invalid)
}

/// Parses a `cam=15,map=4,plan=2,ctrl=50` rate list through the shared
/// [`RateConfig::parse`] parser (HTTP job specs route through the same
/// function).
fn parse_rates(spec: &str) -> Result<RateConfig, CliError> {
    RateConfig::parse(spec)
        .map_err(|reason| CliError::Invalid(format!("invalid --rates: {reason}")))
}

/// Why parsing stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// `--help` was requested.
    Help,
    /// An argument was malformed or unknown.
    Invalid(String),
}

fn usage(name: &str, description: &str) -> String {
    format!(
        "{name} — {description}\n\n\
         usage: {name} [--fast] [--json] [--threads N] [--rates LIST] [--replan-mode MODE]\n       \
         [--exec-model MODEL] [--node-op LIST] [--faults LIST]\n\n\
         options:\n  \
         --fast        run scaled-down scenarios that finish in seconds (alias: --quick)\n  \
         --json        print the figure data as JSON instead of text tables\n  \
         --threads N   worker threads for mission sweeps (default: all cores)\n  \
         --rates LIST  closed-loop node rates, e.g. cam=15,map=4,plan=2,ctrl=50\n                \
         (omitted keys stay tick-synchronous — the legacy schedule)\n  \
         --replan-mode MODE\n                \
         collision-alert policy: hover-to-plan (default) ends the episode\n                \
         and plans while hovering; plan-in-motion replans while flying\n  \
         --exec-model MODEL\n                \
         round latency charging: serial (default) sums node latencies;\n                \
         pipelined charges the critical path over pipeline stages\n  \
         --node-op LIST\n                \
         per-node operating points, e.g. plan=big@2.2,cam=little@1.4\n                \
         (keys cam/map/plan/ctrl; values big@GHz, little@GHz or <cores>c@GHz;\n                \
         omitted nodes stay at the mission-global point)\n  \
         --faults LIST\n                \
         seeded fault plan, e.g. cam-drop=0.1,plan-timeout=2x,battery-fade=0.2\n                \
         (keys cam-drop, noise-burst, kernel-spike, plan-timeout, topic-drop,\n                \
         battery-fade; omitted faults stay off)\n  \
         --help        show this message"
    )
}

/// Parses the CLI, runs the figure builder, prints the requested rendering.
pub fn run_figure(name: &str, description: &str, body: impl FnOnce(&Cli) -> FigureOutput) {
    let cli = Cli::parse(name, description);
    let output = body(&cli);
    if cli.json {
        // `rates` makes documents from different schedules distinguishable
        // in archives: null for the (default) legacy schedule.
        let rates_json = match cli.rates {
            Some(rates) => Json::object()
                .field("cam", rates.camera_fps)
                .field("map", rates.mapping_hz)
                .field("plan", rates.replan_hz)
                .field("ctrl", rates.control_hz),
            None => Json::Null,
        };
        let replan_mode_json = match cli.replan_mode {
            Some(mode) => Json::String(mode.label().to_string()),
            None => Json::Null,
        };
        let exec_model_json = match cli.exec_model {
            Some(model) => Json::String(model.label().to_string()),
            None => Json::Null,
        };
        let node_ops_json = match cli.node_ops {
            Some(ops) => Json::String(ops.label()),
            None => Json::Null,
        };
        let document = Json::object()
            .field("figure", name)
            .field("description", description)
            .field("fast", cli.fast)
            .field("threads", cli.runner().threads())
            .field("rates", rates_json)
            .field("replan_mode", replan_mode_json)
            .field("exec_model", exec_model_json)
            .field("node_ops", node_ops_json);
        // Unlike the always-present flag fields above, `faults` only appears
        // when a plan was requested: fault-free harness JSON stays
        // byte-identical to every pre-fault-injection archive.
        let document = match cli.faults {
            Some(plan) => document.field("faults", plan.label().as_str()),
            None => document,
        };
        let document = document.field("data", output.json);
        println!("{}", document.to_string_pretty());
    } else {
        println!("== {name}: {description} ==");
        print!("{}", output.text);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mav_compute::OperatingPoint;
    use mav_types::Frequency;

    fn parse(args: &[&str]) -> Result<Cli, CliError> {
        Cli::try_parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_full_size_text_all_cores() {
        let cli = parse(&[]).unwrap();
        assert!(!cli.fast);
        assert!(!cli.json);
        assert_eq!(cli.threads, 0);
        assert!(cli.runner().threads() >= 1);
    }

    #[test]
    fn all_flags_parse() {
        let cli = parse(&["--fast", "--json", "--threads", "3"]).unwrap();
        assert!(cli.fast);
        assert!(cli.json);
        assert_eq!(cli.threads, 3);
        assert_eq!(cli.runner().threads(), 3);
    }

    #[test]
    fn quick_is_an_alias_for_fast() {
        assert!(parse(&["--quick"]).unwrap().fast);
    }

    #[test]
    fn errors_are_reported() {
        assert_eq!(parse(&["--help"]), Err(CliError::Help));
        assert!(matches!(parse(&["--threads"]), Err(CliError::Invalid(_))));
        assert!(matches!(
            parse(&["--threads", "x"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(parse(&["--bogus"]), Err(CliError::Invalid(_))));
    }

    #[test]
    fn rates_parse_full_and_partial_lists() {
        let cli = parse(&["--rates", "cam=15,map=4,plan=2,ctrl=50"]).unwrap();
        let rates = cli.rates.unwrap();
        assert_eq!(rates.camera_fps, Some(15.0));
        assert_eq!(rates.mapping_hz, Some(4.0));
        assert_eq!(rates.replan_hz, Some(2.0));
        assert_eq!(rates.control_hz, Some(50.0));

        let cli = parse(&["--rates", "cam=7.5"]).unwrap();
        let rates = cli.rates.unwrap();
        assert_eq!(rates.camera_fps, Some(7.5));
        assert_eq!(rates.mapping_hz, None);
        // No flag: no override.
        assert_eq!(parse(&[]).unwrap().rates, None);
    }

    #[test]
    fn bad_rates_are_rejected() {
        for spec in ["cam", "cam=x", "speed=3", "cam=0", "cam=-2", ""] {
            assert!(
                matches!(parse(&["--rates", spec]), Err(CliError::Invalid(_))),
                "`{spec}` should be rejected"
            );
        }
        assert!(matches!(parse(&["--rates"]), Err(CliError::Invalid(_))));
    }

    #[test]
    fn replan_mode_parses_both_values_and_aliases() {
        let cli = parse(&["--replan-mode", "plan-in-motion"]).unwrap();
        assert_eq!(cli.replan_mode, Some(ReplanMode::PlanInMotion));
        let cli = parse(&["--replan-mode", "hover-to-plan"]).unwrap();
        assert_eq!(cli.replan_mode, Some(ReplanMode::HoverToPlan));
        assert_eq!(
            parse(&["--replan-mode", "motion"]).unwrap().replan_mode,
            Some(ReplanMode::PlanInMotion)
        );
        assert_eq!(
            parse(&["--replan-mode", "hover"]).unwrap().replan_mode,
            Some(ReplanMode::HoverToPlan)
        );
        // No flag: no override.
        assert_eq!(parse(&[]).unwrap().replan_mode, None);
        assert!(matches!(
            parse(&["--replan-mode", "teleport"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            parse(&["--replan-mode"]),
            Err(CliError::Invalid(_))
        ));
    }

    #[test]
    fn exec_model_parses_and_rejects_unknown_values() {
        let cli = parse(&["--exec-model", "pipelined"]).unwrap();
        assert_eq!(cli.exec_model, Some(ExecModel::Pipelined));
        let cli = parse(&["--exec-model", "serial"]).unwrap();
        assert_eq!(cli.exec_model, Some(ExecModel::Serial));
        assert_eq!(
            parse(&["--exec-model", "pipeline"]).unwrap().exec_model,
            Some(ExecModel::Pipelined)
        );
        // No flag: no override.
        assert_eq!(parse(&[]).unwrap().exec_model, None);
        assert!(matches!(
            parse(&["--exec-model", "quantum"]),
            Err(CliError::Invalid(_))
        ));
        assert!(matches!(
            parse(&["--exec-model"]),
            Err(CliError::Invalid(_))
        ));
    }

    #[test]
    fn node_ops_parse_clusters_and_explicit_cores() {
        let cli = parse(&["--node-op", "plan=big@2.2,cam=little@1.4"]).unwrap();
        let ops = cli.node_ops.unwrap();
        assert_eq!(
            ops.planning,
            Some(OperatingPoint::new(4, Frequency::from_ghz(2.2)))
        );
        assert_eq!(
            ops.camera,
            Some(OperatingPoint::new(2, Frequency::from_ghz(1.4)))
        );
        assert_eq!(ops.mapping, None);
        assert_eq!(ops.control, None);

        let cli = parse(&["--node-op", "map=3c@1.5,ctrl=2c@0.8"]).unwrap();
        let ops = cli.node_ops.unwrap();
        assert_eq!(
            ops.mapping,
            Some(OperatingPoint::new(3, Frequency::from_ghz(1.5)))
        );
        assert_eq!(
            ops.control,
            Some(OperatingPoint::new(2, Frequency::from_ghz(0.8)))
        );
        // A trailing GHz suffix is tolerated (the label syntax round-trips).
        let cli = parse(&["--node-op", "plan=4c@2.2GHz"]).unwrap();
        assert_eq!(
            cli.node_ops.unwrap().planning,
            Some(OperatingPoint::new(4, Frequency::from_ghz(2.2)))
        );
        // No flag: no override.
        assert_eq!(parse(&[]).unwrap().node_ops, None);
    }

    #[test]
    fn bad_node_ops_are_rejected() {
        for spec in [
            "plan",
            "plan=big",
            "plan=huge@2.2",
            "plan=big@x",
            "plan=big@0",
            "plan=big@-1",
            "plan=0c@1.5",
            "engine=big@2.2",
            "",
        ] {
            assert!(
                matches!(parse(&["--node-op", spec]), Err(CliError::Invalid(_))),
                "`{spec}` should be rejected"
            );
        }
        assert!(matches!(parse(&["--node-op"]), Err(CliError::Invalid(_))));
    }

    #[test]
    fn scale_applies_exec_model_and_node_ops_to_every_mission() {
        use mav_compute::ApplicationId;
        let cli = Cli {
            exec_model: Some(ExecModel::Pipelined),
            node_ops: Some(NodeOpConfig::big_little()),
            ..Cli::default()
        };
        let cfg = cli.scale(MissionConfig::new(ApplicationId::PackageDelivery));
        assert_eq!(cfg.exec_model, ExecModel::Pipelined);
        assert_eq!(cfg.node_ops, NodeOpConfig::big_little());
        let plain = Cli::default().scale(MissionConfig::new(ApplicationId::PackageDelivery));
        assert_eq!(plain.exec_model, ExecModel::Serial);
        assert!(plain.node_ops.is_mission_global());
    }

    #[test]
    fn scale_applies_replan_mode_to_every_mission() {
        use mav_compute::ApplicationId;
        let cli = Cli {
            replan_mode: Some(ReplanMode::PlanInMotion),
            ..Cli::default()
        };
        let cfg = cli.scale(MissionConfig::new(ApplicationId::PackageDelivery));
        assert_eq!(cfg.replan_mode, ReplanMode::PlanInMotion);
        let plain = Cli::default().scale(MissionConfig::new(ApplicationId::PackageDelivery));
        assert_eq!(plain.replan_mode, ReplanMode::HoverToPlan);
    }

    #[test]
    fn scale_applies_rates_to_every_mission() {
        use mav_compute::ApplicationId;
        use mav_core::RateConfig;
        let cli = Cli {
            rates: Some(RateConfig::legacy().with_camera_fps(5.0)),
            ..Cli::default()
        };
        let cfg = cli.scale(MissionConfig::new(ApplicationId::Mapping3D));
        assert_eq!(cfg.rates.camera_fps, Some(5.0));
        let plain = Cli::default().scale(MissionConfig::new(ApplicationId::Mapping3D));
        assert!(plain.rates.is_legacy());
    }

    #[test]
    fn faults_parse_and_apply_to_every_mission() {
        use mav_compute::ApplicationId;
        let cli = parse(&["--faults", "cam-drop=0.1,plan-timeout=2x,battery-fade=0.2"]).unwrap();
        let plan = cli.faults.unwrap();
        assert_eq!(plan.camera_dropout, 0.1);
        assert_eq!(plan.plan_timeout_factor, 2.0);
        assert_eq!(plan.battery_fade, 0.2);
        let cfg = cli.scale(MissionConfig::new(ApplicationId::PackageDelivery));
        assert_eq!(cfg.fault_plan, plan);
        // No flag: faults stay off and the config is untouched.
        let plain = Cli::default().scale(MissionConfig::new(ApplicationId::PackageDelivery));
        assert!(plain.fault_plan.is_none());
        assert_eq!(parse(&[]).unwrap().faults, None);
    }

    #[test]
    fn bad_faults_are_rejected() {
        for spec in ["cam-drop", "cam-drop=x", "warp-core=0.5", "cam-drop=1.5"] {
            assert!(
                matches!(parse(&["--faults", spec]), Err(CliError::Invalid(_))),
                "`{spec}` should be rejected"
            );
        }
        assert!(matches!(parse(&["--faults"]), Err(CliError::Invalid(_))));
    }

    #[test]
    fn scale_respects_fast() {
        use mav_compute::ApplicationId;
        let base = MissionConfig::new(ApplicationId::Mapping3D);
        let fast = Cli {
            fast: true,
            ..Cli::default()
        }
        .scale(base.clone());
        assert!(fast.environment.extent <= base.environment.extent);
        let full = Cli::default().scale(base.clone());
        assert_eq!(full.environment.extent, base.environment.extent);
    }
}
