//! Aligned text tables shared by every harness binary.

/// Renders a simple aligned text table.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{:<w$}", h, w = widths[i]))
        .collect();
    out.push_str(&header_line.join(" | "));
    out.push('\n');
    out.push_str(&"-".repeat(header_line.join(" | ").len()));
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(0)))
            .collect();
        out.push_str(&line.join(" | "));
        out.push('\n');
    }
    out
}

/// Prints a table rendered by [`format_table`].
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", format_table(headers, rows));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let rendered = format_table(
            &["a", "long header"],
            &[
                vec!["1".into(), "2".into()],
                vec!["much longer".into(), "x".into()],
            ],
        );
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a           | long header"));
        assert!(lines[2].starts_with("1           | 2"));
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table(&["h"], &[vec!["v".into()]]);
    }

    #[test]
    fn extra_cells_beyond_headers_are_kept() {
        let rendered = format_table(&["only"], &[vec!["a".into(), "b".into()]]);
        assert!(rendered.contains('a'));
        assert!(rendered.contains('b'));
    }
}
