//! Experiment harnesses and benchmark support for MAVBench-RS.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the
//! paper's evaluation; each is a one-line wrapper around a builder in
//! [`figures`], driven by the shared CLI in [`cli`] (`--fast`, `--json`,
//! `--threads`). Mission sweeps run in parallel through
//! [`mav_core::sweep::SweepRunner`]. The Criterion benches in `benches/`
//! measure the real Rust kernels on the host.

#![warn(missing_docs)]

pub mod cli;
pub mod figures;
pub mod table;

pub use cli::{run_figure, Cli, FigureOutput};
pub use table::{format_table, print_table};
