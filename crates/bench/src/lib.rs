//! Experiment harnesses and benchmark support for MAVBench-RS.
//!
//! The binaries in `src/bin/` regenerate every table and figure of the paper's
//! evaluation (see DESIGN.md for the experiment index); the Criterion benches
//! in `benches/` measure the real Rust kernels on the host. This library crate
//! holds the small amount of shared plumbing: quick/full configuration
//! selection and text-table printing.

#![warn(missing_docs)]

use mav_compute::ApplicationId;
use mav_core::experiments::{format_heatmap, operating_point_sweep, HeatmapCell};
use mav_core::MissionConfig;

/// Returns `true` when `--quick` was passed on the command line: experiments
/// then run on scaled-down scenarios that finish in seconds.
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Applies the quick-mode scaling when requested.
pub fn scale(config: MissionConfig, quick: bool) -> MissionConfig {
    if quick {
        mav_core::experiments::quick_config(config)
    } else {
        config
    }
}

/// Runs the 3×3 operating-point sweep for an application and prints the three
/// heat maps the paper reports (velocity or error, mission time, energy).
pub fn run_and_print_heatmaps(app: ApplicationId, quick: bool, seed: u64) -> Vec<HeatmapCell> {
    let cells = operating_point_sweep(app, |cfg| scale(cfg, quick).with_seed(seed));
    println!("== {} — operating-point sweep ==", app);
    if app == ApplicationId::AerialPhotography {
        println!("{}", format_heatmap(&cells, "error (norm.)", |r| r.tracking_error));
    } else {
        println!("{}", format_heatmap(&cells, "velocity (m/s)", |r| r.average_velocity));
    }
    println!("{}", format_heatmap(&cells, "mission time (s)", |r| r.mission_time_secs));
    println!("{}", format_heatmap(&cells, "energy (kJ)", |r| r.energy_kj()));
    let failures: Vec<String> = cells
        .iter()
        .filter(|c| !c.report.success())
        .map(|c| format!("{}c@{:.1}GHz: {:?}", c.cores, c.frequency_ghz, c.report.failure))
        .collect();
    if failures.is_empty() {
        println!("all 9 operating points completed successfully");
    } else {
        println!("failed operating points: {failures:?}");
    }
    cells
}

/// Prints a simple aligned text table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> =
        headers.iter().enumerate().map(|(i, h)| format!("{:<w$}", h, w = widths[i])).collect();
    println!("{}", header_line.join(" | "));
    println!("{}", "-".repeat(header_line.join(" | ").len()));
    for row in rows {
        let line: Vec<String> =
            row.iter().enumerate().map(|(i, c)| format!("{:<w$}", c, w = widths[i])).collect();
        println!("{}", line.join(" | "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_printer_does_not_panic() {
        print_table(
            &["a", "long header"],
            &[vec!["1".into(), "2".into()], vec!["much longer".into(), "x".into()]],
        );
    }

    #[test]
    fn scale_quick_shrinks_environment() {
        let base = MissionConfig::new(ApplicationId::Mapping3D);
        let quick = scale(base.clone(), true);
        assert!(quick.environment.extent <= base.environment.extent);
        let full = scale(base.clone(), false);
        assert_eq!(full.environment.extent, base.environment.extent);
    }
}
