//! The figure/table builders behind the 16 harness binaries.
//!
//! Every builder takes the parsed [`Cli`] and returns a [`FigureOutput`]
//! carrying both the text rendering and a JSON document of the same data, so
//! each binary is a one-line `run_figure(..)` call. Mission sweeps all go
//! through [`SweepRunner`](mav_core::sweep::SweepRunner) via
//! [`Cli::runner`], so `--threads` controls their parallelism.

use crate::cli::{Cli, FigureOutput};
use crate::table::format_table;
use mav_compute::{table1_profile, ApplicationId, KernelId, OperatingPoint};
use mav_core::experiments::{
    cloud_offload_study_with, exec_model_scenario, exec_model_sweep_with, format_heatmap,
    noise_reliability_study_with, operating_point_sweep_with, perception_rate_sweep_with,
    replan_mode_sweep_with, replan_scenario, resolution_study_with, CloudComparison, HeatmapCell,
};
use mav_core::microbench::{hover_endurance_minutes, slam_fps_sweep, SlamMicrobenchConfig};
use mav_core::reliability::{
    reliability_fault_grid_with, reliability_rate_grid_with, reliability_sweep_classified,
    ScenarioGenerator, DEFAULT_SHARD_SIZE,
};
use mav_core::velocity::velocity_vs_process_time;
use mav_energy::{
    commercial_mav_catalog, ComputePowerModel, EnergyAccount, FlightPhaseLabel, RotorPowerModel,
    WingType,
};
use mav_types::{Json, Power, SimDuration, SimTime, ToJson, Vec3};

/// Shared driver for the Figs. 10–14 operating-point heat maps.
pub fn heatmap_figure(application: ApplicationId, seed: u64, cli: &Cli) -> FigureOutput {
    let cells = operating_point_sweep_with(&cli.runner(), application, |cfg| {
        cli.scale(cfg).with_seed(seed)
    });
    let mut text = format!("== {application} — operating-point sweep ==\n");
    if application == ApplicationId::AerialPhotography {
        text.push_str(&format_heatmap(&cells, "error (norm.)", |r| {
            r.tracking_error
        }));
    } else {
        text.push_str(&format_heatmap(&cells, "velocity (m/s)", |r| {
            r.average_velocity
        }));
    }
    text.push_str(&format_heatmap(&cells, "mission time (s)", |r| {
        r.mission_time_secs
    }));
    text.push_str(&format_heatmap(&cells, "energy (kJ)", |r| r.energy_kj()));
    let failures: Vec<String> = cells
        .iter()
        .filter(|c| !c.report.success())
        .map(|c| {
            format!(
                "{}c@{:.1}GHz: {:?}",
                c.cores, c.frequency_ghz, c.report.failure
            )
        })
        .collect();
    if failures.is_empty() {
        text.push_str("all 9 operating points completed successfully\n");
    } else {
        text.push_str(&format!("failed operating points: {failures:?}\n"));
    }
    FigureOutput {
        text,
        json: cells_json(application, seed, &cells),
    }
}

fn cells_json(application: ApplicationId, seed: u64, cells: &[HeatmapCell]) -> Json {
    Json::object()
        .field("application", application)
        .field("seed", seed)
        .field("cells", cells.to_json())
}

/// Fig. 2 — endurance and size vs battery capacity for commercial MAVs.
pub fn fig02_endurance(_cli: &Cli) -> FigureOutput {
    let catalog = commercial_mav_catalog();
    let mut text = String::from("-- Fig. 2a: flight endurance vs battery capacity --\n");
    let rows: Vec<Vec<String>> = catalog
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                format!("{:?}", m.wing),
                format!("{:.0}", m.battery_mah),
                format!("{:.2}", m.endurance_hours()),
                format!("{:.2}", m.endurance_per_ah()),
            ]
        })
        .collect();
    text.push_str(&format_table(
        &[
            "model",
            "wing",
            "battery (mAh)",
            "endurance (h)",
            "h per Ah",
        ],
        &rows,
    ));

    text.push_str("\n-- Fig. 2b: size vs battery capacity --\n");
    let rows: Vec<Vec<String>> = catalog
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                m.segment.to_string(),
                format!("{:.0}", m.battery_mah),
                format!("{:.0}", m.size_mm),
            ]
        })
        .collect();
    text.push_str(&format_table(
        &["model", "segment", "battery (mAh)", "size (mm)"],
        &rows,
    ));

    text.push_str("\n-- model cross-check: hover endurance from the energy model --\n");
    let rows: Vec<Vec<String>> = catalog
        .iter()
        .filter(|m| m.wing == WingType::Rotor)
        .map(|m| {
            let est = hover_endurance_minutes(m.battery_mah, 14.8, 287.0);
            vec![
                m.name.to_string(),
                format!("{:.1}", m.endurance_minutes),
                format!("{:.1}", est),
            ]
        })
        .collect();
    text.push_str(&format_table(
        &[
            "model",
            "quoted endurance (min)",
            "modelled hover endurance (min)",
        ],
        &rows,
    ));

    let json = Json::Array(
        catalog
            .iter()
            .map(|m| {
                Json::object()
                    .field("model", m.name)
                    .field("wing", format!("{:?}", m.wing))
                    .field("segment", m.segment)
                    .field("battery_mah", m.battery_mah)
                    .field("size_mm", m.size_mm)
                    .field("endurance_minutes", m.endurance_minutes)
                    .field("endurance_hours", m.endurance_hours())
                    .field("hours_per_ah", m.endurance_per_ah())
            })
            .collect(),
    );
    FigureOutput { text, json }
}

/// Fig. 8a — theoretical maximum velocity vs perception-to-actuation latency (Eq. 2).
pub fn fig08a_max_velocity(_cli: &Cli) -> FigureOutput {
    let sweep = velocity_vs_process_time(4.0, 16, 7.8, 5.0);
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|(t, v)| vec![format!("{t:.2}"), format!("{v:.2}")])
        .collect();
    let mut text = String::from("(Eq. 2, d = 7.8 m, a = 5 m/s^2)\n");
    text.push_str(&format_table(
        &["process time (s)", "max velocity (m/s)"],
        &rows,
    ));
    text.push_str(&format!(
        "\npaper envelope: 8.83 m/s at 0 s .. 1.57 m/s at 4 s; measured: {:.2} .. {:.2}\n",
        sweep.first().unwrap().1,
        sweep.last().unwrap().1
    ));
    let json = Json::Array(
        sweep
            .iter()
            .map(|(t, v)| {
                Json::object()
                    .field("process_time_secs", *t)
                    .field("max_velocity", *v)
            })
            .collect(),
    );
    FigureOutput { text, json }
}

/// Fig. 8b — SLAM throughput vs maximum velocity and energy: the analytic
/// microbenchmark plus, since PR 2, the emergent whole-mission counterpart
/// (the perception-rate sweep on the node-graph executor).
pub fn fig08b_slam_fps(cli: &Cli) -> FigureOutput {
    let sweep = slam_fps_sweep(
        &[0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0],
        SlamMicrobenchConfig::default(),
    );
    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}", p.fps),
                format!("{:.2}", p.max_velocity),
                format!("{:.1}", p.mission_time_secs),
                format!("{:.1}", p.energy_kj),
                format!("{:.2}", p.observed_failure_rate),
            ]
        })
        .collect();
    let mut text = String::from("(circular path, r = 25 m, failure budget 20%)\n");
    text.push_str(&format_table(
        &[
            "SLAM FPS",
            "max velocity (m/s)",
            "lap time (s)",
            "energy (kJ)",
            "observed failure rate",
        ],
        &rows,
    ));
    let first = sweep.first().unwrap();
    let last = sweep.last().unwrap();
    text.push_str(&format!(
        "\nenergy reduction from {:.1} to {:.1} FPS: {:.2}X (paper: ~4X for a 5X FPS increase)\n",
        first.fps,
        last.fps,
        first.energy_kj / last.energy_kj
    ));
    let microbench_json = Json::Array(
        sweep
            .iter()
            .map(|p| {
                Json::object()
                    .field("fps", p.fps)
                    .field("max_velocity", p.max_velocity)
                    .field("mission_time_secs", p.mission_time_secs)
                    .field("energy_kj", p.energy_kj)
                    .field("observed_failure_rate", p.observed_failure_rate)
            })
            .collect(),
    );

    // The closed-loop counterpart: whole Package Delivery missions whose
    // camera + OctoMap node rates step down on the node-graph executor. The
    // Eq. 2 cap reacts to the schedule's sensing staleness, so the same
    // lower-rate ⇒ slower-and-longer trend emerges from full missions.
    let rates: &[f64] = if cli.fast {
        &[20.0, 5.0, 1.0]
    } else {
        &[30.0, 10.0, 5.0, 2.0, 1.0]
    };
    let closed_loop = perception_rate_sweep_with(
        &cli.runner(),
        rates,
        mav_core::experiments::rate_sweep_scenario,
    );
    text.push_str(
        "\n-- closed-loop counterpart: Package Delivery under perception-rate schedules --\n",
    );
    let rows: Vec<Vec<String>> = closed_loop
        .iter()
        .map(|row| {
            vec![
                format!("{:.1}", row.perception_hz),
                format!("{:.2}", row.report.velocity_cap),
                format!("{:.1}", row.report.mission_time_secs),
                format!("{:.1}", row.report.energy_kj()),
                format!("{}", row.report.success()),
            ]
        })
        .collect();
    text.push_str(&format_table(
        &[
            "camera+map rate (Hz)",
            "velocity cap (m/s)",
            "mission time (s)",
            "energy (kJ)",
            "success",
        ],
        &rows,
    ));
    text.push_str(
        "paper direction: lower perception rate => lower safe velocity => longer mission\n",
    );
    FigureOutput {
        text,
        json: Json::object()
            .field("microbench", microbench_json)
            .field("closed_loop", closed_loop.to_json()),
    }
}

fn power_trace(cruise: f64) -> EnergyAccount {
    let rotor = RotorPowerModel::solo_3dr();
    let compute = ComputePowerModel::tx2().power(4, 2.2);
    let mut acc = EnergyAccount::new();
    let dt = SimDuration::from_millis(200.0);
    let mut t = SimTime::ZERO;
    let phases: &[(f64, FlightPhaseLabel, Vec3)] = &[
        (5.0, FlightPhaseLabel::Arming, Vec3::ZERO),
        (10.0, FlightPhaseLabel::Hovering, Vec3::ZERO),
        (30.0, FlightPhaseLabel::Flying, Vec3::new(cruise, 0.0, 0.0)),
        (5.0, FlightPhaseLabel::Landing, Vec3::new(0.0, 0.0, -1.0)),
    ];
    for (duration, phase, velocity) in phases {
        let steps = (duration / dt.as_secs()) as usize;
        for _ in 0..steps {
            let rotor_p = if *phase == FlightPhaseLabel::Arming {
                Power::from_watts(80.0)
            } else {
                rotor.power(velocity, &Vec3::ZERO, &Vec3::ZERO)
            };
            acc.record(t, dt, rotor_p, compute, *phase);
            t += dt;
        }
    }
    acc
}

/// Fig. 9 — measured power breakdown and mission power trace (3DR Solo class).
pub fn fig09_power_breakdown(_cli: &Cli) -> FigureOutput {
    let mut text = String::from("-- Fig. 9a: power breakdown while flying (3DR Solo class) --\n");
    let acc = power_trace(5.0);
    let rotor_hover = RotorPowerModel::solo_3dr().hover_power().as_watts();
    let compute_w = ComputePowerModel::tx2().power(4, 2.2).as_watts();
    let rows = vec![
        vec!["quad rotors".to_string(), format!("{rotor_hover:.1}")],
        vec![
            "compute platform (TX2)".to_string(),
            format!("{compute_w:.1}"),
        ],
        vec!["other electronics".to_string(), format!("{:.1}", 2.0)],
    ];
    text.push_str(&format_table(&["subsystem", "power (W)"], &rows));
    text.push_str(&format!(
        "rotor share of total energy over a mission: {:.1}% (compute {:.1}%)\n",
        acc.rotor_fraction() * 100.0,
        acc.compute_fraction() * 100.0
    ));

    let mut traces = Vec::new();
    for cruise in [5.0, 10.0] {
        text.push_str(&format!(
            "\n-- Fig. 9b: mission power trace at {cruise} m/s --\n"
        ));
        let acc = power_trace(cruise);
        let phases = [
            FlightPhaseLabel::Arming,
            FlightPhaseLabel::Hovering,
            FlightPhaseLabel::Flying,
            FlightPhaseLabel::Landing,
        ];
        let rows: Vec<Vec<String>> = phases
            .iter()
            .map(|phase| {
                let p = acc
                    .average_power_in_phase(*phase)
                    .map(|p| p.as_watts())
                    .unwrap_or(0.0);
                vec![format!("{phase}"), format!("{p:.1}")]
            })
            .collect();
        text.push_str(&format_table(&["phase", "avg total power (W)"], &rows));
        traces.push(
            Json::object().field("cruise_velocity", cruise).field(
                "phase_power_w",
                Json::Object(
                    phases
                        .iter()
                        .map(|phase| {
                            let p = acc
                                .average_power_in_phase(*phase)
                                .map(|p| p.as_watts())
                                .unwrap_or(0.0);
                            (format!("{phase}"), Json::Number(p))
                        })
                        .collect(),
                ),
            ),
        );
    }
    let json = Json::object()
        .field("rotor_hover_w", rotor_hover)
        .field("compute_w", compute_w)
        .field("rotor_energy_fraction", acc.rotor_fraction())
        .field("compute_energy_fraction", acc.compute_fraction())
        .field("traces", Json::Array(traces));
    FigureOutput { text, json }
}

/// Fig. 10 — Scanning heat maps over the TX2 sweep.
pub fn fig10_scanning(cli: &Cli) -> FigureOutput {
    heatmap_figure(ApplicationId::Scanning, 11, cli)
}

/// Fig. 11 — Package Delivery heat maps over the TX2 sweep, plus (PR 3) the
/// in-flight replanning comparison: the same delivery mission answering the
/// same collision alerts under hover-to-plan (the paper's policy — planning
/// latency charged at zero velocity) and plan-in-motion (the planner node
/// charges the planning kernels across executor rounds while the vehicle
/// keeps flying the stale plan, swapping the fresh trajectory in through the
/// latched plan topic).
pub fn fig11_package_delivery(cli: &Cli) -> FigureOutput {
    let heatmap = heatmap_figure(ApplicationId::PackageDelivery, 9, cli);
    // The scenario is a dense, initially-unknown obstacle field, so the
    // optimistic initial plan reliably gets obstructed mid-flight. Each
    // comparison row pins its own ReplanMode (that is the point of the
    // section); a `--replan-mode` flag applies to the heat-map missions
    // above, not to these rows.
    let replan = replan_mode_sweep_with(&cli.runner(), replan_scenario);
    let mut text = heatmap.text;
    text.push_str("\n-- in-flight replanning: hover-to-plan vs plan-in-motion --\n");
    let rows: Vec<Vec<String>> = replan
        .iter()
        .map(|row| {
            vec![
                row.mode.label().to_string(),
                format!("{}", row.report.replans),
                format!("{:.1}", row.report.mission_time_secs),
                format!("{:.1}", row.report.hover_time_secs),
                format!("{:.1}", row.report.energy_kj()),
                format!("{}", row.report.success()),
            ]
        })
        .collect();
    text.push_str(&format_table(
        &[
            "replan mode",
            "replans",
            "mission time (s)",
            "hover time (s)",
            "energy (kJ)",
            "success",
        ],
        &rows,
    ));
    text.push_str(
        "paper direction: planning while flying beats planning while hovering at equal collision counts\n",
    );
    FigureOutput {
        text,
        json: Json::object().field("heatmap", heatmap.json).field(
            "replan_modes",
            // Self-describing: these rows run the pinned replan scenario
            // under legacy rates with one row per mode, so the document's
            // top-level `fast`/`rates`/`replan_mode` flags (which apply to
            // the heat-map missions) must not be attributed to them.
            Json::object()
                .field(
                    "scenario",
                    "replan_scenario: Package Delivery, seed 1, obstacle density 3.0, \
                     extent 70 m, legacy rates, reference operating point; each row \
                     pins its own replan mode (top-level CLI flags do not apply)",
                )
                .field("rows", replan.to_json()),
        ),
    }
}

/// Fig. 12 — 3D Mapping heat maps over the TX2 sweep.
pub fn fig12_mapping(cli: &Cli) -> FigureOutput {
    heatmap_figure(ApplicationId::Mapping3D, 4, cli)
}

/// Fig. 13 — Search and Rescue heat maps over the TX2 sweep.
pub fn fig13_search_rescue(cli: &Cli) -> FigureOutput {
    heatmap_figure(ApplicationId::SearchAndRescue, 6, cli)
}

/// Fig. 14 — Aerial Photography heat maps over the TX2 sweep.
pub fn fig14_aerial_photography(cli: &Cli) -> FigureOutput {
    heatmap_figure(ApplicationId::AerialPhotography, 8, cli)
}

/// Fig. 15 — per-kernel runtime breakdown across operating points.
pub fn fig15_kernel_breakdown(_cli: &Cli) -> FigureOutput {
    let kernels_of_interest = [
        KernelId::MotionPlanning,
        KernelId::OctomapGeneration,
        KernelId::FrontierExploration,
        KernelId::ObjectDetection,
        KernelId::TrackingBuffered,
        KernelId::TrackingRealTime,
        KernelId::LawnmowerPlanning,
        KernelId::PathSmoothing,
    ];
    let mut text = String::from("(ms per invocation)\n");
    let mut apps_json = Vec::new();
    for &app in ApplicationId::all() {
        let profile = table1_profile(app);
        let used: Vec<KernelId> = kernels_of_interest
            .iter()
            .copied()
            .filter(|k| profile.uses(*k))
            .collect();
        if used.is_empty() {
            continue;
        }
        text.push_str(&format!("\n-- {app} --\n"));
        let mut rows = Vec::new();
        let mut points_json = Vec::new();
        for point in OperatingPoint::tx2_sweep() {
            let mut row = vec![point.label()];
            let mut latencies = Vec::new();
            for k in &used {
                let ms = profile.kernel(*k).unwrap().latency(&point).as_millis();
                row.push(format!("{ms:.0}"));
                latencies.push((k.short_name().to_string(), Json::Number(ms)));
            }
            rows.push(row);
            points_json.push(
                Json::object()
                    .field("operating_point", point)
                    .field("latency_ms", Json::Object(latencies)),
            );
        }
        let mut headers: Vec<&str> = vec!["operating point"];
        let names: Vec<String> = used.iter().map(|k| k.short_name().to_string()).collect();
        headers.extend(names.iter().map(|s| s.as_str()));
        text.push_str(&format_table(&headers, &rows));
        apps_json.push(
            Json::object()
                .field("application", app)
                .field("points", Json::Array(points_json)),
        );
    }
    FigureOutput {
        text,
        json: Json::Array(apps_json),
    }
}

/// Fig. 16 — fully-on-edge vs sensor-cloud 3D Mapping.
pub fn fig16_cloud_offload(cli: &Cli) -> FigureOutput {
    let cmp = cloud_offload_study_with(&cli.runner(), |cfg| cli.scale(cfg).with_seed(4));
    let row = |label: &str, report: &mav_core::MissionReport| {
        vec![
            label.to_string(),
            format!("{:.1}", report.mission_time_secs),
            format!("{:.1}", CloudComparison::planning_time(report)),
            format!("{:.1}", report.energy_kj()),
            format!("{}", report.success()),
        ]
    };
    let rows = vec![
        row("edge (TX2 only)", &cmp.edge),
        row("sensor-cloud", &cmp.cloud),
    ];
    let mut text = String::from("(planning offloaded over 1 Gb/s)\n");
    text.push_str(&format_table(
        &[
            "configuration",
            "mission time (s)",
            "planning time (s)",
            "energy (kJ)",
            "success",
        ],
        &rows,
    ));
    text.push_str(&format!(
        "\nmission-time speed-up from cloud offload: {:.2}X (paper: up to ~2X / 50% reduction)\n",
        cmp.speedup()
    ));
    FigureOutput {
        text,
        json: cmp.to_json(),
    }
}

/// Fig. 17 — perception of a doorway at different OctoMap resolutions.
pub fn fig17_resolution_maps(_cli: &Cli) -> FigureOutput {
    use mav_perception::{OctoMap, OctoMapConfig};

    /// Builds a wall with a door-width (0.82 m) opening mapped at `resolution`.
    fn map_doorway(resolution: f64) -> OctoMap {
        let mut map = OctoMap::new(OctoMapConfig::with_resolution(resolution), 32.0);
        let origin = Vec3::new(-5.0, 0.0, 1.0);
        for i in -40..=40 {
            let y = i as f64 * 0.1;
            if y.abs() < 0.41 {
                continue; // the doorway
            }
            for z in [0.5, 1.0, 1.5, 2.0, 2.5] {
                map.insert_ray(&origin, &Vec3::new(3.0, y, z));
            }
        }
        map
    }

    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for resolution in [0.15, 0.5, 0.8] {
        let map = map_doorway(resolution);
        let doorway = Vec3::new(3.0, 0.0, 1.0);
        let passable = !map.is_occupied_with_inflation(&doorway, 0.325);
        rows.push(vec![
            format!("{resolution:.2}"),
            format!("{}", map.occupied_voxel_count()),
            format!("{}", map.known_voxel_count()),
            format!("{}", if passable { "open" } else { "blocked" }),
        ]);
        entries.push(
            Json::object()
                .field("resolution_m", resolution)
                .field("occupied_voxels", map.occupied_voxel_count())
                .field("known_voxels", map.known_voxel_count())
                .field("doorway_passable", passable),
        );
    }
    let mut text = String::from("(0.82 m doorway)\n");
    text.push_str(&format_table(
        &[
            "resolution (m)",
            "occupied voxels",
            "known voxels",
            "doorway perceived as",
        ],
        &rows,
    ));
    text.push_str(
        "\npaper: at 0.80 m the drone no longer recognises the opening as a passageway\n",
    );
    FigureOutput {
        text,
        json: Json::Array(entries),
    }
}

/// Fig. 18 — OctoMap processing time vs resolution (measured on the host).
pub fn fig18_octomap_resolution(_cli: &Cli) -> FigureOutput {
    use mav_env::EnvironmentConfig;
    use mav_perception::{OctoMap, OctoMapConfig, PointCloud};
    use mav_sensors::{DepthCamera, DepthCameraConfig};
    use mav_types::Pose;
    use std::time::Instant;

    let world = EnvironmentConfig::urban_outdoor().with_seed(3).generate();
    let camera = DepthCamera::new(DepthCameraConfig::high_resolution());
    // Capture a fixed set of frames once; time only the map updates.
    let poses: Vec<Pose> = (0..6)
        .map(|i| {
            Pose::new(
                Vec3::new(i as f64 * 6.0 - 15.0, (i % 3) as f64 * 8.0 - 8.0, 2.5),
                i as f64,
            )
        })
        .collect();
    let clouds: Vec<PointCloud> = poses
        .iter()
        .map(|p| PointCloud::from_depth_image(&camera.capture(&world, p)))
        .collect();
    let mut rows = Vec::new();
    let mut times = Vec::new();
    let mut entries = Vec::new();
    for resolution in [0.15, 0.2, 0.3, 0.4, 0.5, 0.65, 0.8, 1.0] {
        // Harness timing: measures host-side map-update cost for the figure;
        // never feeds back into simulation state.
        #[allow(clippy::disallowed_methods)]
        let start = Instant::now();
        let mut map = OctoMap::new(OctoMapConfig::with_resolution(resolution), 96.0);
        for cloud in &clouds {
            map.insert_point_cloud(cloud);
        }
        let elapsed = start.elapsed().as_secs_f64();
        times.push((resolution, elapsed));
        rows.push(vec![
            format!("{resolution:.2}"),
            format!("{:.1}", elapsed * 1000.0),
            format!("{}", map.update_count()),
            format!("{}", map.known_voxel_count()),
        ]);
        entries.push(
            Json::object()
                .field("resolution_m", resolution)
                .field("update_time_ms", elapsed * 1000.0)
                .field("leaf_updates", map.update_count())
                .field("known_voxels", map.known_voxel_count()),
        );
    }
    let mut text = String::from("(host-measured)\n");
    text.push_str(&format_table(
        &[
            "resolution (m)",
            "update time (ms)",
            "leaf updates",
            "known voxels",
        ],
        &rows,
    ));
    let fine = times.first().unwrap();
    let coarse = times.last().unwrap();
    text.push_str(&format!(
        "\nprocessing-time ratio {:.2} m -> {:.2} m: {:.1}X (paper: ~4.5X over a 6.5X resolution change)\n",
        fine.0,
        coarse.0,
        fine.1 / coarse.1
    ));
    FigureOutput {
        text,
        json: Json::Array(entries),
    }
}

/// Fig. 19 — static vs dynamic OctoMap resolution.
pub fn fig19_dynamic_resolution(cli: &Cli) -> FigureOutput {
    let mut text = String::new();
    let mut studies = Vec::new();
    for app in [
        ApplicationId::Mapping3D,
        ApplicationId::SearchAndRescue,
        ApplicationId::PackageDelivery,
    ] {
        text.push_str(&format!("\n-- {app} --\n"));
        let study = resolution_study_with(&cli.runner(), app, |cfg| cli.scale(cfg).with_seed(13));
        let rows: Vec<Vec<String>> = study
            .iter()
            .map(|row| {
                let outcome = match &row.report.failure {
                    None => "success".to_string(),
                    Some(f) => format!("fail ({f})"),
                };
                vec![
                    row.policy.clone(),
                    outcome,
                    format!("{:.1}", row.report.mission_time_secs),
                    format!("{:.1}", row.report.battery_remaining_pct),
                    format!("{:.1}", row.report.energy_kj()),
                ]
            })
            .collect();
        text.push_str(&format_table(
            &[
                "policy",
                "outcome",
                "flight time (s)",
                "battery left (%)",
                "energy (kJ)",
            ],
            &rows,
        ));
        studies.push(
            Json::object()
                .field("application", app)
                .field("rows", study.to_json()),
        );
    }
    FigureOutput {
        text,
        json: Json::Array(studies),
    }
}

/// PR 5 — executor model × per-node DVFS study: the same Package Delivery
/// mission under serial vs pipelined round charging and under mission-global
/// vs per-node (big.LITTLE-style) operating points. Rows 3 and 4 share
/// identical perception/control latencies — and therefore the identical,
/// lowered Eq. 2 velocity cap — so their delta isolates what keeping the
/// planner on the big cluster buys in hover time.
pub fn exec_model_sweep(cli: &Cli) -> FigureOutput {
    let rows_data = exec_model_sweep_with(&cli.runner(), |cfg| {
        // The grid pins its own exec model and node ops per row (that is the
        // point of the figure); --fast/--rates/--replan-mode still apply.
        exec_model_scenario(cli.scale(cfg))
    });
    let mut text = String::from(
        "(Package Delivery, sparse long-leg scenario; each row pins its own \
         exec model and node operating points)\n",
    );
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|row| {
            vec![
                row.exec_model.label().to_string(),
                row.node_ops.label(),
                format!("{:.2}", row.report.velocity_cap),
                format!("{:.2}", row.report.mission_time_secs),
                format!("{:.2}", row.report.hover_time_secs),
                format!("{:.1}", row.report.energy_kj()),
                format!("{}", row.report.success()),
            ]
        })
        .collect();
    text.push_str(&format_table(
        &[
            "exec model",
            "node operating points",
            "velocity cap (m/s)",
            "mission time (s)",
            "hover time (s)",
            "energy (kJ)",
            "success",
        ],
        &rows,
    ));
    if let (Some(serial), Some(pipelined)) = (rows_data.first(), rows_data.get(1)) {
        text.push_str(&format!(
            "\npipelined vs serial at mission-global points: {:+.2} s mission time \
             (rounds charge the critical path, not the sum)\n",
            pipelined.report.mission_time_secs - serial.report.mission_time_secs
        ));
    }
    if let (Some(little), Some(split)) = (rows_data.get(2), rows_data.get(3)) {
        text.push_str(&format!(
            "planning on the big cluster (vs all-little) at an identical velocity cap: \
             {:.2} s hover bought back, {:.2} s mission time\n",
            little.report.hover_time_secs - split.report.hover_time_secs,
            little.report.mission_time_secs - split.report.mission_time_secs,
        ));
    }
    FigureOutput {
        text,
        json: Json::object()
            .field(
                "scenario",
                "exec_model_scenario: Package Delivery, seed 9, obstacle density 0.3, \
                 extent 70 m; each row pins its own exec model and node operating \
                 points (top-level CLI flags apply to the shared scenario only)",
            )
            .field("rows", rows_data.to_json()),
    }
}

/// Table I — per-application kernel time profile at the reference point.
pub fn table1_kernel_profile(_cli: &Cli) -> FigureOutput {
    let reference = OperatingPoint::reference();
    let mut text = String::from("(ms at 4 cores / 2.2 GHz)\n");
    let mut apps = Vec::new();
    for &app in ApplicationId::all() {
        text.push_str(&format!("\n-- {app} --\n"));
        let profile = table1_profile(app);
        let rows: Vec<Vec<String>> = profile
            .iter()
            .map(|(kernel, prof)| {
                vec![
                    kernel.short_name().to_string(),
                    format!("{}", kernel.stage()),
                    format!("{:.1}", prof.latency(&reference).as_millis()),
                    format!("{:.0}%", prof.parallel_fraction * 100.0),
                ]
            })
            .collect();
        text.push_str(&format_table(
            &["kernel", "stage", "latency (ms)", "parallel fraction"],
            &rows,
        ));
        apps.push(
            Json::object().field("application", app).field(
                "kernels",
                Json::Array(
                    profile
                        .iter()
                        .map(|(kernel, prof)| {
                            Json::object()
                                .field("kernel", *kernel)
                                .field("stage", format!("{}", kernel.stage()))
                                .field("latency_ms", prof.latency(&reference).as_millis())
                                .field("parallel_fraction", prof.parallel_fraction)
                        })
                        .collect(),
                ),
            ),
        );
    }
    FigureOutput {
        text,
        json: Json::Array(apps),
    }
}

/// Table II — impact of depth-image noise on Package Delivery reliability.
pub fn table2_noise_reliability(cli: &Cli) -> FigureOutput {
    let runs = if cli.fast { 3 } else { 5 };
    let rows_data =
        noise_reliability_study_with(&cli.runner(), &[0.0, 0.5, 1.0, 1.5], runs, |cfg| {
            cli.scale(cfg).with_seed(21)
        });
    let rows: Vec<Vec<String>> = rows_data
        .iter()
        .map(|row| {
            vec![
                format!("{:.1}", row.noise_std),
                format!("{:.0}%", row.failure_rate * 100.0),
                format!("{:.1}", row.mean_replans),
                format!("{:.1}", row.mean_mission_time),
            ]
        })
        .collect();
    let mut text = format!("(Package Delivery, {runs} runs per level)\n");
    text.push_str(&format_table(
        &[
            "noise std (m)",
            "failure rate",
            "mean re-plans",
            "mean mission time (s)",
        ],
        &rows,
    ));
    text.push_str(
        "\npaper: 0 -> 1.5 m noise raises re-planning from 2 to 8 episodes and mission time by ~90%, with 10% failures at 1.5 m\n",
    );
    FigureOutput {
        text,
        json: rows_data.to_json(),
    }
}

/// PR 7 — Monte-Carlo reliability sweep: many randomized Package Delivery
/// scenarios (obstacle density × world extent × depth noise × node rates ×
/// replan mode × executor model, all drawn by the seeded
/// [`ScenarioGenerator`]), aggregated by streaming statistics and sharded
/// deterministically over the sweep workers — plus the replan-Hz ×
/// replan-mode reliability grid and a per-scenario-class breakdown. With
/// `--faults` the sweep samples fault cohorts (none / half / full intensity)
/// per episode and appends the fault-intensity × degradation-policy matrix.
/// The generator draws its own rates/modes per episode, so the top-level
/// `--rates`/`--replan-mode`/`--exec-model` flags do not apply here;
/// `--fast` scales the episode counts.
pub fn reliability_sweep(cli: &Cli) -> FigureOutput {
    let runner = cli.runner();
    let episodes: u64 = if cli.fast { 192 } else { 1920 };
    let episodes_per_cell: u64 = if cli.fast { 24 } else { 192 };
    let mut generator = ScenarioGenerator::new(ApplicationId::PackageDelivery, 29);
    if let Some(plan) = cli.faults {
        // Fault cohorts: a third of the episodes fault-free, a third at half
        // intensity, a third at the requested plan — separable afterwards
        // through the per-class breakdown. Degraded runs get the defensive
        // posture so the responses under test actually engage.
        generator = generator
            .with_fault_plans(vec![mav_core::FaultPlan::none(), plan.scaled(0.5), plan])
            .with_degradation(mav_core::DegradationConfig::defensive());
    }
    // Harness timing: episodes/sec throughput metadata only — the sweep's
    // reliability statistics are computed from simulated-clock outcomes.
    #[allow(clippy::disallowed_methods)]
    let started = std::time::Instant::now();
    let (stats, classes) =
        reliability_sweep_classified(&runner, &generator, episodes, DEFAULT_SHARD_SIZE);
    let wall_secs = started.elapsed().as_secs_f64();
    let episodes_per_sec = episodes as f64 / wall_secs.max(1e-9);
    let grid = reliability_rate_grid_with(
        &runner,
        ApplicationId::PackageDelivery,
        31,
        episodes_per_cell,
    );
    let mut text = format!(
        "(Package Delivery, {episodes} randomized scenarios on {} threads; \
         streaming aggregates, per-worker scratch reuse)\n\
         success rate: {:.1}%   collision rate: {:.1}%   replans/episode: {:.2}\n\
         mission time: p50 {:.1} s, p99 {:.1} s   energy: p50 {:.1} kJ, p99 {:.1} kJ\n\
         throughput: {:.1} episodes/sec ({:.2} s wall)\n",
        runner.threads(),
        stats.success_rate() * 100.0,
        stats.collision_rate() * 100.0,
        stats.replans as f64 / stats.episodes.max(1) as f64,
        stats.time.quantile(0.5),
        stats.time.quantile(0.99),
        stats.energy.quantile(0.5),
        stats.energy.quantile(0.99),
        episodes_per_sec,
        wall_secs,
    );
    text.push_str(&format!(
        "\n-- replan-Hz x replan-mode grid ({episodes_per_cell} episodes/cell) --\n"
    ));
    let rows: Vec<Vec<String>> = grid
        .iter()
        .map(|cell| {
            vec![
                cell.replan_mode.label().to_string(),
                match cell.replan_hz {
                    None => "legacy".to_string(),
                    Some(hz) => format!("{hz:.0}"),
                },
                format!("{:.0}%", cell.stats.success_rate() * 100.0),
                format!("{:.0}%", cell.stats.collision_rate() * 100.0),
                format!("{:.1}", cell.stats.time.quantile(0.5)),
                format!("{:.1}", cell.stats.energy.quantile(0.5)),
            ]
        })
        .collect();
    text.push_str(&format_table(
        &[
            "replan mode",
            "replan Hz",
            "success",
            "collisions",
            "p50 time (s)",
            "p50 energy (kJ)",
        ],
        &rows,
    ));
    text.push_str("\n-- scenario-class breakdown --\n");
    let class_rows: Vec<Vec<String>> = classes
        .iter()
        .map(|(class, cs)| {
            vec![
                class.clone(),
                cs.episodes.to_string(),
                format!("{:.0}%", cs.success_rate() * 100.0),
                format!("{:.0}%", cs.collision_rate() * 100.0),
                format!("{:.0}%", cs.abort_rate() * 100.0),
            ]
        })
        .collect();
    text.push_str(&format_table(
        &["class", "episodes", "success", "collisions", "aborts"],
        &class_rows,
    ));
    let class_json = classes.iter().fold(Json::object(), |json, (class, cs)| {
        json.field(class.as_str(), cs.to_json())
    });
    let fault_matrix = cli.faults.map(|plan| {
        reliability_fault_grid_with(
            &runner,
            ApplicationId::PackageDelivery,
            31,
            episodes_per_cell,
            &plan,
        )
    });
    if let Some(cells) = &fault_matrix {
        text.push_str(&format!(
            "\n-- fault-intensity x degradation-policy matrix ({episodes_per_cell} episodes/cell) --\n"
        ));
        let matrix_rows: Vec<Vec<String>> = cells
            .iter()
            .map(|cell| {
                vec![
                    cell.label(),
                    format!("{:.0}%", cell.stats.survival_rate() * 100.0),
                    format!("{:.0}%", cell.stats.success_rate() * 100.0),
                    format!("{:.1}%", cell.stats.degraded_time_fraction() * 100.0),
                    format!("{:.2}", cell.stats.mean_recover_secs()),
                    format!("{:.1}", cell.stats.time.quantile(0.5)),
                ]
            })
            .collect();
        text.push_str(&format_table(
            &[
                "cell",
                "survival",
                "success",
                "degraded time",
                "recover (s)",
                "p50 time (s)",
            ],
            &matrix_rows,
        ));
    }
    let json = Json::object()
        .field(
            "scenario",
            "Package Delivery; ScenarioGenerator seed 29 drawing density/extent/noise/\
             rates/replan-mode/exec-model per episode; grid seed 31 pins rates+mode per cell",
        )
        .field("episodes", episodes)
        .field("wall_secs", wall_secs)
        .field("episodes_per_sec", episodes_per_sec)
        .field("aggregate", stats.to_json())
        .field("rate_grid", grid.to_json())
        .field("classes", class_json);
    let json = match fault_matrix {
        Some(cells) => json.field("fault_matrix", cells.to_json()),
        None => json,
    };
    FigureOutput { text, json }
}
