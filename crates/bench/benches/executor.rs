//! Criterion benches for the PR 5 executor work: the exec-model × per-node
//! DVFS missions of the new `exec_model_sweep` experiment (paired host wall
//! times; the *simulated* mission times are the experiment's own output and
//! are recorded next to these in BENCH_pr5.json), and the rayon-backed
//! host-parallel round option (`mav_runtime::run_all_for`) against the same
//! batch of graphs driven sequentially.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mav_compute::{ApplicationId, KernelId};
use mav_core::experiments::{exec_model_grid, exec_model_scenario};
use mav_core::{run_mission, MissionConfig};
use mav_runtime::{run_all_for, ExecModel, ExecStage, Executor, Node, NodeOutput, SimClock};
use mav_types::{Result, SimDuration, SimTime};

fn bench_exec_model_missions(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_model_mission");
    group.sample_size(10);
    for (model, ops, label) in exec_model_grid() {
        group.bench_function(label, |b| {
            b.iter(|| {
                let cfg = exec_model_scenario(MissionConfig::new(ApplicationId::PackageDelivery))
                    .with_exec_model(model)
                    .with_node_ops(ops);
                run_mission(cfg).mission_time_secs
            })
        });
    }
    group.finish();
}

/// A staged node that burns a little real host CPU per tick, so the
/// host-parallel pair below measures genuine round throughput rather than
/// scheduler overhead alone.
struct BusyNode {
    name: &'static str,
    stage: ExecStage,
    cost: SimDuration,
    spin: u64,
}

impl Node<SimClock> for BusyNode {
    fn name(&self) -> &str {
        self.name
    }
    fn period(&self) -> SimDuration {
        SimDuration::ZERO
    }
    fn stage(&self) -> ExecStage {
        self.stage
    }
    fn tick(&mut self, _ctx: &mut SimClock, _now: SimTime) -> Result<NodeOutput> {
        let mut acc = 0u64;
        for i in 0..self.spin {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        black_box(acc);
        Ok(NodeOutput::kernel(KernelId::OctomapGeneration, self.cost))
    }
}

fn graph_batch(n: usize) -> Vec<(Executor<SimClock>, SimClock)> {
    (0..n)
        .map(|i| {
            let mut exec = Executor::new().with_exec_model(ExecModel::Pipelined);
            exec.add_node(BusyNode {
                name: "camera",
                stage: ExecStage::Sensing,
                cost: SimDuration::from_millis(125.0 + i as f64),
                spin: 60_000,
            });
            exec.add_node(BusyNode {
                name: "mapper",
                stage: ExecStage::Perception,
                cost: SimDuration::from_millis(250.0),
                spin: 240_000,
            });
            (exec, SimClock::new())
        })
        .collect()
}

fn bench_host_parallel_rounds(c: &mut Criterion) {
    const BATCH: usize = 8;
    const SIM_SECS: f64 = 60.0;
    let mut group = c.benchmark_group("executor_host_parallel");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| {
            let mut batch = graph_batch(BATCH);
            for (exec, clock) in &mut batch {
                exec.run_for(clock, SimDuration::from_secs(SIM_SECS))
                    .unwrap();
            }
            batch.len()
        })
    });
    group.bench_function("rayon", |b| {
        b.iter(|| {
            let mut batch = graph_batch(BATCH);
            run_all_for(&mut batch, SimDuration::from_secs(SIM_SECS)).unwrap();
            batch.len()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_exec_model_missions,
    bench_host_parallel_rounds
);
criterion_main!(benches);
