//! Criterion benches for the control kernels: PID updates and path tracking.
use criterion::{criterion_group, criterion_main, Criterion};
use mav_control::{PathTracker, PathTrackerConfig, Pid, PidConfig};
use mav_dynamics::{MavState, Quadrotor, QuadrotorConfig};
use mav_types::{Pose, SimTime, Trajectory, Vec3};

fn bench_control(c: &mut Criterion) {
    c.bench_function("pid_update", |b| {
        let mut pid = Pid::new(PidConfig::new(1.0, 0.1, 0.05));
        let mut error = 1.0;
        b.iter(|| {
            error = 1.0 - pid.update(error, 0.05) * 0.01;
            error
        })
    });
    let trajectory = Trajectory::from_waypoints(
        &[
            Vec3::new(0.0, 0.0, 2.0),
            Vec3::new(40.0, 0.0, 2.0),
            Vec3::new(40.0, 40.0, 2.0),
        ],
        5.0,
        SimTime::ZERO,
    );
    let tracker = PathTracker::new(PathTrackerConfig::default());
    let state = MavState::at_rest(Pose::new(Vec3::new(3.0, 1.0, 2.0), 0.0));
    c.bench_function("path_tracking_command", |b| {
        b.iter(|| {
            tracker
                .command(&trajectory, &state, SimTime::from_secs(2.0))
                .velocity
        })
    });
    c.bench_function("quadrotor_physics_step", |b| {
        let mut quad = Quadrotor::new(QuadrotorConfig::dji_matrice_100(), Pose::origin());
        b.iter(|| quad.step(Vec3::new(5.0, 1.0, 0.5), 0.05))
    });
}

criterion_group!(benches, bench_control);
criterion_main!(benches);
