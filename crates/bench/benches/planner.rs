//! Criterion benches for the planning hot path attacked by the spatial-index
//! overhaul: RRT / PRM planning, the shortcut pass, swept-segment collision
//! checks against maps of increasing obstacle density, the inflated-occupancy
//! point query, and the end-to-end `replan_mode_sweep` wall time.
//!
//! Every benchmark here goes through the *public* planning API, so the same
//! bench binary measures the legacy implementation and the indexed one: run it
//! before and after the optimisation commit and pair the JSON records (that is
//! how `BENCH_pr4.json` was produced).
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mav_core::experiments::{replan_mode_sweep_with, replan_scenario};
use mav_core::SweepRunner;
use mav_perception::{OctoMap, OctoMapConfig};
use mav_planning::{CollisionChecker, PlannerConfig, PlannerKind, ShortestPathPlanner};
use mav_types::{Aabb, Vec3};

/// A map with a long wall at x = 8 blocking y ∈ [-10, 10] (the planner-test
/// scenario): both planners must route around it.
fn wall_map() -> OctoMap {
    let mut map = OctoMap::new(OctoMapConfig::with_resolution(0.5), 32.0);
    let origin = Vec3::new(0.0, 0.0, 1.0);
    for i in -20..=20 {
        for z in [0.5, 1.5, 2.5, 3.5] {
            map.insert_ray(&origin, &Vec3::new(8.0, i as f64 * 0.5, z));
        }
    }
    map
}

/// A deterministic pillar field: vertical columns on a `spacing`-metre grid
/// over x, y ∈ [-24, 24], observed from a central origin. Smaller spacing
/// means a denser map and more occupied voxels near every query.
fn pillar_map(spacing: f64) -> OctoMap {
    let mut map = OctoMap::new(OctoMapConfig::with_resolution(0.5), 32.0);
    let origin = Vec3::new(0.0, 0.0, 2.0);
    let n = (24.0 / spacing) as i64;
    for ix in -n..=n {
        for iy in -n..=n {
            if ix == 0 && iy == 0 {
                continue; // keep the sensor pillar-free
            }
            let (x, y) = (ix as f64 * spacing, iy as f64 * spacing);
            for z in [0.5, 1.5, 2.5] {
                map.insert_ray(&origin, &Vec3::new(x, y, z));
            }
        }
    }
    map
}

fn bench_plan(c: &mut Criterion) {
    let map = wall_map();
    let checker = CollisionChecker::new(0.33);
    let bounds = Aabb::new(Vec3::new(-25.0, -25.0, 0.5), Vec3::new(25.0, 25.0, 6.0));
    let start = Vec3::new(0.0, 0.0, 2.0);
    let goal = Vec3::new(16.0, 2.0, 2.0);
    let mut group = c.benchmark_group("planner_plan");
    group.sample_size(10);
    for kind in [PlannerKind::Rrt, PlannerKind::PrmAstar] {
        let label = match kind {
            PlannerKind::Rrt => "rrt",
            PlannerKind::PrmAstar => "prm",
        };
        group.bench_function(label, |b| {
            let planner = ShortestPathPlanner::new(PlannerConfig::new(kind, bounds));
            b.iter(|| planner.plan(&map, &checker, start, goal).unwrap().length())
        });
    }
    group.finish();

    let planner = ShortestPathPlanner::new(PlannerConfig::new(PlannerKind::Rrt, bounds));
    let path = planner.plan(&map, &checker, start, goal).unwrap();
    c.bench_function("planner_shortcut", |b| {
        b.iter(|| path.shortcut(&map, &checker).length())
    });

    // A cluttered field and a far goal grow the RRT to thousands of nodes —
    // the regime where nearest-neighbour cost dominates. The linear/indexed
    // pair isolates the bucket-index contribution (both use the indexed map
    // queries; only the neighbour lookup differs, and the planned path is
    // bit-identical).
    let dense = pillar_map(2.0);
    let far_start = Vec3::new(-22.0, -22.0, 2.0);
    let far_goal = Vec3::new(22.0, 22.0, 2.0);
    let mut group = c.benchmark_group("planner_rrt_dense");
    group.sample_size(10);
    for (label, indexed) in [("linear", false), ("indexed", true)] {
        group.bench_function(label, |b| {
            // Short extension steps in heavy clutter: the tree grows to
            // thousands of nodes before the far corner connects.
            let mut config =
                PlannerConfig::new(PlannerKind::Rrt, bounds).with_spatial_index(indexed);
            config.step = 0.5;
            config.max_samples = 60_000;
            let planner = ShortestPathPlanner::new(config);
            b.iter(|| {
                planner
                    .plan(&dense, &checker, far_start, far_goal)
                    .unwrap()
                    .length()
            })
        });
    }
    group.finish();
}

fn bench_segment_free(c: &mut Criterion) {
    // Free 20 m segments threading between the pillars, at three densities.
    let mut group = c.benchmark_group("planner_segment_free");
    for (label, spacing) in [("sparse", 8.0), ("medium", 4.0), ("dense", 2.0)] {
        let map = pillar_map(spacing);
        // Midway between pillar rows: the segment is free but the dense maps
        // keep occupied voxels within a cell or two of the swept corridor.
        let y = spacing / 2.0;
        group.bench_with_input(BenchmarkId::from_parameter(label), &map, |b, map| {
            b.iter(|| {
                black_box(map.segment_free(
                    &Vec3::new(-10.0, y, 2.0),
                    &Vec3::new(10.0, y, 2.0),
                    0.33,
                ))
            })
        });
    }
    group.finish();

    // A blocked segment straight into the wall (early-exit path).
    let wall = wall_map();
    c.bench_function("planner_segment_free/blocked", |b| {
        b.iter(|| {
            black_box(wall.segment_free(
                &Vec3::new(0.0, 0.0, 2.0),
                &Vec3::new(16.0, 0.0, 2.0),
                0.33,
            ))
        })
    });
}

fn bench_inflation(c: &mut Criterion) {
    let map = wall_map();
    // One voxel clear of the wall: the inflation ball grazes occupied voxels
    // without containing the query point.
    c.bench_function("planner_inflation/near_wall", |b| {
        b.iter(|| black_box(map.is_occupied_with_inflation(&Vec3::new(6.9, 0.0, 2.0), 0.33)))
    });
    // Mapped free space far from any obstacle.
    c.bench_function("planner_inflation/open", |b| {
        b.iter(|| black_box(map.is_occupied_with_inflation(&Vec3::new(2.0, 0.0, 1.0), 0.33)))
    });
    // A fatter vehicle: the paper's point about inflation cost scaling with
    // (radius / resolution)³.
    c.bench_function("planner_inflation/wide_radius", |b| {
        b.iter(|| black_box(map.is_occupied_with_inflation(&Vec3::new(5.5, 0.0, 2.0), 1.2)))
    });
}

fn bench_replan_sweep(c: &mut Criterion) {
    // End-to-end wall time of the PR 3 replanning-policy experiment: two full
    // Package Delivery missions (hover-to-plan and plan-in-motion) on the
    // dense replanning scenario. This is the closed-loop workload whose
    // per-round planning cost the spatial index targets.
    let runner = SweepRunner::new();
    let mut group = c.benchmark_group("planner_end_to_end");
    group.sample_size(10);
    group.bench_function("replan_mode_sweep", |b| {
        b.iter(|| {
            let rows = replan_mode_sweep_with(&runner, replan_scenario);
            black_box(rows.len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_plan,
    bench_segment_free,
    bench_inflation,
    bench_replan_sweep
);
criterion_main!(benches);
