//! Criterion benches for the perception kernels: depth capture, point-cloud
//! generation, object detection and the SLAM failure model.
use criterion::{criterion_group, criterion_main, Criterion};
use mav_env::{EnvironmentConfig, ObstacleClass};
use mav_perception::{
    DetectorConfig, Localizer, ObjectDetector, PointCloud, SlamConfig, VisualSlam,
};
use mav_sensors::{DepthCamera, DepthCameraConfig, DepthNoiseModel};
use mav_types::{Pose, SimTime, Vec3};

fn bench_depth_and_pointcloud(c: &mut Criterion) {
    let world = EnvironmentConfig::urban_outdoor().with_seed(3).generate();
    let camera = DepthCamera::new(DepthCameraConfig::default());
    let pose = Pose::new(Vec3::new(0.0, 0.0, 2.5), 0.0);
    c.bench_function("depth_capture_32x24", |b| {
        b.iter(|| camera.capture(&world, &pose).coverage())
    });
    let frame = camera.capture(&world, &pose);
    c.bench_function("pointcloud_generation", |b| {
        b.iter(|| PointCloud::from_depth_image(&frame).len())
    });
    let cloud = PointCloud::from_depth_image(&frame);
    c.bench_function("pointcloud_downsample_0.5m", |b| {
        b.iter(|| cloud.downsample(0.5).len())
    });
    let mut noise = DepthNoiseModel::new(1.0, 7);
    c.bench_function("depth_noise_injection", |b| {
        b.iter(|| {
            let mut f = frame.clone();
            noise.apply(&mut f);
            f.coverage()
        })
    });
}

fn bench_detection_and_slam(c: &mut Criterion) {
    let world = EnvironmentConfig::disaster_site().with_seed(5).generate();
    let pose = Pose::new(Vec3::new(0.0, 0.0, 2.0), 0.0);
    c.bench_function("object_detection_scene_query", |b| {
        let mut detector = ObjectDetector::new(DetectorConfig::default());
        b.iter(|| {
            detector
                .detect_class(&world, &pose, ObstacleClass::Person)
                .is_some()
        })
    });
    c.bench_function("visual_slam_frame", |b| {
        let mut slam = VisualSlam::new(SlamConfig::with_fps(5.0));
        b.iter(|| {
            slam.localize(&pose, &Vec3::new(3.0, 0.0, 0.0), SimTime::ZERO)
                .healthy
        })
    });
}

criterion_group!(
    benches,
    bench_depth_and_pointcloud,
    bench_detection_and_slam
);
criterion_main!(benches);
