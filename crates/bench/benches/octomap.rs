//! Criterion benches for the OctoMap kernel: insertion cost vs resolution
//! (the measured counterpart of Fig. 18) and query cost.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mav_env::EnvironmentConfig;
use mav_perception::{OctoMap, OctoMapConfig, PointCloud};
use mav_sensors::{DepthCamera, DepthCameraConfig};
use mav_types::{Pose, Vec3};

fn capture_clouds() -> Vec<PointCloud> {
    let world = EnvironmentConfig::urban_outdoor().with_seed(3).generate();
    let camera = DepthCamera::new(DepthCameraConfig::default());
    (0..3)
        .map(|i| {
            let pose = Pose::new(Vec3::new(i as f64 * 8.0 - 8.0, 0.0, 2.5), i as f64);
            PointCloud::from_depth_image(&camera.capture(&world, &pose))
        })
        .collect()
}

fn bench_octomap_insertion(c: &mut Criterion) {
    let clouds = capture_clouds();
    let mut group = c.benchmark_group("octomap_insert_vs_resolution");
    group.sample_size(10);
    for resolution in [0.15, 0.3, 0.5, 0.8, 1.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(resolution),
            &resolution,
            |b, &res| {
                b.iter(|| {
                    let mut map = OctoMap::new(OctoMapConfig::with_resolution(res), 96.0);
                    for cloud in &clouds {
                        map.insert_point_cloud(cloud);
                    }
                    map.known_voxel_count()
                })
            },
        );
    }
    group.finish();
}

fn bench_octomap_queries(c: &mut Criterion) {
    let clouds = capture_clouds();
    let mut map = OctoMap::new(OctoMapConfig::with_resolution(0.5), 96.0);
    for cloud in &clouds {
        map.insert_point_cloud(cloud);
    }
    c.bench_function("octomap_segment_free_20m", |b| {
        b.iter(|| {
            map.segment_free(
                &Vec3::new(0.0, -10.0, 2.0),
                &Vec3::new(0.0, 10.0, 2.0),
                0.33,
            )
        })
    });
    c.bench_function("octomap_point_query", |b| {
        b.iter(|| map.query(&Vec3::new(5.0, 3.0, 2.0)))
    });
}

criterion_group!(benches, bench_octomap_insertion, bench_octomap_queries);
criterion_main!(benches);
