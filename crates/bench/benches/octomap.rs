//! Criterion benches for the OctoMap kernel: insertion cost vs resolution
//! (the measured counterpart of Fig. 18), query cost, batched/parallel scan
//! insertion, frontier extraction (the free-voxel index vs the full-tree
//! walk) and a whole mapping-mission episode (the episodes/sec figure the
//! ROADMAP's Monte-Carlo item tracks).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mav_core::{run_mission, run_mission_with_scratch, EpisodeScratch, MissionConfig};
use mav_env::EnvironmentConfig;
use mav_perception::{OctoMap, OctoMapConfig, PointCloud};
use mav_planning::FrontierExplorer;
use mav_sensors::{DepthCamera, DepthCameraConfig};
use mav_types::{Pose, Vec3};

fn capture_clouds() -> Vec<PointCloud> {
    let world = EnvironmentConfig::urban_outdoor().with_seed(3).generate();
    let camera = DepthCamera::new(DepthCameraConfig::default());
    (0..3)
        .map(|i| {
            let pose = Pose::new(Vec3::new(i as f64 * 8.0 - 8.0, 0.0, 2.5), i as f64);
            PointCloud::from_depth_image(&camera.capture(&world, &pose))
        })
        .collect()
}

fn bench_octomap_insertion(c: &mut Criterion) {
    let clouds = capture_clouds();
    let mut group = c.benchmark_group("octomap_insert_vs_resolution");
    group.sample_size(10);
    for resolution in [0.15, 0.3, 0.5, 0.8, 1.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(resolution),
            &resolution,
            |b, &res| {
                b.iter(|| {
                    let mut map = OctoMap::new(OctoMapConfig::with_resolution(res), 96.0);
                    for cloud in &clouds {
                        map.insert_point_cloud(cloud);
                    }
                    map.known_voxel_count()
                })
            },
        );
    }
    group.finish();
}

fn bench_octomap_queries(c: &mut Criterion) {
    let clouds = capture_clouds();
    let mut map = OctoMap::new(OctoMapConfig::with_resolution(0.5), 96.0);
    for cloud in &clouds {
        map.insert_point_cloud(cloud);
    }
    c.bench_function("octomap_segment_free_20m", |b| {
        b.iter(|| {
            map.segment_free(
                &Vec3::new(0.0, -10.0, 2.0),
                &Vec3::new(0.0, 10.0, 2.0),
                0.33,
            )
        })
    });
    c.bench_function("octomap_point_query", |b| {
        b.iter(|| map.query(&Vec3::new(5.0, 3.0, 2.0)))
    });
}

/// Scan insertion into a *warm* map: the steady-state mapping-mission shape
/// (most leaves already exist, so the per-voxel work is a value update, not a
/// node allocation). The per-iteration map clone is identical across the
/// serial/parallel pair, so the pairing isolates the insertion path itself.
fn bench_scan_insertion(c: &mut Criterion) {
    let clouds = capture_clouds();
    let mut warm = OctoMap::new(OctoMapConfig::with_resolution(0.3), 96.0);
    for cloud in &clouds {
        warm.insert_point_cloud(cloud);
    }
    let mut group = c.benchmark_group("octomap_scan_insert");
    group.sample_size(10);
    group.bench_function("serial_warm", |b| {
        b.iter(|| {
            let mut map = warm.clone();
            for cloud in &clouds {
                map.insert_point_cloud(cloud);
            }
            map.update_count()
        })
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("parallel_warm", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut map = warm.clone();
                    for cloud in &clouds {
                        map.insert_point_cloud_parallel(cloud, threads);
                    }
                    map.update_count()
                })
            },
        );
    }
    group.finish();
}

/// Frontier extraction on a partially mapped world: `find_frontiers` pays one
/// `free_voxel_centers` call plus the unknown-neighbour probes and the
/// clustering pass — exactly what mapping / search-and-rescue tick every
/// replan.
fn bench_frontier_extraction(c: &mut Criterion) {
    let clouds = capture_clouds();
    let mut map = OctoMap::new(OctoMapConfig::with_resolution(0.5), 96.0);
    for cloud in &clouds {
        map.insert_point_cloud(cloud);
    }
    let explorer = FrontierExplorer::default();
    let mut group = c.benchmark_group("octomap_frontier");
    group.sample_size(10);
    group.bench_function("free_voxel_centers", |b| {
        b.iter(|| map.free_voxel_centers().len())
    });
    group.bench_function("free_voxel_centers_scan", |b| {
        b.iter(|| map.free_voxel_centers_scan().len())
    });
    group.bench_function("find_frontiers", |b| {
        b.iter(|| explorer.find_frontiers(&map).len())
    });
    group.finish();
}

/// One whole fast-profile 3D Mapping mission: the episodes/sec figure for the
/// ROADMAP's Monte-Carlo reliability trajectory (scan insertion + frontier
/// extraction dominate its wall time). `fast_episode` allocates everything
/// per episode at the historical configuration (extent 25 m, fast-profile
/// default resolution), so its episodes/sec line is comparable across PRs;
/// `fast_episode_scratch` is the same mission through a persistent
/// [`EpisodeScratch`] — the paired A/B of the zero-realloc episode-reuse
/// layer (identical reports, pinned by the core tests).
///
/// The `fine_episode` pair repeats the A/B at 0.30 m static resolution
/// (inside the paper's 0.15–0.80 m case-study band): a ~50k-voxel arena per
/// episode is where the allocate/fault/drop cost the scratch layer removes
/// shows most clearly.
fn bench_mapping_mission(c: &mut Criterion) {
    let episode_config = |resolution: Option<f64>| {
        let mut cfg = MissionConfig::fast_test(mav_compute::ApplicationId::Mapping3D).with_seed(4);
        cfg.environment.extent = 25.0;
        if let Some(resolution) = resolution {
            cfg.resolution_policy = mav_core::config::ResolutionPolicy::Static { resolution };
        }
        cfg
    };
    let mut group = c.benchmark_group("mapping_mission");
    // Whole-mission samples are ~10 ms and the paired fresh/scratch ratio is
    // the quantity of record, so buy extra samples for a stable median.
    group.sample_size(40);
    group.bench_function("fast_episode", |b| {
        b.iter(|| run_mission(episode_config(None)).mission_time_secs)
    });
    let mut scratch = EpisodeScratch::new();
    group.bench_function("fast_episode_scratch", |b| {
        b.iter(|| run_mission_with_scratch(episode_config(None), &mut scratch).mission_time_secs)
    });
    group.bench_function("fine_episode", |b| {
        b.iter(|| run_mission(episode_config(Some(0.3))).mission_time_secs)
    });
    let mut scratch = EpisodeScratch::new();
    group.bench_function("fine_episode_scratch", |b| {
        b.iter(|| {
            run_mission_with_scratch(episode_config(Some(0.3)), &mut scratch).mission_time_secs
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_octomap_insertion,
    bench_octomap_queries,
    bench_scan_insertion,
    bench_frontier_extraction,
    bench_mapping_mission
);
criterion_main!(benches);
