//! Criterion benches for the motion-planning kernels: RRT, PRM+A*, shortcut
//! smoothing and lawnmower coverage.
use criterion::{criterion_group, criterion_main, Criterion};
use mav_perception::{OctoMap, OctoMapConfig};
use mav_planning::{
    plan_lawnmower, CollisionChecker, LawnmowerConfig, PathSmoother, PlannerConfig, PlannerKind,
    ShortestPathPlanner, SmootherConfig,
};
use mav_types::{Aabb, SimTime, Vec3};

fn wall_map() -> OctoMap {
    let mut map = OctoMap::new(OctoMapConfig::with_resolution(0.5), 32.0);
    let origin = Vec3::new(0.0, 0.0, 1.0);
    for i in -20..=20 {
        for z in [0.5, 1.5, 2.5, 3.5] {
            map.insert_ray(&origin, &Vec3::new(8.0, i as f64 * 0.5, z));
        }
    }
    map
}

fn bench_planners(c: &mut Criterion) {
    let map = wall_map();
    let checker = CollisionChecker::new(0.33);
    let bounds = Aabb::new(Vec3::new(-25.0, -25.0, 0.5), Vec3::new(25.0, 25.0, 6.0));
    let start = Vec3::new(0.0, 0.0, 2.0);
    let goal = Vec3::new(16.0, 2.0, 2.0);
    let mut group = c.benchmark_group("shortest_path");
    group.sample_size(10);
    for kind in [PlannerKind::Rrt, PlannerKind::PrmAstar] {
        group.bench_function(format!("{kind:?}"), |b| {
            let planner = ShortestPathPlanner::new(PlannerConfig::new(kind, bounds));
            b.iter(|| planner.plan(&map, &checker, start, goal).unwrap().length())
        });
    }
    group.finish();
}

fn bench_smoothing_and_lawnmower(c: &mut Criterion) {
    let map = wall_map();
    let checker = CollisionChecker::new(0.33);
    let bounds = Aabb::new(Vec3::new(-25.0, -25.0, 0.5), Vec3::new(25.0, 25.0, 6.0));
    let planner = ShortestPathPlanner::new(PlannerConfig::new(PlannerKind::Rrt, bounds));
    let path = planner
        .plan(
            &map,
            &checker,
            Vec3::new(0.0, 0.0, 2.0),
            Vec3::new(16.0, 2.0, 2.0),
        )
        .unwrap();
    c.bench_function("shortcut_pass", |b| {
        b.iter(|| path.shortcut(&map, &checker).length())
    });
    let smoother = PathSmoother::new(SmootherConfig::new(8.0, 5.0));
    c.bench_function("trajectory_smoothing", |b| {
        b.iter(|| {
            smoother
                .smooth(&path.waypoints, SimTime::ZERO)
                .unwrap()
                .duration_secs()
        })
    });
    c.bench_function("lawnmower_plan_100x100", |b| {
        b.iter(|| plan_lawnmower(&LawnmowerConfig::default()).unwrap().len())
    });
}

criterion_group!(benches, bench_planners, bench_smoothing_and_lawnmower);
criterion_main!(benches);
