//! Criterion benches for the energy substrate: Eq. 1 evaluation, battery
//! coulomb counting and mission energy accounting.
use criterion::{criterion_group, criterion_main, Criterion};
use mav_energy::{
    Battery, BatteryConfig, ComputePowerModel, EnergyAccount, FlightPhaseLabel, RotorPowerModel,
};
use mav_types::{Power, SimDuration, SimTime, Vec3};

fn bench_energy(c: &mut Criterion) {
    let rotor = RotorPowerModel::dji_matrice_100();
    c.bench_function("rotor_power_eq1", |b| {
        b.iter(|| {
            rotor
                .power(
                    &Vec3::new(6.0, 1.0, 0.5),
                    &Vec3::new(1.0, 0.0, 0.0),
                    &Vec3::new(0.5, 0.0, 0.0),
                )
                .as_watts()
        })
    });
    c.bench_function("compute_power_model", |b| {
        let m = ComputePowerModel::tx2();
        b.iter(|| m.power(4, 2.2).as_watts())
    });
    c.bench_function("battery_discharge_step", |b| {
        let mut battery = Battery::new(BatteryConfig::matrice_tb47());
        b.iter(|| battery.discharge(Power::from_watts(330.0), SimDuration::from_millis(50.0)))
    });
    c.bench_function("energy_account_record", |b| {
        let mut acc = EnergyAccount::new();
        b.iter(|| {
            acc.record(
                SimTime::ZERO,
                SimDuration::from_millis(50.0),
                Power::from_watts(330.0),
                Power::from_watts(13.0),
                FlightPhaseLabel::Flying,
            )
        })
    });
}

criterion_group!(benches, bench_energy);
criterion_main!(benches);
