//! Criterion benches for whole closed-loop missions (scaled-down scenarios):
//! the end-to-end cost of one benchmark run per application class.
use criterion::{criterion_group, criterion_main, Criterion};
use mav_compute::ApplicationId;
use mav_core::{run_mission, MissionConfig};

fn bench_missions(c: &mut Criterion) {
    let mut group = c.benchmark_group("closed_loop_mission");
    group.sample_size(10);
    group.bench_function("scanning_quick", |b| {
        b.iter(|| {
            let mut cfg = MissionConfig::fast_test(ApplicationId::Scanning).with_seed(3);
            cfg.environment.extent = 25.0;
            run_mission(cfg).mission_time_secs
        })
    });
    group.bench_function("package_delivery_quick", |b| {
        b.iter(|| {
            let mut cfg = MissionConfig::fast_test(ApplicationId::PackageDelivery).with_seed(9);
            cfg.environment.extent = 25.0;
            cfg.environment.obstacle_density = 1.0;
            run_mission(cfg).mission_time_secs
        })
    });
    group.finish();
}

criterion_group!(benches, bench_missions);
criterion_main!(benches);
