//! Integration tests for Topic semantics under the Executor and for the
//! executor's determinism contract (the runtime-level mirror of the
//! `SweepRunner` bit-identical-results tests in `mav-core`).

use mav_compute::KernelId;
use mav_runtime::{Executor, FifoTopic, Node, NodeContext, NodeOutput, SimClock, Topic};
use mav_types::{Result, SimDuration, SimTime};

/// Publishes an incrementing sequence on both a latched and a FIFO topic.
struct Producer {
    latched: Topic<u64>,
    backlog: FifoTopic<u64>,
    period: SimDuration,
    next: u64,
}

impl Node<SimClock> for Producer {
    fn name(&self) -> &str {
        "producer"
    }
    fn period(&self) -> SimDuration {
        self.period
    }
    fn tick(&mut self, _ctx: &mut SimClock, _now: SimTime) -> Result<NodeOutput> {
        self.latched.publish(self.next);
        self.backlog.publish(self.next);
        self.next += 1;
        Ok(NodeOutput::kernel(
            KernelId::PointCloudGeneration,
            SimDuration::from_millis(1.0),
        ))
    }
}

/// Consumes both topics at a slower rate, logging what it observes.
struct Consumer {
    latched: Topic<u64>,
    backlog: FifoTopic<u64>,
    period: SimDuration,
    observations: FifoTopic<Observation>,
}

impl Node<SimClock> for Consumer {
    fn name(&self) -> &str {
        "consumer"
    }
    fn period(&self) -> SimDuration {
        self.period
    }
    fn tick(&mut self, _ctx: &mut SimClock, now: SimTime) -> Result<NodeOutput> {
        self.observations
            .publish((now.as_secs(), self.latched.latest(), self.backlog.drain()));
        Ok(NodeOutput::idle())
    }
}

/// What the consumer saw at one tick: (time, latched latest, FIFO backlog).
type Observation = (f64, Option<u64>, Vec<u64>);

fn run_graph(producer_ms: f64, consumer_ms: f64) -> (SimClock, Vec<Observation>) {
    let latched: Topic<u64> = Topic::new("frames");
    let backlog: FifoTopic<u64> = FifoTopic::new("events");
    let observations: FifoTopic<Observation> = FifoTopic::new("observations");
    let mut clock = SimClock::new();
    let mut exec = Executor::new();
    exec.add_node(Producer {
        latched: latched.clone(),
        backlog: backlog.clone(),
        period: SimDuration::from_millis(producer_ms),
        next: 0,
    });
    exec.add_node(Consumer {
        latched,
        backlog,
        period: SimDuration::from_millis(consumer_ms),
        observations: observations.clone(),
    });
    exec.run_for(&mut clock, SimDuration::from_secs(2.0))
        .unwrap();
    (clock, observations.drain())
}

#[test]
fn latched_topics_drop_stale_messages_fifo_topics_keep_them_all() {
    // Producer every round (~1 ms compute + idle quantisation), consumer at
    // 300 ms: the latched topic must only ever show the newest sequence
    // number (frames are dropped), while the FIFO backlog delivers every
    // message exactly once, in order.
    let (_, observations) = run_graph(0.0, 300.0);
    assert!(observations.len() >= 4, "too few consumer ticks");
    let mut all_backlog = Vec::new();
    for (_, latest, backlog) in &observations {
        // Latched: the latest value equals the newest element of the backlog
        // received this tick (publication order is registration order, so
        // both were written by the same producer tick).
        assert_eq!(latest.unwrap(), *backlog.last().unwrap());
        all_backlog.extend_from_slice(backlog);
    }
    // FIFO saw every message exactly once, in publication order.
    let expected: Vec<u64> = (0..all_backlog.len() as u64).collect();
    assert_eq!(all_backlog, expected);
    // And the consumer genuinely skipped latched values (drops happened):
    // more messages were produced per consumer tick than consumer ticks.
    assert!(all_backlog.len() > 2 * observations.len());
}

#[test]
fn same_rate_nodes_deliver_same_round_in_registration_order() {
    // Producer and consumer both tick-synchronous: the consumer (registered
    // second) must observe the producer's value from the *same* round —
    // the executor's same-tick registration ordering at work.
    let (_, observations) = run_graph(0.0, 0.0);
    for (index, (_, latest, backlog)) in observations.iter().enumerate() {
        assert_eq!(*latest, Some(index as u64));
        assert_eq!(*backlog, vec![index as u64]);
    }
}

#[test]
fn executor_runs_are_bit_identical() {
    // The runtime mirror of the SweepRunner determinism tests: two runs of
    // the same graph produce identical clocks and identical observation
    // streams, including every floating-point timestamp bit.
    let (clock_a, obs_a) = run_graph(70.0, 150.0);
    let (clock_b, obs_b) = run_graph(70.0, 150.0);
    assert_eq!(clock_a.now(), clock_b.now());
    assert_eq!(obs_a.len(), obs_b.len());
    for (a, b) in obs_a.iter().zip(&obs_b) {
        assert_eq!(a.0.to_bits(), b.0.to_bits(), "timestamp drifted");
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
    }
    // NodeContext is implemented for the plain clock (sanity check that the
    // standalone context advances).
    assert!(NodeContext::now(&clock_a).as_secs() >= 2.0);
}
