//! A minimal ROS-like runtime for MAVBench-RS: latched and FIFO topics, a
//! simulated mission clock, per-kernel time accounting and a deterministic
//! closed-loop node executor.
//!
//! The original MAVBench structures each workload as a ROS graph whose nodes
//! exchange messages over publish/subscribe topics and whose kernel latencies
//! directly shape mission time. This crate provides the same structure without
//! ROS: nodes are trait objects generic over a scheduling context, topics are
//! typed in-process channels, and all time is simulated so runs are
//! reproducible. The five MAVBench applications fly on this executor — see
//! `mav_core::flight` for the camera/mapping/planning/control node graph and
//! [`executor`] for the determinism contract (same-tick registration
//! ordering, latency charging through [`NodeContext`]).
//!
//! # Example
//!
//! ```
//! use mav_runtime::{FifoTopic, Topic};
//!
//! let map_topic: Topic<String> = Topic::new("octomap");
//! map_topic.publish("map-v1".to_string());
//! assert_eq!(map_topic.latest().as_deref(), Some("map-v1"));
//!
//! let collisions: FifoTopic<u32> = FifoTopic::new("collision");
//! collisions.publish(1);
//! assert_eq!(collisions.drain(), vec![1]);
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod executor;
pub mod kernel_timer;
pub mod topic;

pub use clock::SimClock;
pub use executor::{run_all_for, ExecModel, ExecStage, Executor, Node, NodeContext, NodeOutput};
pub use kernel_timer::KernelTimer;
pub use topic::{FifoTopic, Topic};
