//! A deterministic closed-loop node executor.
//!
//! The executor mirrors the structure of a ROS application: a set of named
//! nodes, each with an invocation period, run round-robin against the
//! simulated clock. Each invocation reports the simulated compute latency it
//! consumed; the executor charges that latency to the clock and to the
//! [`KernelTimer`], which is exactly how compute speed turns into mission time
//! in MAVBench.

use crate::clock::SimClock;
use crate::kernel_timer::KernelTimer;
use mav_compute::KernelId;
use mav_types::{Result, SimDuration, SimTime};
use std::fmt;

/// Outcome of one node invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeOutput {
    /// Simulated compute time consumed, attributed per kernel.
    pub kernel_time: Vec<(KernelId, SimDuration)>,
}

impl NodeOutput {
    /// An invocation that consumed no modelled compute time.
    pub fn idle() -> Self {
        NodeOutput {
            kernel_time: Vec::new(),
        }
    }

    /// An invocation that consumed `duration` in `kernel`.
    pub fn kernel(kernel: KernelId, duration: SimDuration) -> Self {
        NodeOutput {
            kernel_time: vec![(kernel, duration)],
        }
    }

    /// Total compute time of this invocation.
    pub fn total(&self) -> SimDuration {
        self.kernel_time.iter().map(|(_, d)| *d).sum()
    }
}

/// A node in the application graph.
pub trait Node {
    /// The node's name (unique within an executor).
    fn name(&self) -> &str;

    /// How often the node wants to run.
    fn period(&self) -> SimDuration;

    /// Runs the node once at simulated time `now`.
    ///
    /// # Errors
    ///
    /// Nodes may fail (e.g. a planner that cannot find a path); the executor
    /// surfaces the first error to its caller.
    fn tick(&mut self, now: SimTime) -> Result<NodeOutput>;
}

struct Registration {
    node: Box<dyn Node>,
    next_due: SimTime,
}

/// The closed-loop executor.
///
/// # Example
///
/// ```
/// use mav_compute::KernelId;
/// use mav_runtime::{Executor, Node, NodeOutput};
/// use mav_types::{Result, SimDuration, SimTime};
///
/// struct Heartbeat(u32);
/// impl Node for Heartbeat {
///     fn name(&self) -> &str { "heartbeat" }
///     fn period(&self) -> SimDuration { SimDuration::from_millis(100.0) }
///     fn tick(&mut self, _now: SimTime) -> Result<NodeOutput> {
///         self.0 += 1;
///         Ok(NodeOutput::kernel(KernelId::PathTracking, SimDuration::from_millis(1.0)))
///     }
/// }
///
/// let mut exec = Executor::new();
/// exec.add_node(Heartbeat(0));
/// exec.run_for(SimDuration::from_secs(1.0)).unwrap();
/// assert!(exec.timer().invocations(KernelId::PathTracking) >= 9);
/// ```
pub struct Executor {
    clock: SimClock,
    nodes: Vec<Registration>,
    timer: KernelTimer,
    /// The physics/step granularity the executor advances by when no node is
    /// due. Defaults to 50 ms.
    pub idle_step: SimDuration,
}

impl Executor {
    /// Creates an empty executor at mission time zero.
    pub fn new() -> Self {
        Executor {
            clock: SimClock::new(),
            nodes: Vec::new(),
            timer: KernelTimer::new(),
            idle_step: SimDuration::from_millis(50.0),
        }
    }

    /// Registers a node. Nodes run in registration order when due at the same
    /// instant, which keeps runs reproducible.
    pub fn add_node<N: Node + 'static>(&mut self, node: N) {
        self.nodes.push(Registration {
            node: Box::new(node),
            next_due: SimTime::ZERO,
        });
    }

    /// The mission clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The accumulated per-kernel timing.
    pub fn timer(&self) -> &KernelTimer {
        &self.timer
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Runs every due node once and advances the clock.
    ///
    /// # Errors
    ///
    /// Propagates the first node error.
    pub fn step(&mut self) -> Result<()> {
        let now = self.clock.now();
        let mut consumed = SimDuration::ZERO;
        for reg in &mut self.nodes {
            if reg.next_due <= now {
                let output = reg.node.tick(now)?;
                for (kernel, duration) in &output.kernel_time {
                    self.timer.record(*kernel, *duration);
                }
                consumed += output.total();
                reg.next_due = now + reg.node.period();
            }
        }
        // The serialized compute time of this round plus (if nothing ran) an
        // idle step moves the clock forward.
        if consumed.is_zero() {
            self.clock.advance(self.idle_step);
        } else {
            self.clock.advance(consumed);
        }
        Ok(())
    }

    /// Runs until the mission clock has advanced by `duration`.
    ///
    /// # Errors
    ///
    /// Propagates the first node error.
    pub fn run_for(&mut self, duration: SimDuration) -> Result<()> {
        let deadline = self.clock.now() + duration;
        while self.clock.now() < deadline {
            self.step()?;
        }
        Ok(())
    }
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new()
    }
}

impl fmt::Debug for Executor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("now", &self.clock.now())
            .field("nodes", &self.nodes.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mav_types::MavError;

    struct Counter {
        name: String,
        period: SimDuration,
        cost: SimDuration,
        kernel: KernelId,
        count: u32,
        fail_at: Option<u32>,
    }

    impl Counter {
        fn new(name: &str, period_ms: f64, cost_ms: f64, kernel: KernelId) -> Self {
            Counter {
                name: name.to_string(),
                period: SimDuration::from_millis(period_ms),
                cost: SimDuration::from_millis(cost_ms),
                kernel,
                count: 0,
                fail_at: None,
            }
        }
    }

    impl Node for Counter {
        fn name(&self) -> &str {
            &self.name
        }
        fn period(&self) -> SimDuration {
            self.period
        }
        fn tick(&mut self, _now: SimTime) -> Result<NodeOutput> {
            self.count += 1;
            if Some(self.count) == self.fail_at {
                return Err(MavError::runtime("node failed"));
            }
            Ok(NodeOutput::kernel(self.kernel, self.cost))
        }
    }

    #[test]
    fn nodes_run_at_their_period() {
        let mut exec = Executor::new();
        exec.add_node(Counter::new("fast", 100.0, 10.0, KernelId::PathTracking));
        exec.add_node(Counter::new(
            "slow",
            1000.0,
            200.0,
            KernelId::MotionPlanning,
        ));
        exec.run_for(SimDuration::from_secs(5.0)).unwrap();
        let fast = exec.timer().invocations(KernelId::PathTracking);
        let slow = exec.timer().invocations(KernelId::MotionPlanning);
        assert!(
            fast > slow,
            "fast node should run more often ({fast} vs {slow})"
        );
        assert!(slow >= 3);
        assert_eq!(exec.node_count(), 2);
    }

    #[test]
    fn compute_time_advances_the_clock() {
        let mut exec = Executor::new();
        exec.add_node(Counter::new(
            "heavy",
            100.0,
            500.0,
            KernelId::OctomapGeneration,
        ));
        exec.run_for(SimDuration::from_secs(2.0)).unwrap();
        // The kernel's simulated time must be accounted on the clock: at
        // least 2 s / 0.5 s = 4 invocations happened, but not many more since
        // each invocation costs 0.5 s of mission time.
        let n = exec.timer().invocations(KernelId::OctomapGeneration);
        assert!((4..=6).contains(&n), "unexpected invocation count {n}");
    }

    #[test]
    fn idle_executor_still_advances() {
        let mut exec = Executor::new();
        exec.run_for(SimDuration::from_secs(1.0)).unwrap();
        assert!(exec.clock().now().as_secs() >= 1.0);
    }

    #[test]
    fn node_errors_propagate() {
        let mut exec = Executor::new();
        let mut failing = Counter::new("flaky", 100.0, 1.0, KernelId::PidControl);
        failing.fail_at = Some(3);
        exec.add_node(failing);
        let err = exec.run_for(SimDuration::from_secs(10.0)).unwrap_err();
        assert!(matches!(err, MavError::Runtime { .. }));
    }

    #[test]
    fn node_output_helpers() {
        assert!(NodeOutput::idle().total().is_zero());
        let o = NodeOutput::kernel(KernelId::PathSmoothing, SimDuration::from_millis(55.0));
        assert!((o.total().as_millis() - 55.0).abs() < 1e-9);
        assert!(!format!("{:?}", Executor::new()).is_empty());
    }
}
