//! The deterministic closed-loop node executor.
//!
//! The executor mirrors the structure of a ROS application: a set of named
//! nodes, each with an invocation period, scheduled against a simulated
//! mission clock. Every invocation reports the simulated compute latency it
//! consumed; at the end of each round the executor charges the round's
//! serialized latency to the scheduling context, which is exactly how compute
//! speed turns into mission time in MAVBench. Since PR 2 this is the engine
//! the five benchmark applications actually fly on: `mav_core::flight` wires
//! camera, mapping, planning, control and energy nodes onto an
//! [`Executor`] over the live mission state, so kernel latency, frame
//! staleness and control-rate starvation all emerge from the schedule instead
//! of being hand-coded into one loop.
//!
//! # Determinism contract
//!
//! Runs are reproducible by construction:
//!
//! * **Same-tick ordering.** All nodes due at the same instant run in
//!   *registration order*, every time. There is no priority field and no
//!   hash-ordered container anywhere in the dispatch path.
//! * **Time only moves through [`NodeContext::charge`].** Nodes never touch
//!   the clock directly; the context advances it by the round's serialized
//!   compute latency (or the idle step when nothing ran), so a schedule is a
//!   pure function of the node set and the context's initial state.
//! * **Halting is checked after every node.** When the context reports
//!   [`NodeContext::halted`], the round stops before any later node runs and
//!   before any latency is charged — mirroring a sequential loop's early
//!   `return`.

use crate::clock::SimClock;
use crate::kernel_timer::KernelTimer;
use mav_compute::KernelId;
use mav_types::{Result, SimDuration, SimTime};
use std::fmt;

/// Outcome of one node invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeOutput {
    /// Simulated compute time consumed, attributed per kernel.
    pub kernel_time: Vec<(KernelId, SimDuration)>,
}

impl NodeOutput {
    /// An invocation that consumed no modelled compute time.
    pub fn idle() -> Self {
        NodeOutput {
            kernel_time: Vec::new(),
        }
    }

    /// An invocation that consumed `duration` in `kernel`.
    pub fn kernel(kernel: KernelId, duration: SimDuration) -> Self {
        NodeOutput {
            kernel_time: vec![(kernel, duration)],
        }
    }

    /// An invocation that consumed time in several kernels.
    pub fn kernels(kernel_time: Vec<(KernelId, SimDuration)>) -> Self {
        NodeOutput { kernel_time }
    }

    /// Total compute time of this invocation.
    pub fn total(&self) -> SimDuration {
        self.kernel_time.iter().map(|(_, d)| *d).sum()
    }
}

/// The scheduling context an [`Executor`] runs against.
///
/// The context owns mission time. The plain [`SimClock`] implementation turns
/// the executor into the standalone scheduler used in unit tests and
/// examples; `mav_core`'s flight context integrates vehicle physics, energy
/// and battery drain for the charged duration, so "the planner took 600 ms"
/// literally becomes "the drone flew 600 ms on a stale plan".
pub trait NodeContext {
    /// The current mission time.
    fn now(&self) -> SimTime;

    /// Returns `true` when the run must stop immediately (e.g. a node
    /// published a terminal event). Checked before every node invocation; a
    /// halted round charges nothing.
    fn halted(&self) -> bool {
        false
    }

    /// Charges one round's serialized compute latency to mission time.
    /// `consumed` is the sum over every node that ran this round;
    /// `idle_step` is the executor's fallback granularity for rounds in which
    /// no node was due.
    ///
    /// # Errors
    ///
    /// Contexts may fail the run (e.g. a physics integration error).
    fn charge(&mut self, consumed: SimDuration, idle_step: SimDuration) -> Result<()>;
}

impl NodeContext for SimClock {
    fn now(&self) -> SimTime {
        SimClock::now(self)
    }

    fn charge(&mut self, consumed: SimDuration, idle_step: SimDuration) -> Result<()> {
        self.advance(if consumed.is_zero() {
            idle_step
        } else {
            consumed
        });
        Ok(())
    }
}

/// A node in the application graph, generic over the scheduling context `C`
/// it reads and writes (shared state such as the occupancy map lives in the
/// context; streams such as depth frames travel over
/// [`Topic`](crate::Topic)s whose handles each node owns).
pub trait Node<C> {
    /// The node's name (unique within an executor).
    fn name(&self) -> &str;

    /// How often the node wants to run. [`SimDuration::ZERO`] means "every
    /// round" — the node is tick-synchronous with the loop, which is how the
    /// legacy sequential pipeline is expressed.
    fn period(&self) -> SimDuration;

    /// Runs the node once at simulated time `now`.
    ///
    /// # Errors
    ///
    /// Nodes may fail (e.g. a planner that cannot find a path); the executor
    /// surfaces the first error to its caller.
    fn tick(&mut self, ctx: &mut C, now: SimTime) -> Result<NodeOutput>;
}

struct Registration<C> {
    node: Box<dyn Node<C>>,
    next_due: SimTime,
}

/// The closed-loop executor.
///
/// # Example
///
/// ```
/// use mav_compute::KernelId;
/// use mav_runtime::{Executor, Node, NodeOutput, SimClock};
/// use mav_types::{Result, SimDuration, SimTime};
///
/// struct Heartbeat(u32);
/// impl Node<SimClock> for Heartbeat {
///     fn name(&self) -> &str { "heartbeat" }
///     fn period(&self) -> SimDuration { SimDuration::from_millis(100.0) }
///     fn tick(&mut self, _ctx: &mut SimClock, _now: SimTime) -> Result<NodeOutput> {
///         self.0 += 1;
///         Ok(NodeOutput::kernel(KernelId::PathTracking, SimDuration::from_millis(1.0)))
///     }
/// }
///
/// let mut clock = SimClock::new();
/// let mut exec = Executor::new();
/// exec.add_node(Heartbeat(0));
/// exec.run_for(&mut clock, SimDuration::from_secs(1.0)).unwrap();
/// assert!(exec.timer().invocations(KernelId::PathTracking) >= 9);
/// ```
pub struct Executor<C> {
    nodes: Vec<Registration<C>>,
    timer: KernelTimer,
    /// The granularity the context is asked to advance by when no node is
    /// due in a round. Defaults to 50 ms.
    pub idle_step: SimDuration,
}

impl<C: NodeContext> Executor<C> {
    /// Creates an empty executor.
    pub fn new() -> Self {
        Executor {
            nodes: Vec::new(),
            timer: KernelTimer::new(),
            idle_step: SimDuration::from_millis(50.0),
        }
    }

    /// Registers a node. Nodes due at the same instant run in registration
    /// order — the same-tick ordering contract that keeps runs reproducible.
    pub fn add_node<N: Node<C> + 'static>(&mut self, node: N) {
        self.nodes.push(Registration {
            node: Box::new(node),
            next_due: SimTime::ZERO,
        });
    }

    /// The accumulated per-kernel timing across every node invocation.
    pub fn timer(&self) -> &KernelTimer {
        &self.timer
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Registered node names in registration (dispatch) order.
    pub fn node_names(&self) -> Vec<&str> {
        self.nodes.iter().map(|r| r.node.name()).collect()
    }

    /// Runs every due node once (registration order) and charges the round's
    /// serialized latency to the context. Returns the charged compute time;
    /// a round halted by the context charges nothing and returns zero.
    ///
    /// # Errors
    ///
    /// Propagates the first node or context error.
    pub fn step(&mut self, ctx: &mut C) -> Result<SimDuration> {
        if ctx.halted() {
            return Ok(SimDuration::ZERO);
        }
        let now = ctx.now();
        let mut consumed = SimDuration::ZERO;
        for reg in &mut self.nodes {
            if reg.next_due <= now {
                let output = reg.node.tick(ctx, now)?;
                for (kernel, duration) in &output.kernel_time {
                    self.timer.record(*kernel, *duration);
                }
                consumed += output.total();
                // Anchor the schedule to the period grid instead of the round
                // start: a node due at t=100 ms that only gets dispatched in a
                // round opening at t=130 ms is next due at 200 ms, not 230 ms,
                // so effective rates do not sag below nominal under compute
                // load. When the grid has fallen more than a full period
                // behind (a long round elsewhere), the missed ticks are
                // dropped and the node is re-anchored at `now + period`,
                // preserving the minimum inter-invocation spacing — a 10 Hz
                // camera never captures two frames 50 ms apart to "catch up".
                // ZERO-period (tick-synchronous) nodes are unaffected: both
                // expressions reduce to `now`, exactly the old arithmetic.
                let period = reg.node.period();
                let anchored = reg.next_due + period;
                reg.next_due = if anchored < now {
                    now + period
                } else {
                    anchored
                };
                // A terminal event ends the round exactly where a sequential
                // loop would `return`: later nodes do not run and the clock
                // does not move.
                if ctx.halted() {
                    return Ok(SimDuration::ZERO);
                }
            }
        }
        ctx.charge(consumed, self.idle_step)?;
        Ok(consumed)
    }

    /// Runs rounds until the context's clock has advanced by `duration` (or
    /// the context halts).
    ///
    /// # Errors
    ///
    /// Propagates the first node or context error.
    pub fn run_for(&mut self, ctx: &mut C, duration: SimDuration) -> Result<()> {
        let deadline = ctx.now() + duration;
        while ctx.now() < deadline && !ctx.halted() {
            self.step(ctx)?;
        }
        Ok(())
    }
}

impl<C: NodeContext> Default for Executor<C> {
    fn default() -> Self {
        Executor::new()
    }
}

impl<C> fmt::Debug for Executor<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("nodes", &self.nodes.len())
            .field("idle_step", &self.idle_step)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mav_types::MavError;

    struct Counter {
        name: String,
        period: SimDuration,
        cost: SimDuration,
        kernel: KernelId,
        count: u32,
        fail_at: Option<u32>,
    }

    impl Counter {
        fn new(name: &str, period_ms: f64, cost_ms: f64, kernel: KernelId) -> Self {
            Counter {
                name: name.to_string(),
                period: SimDuration::from_millis(period_ms),
                cost: SimDuration::from_millis(cost_ms),
                kernel,
                count: 0,
                fail_at: None,
            }
        }
    }

    impl Node<SimClock> for Counter {
        fn name(&self) -> &str {
            &self.name
        }
        fn period(&self) -> SimDuration {
            self.period
        }
        fn tick(&mut self, _ctx: &mut SimClock, _now: SimTime) -> Result<NodeOutput> {
            self.count += 1;
            if Some(self.count) == self.fail_at {
                return Err(MavError::runtime("node failed"));
            }
            Ok(NodeOutput::kernel(self.kernel, self.cost))
        }
    }

    #[test]
    fn nodes_run_at_their_period() {
        let mut clock = SimClock::new();
        let mut exec = Executor::new();
        exec.add_node(Counter::new("fast", 100.0, 10.0, KernelId::PathTracking));
        exec.add_node(Counter::new(
            "slow",
            1000.0,
            200.0,
            KernelId::MotionPlanning,
        ));
        exec.run_for(&mut clock, SimDuration::from_secs(5.0))
            .unwrap();
        let fast = exec.timer().invocations(KernelId::PathTracking);
        let slow = exec.timer().invocations(KernelId::MotionPlanning);
        assert!(
            fast > slow,
            "fast node should run more often ({fast} vs {slow})"
        );
        assert!(slow >= 3);
        assert_eq!(exec.node_count(), 2);
        assert_eq!(exec.node_names(), vec!["fast", "slow"]);
    }

    #[test]
    fn compute_time_advances_the_clock() {
        let mut clock = SimClock::new();
        let mut exec = Executor::new();
        exec.add_node(Counter::new(
            "heavy",
            100.0,
            500.0,
            KernelId::OctomapGeneration,
        ));
        exec.run_for(&mut clock, SimDuration::from_secs(2.0))
            .unwrap();
        // The kernel's simulated time must be accounted on the clock: at
        // least 2 s / 0.5 s = 4 invocations happened, but not many more since
        // each invocation costs 0.5 s of mission time.
        let n = exec.timer().invocations(KernelId::OctomapGeneration);
        assert!((4..=6).contains(&n), "unexpected invocation count {n}");
    }

    #[test]
    fn periods_are_anchored_not_restarted_per_round() {
        // A 100 ms node in a loop whose rounds never line up with its grid:
        // the node costs 30 ms and idle rounds advance by the 50 ms idle
        // step, so dispatch happens up to one round after each due time.
        // Restarting the period at the round start (the old `now + period`)
        // loses that offset every cycle and sags the effective rate to
        // ~1/(130..180 ms); anchoring (`next_due += period`) keeps it at
        // 10 Hz. 10 s of mission time must show ~100 invocations, not ~70.
        let mut clock = SimClock::new();
        let mut exec = Executor::new();
        exec.add_node(Counter::new(
            "anchored",
            100.0,
            30.0,
            KernelId::PathTracking,
        ));
        exec.run_for(&mut clock, SimDuration::from_secs(10.0))
            .unwrap();
        let n = exec.timer().invocations(KernelId::PathTracking);
        assert!(
            (95..=101).contains(&n),
            "effective rate drifted from nominal: {n} invocations in 10 s at 10 Hz"
        );
    }

    #[test]
    fn overloaded_node_degrades_without_catchup_bursts() {
        // A node whose cost (300 ms) dwarfs its period (100 ms): the clamp
        // must drop the missed ticks instead of replaying them, i.e. exactly
        // one invocation per round, each round ~300 ms long.
        let mut clock = SimClock::new();
        let mut exec = Executor::new();
        exec.add_node(Counter::new(
            "overloaded",
            100.0,
            300.0,
            KernelId::MotionPlanning,
        ));
        exec.run_for(&mut clock, SimDuration::from_secs(3.0))
            .unwrap();
        let n = exec.timer().invocations(KernelId::MotionPlanning);
        assert!(
            (10..=11).contains(&n),
            "expected one invocation per 300 ms round, got {n} in 3 s"
        );
    }

    #[test]
    fn delayed_rounds_never_refire_below_period_spacing() {
        // A long round elsewhere (the blocker's 375 ms charge) pushes the
        // 125 ms node more than a full period past its grid. The missed
        // ticks must be dropped — clamping `next_due` to `now` instead of
        // `now + period` would let the node run again in the very next
        // round, one 62.5 ms idle step after its previous invocation (two
        // "8 Hz camera frames" 62.5 ms apart). All values are dyadic so the
        // schedule arithmetic is float-exact.
        use std::sync::{Arc, Mutex};
        struct Stamper {
            times: Arc<Mutex<Vec<f64>>>,
        }
        impl Node<SimClock> for Stamper {
            fn name(&self) -> &str {
                "stamper"
            }
            fn period(&self) -> SimDuration {
                SimDuration::from_millis(125.0)
            }
            fn tick(&mut self, _ctx: &mut SimClock, now: SimTime) -> Result<NodeOutput> {
                self.times.lock().unwrap().push(now.as_secs());
                Ok(NodeOutput::idle())
            }
        }
        let times = Arc::new(Mutex::new(Vec::new()));
        let mut clock = SimClock::new();
        let mut exec = Executor::new();
        exec.idle_step = SimDuration::from_millis(62.5);
        exec.add_node(Counter::new(
            "blocker",
            1000.0,
            375.0,
            KernelId::MotionPlanning,
        ));
        exec.add_node(Stamper {
            times: Arc::clone(&times),
        });
        exec.run_for(&mut clock, SimDuration::from_secs(3.0))
            .unwrap();
        let times = times.lock().unwrap();
        assert!(times.len() >= 15, "stamper barely ran: {}", times.len());
        for pair in times.windows(2) {
            assert!(
                pair[1] - pair[0] >= 0.125 - 1e-9,
                "sub-period refire: invocations at {:.4} s and {:.4} s",
                pair[0],
                pair[1]
            );
        }
    }

    #[test]
    fn idle_executor_still_advances() {
        let mut clock = SimClock::new();
        let mut exec: Executor<SimClock> = Executor::new();
        exec.run_for(&mut clock, SimDuration::from_secs(1.0))
            .unwrap();
        assert!(NodeContext::now(&clock).as_secs() >= 1.0);
    }

    #[test]
    fn node_errors_propagate() {
        let mut clock = SimClock::new();
        let mut exec = Executor::new();
        let mut failing = Counter::new("flaky", 100.0, 1.0, KernelId::PidControl);
        failing.fail_at = Some(3);
        exec.add_node(failing);
        let err = exec
            .run_for(&mut clock, SimDuration::from_secs(10.0))
            .unwrap_err();
        assert!(matches!(err, MavError::Runtime { .. }));
    }

    #[test]
    fn node_output_helpers() {
        assert!(NodeOutput::idle().total().is_zero());
        let o = NodeOutput::kernel(KernelId::PathSmoothing, SimDuration::from_millis(55.0));
        assert!((o.total().as_millis() - 55.0).abs() < 1e-9);
        let many = NodeOutput::kernels(vec![
            (KernelId::PathSmoothing, SimDuration::from_millis(5.0)),
            (KernelId::MotionPlanning, SimDuration::from_millis(7.0)),
        ]);
        assert!((many.total().as_millis() - 12.0).abs() < 1e-9);
        assert!(!format!("{:?}", Executor::<SimClock>::new()).is_empty());
    }

    /// A context that records the order nodes ran in and can halt on demand.
    struct Script {
        clock: SimClock,
        log: Vec<String>,
        halt_after: Option<usize>,
    }

    impl NodeContext for Script {
        fn now(&self) -> SimTime {
            self.clock.now()
        }
        fn halted(&self) -> bool {
            self.halt_after.is_some_and(|n| self.log.len() >= n)
        }
        fn charge(&mut self, consumed: SimDuration, idle_step: SimDuration) -> Result<()> {
            self.clock.advance(if consumed.is_zero() {
                idle_step
            } else {
                consumed
            });
            Ok(())
        }
    }

    struct Tracer(String);
    impl Node<Script> for Tracer {
        fn name(&self) -> &str {
            &self.0
        }
        fn period(&self) -> SimDuration {
            SimDuration::ZERO
        }
        fn tick(&mut self, ctx: &mut Script, _now: SimTime) -> Result<NodeOutput> {
            ctx.log.push(self.0.clone());
            Ok(NodeOutput::kernel(
                KernelId::PathTracking,
                SimDuration::from_millis(10.0),
            ))
        }
    }

    #[test]
    fn same_tick_nodes_run_in_registration_order() {
        let mut ctx = Script {
            clock: SimClock::new(),
            log: Vec::new(),
            halt_after: None,
        };
        let mut exec = Executor::new();
        for name in ["sense", "map", "plan", "control"] {
            exec.add_node(Tracer(name.to_string()));
        }
        for _ in 0..3 {
            exec.step(&mut ctx).unwrap();
        }
        assert_eq!(
            ctx.log,
            vec![
                "sense", "map", "plan", "control", // round 1
                "sense", "map", "plan", "control", // round 2
                "sense", "map", "plan", "control", // round 3
            ]
        );
    }

    #[test]
    fn halting_stops_the_round_before_later_nodes_and_charges_nothing() {
        let mut ctx = Script {
            clock: SimClock::new(),
            log: Vec::new(),
            halt_after: Some(2),
        };
        let mut exec = Executor::new();
        for name in ["a", "b", "c"] {
            exec.add_node(Tracer(name.to_string()));
        }
        let charged = exec.step(&mut ctx).unwrap();
        assert_eq!(ctx.log, vec!["a", "b"], "node c must not run after halt");
        assert!(charged.is_zero(), "halted rounds charge nothing");
        assert!(ctx.clock.now().as_secs() == 0.0, "clock must not move");
        // A halted context makes further steps no-ops.
        assert!(exec.step(&mut ctx).unwrap().is_zero());
        assert_eq!(ctx.log.len(), 2);
    }
}
