//! The deterministic closed-loop node executor.
//!
//! The executor mirrors the structure of a ROS application: a set of named
//! nodes, each with an invocation period, scheduled against a simulated
//! mission clock. Every invocation reports the simulated compute latency it
//! consumed; at the end of each round the executor charges the round's
//! latency to the scheduling context — the serialized sum under the default
//! [`ExecModel::Serial`], the critical path over [`ExecStage`]s under
//! [`ExecModel::Pipelined`] — which is exactly how compute
//! speed turns into mission time in MAVBench. Since PR 2 this is the engine
//! the five benchmark applications actually fly on: `mav_core::flight` wires
//! camera, mapping, planning, control and energy nodes onto an
//! [`Executor`] over the live mission state, so kernel latency, frame
//! staleness and control-rate starvation all emerge from the schedule instead
//! of being hand-coded into one loop.
//!
//! # Determinism contract
//!
//! Runs are reproducible by construction:
//!
//! * **Same-tick ordering.** All nodes due at the same instant run in
//!   *registration order*, every time. There is no priority field and no
//!   hash-ordered container anywhere in the dispatch path.
//! * **Time only moves through [`NodeContext::charge`].** Nodes never touch
//!   the clock directly; the context advances it by the round's charged
//!   compute latency (or the idle step when nothing ran), so a schedule is a
//!   pure function of the node set, the execution model and the context's
//!   initial state.
//! * **Halting is checked after every node.** When the context reports
//!   [`NodeContext::halted`], the round stops before any later node runs and
//!   before any latency is charged — mirroring a sequential loop's early
//!   `return`.

use crate::clock::SimClock;
use crate::kernel_timer::KernelTimer;
use mav_compute::KernelId;
use mav_types::{Result, SimDuration, SimTime};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The pipeline stage a [`Node`] occupies, for the purposes of
/// [`ExecModel::Pipelined`] latency charging.
///
/// A real MAV stack does not run its ROS nodes back to back: the camera
/// driver captures frame N+1 while the mapper integrates frame N and the
/// planner chews on the map from frame N-1 — different stages live on
/// different cores. Stages model exactly that resource partition: within one
/// executor round, nodes on the *same* stage serialize (their latencies sum —
/// they share a core), while nodes on *different* stages overlap (the round
/// costs the slowest stage, i.e. the critical path).
///
/// [`ExecStage::Monolithic`] is the default for nodes that do not declare a
/// stage: a monolithic node is assumed to need the whole pipeline, so it
/// serializes with *everything* (its latency is added on top of the critical
/// path). Pipelining is therefore strictly opt-in per node, and a graph of
/// undeclared nodes charges exactly like [`ExecModel::Serial`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum ExecStage {
    /// Zero-cost bookkeeping (watchdogs, telemetry). Never on the critical
    /// path in practice, but modelled as an ordinary overlapping stage.
    Housekeeping,
    /// Sensor capture — the camera grabbing the next frame.
    Sensing,
    /// Sensor interpretation — point-cloud generation, map integration,
    /// detection and tracking.
    Perception,
    /// Path/motion planning and collision monitoring.
    Planning,
    /// Trajectory following and command issue.
    Control,
    /// The whole-pipeline default: serializes with every other node.
    #[default]
    Monolithic,
}

impl ExecStage {
    /// Every named (overlappable) stage plus the monolithic bucket.
    pub const COUNT: usize = 6;

    fn index(self) -> usize {
        match self {
            ExecStage::Housekeeping => 0,
            ExecStage::Sensing => 1,
            ExecStage::Perception => 2,
            ExecStage::Planning => 3,
            ExecStage::Control => 4,
            ExecStage::Monolithic => 5,
        }
    }
}

/// How an [`Executor`] turns one round's per-node latencies into the single
/// duration charged to the [`NodeContext`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ExecModel {
    /// Nodes run back to back on one core: the round charges the *sum* of
    /// every node's latency. This is the paper's accounting and the
    /// historical behaviour, reproduced bit-for-bit (`tests/golden_legacy.rs`
    /// pins it).
    #[default]
    Serial,
    /// Nodes on different [`ExecStage`]s overlap: the round charges the
    /// *critical path* — the maximum over stages of the per-stage latency
    /// sums, plus the sum of any [`ExecStage::Monolithic`] nodes (which
    /// serialize with everything). The camera captures the next frame while
    /// the mapper integrates the last one.
    Pipelined,
}

impl ExecModel {
    /// The CLI/figure label of this model.
    pub fn label(&self) -> &'static str {
        match self {
            ExecModel::Serial => "serial",
            ExecModel::Pipelined => "pipelined",
        }
    }

    /// Parses the CLI/wire spelling: `serial`, or `pipelined` (alias
    /// `pipeline`). Shared by the harness `--exec-model` flag and the
    /// `mav-server` job spec.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted values.
    pub fn parse(value: &str) -> std::result::Result<ExecModel, String> {
        match value.trim() {
            "serial" => Ok(ExecModel::Serial),
            "pipelined" | "pipeline" => Ok(ExecModel::Pipelined),
            other => Err(format!(
                "unknown exec model `{other}` (expected serial or pipelined)"
            )),
        }
    }
}

impl fmt::Display for ExecModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl mav_types::ToJson for ExecModel {
    fn to_json(&self) -> mav_types::Json {
        mav_types::Json::String(self.label().to_string())
    }
}

impl mav_types::FromJson for ExecModel {
    fn from_json(json: &mav_types::Json) -> std::result::Result<Self, String> {
        let label = json
            .as_str()
            .ok_or_else(|| format!("expected an exec-model string, got {json}"))?;
        ExecModel::parse(label)
    }
}

/// Per-stage latency accumulator for one [`ExecModel::Pipelined`] round.
#[derive(Debug, Default)]
struct StageLatencies {
    sums: [SimDuration; ExecStage::COUNT],
}

impl StageLatencies {
    fn add(&mut self, stage: ExecStage, latency: SimDuration) {
        self.sums[stage.index()] += latency;
    }

    /// The round's pipelined charge: max over overlappable stages, plus the
    /// monolithic bucket, which occupies every stage and therefore cannot
    /// overlap anything.
    fn critical_path(&self) -> SimDuration {
        let monolithic = self.sums[ExecStage::Monolithic.index()];
        let widest = self.sums[..ExecStage::Monolithic.index()]
            .iter()
            .copied()
            .fold(SimDuration::ZERO, SimDuration::max);
        monolithic + widest
    }
}

/// Outcome of one node invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeOutput {
    /// Simulated compute time consumed, attributed per kernel.
    pub kernel_time: Vec<(KernelId, SimDuration)>,
}

impl NodeOutput {
    /// An invocation that consumed no modelled compute time.
    pub fn idle() -> Self {
        NodeOutput {
            kernel_time: Vec::new(),
        }
    }

    /// An invocation that consumed `duration` in `kernel`.
    pub fn kernel(kernel: KernelId, duration: SimDuration) -> Self {
        NodeOutput {
            kernel_time: vec![(kernel, duration)],
        }
    }

    /// An invocation that consumed time in several kernels.
    pub fn kernels(kernel_time: Vec<(KernelId, SimDuration)>) -> Self {
        NodeOutput { kernel_time }
    }

    /// Total compute time of this invocation.
    pub fn total(&self) -> SimDuration {
        self.kernel_time.iter().map(|(_, d)| *d).sum()
    }
}

/// The scheduling context an [`Executor`] runs against.
///
/// The context owns mission time. The plain [`SimClock`] implementation turns
/// the executor into the standalone scheduler used in unit tests and
/// examples; `mav_core`'s flight context integrates vehicle physics, energy
/// and battery drain for the charged duration, so "the planner took 600 ms"
/// literally becomes "the drone flew 600 ms on a stale plan".
pub trait NodeContext {
    /// The current mission time.
    fn now(&self) -> SimTime;

    /// Returns `true` when the run must stop immediately (e.g. a node
    /// published a terminal event). Checked before every node invocation; a
    /// halted round charges nothing.
    fn halted(&self) -> bool {
        false
    }

    /// Charges one round's serialized compute latency to mission time.
    /// `consumed` is the sum over every node that ran this round;
    /// `idle_step` is the executor's fallback granularity for rounds in which
    /// no node was due.
    ///
    /// # Errors
    ///
    /// Contexts may fail the run (e.g. a physics integration error).
    fn charge(&mut self, consumed: SimDuration, idle_step: SimDuration) -> Result<()>;
}

impl NodeContext for SimClock {
    fn now(&self) -> SimTime {
        SimClock::now(self)
    }

    fn charge(&mut self, consumed: SimDuration, idle_step: SimDuration) -> Result<()> {
        self.advance(if consumed.is_zero() {
            idle_step
        } else {
            consumed
        });
        Ok(())
    }
}

/// A node in the application graph, generic over the scheduling context `C`
/// it reads and writes (shared state such as the occupancy map lives in the
/// context; streams such as depth frames travel over
/// [`Topic`](crate::Topic)s whose handles each node owns).
pub trait Node<C> {
    /// The node's name (unique within an executor).
    fn name(&self) -> &str;

    /// How often the node wants to run. [`SimDuration::ZERO`] means "every
    /// round" — the node is tick-synchronous with the loop, which is how the
    /// legacy sequential pipeline is expressed.
    fn period(&self) -> SimDuration;

    /// The pipeline stage this node occupies under
    /// [`ExecModel::Pipelined`] charging. Ignored by [`ExecModel::Serial`].
    /// Defaults to [`ExecStage::Monolithic`], which serializes with every
    /// other node — pipelined overlap is strictly opt-in per node.
    fn stage(&self) -> ExecStage {
        ExecStage::Monolithic
    }

    /// Runs the node once at simulated time `now`.
    ///
    /// # Errors
    ///
    /// Nodes may fail (e.g. a planner that cannot find a path); the executor
    /// surfaces the first error to its caller.
    fn tick(&mut self, ctx: &mut C, now: SimTime) -> Result<NodeOutput>;
}

struct Registration<C> {
    node: Box<dyn Node<C> + Send>,
    next_due: SimTime,
}

/// The closed-loop executor.
///
/// # Example
///
/// ```
/// use mav_compute::KernelId;
/// use mav_runtime::{Executor, Node, NodeOutput, SimClock};
/// use mav_types::{Result, SimDuration, SimTime};
///
/// struct Heartbeat(u32);
/// impl Node<SimClock> for Heartbeat {
///     fn name(&self) -> &str { "heartbeat" }
///     fn period(&self) -> SimDuration { SimDuration::from_millis(100.0) }
///     fn tick(&mut self, _ctx: &mut SimClock, _now: SimTime) -> Result<NodeOutput> {
///         self.0 += 1;
///         Ok(NodeOutput::kernel(KernelId::PathTracking, SimDuration::from_millis(1.0)))
///     }
/// }
///
/// let mut clock = SimClock::new();
/// let mut exec = Executor::new();
/// exec.add_node(Heartbeat(0));
/// exec.run_for(&mut clock, SimDuration::from_secs(1.0)).unwrap();
/// assert!(exec.timer().invocations(KernelId::PathTracking) >= 9);
/// ```
pub struct Executor<C> {
    nodes: Vec<Registration<C>>,
    timer: KernelTimer,
    /// The granularity the context is asked to advance by when no node is
    /// due in a round. Defaults to 50 ms.
    pub idle_step: SimDuration,
    /// How the round's per-node latencies become the charged duration:
    /// [`ExecModel::Serial`] (default) sums them, [`ExecModel::Pipelined`]
    /// charges the critical path over [`ExecStage`]s.
    pub exec_model: ExecModel,
}

impl<C: NodeContext> Executor<C> {
    /// Creates an empty executor (serial charging).
    pub fn new() -> Self {
        Executor {
            nodes: Vec::new(),
            timer: KernelTimer::new(),
            idle_step: SimDuration::from_millis(50.0),
            exec_model: ExecModel::default(),
        }
    }

    /// Overrides the execution model (builder style).
    pub fn with_exec_model(mut self, model: ExecModel) -> Self {
        self.exec_model = model;
        self
    }

    /// Registers a node. Nodes due at the same instant run in registration
    /// order — the same-tick ordering contract that keeps runs reproducible.
    /// Nodes are `Send` so whole executors can be driven from worker threads
    /// (see [`run_all_for`]).
    pub fn add_node<N: Node<C> + Send + 'static>(&mut self, node: N) {
        self.nodes.push(Registration {
            node: Box::new(node),
            next_due: SimTime::ZERO,
        });
    }

    /// The accumulated per-kernel timing across every node invocation.
    pub fn timer(&self) -> &KernelTimer {
        &self.timer
    }

    /// Number of registered nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Registered node names in registration (dispatch) order.
    pub fn node_names(&self) -> Vec<&str> {
        self.nodes.iter().map(|r| r.node.name()).collect()
    }

    /// Runs every due node once (registration order) and charges the round's
    /// latency to the context: the serialized sum under
    /// [`ExecModel::Serial`], the critical path over [`ExecStage`]s under
    /// [`ExecModel::Pipelined`] (nodes on different stages overlap — the
    /// camera captures the next frame while the mapper integrates the last
    /// one — so the round costs its slowest stage, not the sum). Dispatch is
    /// identical under both models: same nodes, same order, same per-kernel
    /// timer records; only the charged duration differs. Returns the charged
    /// compute time; a round halted by the context charges nothing and
    /// returns zero.
    ///
    /// # Errors
    ///
    /// Propagates the first node or context error.
    pub fn step(&mut self, ctx: &mut C) -> Result<SimDuration> {
        if ctx.halted() {
            return Ok(SimDuration::ZERO);
        }
        let now = ctx.now();
        // The serial sum is kept as its own running accumulator (not derived
        // from the stage buckets) so the default model's floating-point
        // arithmetic is exactly the historical `consumed += total` chain —
        // the golden-legacy bit patterns depend on it.
        let mut consumed = SimDuration::ZERO;
        let mut stages = StageLatencies::default();
        for reg in &mut self.nodes {
            if reg.next_due <= now {
                let output = reg.node.tick(ctx, now)?;
                for (kernel, duration) in &output.kernel_time {
                    self.timer.record(*kernel, *duration);
                }
                consumed += output.total();
                if self.exec_model == ExecModel::Pipelined {
                    stages.add(reg.node.stage(), output.total());
                }
                // Anchor the schedule to the period grid instead of the round
                // start: a node due at t=100 ms that only gets dispatched in a
                // round opening at t=130 ms is next due at 200 ms, not 230 ms,
                // so effective rates do not sag below nominal under compute
                // load. When the grid has fallen more than a full period
                // behind (a long round elsewhere), the missed ticks are
                // dropped and the node is re-anchored at `now + period`,
                // preserving the minimum inter-invocation spacing — a 10 Hz
                // camera never captures two frames 50 ms apart to "catch up".
                // ZERO-period (tick-synchronous) nodes are unaffected: both
                // expressions reduce to `now`, exactly the old arithmetic.
                let period = reg.node.period();
                let anchored = reg.next_due + period;
                reg.next_due = if anchored < now {
                    now + period
                } else {
                    anchored
                };
                // A terminal event ends the round exactly where a sequential
                // loop would `return`: later nodes do not run and the clock
                // does not move.
                if ctx.halted() {
                    return Ok(SimDuration::ZERO);
                }
            }
        }
        let charged = match self.exec_model {
            ExecModel::Serial => consumed,
            ExecModel::Pipelined => stages.critical_path(),
        };
        ctx.charge(charged, self.idle_step)?;
        Ok(charged)
    }

    /// Runs rounds until the context's clock has advanced by `duration` (or
    /// the context halts).
    ///
    /// # Errors
    ///
    /// Propagates the first node or context error.
    pub fn run_for(&mut self, ctx: &mut C, duration: SimDuration) -> Result<()> {
        let deadline = ctx.now() + duration;
        while ctx.now() < deadline && !ctx.halted() {
            self.step(ctx)?;
        }
        Ok(())
    }
}

impl<C: NodeContext> Default for Executor<C> {
    fn default() -> Self {
        Executor::new()
    }
}

impl<C> fmt::Debug for Executor<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Executor")
            .field("nodes", &self.nodes.len())
            .field("idle_step", &self.idle_step)
            .field("exec_model", &self.exec_model)
            .finish()
    }
}

/// Drives several independent (executor, context) pairs for `duration` each,
/// with the pairs distributed over the rayon worker pool — the host-parallel
/// round option for sweep throughput. Each pair's rounds run strictly in
/// order on one worker, so every mission's schedule (and therefore its
/// result) is bit-identical to a sequential [`Executor::run_for`] call; only
/// rounds of *different* pairs overlap on host threads. Honours the rayon
/// thread count installed by the caller (e.g. a `ThreadPool::install` scope).
///
/// # Errors
///
/// Returns the first error any pair produced, in pair order.
pub fn run_all_for<C: NodeContext + Send>(
    pairs: &mut [(Executor<C>, C)],
    duration: SimDuration,
) -> Result<()> {
    pairs
        .par_iter_mut()
        .map(|(exec, ctx)| exec.run_for(ctx, duration))
        .collect::<Vec<Result<()>>>()
        .into_iter()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mav_types::MavError;

    struct Counter {
        name: String,
        period: SimDuration,
        cost: SimDuration,
        kernel: KernelId,
        stage: ExecStage,
        count: u32,
        fail_at: Option<u32>,
    }

    impl Counter {
        fn new(name: &str, period_ms: f64, cost_ms: f64, kernel: KernelId) -> Self {
            Counter {
                name: name.to_string(),
                period: SimDuration::from_millis(period_ms),
                cost: SimDuration::from_millis(cost_ms),
                kernel,
                stage: ExecStage::Monolithic,
                count: 0,
                fail_at: None,
            }
        }

        fn on_stage(mut self, stage: ExecStage) -> Self {
            self.stage = stage;
            self
        }
    }

    impl Node<SimClock> for Counter {
        fn name(&self) -> &str {
            &self.name
        }
        fn period(&self) -> SimDuration {
            self.period
        }
        fn stage(&self) -> ExecStage {
            self.stage
        }
        fn tick(&mut self, _ctx: &mut SimClock, _now: SimTime) -> Result<NodeOutput> {
            self.count += 1;
            if Some(self.count) == self.fail_at {
                return Err(MavError::runtime("node failed"));
            }
            Ok(NodeOutput::kernel(self.kernel, self.cost))
        }
    }

    #[test]
    fn nodes_run_at_their_period() {
        let mut clock = SimClock::new();
        let mut exec = Executor::new();
        exec.add_node(Counter::new("fast", 100.0, 10.0, KernelId::PathTracking));
        exec.add_node(Counter::new(
            "slow",
            1000.0,
            200.0,
            KernelId::MotionPlanning,
        ));
        exec.run_for(&mut clock, SimDuration::from_secs(5.0))
            .unwrap();
        let fast = exec.timer().invocations(KernelId::PathTracking);
        let slow = exec.timer().invocations(KernelId::MotionPlanning);
        assert!(
            fast > slow,
            "fast node should run more often ({fast} vs {slow})"
        );
        assert!(slow >= 3);
        assert_eq!(exec.node_count(), 2);
        assert_eq!(exec.node_names(), vec!["fast", "slow"]);
    }

    #[test]
    fn compute_time_advances_the_clock() {
        let mut clock = SimClock::new();
        let mut exec = Executor::new();
        exec.add_node(Counter::new(
            "heavy",
            100.0,
            500.0,
            KernelId::OctomapGeneration,
        ));
        exec.run_for(&mut clock, SimDuration::from_secs(2.0))
            .unwrap();
        // The kernel's simulated time must be accounted on the clock: at
        // least 2 s / 0.5 s = 4 invocations happened, but not many more since
        // each invocation costs 0.5 s of mission time.
        let n = exec.timer().invocations(KernelId::OctomapGeneration);
        assert!((4..=6).contains(&n), "unexpected invocation count {n}");
    }

    #[test]
    fn periods_are_anchored_not_restarted_per_round() {
        // A 100 ms node in a loop whose rounds never line up with its grid:
        // the node costs 30 ms and idle rounds advance by the 50 ms idle
        // step, so dispatch happens up to one round after each due time.
        // Restarting the period at the round start (the old `now + period`)
        // loses that offset every cycle and sags the effective rate to
        // ~1/(130..180 ms); anchoring (`next_due += period`) keeps it at
        // 10 Hz. 10 s of mission time must show ~100 invocations, not ~70.
        let mut clock = SimClock::new();
        let mut exec = Executor::new();
        exec.add_node(Counter::new(
            "anchored",
            100.0,
            30.0,
            KernelId::PathTracking,
        ));
        exec.run_for(&mut clock, SimDuration::from_secs(10.0))
            .unwrap();
        let n = exec.timer().invocations(KernelId::PathTracking);
        assert!(
            (95..=101).contains(&n),
            "effective rate drifted from nominal: {n} invocations in 10 s at 10 Hz"
        );
    }

    #[test]
    fn overloaded_node_degrades_without_catchup_bursts() {
        // A node whose cost (300 ms) dwarfs its period (100 ms): the clamp
        // must drop the missed ticks instead of replaying them, i.e. exactly
        // one invocation per round, each round ~300 ms long.
        let mut clock = SimClock::new();
        let mut exec = Executor::new();
        exec.add_node(Counter::new(
            "overloaded",
            100.0,
            300.0,
            KernelId::MotionPlanning,
        ));
        exec.run_for(&mut clock, SimDuration::from_secs(3.0))
            .unwrap();
        let n = exec.timer().invocations(KernelId::MotionPlanning);
        assert!(
            (10..=11).contains(&n),
            "expected one invocation per 300 ms round, got {n} in 3 s"
        );
    }

    #[test]
    fn delayed_rounds_never_refire_below_period_spacing() {
        // A long round elsewhere (the blocker's 375 ms charge) pushes the
        // 125 ms node more than a full period past its grid. The missed
        // ticks must be dropped — clamping `next_due` to `now` instead of
        // `now + period` would let the node run again in the very next
        // round, one 62.5 ms idle step after its previous invocation (two
        // "8 Hz camera frames" 62.5 ms apart). All values are dyadic so the
        // schedule arithmetic is float-exact.
        use std::sync::{Arc, Mutex};
        struct Stamper {
            times: Arc<Mutex<Vec<f64>>>,
        }
        impl Node<SimClock> for Stamper {
            fn name(&self) -> &str {
                "stamper"
            }
            fn period(&self) -> SimDuration {
                SimDuration::from_millis(125.0)
            }
            fn tick(&mut self, _ctx: &mut SimClock, now: SimTime) -> Result<NodeOutput> {
                self.times.lock().unwrap().push(now.as_secs());
                Ok(NodeOutput::idle())
            }
        }
        let times = Arc::new(Mutex::new(Vec::new()));
        let mut clock = SimClock::new();
        let mut exec = Executor::new();
        exec.idle_step = SimDuration::from_millis(62.5);
        exec.add_node(Counter::new(
            "blocker",
            1000.0,
            375.0,
            KernelId::MotionPlanning,
        ));
        exec.add_node(Stamper {
            times: Arc::clone(&times),
        });
        exec.run_for(&mut clock, SimDuration::from_secs(3.0))
            .unwrap();
        let times = times.lock().unwrap();
        assert!(times.len() >= 15, "stamper barely ran: {}", times.len());
        for pair in times.windows(2) {
            assert!(
                pair[1] - pair[0] >= 0.125 - 1e-9,
                "sub-period refire: invocations at {:.4} s and {:.4} s",
                pair[0],
                pair[1]
            );
        }
    }

    /// The camera+mapper overlap scenario of the pipelined model: a 125 ms
    /// camera on the sensing stage and a 250 ms mapper on the perception
    /// stage, both tick-synchronous. Serial charges 375 ms per round;
    /// pipelined charges the critical path — the 250 ms mapper — so the same
    /// twenty frames cost strictly less mission time, but never less than the
    /// slowest stage alone. All values are dyadic, so the clock arithmetic is
    /// float-exact and the bounds can be asserted with equality.
    #[test]
    fn pipelined_rounds_charge_the_critical_path_not_the_sum() {
        let run = |model: ExecModel| {
            let mut clock = SimClock::new();
            let mut exec = Executor::new().with_exec_model(model);
            exec.add_node(
                Counter::new("camera", 0.0, 125.0, KernelId::PointCloudGeneration)
                    .on_stage(ExecStage::Sensing),
            );
            exec.add_node(
                Counter::new("mapper", 0.0, 250.0, KernelId::OctomapGeneration)
                    .on_stage(ExecStage::Perception),
            );
            for _ in 0..20 {
                exec.step(&mut clock).unwrap();
            }
            (
                NodeContext::now(&clock).as_secs(),
                exec.timer().invocations(KernelId::OctomapGeneration),
            )
        };
        let (serial_secs, serial_frames) = run(ExecModel::Serial);
        let (pipelined_secs, pipelined_frames) = run(ExecModel::Pipelined);
        // Dispatch is identical: same frames integrated under both models.
        assert_eq!(serial_frames, 20);
        assert_eq!(pipelined_frames, 20);
        assert_eq!(serial_secs, 20.0 * 0.375, "serial must charge the sum");
        assert_eq!(
            pipelined_secs,
            20.0 * 0.25,
            "pipelined must charge the slowest stage (the mapper)"
        );
        assert!(pipelined_secs < serial_secs);
    }

    #[test]
    fn nodes_on_the_same_stage_still_serialize() {
        let mut clock = SimClock::new();
        let mut exec = Executor::new().with_exec_model(ExecModel::Pipelined);
        for name in ["detector", "tracker"] {
            exec.add_node(
                Counter::new(name, 0.0, 50.0, KernelId::ObjectDetection)
                    .on_stage(ExecStage::Perception),
            );
        }
        let charged = exec.step(&mut clock).unwrap();
        assert_eq!(
            charged.as_millis(),
            100.0,
            "same-stage nodes share a core: their latencies sum"
        );
    }

    #[test]
    fn monolithic_nodes_serialize_with_every_stage() {
        // A monolithic node occupies the whole pipeline, so its latency is
        // added on top of the critical path instead of overlapping it — and a
        // graph of only undeclared (monolithic) nodes charges exactly like
        // the serial model.
        let mut clock = SimClock::new();
        let mut exec = Executor::new().with_exec_model(ExecModel::Pipelined);
        exec.add_node(Counter::new("whole", 0.0, 80.0, KernelId::PidControl));
        exec.add_node(
            Counter::new("camera", 0.0, 100.0, KernelId::PointCloudGeneration)
                .on_stage(ExecStage::Sensing),
        );
        exec.add_node(
            Counter::new("mapper", 0.0, 200.0, KernelId::OctomapGeneration)
                .on_stage(ExecStage::Perception),
        );
        let charged = exec.step(&mut clock).unwrap();
        assert_eq!(charged.as_millis(), 80.0 + 200.0);

        let mut clock = SimClock::new();
        let mut exec = Executor::new().with_exec_model(ExecModel::Pipelined);
        exec.add_node(Counter::new("a", 0.0, 30.0, KernelId::PidControl));
        exec.add_node(Counter::new("b", 0.0, 40.0, KernelId::PathTracking));
        let charged = exec.step(&mut clock).unwrap();
        assert_eq!(
            charged.as_millis(),
            70.0,
            "undeclared nodes must charge like the serial model"
        );
    }

    #[test]
    fn pipelined_periods_stay_anchored_to_the_grid() {
        // The PR 3 drift fix must survive the new charging model: a 100 ms
        // node whose rounds never line up with its grid (30 ms cost, 50 ms
        // idle steps) still runs at 10 Hz effective rate under pipelined
        // charging — `next_due + period` anchoring is independent of how the
        // round's latency is charged.
        let mut clock = SimClock::new();
        let mut exec = Executor::new().with_exec_model(ExecModel::Pipelined);
        exec.add_node(
            Counter::new("anchored", 100.0, 30.0, KernelId::PathTracking)
                .on_stage(ExecStage::Control),
        );
        exec.run_for(&mut clock, SimDuration::from_secs(10.0))
            .unwrap();
        let n = exec.timer().invocations(KernelId::PathTracking);
        assert!(
            (95..=101).contains(&n),
            "effective rate drifted from nominal under pipelined charging: \
             {n} invocations in 10 s at 10 Hz"
        );
    }

    #[test]
    fn run_all_for_matches_sequential_runs_bit_for_bit() {
        // The host-parallel round option: each (executor, context) pair's
        // schedule must be identical to a sequential run, whatever the rayon
        // thread count — only rounds of *different* pairs overlap on the host.
        let build = |i: usize| {
            let mut exec = Executor::new().with_exec_model(ExecModel::Pipelined);
            exec.add_node(
                Counter::new(
                    "camera",
                    0.0,
                    50.0 + i as f64 * 10.0,
                    KernelId::PointCloudGeneration,
                )
                .on_stage(ExecStage::Sensing),
            );
            exec.add_node(
                Counter::new("mapper", 0.0, 100.0, KernelId::OctomapGeneration)
                    .on_stage(ExecStage::Perception),
            );
            (exec, SimClock::new())
        };
        let mut sequential: Vec<(Executor<SimClock>, SimClock)> = (0..6).map(build).collect();
        for (exec, clock) in &mut sequential {
            exec.run_for(clock, SimDuration::from_secs(3.0)).unwrap();
        }
        let mut parallel: Vec<(Executor<SimClock>, SimClock)> = (0..6).map(build).collect();
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(3)
            .build()
            .unwrap();
        pool.install(|| run_all_for(&mut parallel, SimDuration::from_secs(3.0)))
            .unwrap();
        for (i, ((seq_exec, seq_clock), (par_exec, par_clock))) in
            sequential.iter().zip(&parallel).enumerate()
        {
            assert_eq!(
                NodeContext::now(seq_clock).as_secs().to_bits(),
                NodeContext::now(par_clock).as_secs().to_bits(),
                "pair {i}: clocks diverged"
            );
            for kernel in [KernelId::PointCloudGeneration, KernelId::OctomapGeneration] {
                assert_eq!(
                    seq_exec.timer().invocations(kernel),
                    par_exec.timer().invocations(kernel),
                    "pair {i}: invocation counts diverged"
                );
            }
        }
    }

    #[test]
    fn idle_executor_still_advances() {
        let mut clock = SimClock::new();
        let mut exec: Executor<SimClock> = Executor::new();
        exec.run_for(&mut clock, SimDuration::from_secs(1.0))
            .unwrap();
        assert!(NodeContext::now(&clock).as_secs() >= 1.0);
    }

    #[test]
    fn node_errors_propagate() {
        let mut clock = SimClock::new();
        let mut exec = Executor::new();
        let mut failing = Counter::new("flaky", 100.0, 1.0, KernelId::PidControl);
        failing.fail_at = Some(3);
        exec.add_node(failing);
        let err = exec
            .run_for(&mut clock, SimDuration::from_secs(10.0))
            .unwrap_err();
        assert!(matches!(err, MavError::Runtime { .. }));
    }

    #[test]
    fn node_output_helpers() {
        assert!(NodeOutput::idle().total().is_zero());
        let o = NodeOutput::kernel(KernelId::PathSmoothing, SimDuration::from_millis(55.0));
        assert!((o.total().as_millis() - 55.0).abs() < 1e-9);
        let many = NodeOutput::kernels(vec![
            (KernelId::PathSmoothing, SimDuration::from_millis(5.0)),
            (KernelId::MotionPlanning, SimDuration::from_millis(7.0)),
        ]);
        assert!((many.total().as_millis() - 12.0).abs() < 1e-9);
        assert!(!format!("{:?}", Executor::<SimClock>::new()).is_empty());
    }

    /// A context that records the order nodes ran in and can halt on demand.
    struct Script {
        clock: SimClock,
        log: Vec<String>,
        halt_after: Option<usize>,
    }

    impl NodeContext for Script {
        fn now(&self) -> SimTime {
            self.clock.now()
        }
        fn halted(&self) -> bool {
            self.halt_after.is_some_and(|n| self.log.len() >= n)
        }
        fn charge(&mut self, consumed: SimDuration, idle_step: SimDuration) -> Result<()> {
            self.clock.advance(if consumed.is_zero() {
                idle_step
            } else {
                consumed
            });
            Ok(())
        }
    }

    struct Tracer(String);
    impl Node<Script> for Tracer {
        fn name(&self) -> &str {
            &self.0
        }
        fn period(&self) -> SimDuration {
            SimDuration::ZERO
        }
        fn tick(&mut self, ctx: &mut Script, _now: SimTime) -> Result<NodeOutput> {
            ctx.log.push(self.0.clone());
            Ok(NodeOutput::kernel(
                KernelId::PathTracking,
                SimDuration::from_millis(10.0),
            ))
        }
    }

    #[test]
    fn same_tick_nodes_run_in_registration_order() {
        let mut ctx = Script {
            clock: SimClock::new(),
            log: Vec::new(),
            halt_after: None,
        };
        let mut exec = Executor::new();
        for name in ["sense", "map", "plan", "control"] {
            exec.add_node(Tracer(name.to_string()));
        }
        for _ in 0..3 {
            exec.step(&mut ctx).unwrap();
        }
        assert_eq!(
            ctx.log,
            vec![
                "sense", "map", "plan", "control", // round 1
                "sense", "map", "plan", "control", // round 2
                "sense", "map", "plan", "control", // round 3
            ]
        );
    }

    #[test]
    fn halting_stops_the_round_before_later_nodes_and_charges_nothing() {
        let mut ctx = Script {
            clock: SimClock::new(),
            log: Vec::new(),
            halt_after: Some(2),
        };
        let mut exec = Executor::new();
        for name in ["a", "b", "c"] {
            exec.add_node(Tracer(name.to_string()));
        }
        let charged = exec.step(&mut ctx).unwrap();
        assert_eq!(ctx.log, vec!["a", "b"], "node c must not run after halt");
        assert!(charged.is_zero(), "halted rounds charge nothing");
        assert!(ctx.clock.now().as_secs() == 0.0, "clock must not move");
        // A halted context makes further steps no-ops.
        assert!(exec.step(&mut ctx).unwrap().is_zero());
        assert_eq!(ctx.log.len(), 2);
    }
}
