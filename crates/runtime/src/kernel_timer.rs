//! Per-kernel simulated-time accounting.
//!
//! Every kernel invocation in the closed loop is charged to the mission clock
//! and recorded here; the totals reproduce the kernel-breakdown figure of the
//! paper (Fig. 15) and the per-application time profile of Table I.
//!
//! Despite the name, this module never reads the host clock: all durations
//! are [`SimDuration`] charges computed from the compute model, so the
//! recorded totals are bit-deterministic and safe to feed into mission
//! results. (`mav-lint`'s DET-WALLCLOCK rule keeps it that way.)

use mav_compute::KernelId;
use mav_types::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Accumulated invocation counts and total simulated runtime per kernel.
///
/// # Example
///
/// ```
/// use mav_compute::KernelId;
/// use mav_runtime::KernelTimer;
/// use mav_types::SimDuration;
///
/// let mut timer = KernelTimer::new();
/// timer.record(KernelId::OctomapGeneration, SimDuration::from_millis(630.0));
/// timer.record(KernelId::OctomapGeneration, SimDuration::from_millis(610.0));
/// assert_eq!(timer.invocations(KernelId::OctomapGeneration), 2);
/// assert!(timer.total(KernelId::OctomapGeneration).as_secs() > 1.2);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct KernelTimer {
    totals: BTreeMap<KernelId, SimDuration>,
    counts: BTreeMap<KernelId, u64>,
}

impl KernelTimer {
    /// Creates an empty timer.
    pub fn new() -> Self {
        KernelTimer::default()
    }

    /// Records one invocation of `kernel` that took `duration` of simulated
    /// time.
    pub fn record(&mut self, kernel: KernelId, duration: SimDuration) {
        *self.totals.entry(kernel).or_insert(SimDuration::ZERO) += duration;
        *self.counts.entry(kernel).or_insert(0) += 1;
    }

    /// Total simulated time spent in `kernel`.
    pub fn total(&self, kernel: KernelId) -> SimDuration {
        self.totals
            .get(&kernel)
            .copied()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Number of invocations of `kernel`.
    pub fn invocations(&self, kernel: KernelId) -> u64 {
        self.counts.get(&kernel).copied().unwrap_or(0)
    }

    /// Mean runtime per invocation of `kernel`, or zero if never invoked.
    pub fn mean(&self, kernel: KernelId) -> SimDuration {
        let count = self.invocations(kernel);
        if count == 0 {
            SimDuration::ZERO
        } else {
            self.total(kernel) / count as f64
        }
    }

    /// Total simulated compute time across every kernel.
    pub fn grand_total(&self) -> SimDuration {
        self.totals.values().copied().sum()
    }

    /// All (kernel, total time) pairs in a stable order.
    pub fn totals(&self) -> impl Iterator<Item = (&KernelId, &SimDuration)> {
        self.totals.iter()
    }

    /// The kernel with the largest total time, if any: the application's
    /// compute bottleneck.
    pub fn bottleneck(&self) -> Option<KernelId> {
        // `total_cmp` ≡ the historical `partial_cmp().expect()`: recorded
        // durations are finite non-negative sums of kernel charges, so the
        // NaN/±0.0 cases where the comparators differ never occur (ties
        // still resolve to the last maximal kernel in BTreeMap order).
        self.totals
            .iter()
            .max_by(|a, b| a.1.as_secs().total_cmp(&b.1.as_secs()))
            .map(|(k, _)| *k)
    }

    /// Merges another timer into this one (used when aggregating runs).
    pub fn merge(&mut self, other: &KernelTimer) {
        for (k, d) in &other.totals {
            *self.totals.entry(*k).or_insert(SimDuration::ZERO) += *d;
        }
        for (k, c) in &other.counts {
            *self.counts.entry(*k).or_insert(0) += c;
        }
    }
}

impl mav_types::ToJson for KernelTimer {
    fn to_json(&self) -> mav_types::Json {
        use mav_types::Json;
        Json::Array(
            self.totals
                .iter()
                .map(|(kernel, total)| {
                    Json::object()
                        .field("kernel", *kernel)
                        .field("total_secs", total.as_secs())
                        .field("invocations", self.invocations(*kernel))
                })
                .collect(),
        )
    }
}

impl fmt::Display for KernelTimer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kernel-timer[{} kernels, total {}]",
            self.totals.len(),
            self.grand_total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_counts_and_means() {
        let mut t = KernelTimer::new();
        t.record(KernelId::MotionPlanning, SimDuration::from_millis(200.0));
        t.record(KernelId::MotionPlanning, SimDuration::from_millis(100.0));
        t.record(KernelId::PathTracking, SimDuration::from_millis(1.0));
        assert_eq!(t.invocations(KernelId::MotionPlanning), 2);
        assert!((t.total(KernelId::MotionPlanning).as_millis() - 300.0).abs() < 1e-9);
        assert!((t.mean(KernelId::MotionPlanning).as_millis() - 150.0).abs() < 1e-9);
        assert_eq!(t.invocations(KernelId::ObjectDetection), 0);
        assert!(t.total(KernelId::ObjectDetection).is_zero());
        assert!(t.mean(KernelId::ObjectDetection).is_zero());
        assert!((t.grand_total().as_millis() - 301.0).abs() < 1e-9);
    }

    #[test]
    fn bottleneck_detection() {
        let mut t = KernelTimer::new();
        assert!(t.bottleneck().is_none());
        t.record(KernelId::OctomapGeneration, SimDuration::from_secs(5.0));
        t.record(KernelId::MotionPlanning, SimDuration::from_secs(2.0));
        assert_eq!(t.bottleneck(), Some(KernelId::OctomapGeneration));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = KernelTimer::new();
        let mut b = KernelTimer::new();
        a.record(KernelId::PathSmoothing, SimDuration::from_millis(50.0));
        b.record(KernelId::PathSmoothing, SimDuration::from_millis(60.0));
        b.record(KernelId::PidControl, SimDuration::from_millis(1.0));
        a.merge(&b);
        assert_eq!(a.invocations(KernelId::PathSmoothing), 2);
        assert!((a.total(KernelId::PathSmoothing).as_millis() - 110.0).abs() < 1e-9);
        assert_eq!(a.invocations(KernelId::PidControl), 1);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", KernelTimer::new()).is_empty());
    }
}
