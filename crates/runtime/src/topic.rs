//! Publisher/subscriber topics.
//!
//! MAVBench applications are ROS graphs: nodes communicate over latched
//! topics (latest value wins, e.g. the occupancy map) and FIFO topics (every
//! message is consumed exactly once, e.g. collision events). Both flavours are
//! provided here with cheaply clonable, thread-safe handles so nodes can hold
//! their endpoints independently.

use std::fmt;
use std::sync::Arc;
use std::sync::Mutex;

/// A latched topic: subscribers always observe the most recent message.
///
/// # Example
///
/// ```
/// use mav_runtime::Topic;
/// let topic: Topic<u32> = Topic::new("altitude");
/// topic.publish(5);
/// topic.publish(7);
/// assert_eq!(topic.latest(), Some(7));
/// assert_eq!(topic.sequence(), 2);
/// ```
pub struct Topic<T> {
    name: String,
    inner: Arc<Mutex<LatchedInner<T>>>,
}

struct LatchedInner<T> {
    latest: Option<T>,
    sequence: u64,
}

impl<T: Clone> Topic<T> {
    /// Creates an empty topic with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Topic {
            name: name.into(),
            inner: Arc::new(Mutex::new(LatchedInner {
                latest: None,
                sequence: 0,
            })),
        }
    }

    /// The topic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Publishes a message, replacing the previous one.
    pub fn publish(&self, message: T) {
        let mut inner = self.inner.lock().expect("topic lock poisoned");
        inner.latest = Some(message);
        inner.sequence += 1;
    }

    /// The most recent message, if any has been published.
    pub fn latest(&self) -> Option<T> {
        self.inner
            .lock()
            .expect("topic lock poisoned")
            .latest
            .clone()
    }

    /// Number of messages published so far.
    pub fn sequence(&self) -> u64 {
        self.inner.lock().expect("topic lock poisoned").sequence
    }

    /// Returns `true` if at least one message has been published.
    pub fn has_message(&self) -> bool {
        self.sequence() > 0
    }
}

impl<T> Clone for Topic<T> {
    fn clone(&self) -> Self {
        Topic {
            name: self.name.clone(),
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> fmt::Debug for Topic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Topic").field("name", &self.name).finish()
    }
}

/// A FIFO topic: every message is delivered once, in order.
///
/// # Example
///
/// ```
/// use mav_runtime::FifoTopic;
/// let queue: FifoTopic<&str> = FifoTopic::new("collisions");
/// queue.publish("near-miss");
/// queue.publish("impact");
/// assert_eq!(queue.drain(), vec!["near-miss", "impact"]);
/// assert!(queue.drain().is_empty());
/// ```
pub struct FifoTopic<T> {
    name: String,
    inner: Arc<Mutex<Vec<T>>>,
}

impl<T> FifoTopic<T> {
    /// Creates an empty FIFO topic with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        FifoTopic {
            name: name.into(),
            inner: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// The topic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends a message to the queue.
    pub fn publish(&self, message: T) {
        self.inner
            .lock()
            .expect("topic lock poisoned")
            .push(message);
    }

    /// Removes and returns all queued messages in publication order.
    pub fn drain(&self) -> Vec<T> {
        std::mem::take(&mut *self.inner.lock().expect("topic lock poisoned"))
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("topic lock poisoned").len()
    }

    /// Returns `true` when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for FifoTopic<T> {
    fn clone(&self) -> Self {
        FifoTopic {
            name: self.name.clone(),
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> fmt::Debug for FifoTopic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FifoTopic")
            .field("name", &self.name)
            .field("len", &self.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latched_topic_keeps_latest_only() {
        let t: Topic<i32> = Topic::new("t");
        assert!(t.latest().is_none());
        assert!(!t.has_message());
        t.publish(1);
        t.publish(2);
        t.publish(3);
        assert_eq!(t.latest(), Some(3));
        assert_eq!(t.sequence(), 3);
        assert!(t.has_message());
        assert_eq!(t.name(), "t");
    }

    #[test]
    fn cloned_handles_share_state() {
        let a: Topic<String> = Topic::new("shared");
        let b = a.clone();
        a.publish("hello".to_string());
        assert_eq!(b.latest().as_deref(), Some("hello"));
        b.publish("world".to_string());
        assert_eq!(a.latest().as_deref(), Some("world"));
        assert_eq!(a.sequence(), 2);
    }

    #[test]
    fn fifo_preserves_order_and_drains() {
        let q: FifoTopic<u8> = FifoTopic::new("q");
        assert!(q.is_empty());
        for i in 0..5 {
            q.publish(i);
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.drain(), vec![0, 1, 2, 3, 4]);
        assert!(q.is_empty());
    }

    #[test]
    fn topics_are_send_and_sync() {
        fn assert_traits<T: Send + Sync>() {}
        assert_traits::<Topic<u32>>();
        assert_traits::<FifoTopic<u32>>();
    }

    #[test]
    fn cross_thread_publication() {
        let t: Topic<u64> = Topic::new("x");
        let q: FifoTopic<u64> = FifoTopic::new("y");
        let t2 = t.clone();
        let q2 = q.clone();
        let handle = std::thread::spawn(move || {
            for i in 0..100 {
                t2.publish(i);
                q2.publish(i);
            }
        });
        handle.join().unwrap();
        assert_eq!(t.latest(), Some(99));
        assert_eq!(q.len(), 100);
    }

    #[test]
    fn debug_nonempty() {
        assert!(!format!("{:?}", Topic::<u8>::new("a")).is_empty());
        assert!(!format!("{:?}", FifoTopic::<u8>::new("b")).is_empty());
    }
}
