//! The simulated mission clock.

use mav_types::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The mission clock every node and model reads.
///
/// The closed-loop simulator advances this clock both for physics steps and
/// for the modelled latency of compute kernels, which is how compute speed
/// becomes mission time in MAVBench.
///
/// # Example
///
/// ```
/// use mav_runtime::SimClock;
/// use mav_types::SimDuration;
///
/// let mut clock = SimClock::new();
/// clock.advance(SimDuration::from_secs(1.5));
/// assert_eq!(clock.now().as_secs(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// Creates a clock at mission time zero.
    pub fn new() -> Self {
        SimClock { now: SimTime::ZERO }
    }

    /// The current mission time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `dt` and returns the new time.
    pub fn advance(&mut self, dt: SimDuration) -> SimTime {
        self.now += dt;
        self.now
    }

    /// Advances the clock to `target` if it is in the future; a target in the
    /// past leaves the clock unchanged (time never goes backwards).
    pub fn advance_to(&mut self, target: SimTime) -> SimTime {
        if target > self.now {
            self.now = target;
        }
        self.now
    }

    /// Elapsed time since `start`.
    pub fn elapsed_since(&self, start: SimTime) -> SimDuration {
        self.now.since(start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_accumulates() {
        let mut c = SimClock::new();
        assert_eq!(c.now(), SimTime::ZERO);
        c.advance(SimDuration::from_secs(2.0));
        c.advance(SimDuration::from_millis(500.0));
        assert!((c.now().as_secs() - 2.5).abs() < 1e-12);
        assert!((c.elapsed_since(SimTime::from_secs(1.0)).as_secs() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let mut c = SimClock::new();
        c.advance_to(SimTime::from_secs(5.0));
        assert_eq!(c.now().as_secs(), 5.0);
        c.advance_to(SimTime::from_secs(2.0));
        assert_eq!(c.now().as_secs(), 5.0);
    }
}
