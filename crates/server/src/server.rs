//! The HTTP front end: routing plus the accept loop.
//!
//! Routes:
//!
//! | Method & path          | Behaviour                                      |
//! |------------------------|------------------------------------------------|
//! | `POST /jobs`           | Submit a job spec. 202 queued / 200 cache hit / 400 malformed / 429 queue full |
//! | `GET /jobs`            | Status documents for every job                 |
//! | `GET /jobs/:id`        | One job's status (404 unknown)                 |
//! | `GET /jobs/:id/result` | Result document (409 until done, 404 unknown)  |
//! | `DELETE /jobs/:id`     | Remove a queued/done job (409 while running)   |

use crate::http::{read_request, write_response, ReadError, Request, Response};
use crate::service::{DeleteOutcome, JobService, ResultFetch, ServiceOptions, SubmitError};
use crate::spec::parse_spec;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Maps one parsed request to a response. Pure routing: all state lives in
/// the service, so this is directly testable without sockets.
pub fn handle(service: &JobService, request: &Request) -> Response {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("POST", ["jobs"]) => match parse_spec(&request.body) {
            Err(reason) => Response::error(400, &reason),
            Ok(spec) => match service.submit(spec) {
                Err(SubmitError::QueueFull) => {
                    Response::error(429, "job queue is full, retry later")
                        .with_header("retry-after", "1")
                }
                Ok((id, cached)) => {
                    let body = service
                        .status(id)
                        .map(|status| status.to_string_pretty() + "\n")
                        .unwrap_or_default();
                    Response::json(if cached { 200 } else { 202 }, body)
                }
            },
        },
        ("GET", ["jobs"]) => Response::json(200, service.list().to_string_pretty() + "\n"),
        ("GET", ["jobs", id]) => match parse_id(id) {
            None => Response::error(404, &format!("`{id}` is not a job id")),
            Some(id) => match service.status(id) {
                Some(status) => Response::json(200, status.to_string_pretty() + "\n"),
                None => Response::error(404, &format!("no job {id}")),
            },
        },
        ("GET", ["jobs", id, "result"]) => match parse_id(id) {
            None => Response::error(404, &format!("`{id}` is not a job id")),
            Some(id) => match service.result(id) {
                ResultFetch::Ready(result) => Response::json(200, (*result).clone()),
                ResultFetch::NotDone(state) => {
                    Response::error(409, &format!("job {id} is not done (status: {state})"))
                }
                ResultFetch::Missing => Response::error(404, &format!("no job {id}")),
            },
        },
        ("DELETE", ["jobs", id]) => match parse_id(id) {
            None => Response::error(404, &format!("`{id}` is not a job id")),
            Some(id) => match service.delete(id) {
                DeleteOutcome::Deleted => Response::json(
                    200,
                    mav_types::Json::object()
                        .field("deleted", id)
                        .to_string_pretty()
                        + "\n",
                ),
                DeleteOutcome::Running => {
                    Response::error(409, &format!("job {id} is running and cannot be deleted"))
                }
                DeleteOutcome::Missing => Response::error(404, &format!("no job {id}")),
            },
        },
        (_, ["jobs"]) | (_, ["jobs", ..]) => {
            Response::error(405, &format!("method {} not allowed here", request.method))
        }
        _ => Response::error(404, &format!("no such route: {}", request.path)),
    }
}

fn parse_id(segment: &str) -> Option<u64> {
    segment.parse().ok()
}

/// A running server: job service + accept loop, stoppable for tests.
pub struct Server {
    addr: SocketAddr,
    service: Arc<JobService>,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `bind` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// serving on background threads.
    pub fn start(bind: &str, options: ServiceOptions) -> std::io::Result<Server> {
        let listener = TcpListener::bind(bind)?;
        let addr = listener.local_addr()?;
        let service = Arc::new(JobService::start(options));
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(&listener, &service, &stop))
        };
        Ok(Server {
            addr,
            service,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Direct access to the job service (in-process callers, tests).
    pub fn service(&self) -> &JobService {
        &self.service
    }

    /// Blocks the calling thread until the accept loop exits — i.e. forever,
    /// for a server nothing calls [`Server::stop`] on. `mav-server`'s main
    /// parks here.
    pub fn run(mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Stops accepting, joins the accept thread and shuts the pool down.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() the loop is parked in.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.service.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, service: &Arc<JobService>, stop: &Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        let _ = stream.set_nodelay(true);
        let service = Arc::clone(service);
        std::thread::spawn(move || handle_connection(&service, stream));
    }
}

/// Serves one connection: a sequential keep-alive request loop.
fn handle_connection(service: &JobService, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match read_request(&mut reader) {
            Ok(request) => {
                let response = handle(service, &request);
                if write_response(&mut writer, &response, request.keep_alive).is_err()
                    || !request.keep_alive
                {
                    return;
                }
            }
            Err(ReadError::Closed) | Err(ReadError::Io(_)) => return,
            Err(ReadError::Malformed(reason)) => {
                let _ = write_response(&mut writer, &Response::error(400, &reason), false);
                return;
            }
            Err(ReadError::TooLarge(n)) => {
                let response = Response::error(413, &format!("body of {n} bytes is too large"));
                let _ = write_response(&mut writer, &response, false);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(method: &str, path: &str, body: &[u8]) -> Request {
        Request {
            method: method.into(),
            path: path.into(),
            body: body.to_vec(),
            keep_alive: true,
        }
    }

    fn test_service(workers: usize, capacity: usize) -> JobService {
        JobService::start(ServiceOptions {
            workers,
            queue_capacity: capacity,
        })
    }

    #[test]
    fn routing_covers_errors_without_sockets() {
        let service = test_service(0, 2);
        assert_eq!(handle(&service, &request("GET", "/", b"")).status, 404);
        assert_eq!(handle(&service, &request("PUT", "/jobs", b"")).status, 405);
        assert_eq!(
            handle(&service, &request("GET", "/jobs/abc", b"")).status,
            404
        );
        assert_eq!(
            handle(&service, &request("GET", "/jobs/7", b"")).status,
            404
        );
        assert_eq!(
            handle(&service, &request("DELETE", "/jobs/7", b"")).status,
            404
        );
        let bad = handle(&service, &request("POST", "/jobs", b"{\"type\":\"x\"}"));
        assert_eq!(bad.status, 400);
        assert!(bad.body.contains("error"));
    }

    #[test]
    fn submit_list_and_backpressure() {
        let service = test_service(0, 1);
        let spec = br#"{"type":"mission","config":{"application":"scanning"}}"#;
        let first = handle(&service, &request("POST", "/jobs", spec));
        assert_eq!(first.status, 202, "{}", first.body);
        let spec2 = br#"{"type":"mission","config":{"application":"scanning","seed":9}}"#;
        let full = handle(&service, &request("POST", "/jobs", spec2));
        assert_eq!(full.status, 429);
        assert!(full
            .extra_headers
            .iter()
            .any(|(name, _)| name == "retry-after"));
        let list = handle(&service, &request("GET", "/jobs", b""));
        assert_eq!(list.status, 200);
        assert!(list.body.contains("\"queued\""));
        let pending = handle(&service, &request("GET", "/jobs/1/result", b""));
        assert_eq!(pending.status, 409);
    }
}
