//! `mav-server` — the MAVBench-RS mission-simulation job server.

use mav_server::{Server, ServiceOptions};

const USAGE: &str = "mav-server — mission-simulation-as-a-service for MAVBench-RS

USAGE:
    mav-server [--addr HOST:PORT] [--workers N] [--queue-capacity N]

OPTIONS:
    --addr HOST:PORT    Listen address (default: 127.0.0.1:8088; port 0 picks
                        an ephemeral port, printed on startup)
    --workers N         Worker threads running jobs (default: 2; 0 accepts
                        jobs but never runs them — a backpressure test hook)
    --queue-capacity N  Queued jobs before POST /jobs returns 429 (default: 64)
    -h, --help          This help

API:
    POST   /jobs            submit {\"type\":\"mission\"|\"sweep\", …} (see README)
    GET    /jobs            all job statuses
    GET    /jobs/:id        one job's status and progress
    GET    /jobs/:id/result the result document (409 until done)
    DELETE /jobs/:id        remove a queued or finished job";

fn main() {
    let mut addr = "127.0.0.1:8088".to_string();
    let mut options = ServiceOptions::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_for = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value\n\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => addr = value_for("--addr"),
            "--workers" => {
                options.workers = parse_count(&value_for("--workers"), "--workers");
            }
            "--queue-capacity" => {
                options.queue_capacity =
                    parse_count(&value_for("--queue-capacity"), "--queue-capacity").max(1);
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let server = match Server::start(&addr, options.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: binding {addr}: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "mav-server listening on http://{} ({} workers, queue capacity {})",
        server.addr(),
        options.workers,
        options.queue_capacity
    );
    server.run();
}

fn parse_count(value: &str, flag: &str) -> usize {
    value.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid {flag} value `{value}`\n\n{USAGE}");
        std::process::exit(2);
    })
}
