//! Mission-simulation-as-a-service for MAVBench-RS.
//!
//! `mav-server` exposes the closed-loop simulator over a small HTTP/1.1 job
//! API — submit a mission or reliability-sweep spec, poll its progress,
//! fetch its result — built entirely on `std::net` (the build environment is
//! offline, so there is no HTTP framework underneath; see [`http`]).
//!
//! The moving parts:
//!
//! * [`spec`] — the wire job spec. It parses through the same typed
//!   `FromJson`/`parse` functions the CLI flags use, so every mission knob a
//!   `fig*` binary accepts is reachable from a job document, and defines the
//!   content-addressed cache key (SHA-256 of the canonical compact JSON).
//! * [`service`] — the bounded job queue (429 backpressure), the dispatcher
//!   thread, the worker pool (one episode scratch per worker), and the
//!   result cache whose hits are byte-identical to fresh runs.
//! * [`server`] — request routing and the TCP accept loop.

#![warn(missing_docs)]

pub mod http;
pub mod server;
pub mod service;
pub mod spec;

pub use server::{handle, Server};
pub use service::{DeleteOutcome, JobService, JobState, ResultFetch, ServiceOptions, SubmitError};
pub use spec::{parse_spec, JobSpec};
