//! The job service: bounded queue → dispatcher → worker pool, plus the
//! content-addressed result cache.
//!
//! Submission is synchronous and cheap: the spec is parsed and validated by
//! the caller, the cache is consulted, and the job either lands in the
//! bounded queue (backpressure: a full queue is the caller's 429) or is born
//! `done` on a cache hit. A dedicated dispatcher thread hands queued jobs to
//! workers over a rendezvous channel, so jobs stay *in the queue* — and
//! count against its capacity — until a worker is actually free. Each worker
//! thread owns its episode scratch (the thread-local behind
//! [`mav_core::with_episode_scratch`]) and runs missions and sweeps through
//! exactly the code paths the harness binaries use.
//!
//! Determinism: a job's result document is a pure function of its canonical
//! spec. Missions run on the simulated clock; sweeps run the sharded
//! shard-order-merge path whose bytes are thread-count invariant. The result
//! cache therefore returns byte-identical documents to a fresh run — pinned
//! by `tests/server_api.rs`.

use crate::spec::JobSpec;
use mav_core::reliability::reliability_sweep_classified_observed;
use mav_core::{run_mission_with_scratch, with_episode_scratch, SweepRunner};
use mav_types::{Json, ToJson};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// How the pool is shaped.
#[derive(Debug, Clone)]
pub struct ServiceOptions {
    /// Worker threads. `0` is a deliberate test hook: nothing ever runs, so
    /// the queue fills deterministically and 429 behaviour is observable.
    pub workers: usize,
    /// Jobs the queue holds before submissions are rejected.
    pub queue_capacity: usize,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            workers: 2,
            queue_capacity: 64,
        }
    }
}

/// Lifecycle of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the bounded queue.
    Queued,
    /// Picked up by a worker.
    Running,
    /// Finished; the result document is available.
    Done,
}

impl JobState {
    /// The wire label used in status documents.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
        }
    }
}

/// Everything the table remembers about one job.
struct JobEntry {
    spec: JobSpec,
    cache_key: String,
    state: JobState,
    cached: bool,
    progress: Arc<AtomicU64>,
    total: u64,
    result: Option<Arc<String>>,
}

impl JobEntry {
    fn status_json(&self, id: u64) -> Json {
        Json::object()
            .field("id", id)
            .field("status", self.state.label())
            .field(
                "progress",
                Json::object()
                    .field(
                        "done",
                        self.progress.load(Ordering::Relaxed).min(self.total),
                    )
                    .field("total", self.total),
            )
            .field("cached", self.cached)
            .field("cache_key", self.cache_key.as_str())
    }
}

/// Mutable service state behind one lock.
struct TableState {
    next_id: u64,
    jobs: BTreeMap<u64, JobEntry>,
    queue: VecDeque<u64>,
    cache: BTreeMap<String, Arc<String>>,
    shutdown: bool,
}

struct Inner {
    state: Mutex<TableState>,
    work_ready: Condvar,
    queue_capacity: usize,
}

/// What a worker needs to run one job without touching the table lock.
struct WorkItem {
    id: u64,
    spec: JobSpec,
    cache_key: String,
    progress: Arc<AtomicU64>,
}

/// Why a submission was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded queue is at capacity: try again later (HTTP 429).
    QueueFull,
}

/// Outcome of asking for a job's result.
pub enum ResultFetch {
    /// The job finished; these are the result bytes.
    Ready(Arc<String>),
    /// The job exists but has not finished; the label is its current state.
    NotDone(&'static str),
    /// No such job.
    Missing,
}

/// Outcome of a delete request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeleteOutcome {
    /// The job was removed (its cached result, if any, stays in the cache).
    Deleted,
    /// The job is mid-run and cannot be removed.
    Running,
    /// No such job.
    Missing,
}

/// The dispatcher/worker-pool job service.
pub struct JobService {
    inner: Arc<Inner>,
    threads: Mutex<Vec<JoinHandle<()>>>,
}

impl JobService {
    /// Starts the dispatcher and `options.workers` workers.
    pub fn start(options: ServiceOptions) -> JobService {
        let inner = Arc::new(Inner {
            state: Mutex::new(TableState {
                next_id: 1,
                jobs: BTreeMap::new(),
                queue: VecDeque::new(),
                cache: BTreeMap::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            queue_capacity: options.queue_capacity.max(1),
        });
        let mut threads = Vec::new();
        if options.workers > 0 {
            // Rendezvous channel: the dispatcher's send blocks until a worker
            // is free, so waiting jobs stay in (and are counted against) the
            // bounded queue rather than piling up invisibly in a channel.
            let (tx, rx) = sync_channel::<WorkItem>(0);
            let rx = Arc::new(Mutex::new(rx));
            {
                let inner = Arc::clone(&inner);
                threads.push(std::thread::spawn(move || dispatcher_loop(&inner, &tx)));
            }
            for _ in 0..options.workers {
                let inner = Arc::clone(&inner);
                let rx = Arc::clone(&rx);
                threads.push(std::thread::spawn(move || worker_loop(&inner, &rx)));
            }
        }
        JobService {
            inner,
            threads: Mutex::new(threads),
        }
    }

    /// Submits a parsed spec. A cache hit creates a job that is already
    /// `done` (flagged `cached`); otherwise the job is queued, or rejected
    /// when the queue is full.
    pub fn submit(&self, spec: JobSpec) -> Result<(u64, bool), SubmitError> {
        let cache_key = spec.cache_key();
        let total = spec.total_units();
        let mut state = self.inner.state.lock().expect("service lock");
        if let Some(result) = state.cache.get(&cache_key).cloned() {
            let id = state.next_id;
            state.next_id += 1;
            state.jobs.insert(
                id,
                JobEntry {
                    spec,
                    cache_key,
                    state: JobState::Done,
                    cached: true,
                    progress: Arc::new(AtomicU64::new(total)),
                    total,
                    result: Some(result),
                },
            );
            return Ok((id, true));
        }
        if state.queue.len() >= self.inner.queue_capacity {
            return Err(SubmitError::QueueFull);
        }
        let id = state.next_id;
        state.next_id += 1;
        state.jobs.insert(
            id,
            JobEntry {
                spec,
                cache_key,
                state: JobState::Queued,
                cached: false,
                progress: Arc::new(AtomicU64::new(0)),
                total,
                result: None,
            },
        );
        state.queue.push_back(id);
        drop(state);
        self.inner.work_ready.notify_one();
        Ok((id, false))
    }

    /// The status document for one job, or `None` when unknown.
    pub fn status(&self, id: u64) -> Option<Json> {
        let state = self.inner.state.lock().expect("service lock");
        state.jobs.get(&id).map(|entry| entry.status_json(id))
    }

    /// The status documents of every job, in id order.
    pub fn list(&self) -> Json {
        let state = self.inner.state.lock().expect("service lock");
        let jobs: Vec<Json> = state
            .jobs
            .iter()
            .map(|(id, entry)| entry.status_json(*id))
            .collect();
        Json::object().field("jobs", Json::Array(jobs))
    }

    /// The result bytes for one job.
    pub fn result(&self, id: u64) -> ResultFetch {
        let state = self.inner.state.lock().expect("service lock");
        match state.jobs.get(&id) {
            None => ResultFetch::Missing,
            Some(entry) => match &entry.result {
                Some(result) => ResultFetch::Ready(Arc::clone(result)),
                None => ResultFetch::NotDone(entry.state.label()),
            },
        }
    }

    /// Removes a queued or finished job. Running jobs cannot be removed; a
    /// finished job's result stays in the content-addressed cache.
    pub fn delete(&self, id: u64) -> DeleteOutcome {
        let mut state = self.inner.state.lock().expect("service lock");
        match state.jobs.get(&id).map(|e| e.state) {
            None => DeleteOutcome::Missing,
            Some(JobState::Running) => DeleteOutcome::Running,
            Some(JobState::Queued) => {
                state.queue.retain(|&queued| queued != id);
                state.jobs.remove(&id);
                DeleteOutcome::Deleted
            }
            Some(JobState::Done) => {
                state.jobs.remove(&id);
                DeleteOutcome::Deleted
            }
        }
    }

    /// Stops the dispatcher and workers and joins them. Queued jobs are
    /// abandoned; the running job (if any) completes first.
    pub fn shutdown(&self) {
        {
            let mut state = self.inner.state.lock().expect("service lock");
            state.shutdown = true;
        }
        self.inner.work_ready.notify_all();
        let mut threads = self.threads.lock().expect("threads lock");
        for handle in threads.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for JobService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn dispatcher_loop(inner: &Inner, tx: &SyncSender<WorkItem>) {
    loop {
        let item = {
            let mut state = inner.state.lock().expect("service lock");
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(id) = state.queue.pop_front() {
                    // Ids only enter the queue alongside their entry, and
                    // delete() removes both together, so the entry exists.
                    let Some(entry) = state.jobs.get(&id) else {
                        continue;
                    };
                    break WorkItem {
                        id,
                        spec: entry.spec.clone(),
                        cache_key: entry.cache_key.clone(),
                        progress: Arc::clone(&entry.progress),
                    };
                }
                state = inner.work_ready.wait(state).expect("service lock");
            }
        };
        // Blocks until a worker takes the job; on shutdown the workers hang
        // up and the send fails, which ends the dispatcher too.
        if tx.send(item).is_err() {
            return;
        }
    }
}

fn worker_loop(inner: &Inner, rx: &Arc<Mutex<Receiver<WorkItem>>>) {
    loop {
        // Hold the receiver lock only for the handoff, never while running.
        let item = {
            let shared = rx.lock().expect("worker receiver lock");
            match shared.recv() {
                Ok(item) => item,
                Err(_) => return,
            }
        };
        {
            let mut state = inner.state.lock().expect("service lock");
            if state.shutdown {
                return;
            }
            if let Some(entry) = state.jobs.get_mut(&item.id) {
                entry.state = JobState::Running;
            }
        }
        let result = Arc::new(execute(&item.spec, &item.progress));
        let mut state = inner.state.lock().expect("service lock");
        state.cache.insert(item.cache_key, Arc::clone(&result));
        if let Some(entry) = state.jobs.get_mut(&item.id) {
            entry.state = JobState::Done;
            entry.result = Some(result);
        }
        if state.shutdown {
            return;
        }
    }
}

/// Runs one job to its result document. Pure in the spec: no job id, no
/// timestamps, no host detail — the cache-hit byte-identity test depends on
/// it, and so does serving the same cached bytes to every later submitter.
fn execute(spec: &JobSpec, progress: &AtomicU64) -> String {
    let result = match spec {
        JobSpec::Mission { config } => {
            let report = with_episode_scratch(|scratch| {
                run_mission_with_scratch((**config).clone(), scratch)
            });
            progress.store(1, Ordering::Relaxed);
            Json::object()
                .field("kind", "mission")
                .field("report", report.to_json())
        }
        JobSpec::Sweep {
            scenario,
            episodes,
            shard_size,
        } => {
            // One sweep thread per worker: parallelism comes from the pool,
            // and the sharded merge makes the bytes thread-count invariant
            // anyway — this just avoids nested thread pools.
            let runner = SweepRunner::new().with_threads(1);
            let (stats, classes) = reliability_sweep_classified_observed(
                &runner,
                scenario,
                *episodes,
                *shard_size,
                &|_| {
                    progress.fetch_add(1, Ordering::Relaxed);
                },
            );
            let classes_json = classes.iter().fold(Json::object(), |json, (name, class)| {
                json.field(name, class.to_json())
            });
            Json::object()
                .field("kind", "sweep")
                .field("stats", stats.to_json())
                .field("classes", classes_json)
        }
    };
    let document = Json::object()
        .field("spec", spec.to_json())
        .field("result", result);
    document.to_string_pretty() + "\n"
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parse_spec;

    fn mission_spec(seed: u64) -> JobSpec {
        let body = format!(
            r#"{{"type":"mission","config":{{"application":"scanning","seed":{seed},
                "environment":{{"extent":14.0}},"camera":{{"width":16,"height":12}},
                "time_budget_secs":60.0}}}}"#
        );
        parse_spec(body.as_bytes()).expect("test spec parses")
    }

    fn wait_done(service: &JobService, id: u64) -> Arc<String> {
        loop {
            match service.result(id) {
                ResultFetch::Ready(result) => return result,
                ResultFetch::NotDone(_) => std::thread::yield_now(),
                ResultFetch::Missing => panic!("job {id} vanished"),
            }
        }
    }

    #[test]
    fn submit_run_and_cache_hit() {
        let service = JobService::start(ServiceOptions {
            workers: 1,
            queue_capacity: 8,
        });
        let (id, cached) = service.submit(mission_spec(3)).unwrap();
        assert!(!cached);
        let fresh = wait_done(&service, id);
        assert!(fresh.contains("\"kind\": \"mission\""));

        let (hit_id, cached) = service.submit(mission_spec(3)).unwrap();
        assert!(cached, "second submission of the same spec is a cache hit");
        assert_ne!(hit_id, id, "cache hits still get their own job id");
        match service.result(hit_id) {
            ResultFetch::Ready(hit) => assert_eq!(*hit, *fresh, "cache hit is byte-identical"),
            _ => panic!("cache-hit job should be done immediately"),
        }
    }

    #[test]
    fn zero_workers_fill_the_queue_deterministically() {
        let service = JobService::start(ServiceOptions {
            workers: 0,
            queue_capacity: 2,
        });
        assert!(service.submit(mission_spec(1)).is_ok());
        assert!(service.submit(mission_spec(2)).is_ok());
        assert_eq!(service.submit(mission_spec(3)), Err(SubmitError::QueueFull));
        // Deleting a queued job frees capacity again.
        assert_eq!(service.delete(1), DeleteOutcome::Deleted);
        assert!(service.submit(mission_spec(3)).is_ok());
        assert_eq!(service.delete(99), DeleteOutcome::Missing);
    }

    #[test]
    fn status_and_list_render_job_state() {
        let service = JobService::start(ServiceOptions {
            workers: 0,
            queue_capacity: 4,
        });
        let (id, _) = service.submit(mission_spec(5)).unwrap();
        let status = service.status(id).unwrap().to_string_compact();
        assert!(status.contains("\"status\":\"queued\""), "{status}");
        assert!(status.contains("\"cached\":false"), "{status}");
        let list = service.list().to_string_compact();
        assert!(list.contains("\"jobs\":["), "{list}");
        assert!(service.status(id + 1).is_none());
        match service.result(id) {
            ResultFetch::NotDone(label) => assert_eq!(label, "queued"),
            _ => panic!("queued job must not have a result"),
        }
    }
}
