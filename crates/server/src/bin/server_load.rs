//! `server_load` — the mav-server load client.
//!
//! Drives a running `mav-server` with a mixed batch of mission and sweep
//! jobs over several keep-alive connections, twice: first cold (every spec
//! unique → every job runs), then again with the identical specs (every job
//! a cache hit). Reports jobs/sec for both phases and verifies the cached
//! result bytes match the cold-run bytes.
//!
//! This is harness code: it measures *host* throughput of the server, so it
//! reads the wall clock. No wall time flows into any job result — results
//! are pure functions of the job spec (see `crates/server/src/service.rs`).

use mav_types::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

const USAGE: &str = "server_load — load client for mav-server

USAGE:
    server_load [--addr HOST:PORT] [--jobs N] [--connections M] [--fast] [--json]

OPTIONS:
    --addr HOST:PORT  Server to drive (default: 127.0.0.1:8088)
    --jobs N          Jobs per phase (default: 24)
    --connections M   Concurrent keep-alive connections (default: 4)
    --fast            Small batch for smoke tests (8 jobs, 2 connections)
    --json            Emit the measurements as JSON
    -h, --help        This help";

struct Args {
    addr: String,
    jobs: usize,
    connections: usize,
    json: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:8088".into(),
        jobs: 24,
        connections: 4,
        json: false,
    };
    let mut jobs_set = false;
    let mut connections_set = false;
    let mut fast = false;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value_for = |flag: &str| {
            iter.next().unwrap_or_else(|| {
                eprintln!("error: {flag} needs a value\n\n{USAGE}");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => args.addr = value_for("--addr"),
            "--jobs" => {
                args.jobs = parse_count(&value_for("--jobs"), "--jobs");
                jobs_set = true;
            }
            "--connections" => {
                args.connections = parse_count(&value_for("--connections"), "--connections");
                connections_set = true;
            }
            "--fast" | "--quick" => fast = true,
            "--json" => args.json = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if fast {
        if !jobs_set {
            args.jobs = 8;
        }
        if !connections_set {
            args.connections = 2;
        }
    }
    args.jobs = args.jobs.max(1);
    args.connections = args.connections.clamp(1, args.jobs);
    args
}

fn parse_count(value: &str, flag: &str) -> usize {
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => n,
        _ => {
            eprintln!("error: invalid {flag} value `{value}`\n\n{USAGE}");
            std::process::exit(2);
        }
    }
}

/// The mixed job batch: mostly quick missions with distinct seeds, plus a
/// small sweep every sixth job. Specs are deterministic in the job index, so
/// phase two resubmits byte-identical documents.
fn job_specs(jobs: usize) -> Vec<String> {
    (0..jobs)
        .map(|i| {
            if i % 6 == 5 {
                format!(
                    r#"{{"type":"sweep","scenario":{{"application":"scanning","base_seed":{i},"extents":[14.0],"densities":[0.4],"noise_levels":[0.0]}},"episodes":2,"shard_size":2}}"#
                )
            } else {
                format!(
                    r#"{{"type":"mission","config":{{"application":"scanning","seed":{i},"environment":{{"extent":14.0}},"camera":{{"width":16,"height":12}},"time_budget_secs":90.0}}}}"#
                )
            }
        })
        .collect()
}

/// One minimal HTTP/1.1 response as the client sees it.
struct ClientResponse {
    status: u16,
    body: String,
}

/// One persistent keep-alive connection to the server.
struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Connection {
    fn open(addr: &str) -> std::io::Result<Connection> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Connection {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    fn roundtrip(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> std::io::Result<ClientResponse> {
        let request = format!(
            "{method} {path} HTTP/1.1\r\nhost: mav-server\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer.write_all(request.as_bytes())?;
        self.writer.flush()?;

        let mut status_line = String::new();
        self.reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad status line {status_line:?}"),
                )
            })?;
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header)?;
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().unwrap_or(0);
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok(ClientResponse {
            status,
            body: String::from_utf8_lossy(&body).into_owned(),
        })
    }
}

/// Runs one spec to completion on one connection: submit (retrying 429
/// backpressure), poll status until done, fetch the result bytes. Returns
/// `(result_bytes, was_cache_hit)`.
fn run_job(conn: &mut Connection, spec: &str) -> Result<(String, bool), String> {
    let submitted = loop {
        let response = conn
            .roundtrip("POST", "/jobs", spec)
            .map_err(|e| format!("submit: {e}"))?;
        match response.status {
            200 | 202 => break response,
            429 => std::thread::sleep(std::time::Duration::from_millis(20)),
            status => return Err(format!("submit: HTTP {status}: {}", response.body)),
        }
    };
    let cached = submitted.status == 200;
    let id = Json::parse(&submitted.body)
        .ok()
        .and_then(|json| json.get("id").and_then(Json::as_i128))
        .ok_or_else(|| format!("submit response has no id: {}", submitted.body))?;

    let status_path = format!("/jobs/{id}");
    loop {
        let response = conn
            .roundtrip("GET", &status_path, "")
            .map_err(|e| format!("poll: {e}"))?;
        if response.status != 200 {
            return Err(format!("poll: HTTP {}: {}", response.status, response.body));
        }
        let done = response.body.contains("\"status\": \"done\"");
        if done {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let result = conn
        .roundtrip("GET", &format!("/jobs/{id}/result"), "")
        .map_err(|e| format!("result: {e}"))?;
    if result.status != 200 {
        return Err(format!("result: HTTP {}: {}", result.status, result.body));
    }
    Ok((result.body, cached))
}

/// Drives one phase: all specs across `connections` worker threads, each on
/// its own keep-alive connection. Returns per-job results (spec order) plus
/// the cache-hit count.
fn run_phase(
    addr: &str,
    specs: &[String],
    connections: usize,
) -> Result<(Vec<String>, usize), String> {
    let mut slots: Vec<Option<(String, bool)>> = vec![None; specs.len()];
    std::thread::scope(|scope| -> Result<(), String> {
        let mut handles = Vec::new();
        for (chunk_index, (spec_chunk, slot_chunk)) in specs
            .chunks(specs.len().div_ceil(connections))
            .zip(slots.chunks_mut(specs.len().div_ceil(connections)))
            .enumerate()
        {
            handles.push(scope.spawn(move || -> Result<(), String> {
                let mut conn =
                    Connection::open(addr).map_err(|e| format!("connection {chunk_index}: {e}"))?;
                for (spec, slot) in spec_chunk.iter().zip(slot_chunk.iter_mut()) {
                    *slot = Some(run_job(&mut conn, spec)?);
                }
                Ok(())
            }));
        }
        for handle in handles {
            handle
                .join()
                .map_err(|_| "worker thread panicked".to_string())??;
        }
        Ok(())
    })?;
    let mut results = Vec::with_capacity(specs.len());
    let mut cache_hits = 0;
    for slot in slots {
        let (body, cached) = slot.ok_or("job never ran")?;
        if cached {
            cache_hits += 1;
        }
        results.push(body);
    }
    Ok((results, cache_hits))
}

fn main() {
    let args = parse_args();
    let specs = job_specs(args.jobs);

    // Harness wall-clock boundary: jobs/sec is host throughput metadata and
    // never flows into a job result (results are pure functions of specs).
    #[allow(clippy::disallowed_methods)]
    let clock = std::time::Instant::now;

    let cold_start = clock();
    let (cold_results, cold_hits) = match run_phase(&args.addr, &specs, args.connections) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("server_load: cold phase failed: {e}");
            std::process::exit(1);
        }
    };
    let cold_secs = cold_start.elapsed().as_secs_f64();

    let hit_start = clock();
    let (hit_results, cache_hits) = match run_phase(&args.addr, &specs, args.connections) {
        Ok(out) => out,
        Err(e) => {
            eprintln!("server_load: cache-hit phase failed: {e}");
            std::process::exit(1);
        }
    };
    let hit_secs = hit_start.elapsed().as_secs_f64();

    let byte_identical = cold_results == hit_results;
    let cold_rate = args.jobs as f64 / cold_secs.max(1e-9);
    let hit_rate = args.jobs as f64 / hit_secs.max(1e-9);

    if args.json {
        let document = Json::object()
            .field("bench", "server_load")
            .field("addr", args.addr.as_str())
            .field("jobs", args.jobs as u64)
            .field("connections", args.connections as u64)
            .field("cold_secs", cold_secs)
            .field("cold_jobs_per_sec", cold_rate)
            .field("cold_cache_hits", cold_hits as u64)
            .field("cache_hit_secs", hit_secs)
            .field("cache_hit_jobs_per_sec", hit_rate)
            .field("cache_hits", cache_hits as u64)
            .field("byte_identical", byte_identical);
        println!("{}", document.to_string_pretty());
    } else {
        println!(
            "== server_load: {} jobs over {} connections ==",
            args.jobs, args.connections
        );
        println!("cold:      {cold_secs:.2} s  ({cold_rate:.1} jobs/s, {cold_hits} cache hits)");
        println!("cache-hit: {hit_secs:.2} s  ({hit_rate:.1} jobs/s, {cache_hits} cache hits)");
        println!(
            "cached results byte-identical to cold run: {}",
            if byte_identical { "yes" } else { "NO" }
        );
    }

    if !byte_identical {
        eprintln!("server_load: cache-hit results differ from cold-run results");
        std::process::exit(1);
    }
    if cache_hits != args.jobs {
        eprintln!(
            "server_load: expected {} cache hits in phase two, saw {cache_hits}",
            args.jobs
        );
        std::process::exit(1);
    }
}
