//! The wire-level job specification and its content-addressed cache key.
//!
//! A job is either one mission or one reliability sweep. Both forms parse
//! through the same typed `FromJson` implementations the CLI's flag parsers
//! delegate to, so every knob reachable from a `fig*`/`table*` command line
//! is reachable from an HTTP job spec — and sparse specs fill in the same
//! defaults in both worlds.
//!
//! The cache key is `sha256_hex` of the *canonical* compact JSON: the spec
//! is parsed into typed configs and re-rendered, so two sparse specs that
//! mean the same mission hash to the same key regardless of field order,
//! whitespace or omitted-but-defaulted fields.

use mav_core::reliability::DEFAULT_SHARD_SIZE;
use mav_core::{MissionConfig, ScenarioGenerator};
use mav_types::{sha256_hex, FromJson, Json, ToJson};

/// Upper bound on sweep size per job: a server job is an interactive unit,
/// not an offline campaign. Bigger sweeps should be split across jobs.
pub const MAX_SWEEP_EPISODES: u64 = 100_000;

/// One job: a single mission or a classified reliability sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// Run one closed-loop mission and return its report.
    Mission {
        /// The full mission configuration (sparse on the wire; defaults
        /// filled by `MissionConfig::from_json`). Boxed: a `MissionConfig`
        /// is ~700 bytes and would dwarf the sweep variant inline.
        config: Box<MissionConfig>,
    },
    /// Run a seeded reliability sweep and return aggregate + per-class stats.
    Sweep {
        /// The scenario space episodes are drawn from. Boxed like the
        /// mission config: specs travel through queues and tables, so the
        /// enum stays pointer-sized-ish rather than carrying the largest
        /// config inline.
        scenario: Box<ScenarioGenerator>,
        /// Number of episodes to run.
        episodes: u64,
        /// Shard size for the deterministic sharded sweep.
        shard_size: u64,
    },
}

impl JobSpec {
    /// Work units for progress reporting: 1 for a mission, the episode count
    /// for a sweep.
    pub fn total_units(&self) -> u64 {
        match self {
            JobSpec::Mission { .. } => 1,
            JobSpec::Sweep { episodes, .. } => *episodes,
        }
    }

    /// The canonical compact JSON rendering: the bytes the cache key hashes.
    pub fn canonical(&self) -> String {
        self.to_json().to_string_compact()
    }

    /// The content-addressed cache key: SHA-256 of [`JobSpec::canonical`].
    pub fn cache_key(&self) -> String {
        sha256_hex(self.canonical().as_bytes())
    }
}

impl ToJson for JobSpec {
    fn to_json(&self) -> Json {
        match self {
            JobSpec::Mission { config } => Json::object()
                .field("type", "mission")
                .field("config", config.to_json()),
            JobSpec::Sweep {
                scenario,
                episodes,
                shard_size,
            } => Json::object()
                .field("type", "sweep")
                .field("scenario", scenario.to_json())
                .field("episodes", *episodes)
                .field("shard_size", *shard_size),
        }
    }
}

impl FromJson for JobSpec {
    fn from_json(json: &Json) -> Result<JobSpec, String> {
        let kind: String = json.parse_field("type")?;
        match kind.as_str() {
            "mission" => {
                json.check_fields(&["type", "config"])?;
                Ok(JobSpec::Mission {
                    config: Box::new(json.parse_field("config")?),
                })
            }
            "sweep" => {
                json.check_fields(&["type", "scenario", "episodes", "shard_size"])?;
                let scenario: ScenarioGenerator = json.parse_field("scenario")?;
                let episodes: u64 = json.parse_field("episodes")?;
                if episodes == 0 {
                    return Err("episodes: must be at least 1".into());
                }
                if episodes > MAX_SWEEP_EPISODES {
                    return Err(format!(
                        "episodes: {episodes} exceeds the per-job limit of {MAX_SWEEP_EPISODES}"
                    ));
                }
                let shard_size: u64 = json.parse_field_or("shard_size", DEFAULT_SHARD_SIZE)?;
                if shard_size == 0 {
                    return Err("shard_size: must be at least 1".into());
                }
                Ok(JobSpec::Sweep {
                    scenario: Box::new(scenario),
                    episodes,
                    shard_size,
                })
            }
            other => Err(format!(
                "type: unknown job type `{other}` (expected mission or sweep)"
            )),
        }
    }
}

/// Parses a request body into a spec, mapping both JSON syntax errors and
/// semantic validation errors to one message suitable for a 400 body.
pub fn parse_spec(body: &[u8]) -> Result<JobSpec, String> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    let json = Json::parse(text).map_err(|e| format!("invalid JSON: {e}"))?;
    JobSpec::from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mav_compute::ApplicationId;

    #[test]
    fn sparse_and_canonical_specs_share_a_cache_key() {
        let sparse = parse_spec(br#"{"type": "mission", "config": {"application": "scanning"}}"#)
            .expect("sparse spec parses");
        let canonical = parse_spec(sparse.canonical().as_bytes()).expect("canonical re-parses");
        assert_eq!(sparse, canonical);
        assert_eq!(sparse.cache_key(), canonical.cache_key());
        assert_eq!(sparse.cache_key().len(), 64);
    }

    #[test]
    fn different_specs_hash_differently() {
        let a = parse_spec(br#"{"type":"mission","config":{"application":"scanning"}}"#).unwrap();
        let b = parse_spec(br#"{"type":"mission","config":{"application":"scanning","seed":7}}"#)
            .unwrap();
        assert_ne!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn sweep_specs_default_and_validate() {
        let spec = parse_spec(
            br#"{"type":"sweep","scenario":{"application":"package-delivery"},"episodes":8}"#,
        )
        .unwrap();
        match &spec {
            JobSpec::Sweep {
                scenario,
                episodes,
                shard_size,
            } => {
                assert_eq!(scenario.application, ApplicationId::PackageDelivery);
                assert_eq!(*episodes, 8);
                assert_eq!(*shard_size, DEFAULT_SHARD_SIZE);
            }
            other => panic!("expected sweep, got {other:?}"),
        }
        assert_eq!(spec.total_units(), 8);

        for bad in [
            &br#"{"type":"sweep","scenario":{"application":"scanning"},"episodes":0}"#[..],
            br#"{"type":"sweep","scenario":{"application":"scanning"},"episodes":9999999}"#,
            br#"{"type":"sweep","scenario":{"application":"scanning"}}"#,
            br#"{"type":"teleport"}"#,
            br#"{"config":{}}"#,
            b"not json",
            b"\xff\xfe",
        ] {
            assert!(parse_spec(bad).is_err(), "{:?} should be rejected", bad);
        }
    }

    #[test]
    fn unknown_fields_are_rejected_not_ignored() {
        let err = parse_spec(br#"{"type":"mission","config":{"application":"scanning","sede":3}}"#)
            .unwrap_err();
        assert!(err.contains("unknown field"), "{err}");
        let err =
            parse_spec(br#"{"type":"mission","config":{"application":"scanning"},"extra":1}"#)
                .unwrap_err();
        assert!(err.contains("unknown field"), "{err}");
    }
}
