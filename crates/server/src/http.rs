//! A deliberately small HTTP/1.1 layer on `std::net`.
//!
//! The build environment has no crates.io access, so the server speaks just
//! enough HTTP for its JSON job API: request line, headers, `Content-Length`
//! bodies, keep-alive. No chunked encoding, no TLS, no pipelining beyond the
//! sequential keep-alive loop. Anything malformed gets a JSON error response
//! and the connection is closed.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body. Job specs are small JSON documents; this
/// bound keeps a misbehaving client from ballooning server memory.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// One parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method, uppercased by the client (`GET`, `POST`, `DELETE`).
    pub method: String,
    /// Request target path, query string stripped.
    pub path: String,
    /// Request body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
    /// Whether the client asked to keep the connection open.
    pub keep_alive: bool,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection before a request line (normal end of a
    /// keep-alive session).
    Closed,
    /// The bytes on the wire were not an acceptable HTTP/1.1 request.
    Malformed(String),
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    TooLarge(usize),
    /// Transport error mid-request.
    Io(std::io::Error),
}

/// Reads one request from a buffered connection.
pub fn read_request(reader: &mut BufReader<TcpStream>) -> Result<Request, ReadError> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Err(ReadError::Closed),
        Ok(_) => {}
        Err(e) => return Err(ReadError::Io(e)),
    }
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("request line has no target".into()))?;
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(ReadError::Malformed(format!(
            "unsupported protocol `{version}`"
        )));
    }
    // Strip any query string: the job API routes on the path alone.
    let path = target.split('?').next().unwrap_or(target).to_string();

    let mut content_length = 0usize;
    // HTTP/1.1 defaults to keep-alive; `Connection: close` opts out.
    let mut keep_alive = !version.starts_with("HTTP/1.0");
    loop {
        let mut header = String::new();
        match reader.read_line(&mut header) {
            Ok(0) => return Err(ReadError::Malformed("connection closed mid-headers".into())),
            Ok(_) => {}
            Err(e) => return Err(ReadError::Io(e)),
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(ReadError::Malformed(format!("malformed header `{header}`")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| ReadError::Malformed(format!("bad content-length `{value}`")))?;
            }
            "connection" => {
                let value = value.to_ascii_lowercase();
                if value.contains("close") {
                    keep_alive = false;
                } else if value.contains("keep-alive") {
                    keep_alive = true;
                }
            }
            _ => {}
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(ReadError::TooLarge(content_length));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body).map_err(ReadError::Io)?;
    }
    Ok(Request {
        method,
        path,
        body,
        keep_alive,
    })
}

/// One response to serialize onto the wire.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body, always JSON in this API.
    pub body: String,
    /// Extra headers, e.g. `Retry-After` on 429.
    pub extra_headers: Vec<(String, String)>,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            body,
            extra_headers: Vec::new(),
        }
    }

    /// A `{"error": …}` response with the given status.
    pub fn error(status: u16, message: &str) -> Response {
        let body = mav_types::Json::object()
            .field("error", message)
            .to_string_pretty();
        Response::json(status, body + "\n")
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Response {
        self.extra_headers.push((name.into(), value.into()));
        self
    }

    /// The standard reason phrase for the codes this API uses.
    pub fn reason(&self) -> &'static str {
        match self.status {
            200 => "OK",
            202 => "Accepted",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            409 => "Conflict",
            413 => "Payload Too Large",
            429 => "Too Many Requests",
            _ => "Internal Server Error",
        }
    }
}

/// Writes a response; `keep_alive` picks the `Connection` header.
pub fn write_response(
    stream: &mut TcpStream,
    response: &Response,
    keep_alive: bool,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n",
        response.status,
        response.reason(),
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in &response.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    // One write for head + body: two small segments would trip the
    // Nagle/delayed-ACK interaction and add ~40 ms to every response.
    head.push_str(&response.body);
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Round-trips raw request bytes through a real socket pair.
    fn parse(raw: &str) -> Result<Request, ReadError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        client.write_all(raw.as_bytes()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        let mut reader = BufReader::new(server_side);
        read_request(&mut reader)
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse("POST /jobs HTTP/1.1\r\ncontent-length: 4\r\n\r\n{}ab").unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/jobs");
        assert_eq!(req.body, b"{}ab");
        assert!(req.keep_alive);
    }

    #[test]
    fn connection_close_and_queries_are_handled() {
        let req = parse("GET /jobs/3?verbose=1 HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert_eq!(req.path, "/jobs/3");
        assert!(!req.keep_alive);
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(matches!(
            parse("GET /jobs SMTP/9\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET /jobs HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        let huge = format!(
            "POST /jobs HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&huge), Err(ReadError::TooLarge(_))));
    }

    #[test]
    fn responses_carry_status_and_headers() {
        let r = Response::error(429, "queue full").with_header("retry-after", "1");
        assert_eq!(r.status, 429);
        assert_eq!(r.reason(), "Too Many Requests");
        assert!(r.body.contains("queue full"));
        assert_eq!(r.extra_headers.len(), 1);
    }
}
