//! End-to-end tests of the job API over real sockets: submit → poll →
//! result, backpressure, malformed specs, cache-hit byte-identity, and the
//! delete/conflict corners.

use mav_server::{Server, ServiceOptions};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

struct Reply {
    status: u16,
    body: String,
}

impl Client {
    fn connect(server: &Server) -> Client {
        let stream = TcpStream::connect(server.addr()).expect("connect to test server");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    fn send(&mut self, method: &str, path: &str, body: &str) -> Reply {
        let request = format!(
            "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        self.writer
            .write_all(request.as_bytes())
            .expect("write request");
        let mut status_line = String::new();
        self.reader
            .read_line(&mut status_line)
            .expect("status line");
        let status = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
        let mut content_length = 0usize;
        loop {
            let mut header = String::new();
            self.reader.read_line(&mut header).expect("header line");
            let header = header.trim_end();
            if header.is_empty() {
                break;
            }
            if let Some((name, value)) = header.split_once(':') {
                if name.trim().eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().expect("content-length value");
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body bytes");
        Reply {
            status,
            body: String::from_utf8(body).expect("utf-8 body"),
        }
    }

    fn job_id(reply: &Reply) -> u64 {
        let json = mav_types::Json::parse(&reply.body).expect("status document parses");
        json.get("id")
            .and_then(mav_types::Json::as_i128)
            .expect("status document has an id") as u64
    }

    fn wait_done(&mut self, id: u64) {
        loop {
            let status = self.send("GET", &format!("/jobs/{id}"), "");
            assert_eq!(status.status, 200, "{}", status.body);
            if status.body.contains("\"status\": \"done\"") {
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
}

fn start(workers: usize, queue_capacity: usize) -> Server {
    Server::start(
        "127.0.0.1:0",
        ServiceOptions {
            workers,
            queue_capacity,
        },
    )
    .expect("bind ephemeral port")
}

const MISSION_SPEC: &str = r#"{"type":"mission","config":{"application":"scanning","seed":11,"environment":{"extent":14.0},"camera":{"width":16,"height":12},"time_budget_secs":90.0}}"#;

const SWEEP_SPEC: &str = r#"{"type":"sweep","scenario":{"application":"scanning","base_seed":4,"extents":[14.0],"densities":[0.4],"noise_levels":[0.0]},"episodes":2,"shard_size":2}"#;

#[test]
fn submit_poll_result_happy_path() {
    let server = start(1, 8);
    let mut client = Client::connect(&server);

    let submitted = client.send("POST", "/jobs", MISSION_SPEC);
    assert_eq!(submitted.status, 202, "{}", submitted.body);
    assert!(
        submitted.body.contains("\"cached\": false"),
        "{}",
        submitted.body
    );
    let id = Client::job_id(&submitted);

    client.wait_done(id);
    let result = client.send("GET", &format!("/jobs/{id}/result"), "");
    assert_eq!(result.status, 200);
    assert!(
        result.body.contains("\"kind\": \"mission\""),
        "{}",
        result.body
    );
    assert!(result.body.contains("\"report\""), "{}", result.body);
    // The result echoes the canonical spec, so archives are self-describing.
    assert!(result.body.contains("\"spec\""), "{}", result.body);

    let list = client.send("GET", "/jobs", "");
    assert_eq!(list.status, 200);
    assert!(list.body.contains("\"jobs\""), "{}", list.body);
    server.stop();
}

#[test]
fn sweep_jobs_report_progress_and_finish() {
    let server = start(1, 8);
    let mut client = Client::connect(&server);
    let submitted = client.send("POST", "/jobs", SWEEP_SPEC);
    assert_eq!(submitted.status, 202, "{}", submitted.body);
    assert!(
        submitted.body.contains("\"total\": 2"),
        "{}",
        submitted.body
    );
    let id = Client::job_id(&submitted);
    client.wait_done(id);
    let result = client.send("GET", &format!("/jobs/{id}/result"), "");
    assert_eq!(result.status, 200);
    assert!(
        result.body.contains("\"kind\": \"sweep\""),
        "{}",
        result.body
    );
    assert!(result.body.contains("\"stats\""), "{}", result.body);
    server.stop();
}

#[test]
fn full_queue_returns_429_with_retry_after() {
    // Zero workers: nothing drains, so the queue fills deterministically.
    let server = start(0, 2);
    let mut client = Client::connect(&server);
    let one = client.send("POST", "/jobs", MISSION_SPEC);
    assert_eq!(one.status, 202, "{}", one.body);
    let second_spec = MISSION_SPEC.replace("\"seed\":11", "\"seed\":12");
    assert_eq!(client.send("POST", "/jobs", &second_spec).status, 202);
    let third_spec = MISSION_SPEC.replace("\"seed\":11", "\"seed\":13");
    let rejected = client.send("POST", "/jobs", &third_spec);
    assert_eq!(rejected.status, 429);
    assert!(rejected.body.contains("\"error\""), "{}", rejected.body);
    server.stop();
}

#[test]
fn malformed_specs_get_400_with_json_error_body() {
    let server = start(0, 2);
    let mut client = Client::connect(&server);
    for (body, expect) in [
        ("{not json", "invalid JSON"),
        (r#"{"type":"teleport"}"#, "unknown job type"),
        (r#"{"config":{"application":"scanning"}}"#, "missing field"),
        (
            r#"{"type":"mission","config":{"application":"scanning","sede":1}}"#,
            "unknown field",
        ),
        (
            r#"{"type":"mission","config":{"application":"scanning","physics_dt":-1.0}}"#,
            "physics_dt",
        ),
        (
            r#"{"type":"sweep","scenario":{"application":"scanning","rates":[]},"episodes":4}"#,
            "non-empty",
        ),
    ] {
        let reply = client.send("POST", "/jobs", body);
        assert_eq!(reply.status, 400, "spec {body} → {}", reply.body);
        assert!(reply.body.contains("\"error\""), "{}", reply.body);
        assert!(
            reply.body.contains(expect),
            "expected {expect:?} in {}",
            reply.body
        );
    }
    server.stop();
}

#[test]
fn cache_hits_are_byte_identical_to_fresh_runs() {
    let server = start(2, 8);
    let mut client = Client::connect(&server);

    let cold = client.send("POST", "/jobs", MISSION_SPEC);
    assert_eq!(cold.status, 202);
    let cold_id = Client::job_id(&cold);
    client.wait_done(cold_id);
    let cold_result = client.send("GET", &format!("/jobs/{cold_id}/result"), "");
    assert_eq!(cold_result.status, 200);

    // Same spec, but sparse/reordered: canonicalisation must find the cache.
    let resubmitted = client.send(
        "POST",
        "/jobs",
        r#"{"config":{"camera":{"height":12,"width":16},"time_budget_secs":90.0,"environment":{"extent":14.0},"application":"scanning","seed":11},"type":"mission"}"#,
    );
    assert_eq!(resubmitted.status, 200, "{}", resubmitted.body);
    assert!(
        resubmitted.body.contains("\"cached\": true"),
        "{}",
        resubmitted.body
    );
    let hit_id = Client::job_id(&resubmitted);
    let hit_result = client.send("GET", &format!("/jobs/{hit_id}/result"), "");
    assert_eq!(hit_result.status, 200);
    assert_eq!(
        hit_result.body, cold_result.body,
        "cache hit must be byte-identical to the fresh run"
    );
    server.stop();

    // Cross-instance: a brand-new server (empty cache) must produce the very
    // same bytes — results are pure functions of the canonical spec.
    let second_server = start(1, 8);
    let mut second_client = Client::connect(&second_server);
    let fresh = second_client.send("POST", "/jobs", MISSION_SPEC);
    assert_eq!(fresh.status, 202);
    let fresh_id = Client::job_id(&fresh);
    second_client.wait_done(fresh_id);
    let fresh_result = second_client.send("GET", &format!("/jobs/{fresh_id}/result"), "");
    assert_eq!(fresh_result.body, cold_result.body);
    second_server.stop();
}

#[test]
fn missing_jobs_conflicts_and_delete() {
    let server = start(0, 4);
    let mut client = Client::connect(&server);

    assert_eq!(client.send("GET", "/jobs/99", "").status, 404);
    assert_eq!(client.send("GET", "/jobs/99/result", "").status, 404);
    assert_eq!(client.send("DELETE", "/jobs/99", "").status, 404);
    assert_eq!(client.send("GET", "/jobs/abc", "").status, 404);
    assert_eq!(client.send("PUT", "/jobs", "").status, 405);
    assert_eq!(client.send("GET", "/nope", "").status, 404);

    let submitted = client.send("POST", "/jobs", MISSION_SPEC);
    assert_eq!(submitted.status, 202);
    let id = Client::job_id(&submitted);
    // No workers: the job stays queued, so its result is a 409 conflict…
    let pending = client.send("GET", &format!("/jobs/{id}/result"), "");
    assert_eq!(pending.status, 409);
    assert!(pending.body.contains("queued"), "{}", pending.body);
    // …and deleting it works and frees its queue slot.
    let deleted = client.send("DELETE", &format!("/jobs/{id}"), "");
    assert_eq!(deleted.status, 200);
    assert!(deleted.body.contains("\"deleted\""), "{}", deleted.body);
    assert_eq!(client.send("GET", &format!("/jobs/{id}"), "").status, 404);
    server.stop();
}
