//! Control kernels for MAVBench-RS: a PID controller and the path-tracking /
//! command-issue kernel that converts planned trajectories into velocity
//! commands for the flight controller.
//!
//! # Example
//!
//! ```
//! use mav_control::{PathTracker, PathTrackerConfig};
//! use mav_dynamics::MavState;
//! use mav_types::{SimTime, Trajectory, Vec3};
//!
//! let traj = Trajectory::from_waypoints(&[Vec3::ZERO, Vec3::new(5.0, 0.0, 0.0)], 1.0, SimTime::ZERO);
//! let tracker = PathTracker::new(PathTrackerConfig::default());
//! let cmd = tracker.command(&traj, &MavState::default(), SimTime::from_secs(1.0));
//! assert!(cmd.velocity.x > 0.0);
//! ```

#![warn(missing_docs)]

pub mod pid;
pub mod tracker;

pub use pid::{Pid, PidConfig};
pub use tracker::{PathTracker, PathTrackerConfig, TrackingCommand};
