//! Path tracking / command issue kernel.
//!
//! The control stage samples the planned trajectory at the current mission
//! time and converts it into a velocity command: the trajectory's feedforward
//! velocity plus a proportional correction of the position error, so that
//! small drifts accumulated by the vehicle are continuously corrected (the
//! paper's "path tracking / command issue" kernel).

use mav_dynamics::MavState;
use mav_types::{SimTime, Trajectory, Vec3};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Configuration of the path tracker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathTrackerConfig {
    /// Proportional gain on the position error, 1/s.
    pub position_gain: f64,
    /// Maximum magnitude of the corrective velocity, m/s.
    pub max_correction: f64,
    /// Distance from the final trajectory point at which the plan counts as
    /// completed, metres.
    pub completion_tolerance: f64,
}

impl Default for PathTrackerConfig {
    fn default() -> Self {
        PathTrackerConfig {
            position_gain: 1.5,
            max_correction: 3.0,
            completion_tolerance: 0.75,
        }
    }
}

/// Output of one tracking step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrackingCommand {
    /// Velocity command to hand to the flight controller, m/s.
    pub velocity: Vec3,
    /// Current cross-track (position) error, metres.
    pub cross_track_error: f64,
    /// `true` once the end of the trajectory has been reached.
    pub completed: bool,
}

/// The path-tracking kernel.
///
/// # Example
///
/// ```
/// use mav_control::{PathTracker, PathTrackerConfig};
/// use mav_dynamics::MavState;
/// use mav_types::{Pose, SimTime, Trajectory, Vec3};
///
/// let traj = Trajectory::from_waypoints(
///     &[Vec3::new(0.0, 0.0, 2.0), Vec3::new(10.0, 0.0, 2.0)],
///     2.0,
///     SimTime::ZERO,
/// );
/// let tracker = PathTracker::new(PathTrackerConfig::default());
/// let state = MavState::at_rest(Pose::new(Vec3::new(0.0, 0.5, 2.0), 0.0));
/// let cmd = tracker.command(&traj, &state, SimTime::from_secs(1.0));
/// assert!(!cmd.completed);
/// assert!(cmd.velocity.x > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PathTracker {
    config: PathTrackerConfig,
}

impl PathTracker {
    /// Creates a tracker.
    pub fn new(config: PathTrackerConfig) -> Self {
        PathTracker { config }
    }

    /// The configuration.
    pub fn config(&self) -> &PathTrackerConfig {
        &self.config
    }

    /// Computes the velocity command for the vehicle at `state` following
    /// `trajectory` at mission time `now`.
    ///
    /// An empty trajectory yields a zero command marked completed.
    pub fn command(
        &self,
        trajectory: &Trajectory,
        state: &MavState,
        now: SimTime,
    ) -> TrackingCommand {
        let Some(reference) = trajectory.sample(now) else {
            return TrackingCommand {
                velocity: Vec3::ZERO,
                cross_track_error: 0.0,
                completed: true,
            };
        };
        let error = reference.position - state.pose.position;
        let cross_track_error = error.norm();
        let correction = (error * self.config.position_gain).clamp_norm(self.config.max_correction);
        let velocity = reference.velocity + correction;
        let completed = match trajectory.last() {
            Some(last) => {
                now >= last.time
                    && state.pose.position.distance(&last.position)
                        <= self.config.completion_tolerance
            }
            None => true,
        };
        TrackingCommand {
            velocity,
            cross_track_error,
            completed,
        }
    }
}

impl fmt::Display for PathTracker {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "path-tracker[gain {}]", self.config.position_gain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mav_dynamics::{Quadrotor, QuadrotorConfig};
    use mav_types::Pose;

    fn line_trajectory() -> Trajectory {
        Trajectory::from_waypoints(
            &[Vec3::new(0.0, 0.0, 2.0), Vec3::new(20.0, 0.0, 2.0)],
            4.0,
            SimTime::ZERO,
        )
    }

    #[test]
    fn command_points_along_the_trajectory() {
        let tracker = PathTracker::default();
        let state = MavState::at_rest(Pose::new(Vec3::new(4.0, 0.0, 2.0), 0.0));
        let cmd = tracker.command(&line_trajectory(), &state, SimTime::from_secs(1.0));
        assert!(cmd.velocity.x > 0.0);
        assert!(!cmd.completed);
    }

    #[test]
    fn lateral_error_produces_corrective_velocity() {
        let tracker = PathTracker::default();
        // Vehicle displaced 2 m to the left of the reference.
        let state = MavState::at_rest(Pose::new(Vec3::new(4.0, 2.0, 2.0), 0.0));
        let cmd = tracker.command(&line_trajectory(), &state, SimTime::from_secs(1.0));
        assert!(
            cmd.velocity.y < 0.0,
            "correction should pull back towards the path"
        );
        assert!(cmd.cross_track_error > 1.9);
        // Correction magnitude is bounded.
        let huge_offset = MavState::at_rest(Pose::new(Vec3::new(4.0, 100.0, 2.0), 0.0));
        let cmd2 = tracker.command(&line_trajectory(), &huge_offset, SimTime::from_secs(1.0));
        assert!(cmd2.velocity.norm() <= 4.0 + tracker.config().max_correction + 1e-9);
    }

    #[test]
    fn completion_requires_time_and_proximity() {
        let tracker = PathTracker::default();
        let traj = line_trajectory();
        let end = traj.last().unwrap();
        // At the end time but far away: not complete.
        let far = MavState::at_rest(Pose::new(Vec3::new(5.0, 0.0, 2.0), 0.0));
        assert!(!tracker.command(&traj, &far, end.time).completed);
        // At the end time and at the goal: complete.
        let there = MavState::at_rest(Pose::new(end.position, 0.0));
        assert!(tracker.command(&traj, &there, end.time).completed);
        // Early in time even if already at the goal position: not complete.
        assert!(
            !tracker
                .command(&traj, &there, SimTime::from_secs(0.1))
                .completed
        );
    }

    #[test]
    fn empty_trajectory_is_immediately_complete() {
        let tracker = PathTracker::default();
        let state = MavState::default();
        let cmd = tracker.command(&Trajectory::new(), &state, SimTime::ZERO);
        assert!(cmd.completed);
        assert_eq!(cmd.velocity, Vec3::ZERO);
    }

    #[test]
    fn closed_loop_follows_the_path() {
        // Integrate the quadrotor under the tracker: the vehicle must arrive
        // at the goal with small cross-track error throughout.
        let tracker = PathTracker::default();
        let traj = line_trajectory();
        let mut quad = Quadrotor::new(
            QuadrotorConfig::dji_matrice_100(),
            Pose::new(Vec3::new(0.0, 0.0, 2.0), 0.0),
        );
        let dt = 0.05;
        let mut now = SimTime::ZERO;
        let mut worst_error: f64 = 0.0;
        for _ in 0..400 {
            let cmd = tracker.command(&traj, quad.state(), now);
            worst_error = worst_error.max(cmd.cross_track_error);
            if cmd.completed {
                break;
            }
            quad.step(cmd.velocity, dt);
            now += mav_types::SimDuration::from_secs(dt);
        }
        let goal = traj.last().unwrap().position;
        assert!(
            quad.state().pose.position.distance(&goal) < 1.5,
            "vehicle ended {} from the goal",
            quad.state().pose.position.distance(&goal)
        );
        assert!(worst_error < 3.0, "worst cross-track error {worst_error}");
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", PathTracker::default()).is_empty());
    }
}
