//! PID controller.
//!
//! Aerial Photography closes its loop with a PID controller that keeps the
//! tracked subject centred in the camera frame; the same controller type is
//! reused for altitude and position hold elsewhere in the stack.

use serde::{Deserialize, Serialize};
use std::fmt;

/// PID gains and output limits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PidConfig {
    /// Proportional gain.
    pub kp: f64,
    /// Integral gain.
    pub ki: f64,
    /// Derivative gain.
    pub kd: f64,
    /// Symmetric output saturation (the output is clamped to ±this value).
    pub output_limit: f64,
    /// Symmetric clamp on the integral term (anti-windup).
    pub integral_limit: f64,
}

impl PidConfig {
    /// Creates a configuration with the given gains and a generous output
    /// limit.
    pub fn new(kp: f64, ki: f64, kd: f64) -> Self {
        PidConfig {
            kp,
            ki,
            kd,
            output_limit: 10.0,
            integral_limit: 5.0,
        }
    }

    /// Overrides the output limit (builder style).
    pub fn with_output_limit(mut self, limit: f64) -> Self {
        self.output_limit = limit.abs();
        self
    }
}

impl Default for PidConfig {
    fn default() -> Self {
        PidConfig::new(1.0, 0.0, 0.1)
    }
}

/// A single-axis PID controller.
///
/// # Example
///
/// ```
/// use mav_control::{Pid, PidConfig};
///
/// let mut pid = Pid::new(PidConfig::new(0.8, 0.1, 0.05));
/// // Regulate a first-order plant towards the setpoint 1.0.
/// let mut x: f64 = 0.0;
/// for _ in 0..1000 {
///     let u = pid.update(1.0 - x, 0.05);
///     x += u * 0.05;
/// }
/// assert!((x - 1.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Pid {
    config: PidConfig,
    integral: f64,
    last_error: Option<f64>,
}

impl Pid {
    /// Creates a controller with zeroed state.
    pub fn new(config: PidConfig) -> Self {
        Pid {
            config,
            integral: 0.0,
            last_error: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &PidConfig {
        &self.config
    }

    /// Computes the control output for the given error over a step of `dt`
    /// seconds.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `dt` is not strictly positive.
    pub fn update(&mut self, error: f64, dt: f64) -> f64 {
        debug_assert!(dt > 0.0, "dt must be positive");
        self.integral = (self.integral + error * dt)
            .clamp(-self.config.integral_limit, self.config.integral_limit);
        let derivative = match self.last_error {
            Some(prev) => (error - prev) / dt,
            None => 0.0,
        };
        self.last_error = Some(error);
        let raw =
            self.config.kp * error + self.config.ki * self.integral + self.config.kd * derivative;
        raw.clamp(-self.config.output_limit, self.config.output_limit)
    }

    /// Clears the integral and derivative history (e.g. after a large setpoint
    /// change).
    pub fn reset(&mut self) {
        self.integral = 0.0;
        self.last_error = None;
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pid[kp={} ki={} kd={}]",
            self.config.kp, self.config.ki, self.config.kd
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_only_drives_towards_setpoint() {
        let mut pid = Pid::new(PidConfig::new(2.0, 0.0, 0.0));
        let mut x = 0.0;
        for _ in 0..500 {
            let u = pid.update(5.0 - x, 0.01);
            x += u * 0.01;
        }
        assert!((x - 5.0).abs() < 0.1);
    }

    #[test]
    fn integral_removes_steady_state_error() {
        // Plant with a constant disturbance: P alone leaves an offset, PI
        // removes it.
        let simulate = |config: PidConfig| {
            let mut pid = Pid::new(config);
            let mut x = 0.0;
            for _ in 0..4000 {
                let u = pid.update(1.0 - x, 0.01);
                x += (u - 0.5) * 0.01; // -0.5 disturbance
            }
            x
        };
        let p_only = simulate(PidConfig::new(1.0, 0.0, 0.0));
        let pi = simulate(PidConfig::new(1.0, 0.5, 0.0));
        assert!((1.0 - pi).abs() < (1.0 - p_only).abs());
        assert!((1.0 - pi).abs() < 0.05);
    }

    #[test]
    fn output_is_saturated() {
        let mut pid = Pid::new(PidConfig::new(100.0, 0.0, 0.0).with_output_limit(3.0));
        assert_eq!(pid.update(10.0, 0.1), 3.0);
        assert_eq!(pid.update(-10.0, 0.1), -3.0);
    }

    #[test]
    fn integral_windup_is_bounded() {
        let mut pid = Pid::new(PidConfig {
            ki: 1.0,
            integral_limit: 2.0,
            ..PidConfig::new(0.0, 1.0, 0.0)
        });
        for _ in 0..1000 {
            pid.update(10.0, 0.1);
        }
        // After saturation, a sign flip of the error must take effect quickly
        // rather than fighting a huge accumulated integral.
        let out = pid.update(-10.0, 0.1);
        assert!(out <= 2.0);
    }

    #[test]
    fn reset_clears_state() {
        let mut pid = Pid::new(PidConfig::new(1.0, 1.0, 1.0));
        pid.update(3.0, 0.1);
        pid.update(2.0, 0.1);
        pid.reset();
        // After reset the derivative term is zero on the next update.
        let out = pid.update(1.0, 0.1);
        assert!((out - (1.0 + 1.0 * 0.1)).abs() < 1e-9);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", Pid::new(PidConfig::default())).is_empty());
    }
}
