//! The simulated world: bounds, obstacles, collision queries and ray casting.
//!
//! This module is the MAVBench-RS stand-in for the Unreal Engine geometry
//! oracle. All perception in the workspace ultimately reduces to two
//! questions answered here: *what does a depth ray hit?* and *does this region
//! of space intersect an obstacle?*

use crate::obstacle::{Obstacle, ObstacleClass, ObstacleId, ObstacleKind};
use mav_types::{Aabb, Vec3};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Result of a ray-cast query against the world.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RayHit {
    /// Distance from the ray origin to the hit point, metres.
    pub distance: f64,
    /// World-frame hit point.
    pub point: Vec3,
    /// The obstacle that was hit, or `None` when the world boundary was hit.
    pub obstacle: Option<ObstacleId>,
}

/// A complete simulated environment.
///
/// # Example
///
/// ```
/// use mav_env::{World, Obstacle, ObstacleClass, ObstacleId};
/// use mav_types::{Aabb, Vec3};
///
/// let mut world = World::empty(Aabb::new(Vec3::splat(-20.0), Vec3::splat(20.0)));
/// world.add_obstacle(Obstacle::fixed(
///     ObstacleId(0),
///     Aabb::from_center_size(Vec3::new(5.0, 0.0, 1.0), Vec3::splat(2.0)),
///     ObstacleClass::Structure,
/// ));
/// let hit = world.raycast(&Vec3::new(0.0, 0.0, 1.0), &Vec3::UNIT_X, 30.0).unwrap();
/// assert!((hit.distance - 4.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct World {
    bounds: Aabb,
    obstacles: Vec<Obstacle>,
    name: String,
}

impl World {
    /// Creates an empty world with the given bounds.
    pub fn empty(bounds: Aabb) -> Self {
        World {
            bounds,
            obstacles: Vec::new(),
            name: "unnamed".to_string(),
        }
    }

    /// Creates a world with the given bounds, name and obstacles.
    pub fn new(name: impl Into<String>, bounds: Aabb, obstacles: Vec<Obstacle>) -> Self {
        World {
            bounds,
            obstacles,
            name: name.into(),
        }
    }

    /// The world's descriptive name (e.g. `"urban-outdoor"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// World bounds: flight outside this box is treated as a failure.
    pub fn bounds(&self) -> &Aabb {
        &self.bounds
    }

    /// All obstacles currently in the world.
    pub fn obstacles(&self) -> &[Obstacle] {
        &self.obstacles
    }

    /// Number of obstacles.
    pub fn obstacle_count(&self) -> usize {
        self.obstacles.len()
    }

    /// Looks up an obstacle by id.
    pub fn obstacle(&self, id: ObstacleId) -> Option<&Obstacle> {
        self.obstacles.iter().find(|o| o.id == id)
    }

    /// Adds an obstacle, returning its id.
    pub fn add_obstacle(&mut self, obstacle: Obstacle) -> ObstacleId {
        let id = obstacle.id;
        self.obstacles.push(obstacle);
        id
    }

    /// Adds a static box obstacle and assigns it the next free id.
    pub fn add_box(&mut self, bounds: Aabb, class: ObstacleClass) -> ObstacleId {
        let id = ObstacleId(self.obstacles.len() as u32);
        self.obstacles.push(Obstacle::fixed(id, bounds, class));
        id
    }

    /// Returns `true` if `point` lies inside any obstacle.
    pub fn is_occupied(&self, point: &Vec3) -> bool {
        self.obstacles.iter().any(|o| o.bounds.contains(point))
    }

    /// Returns `true` if `point` lies inside the world bounds.
    pub fn in_bounds(&self, point: &Vec3) -> bool {
        self.bounds.contains(point)
    }

    /// Returns `true` if a vehicle occupying `region` would collide with any
    /// obstacle or leave the world.
    pub fn collides(&self, region: &Aabb) -> bool {
        if !self.bounds.contains(&region.min) || !self.bounds.contains(&region.max) {
            return true;
        }
        self.obstacles.iter().any(|o| o.bounds.intersects(region))
    }

    /// Returns `true` if a vehicle of half-width `radius` centred at `point`
    /// would collide.
    pub fn collides_sphere(&self, point: &Vec3, radius: f64) -> bool {
        if !self.bounds.contains(point) {
            return true;
        }
        self.obstacles
            .iter()
            .any(|o| o.bounds.distance_to_point(point) <= radius)
    }

    /// Returns `true` if the straight segment from `a` to `b`, swept by a
    /// vehicle of half-width `radius`, stays collision-free and in bounds.
    pub fn segment_free(&self, a: &Vec3, b: &Vec3, radius: f64) -> bool {
        if !self.bounds.contains(a) || !self.bounds.contains(b) {
            return false;
        }
        let dist = a.distance(b);
        // Sample at half-radius granularity (minimum 2 samples) — exact enough
        // for box obstacles larger than the vehicle.
        let step = (radius * 0.5).max(0.05);
        let samples = ((dist / step).ceil() as usize).max(1);
        for i in 0..=samples {
            let t = i as f64 / samples as f64;
            let p = a.lerp(b, t);
            if self.collides_sphere(&p, radius) {
                return false;
            }
        }
        true
    }

    /// Distance from `point` to the closest obstacle surface (or the world
    /// boundary, whichever is nearer). Returns `0.0` when inside an obstacle.
    pub fn clearance(&self, point: &Vec3) -> f64 {
        let mut best = f64::INFINITY;
        for o in &self.obstacles {
            best = best.min(o.bounds.distance_to_point(point));
        }
        // Distance to the world boundary along each axis.
        for axis in 0..3 {
            best = best.min((point[axis] - self.bounds.min[axis]).abs());
            best = best.min((self.bounds.max[axis] - point[axis]).abs());
        }
        best.max(0.0)
    }

    /// Casts a ray from `origin` along `dir` (normalised internally) and
    /// returns the first hit within `max_range` metres.
    ///
    /// A hit on the world boundary is reported with `obstacle == None`; if
    /// nothing is hit within range the result is `None` (open space).
    pub fn raycast(&self, origin: &Vec3, dir: &Vec3, max_range: f64) -> Option<RayHit> {
        let d = dir.normalized();
        if d == Vec3::ZERO || max_range <= 0.0 {
            return None;
        }
        let mut best: Option<RayHit> = None;
        for o in &self.obstacles {
            if let Some(t) = o.bounds.ray_intersection(origin, &d) {
                if t <= max_range && best.is_none_or(|b| t < b.distance) {
                    best = Some(RayHit {
                        distance: t,
                        point: *origin + d * t,
                        obstacle: Some(o.id),
                    });
                }
            }
        }
        // Exit point through the world boundary (the drone "sees" the boundary
        // as solid, like the edge of the Unreal map).
        if best.is_none() {
            if let Some(t_exit) = exit_distance(&self.bounds, origin, &d) {
                if t_exit <= max_range {
                    return Some(RayHit {
                        distance: t_exit,
                        point: *origin + d * t_exit,
                        obstacle: None,
                    });
                }
            }
        }
        best
    }

    /// Density of static obstacle volume within `radius` of `point`,
    /// expressed as the fraction of the probe sphere's bounding cube that is
    /// occupied. Used by the dynamic OctoMap-resolution policy to distinguish
    /// cluttered indoor space from open outdoor space.
    pub fn obstacle_density_near(&self, point: &Vec3, radius: f64) -> f64 {
        let probe = Aabb::from_center_size(*point, Vec3::splat(2.0 * radius));
        let probe_volume = probe.volume();
        if probe_volume <= 0.0 {
            return 0.0;
        }
        let mut occupied = 0.0;
        for o in &self.obstacles {
            if o.bounds.intersects(&probe) {
                let overlap_min = o.bounds.min.max(&probe.min);
                let overlap_max = o.bounds.max.min(&probe.max);
                let size = overlap_max - overlap_min;
                if size.x > 0.0 && size.y > 0.0 && size.z > 0.0 {
                    occupied += size.x * size.y * size.z;
                }
            }
        }
        (occupied / probe_volume).clamp(0.0, 1.0)
    }

    /// Advances all dynamic obstacles by `dt` seconds.
    pub fn step_dynamics(&mut self, dt: f64) {
        let bounds = self.bounds;
        for o in &mut self.obstacles {
            o.step(dt, &bounds);
        }
    }

    /// All obstacles of the given class (e.g. people for search-and-rescue).
    pub fn obstacles_of_class(&self, class: ObstacleClass) -> Vec<&Obstacle> {
        self.obstacles.iter().filter(|o| o.class == class).collect()
    }

    /// Returns the first dynamic obstacle of the given class, if any. The
    /// aerial-photography workload uses this to find its subject.
    pub fn dynamic_obstacle_of_class(&self, class: ObstacleClass) -> Option<&Obstacle> {
        self.obstacles
            .iter()
            .find(|o| o.class == class && matches!(o.kind, ObstacleKind::Dynamic { .. }))
    }

    /// Total volume of all static obstacles, cubic metres.
    pub fn total_obstacle_volume(&self) -> f64 {
        self.obstacles.iter().map(|o| o.bounds.volume()).sum()
    }
}

impl fmt::Display for World {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "world '{}' [{} obstacles, bounds {}]",
            self.name,
            self.obstacles.len(),
            self.bounds
        )
    }
}

/// Distance along the (normalised) ray at which it exits `bounds`, assuming
/// the origin is inside the box. Returns `None` if the origin is outside.
fn exit_distance(bounds: &Aabb, origin: &Vec3, dir: &Vec3) -> Option<f64> {
    if !bounds.contains(origin) {
        return None;
    }
    let mut t_exit = f64::INFINITY;
    for axis in 0..3 {
        let d = dir[axis];
        if d.abs() < 1e-12 {
            continue;
        }
        let boundary = if d > 0.0 {
            bounds.max[axis]
        } else {
            bounds.min[axis]
        };
        let t = (boundary - origin[axis]) / d;
        if t >= 0.0 {
            t_exit = t_exit.min(t);
        }
    }
    if t_exit.is_finite() {
        Some(t_exit)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_world() -> World {
        let mut w = World::empty(Aabb::new(Vec3::splat(-50.0), Vec3::new(50.0, 50.0, 30.0)));
        w.add_box(
            Aabb::from_center_size(Vec3::new(10.0, 0.0, 1.0), Vec3::new(2.0, 2.0, 2.0)),
            ObstacleClass::Structure,
        );
        w.add_box(
            Aabb::from_center_size(Vec3::new(-5.0, 8.0, 1.0), Vec3::new(4.0, 4.0, 2.0)),
            ObstacleClass::Vegetation,
        );
        w
    }

    #[test]
    fn occupancy_queries() {
        let w = test_world();
        assert!(w.is_occupied(&Vec3::new(10.0, 0.0, 1.0)));
        assert!(!w.is_occupied(&Vec3::new(0.0, 0.0, 1.0)));
        assert!(w.in_bounds(&Vec3::ZERO));
        assert!(!w.in_bounds(&Vec3::new(0.0, 0.0, 100.0)));
    }

    #[test]
    fn collision_with_region_and_sphere() {
        let w = test_world();
        let hit_region = Aabb::from_center_size(Vec3::new(10.0, 0.0, 1.0), Vec3::splat(0.5));
        let free_region = Aabb::from_center_size(Vec3::new(0.0, -10.0, 1.0), Vec3::splat(0.5));
        assert!(w.collides(&hit_region));
        assert!(!w.collides(&free_region));
        // Out-of-bounds region counts as a collision.
        let oob = Aabb::from_center_size(Vec3::new(0.0, 0.0, 40.0), Vec3::splat(1.0));
        assert!(w.collides(&oob));

        assert!(w.collides_sphere(&Vec3::new(11.2, 0.0, 1.0), 0.5));
        assert!(!w.collides_sphere(&Vec3::new(13.0, 0.0, 1.0), 0.5));
    }

    #[test]
    fn segment_queries() {
        let w = test_world();
        // Straight through the first obstacle.
        assert!(!w.segment_free(&Vec3::new(0.0, 0.0, 1.0), &Vec3::new(20.0, 0.0, 1.0), 0.4));
        // Well clear of both obstacles.
        assert!(w.segment_free(
            &Vec3::new(0.0, -20.0, 1.0),
            &Vec3::new(20.0, -20.0, 1.0),
            0.4
        ));
        // Endpoint outside the world.
        assert!(!w.segment_free(&Vec3::new(0.0, 0.0, 1.0), &Vec3::new(0.0, 0.0, 100.0), 0.4));
    }

    #[test]
    fn raycast_hits_nearest_obstacle() {
        let w = test_world();
        let hit = w
            .raycast(&Vec3::new(0.0, 0.0, 1.0), &Vec3::UNIT_X, 100.0)
            .unwrap();
        assert!((hit.distance - 9.0).abs() < 1e-9);
        assert_eq!(hit.obstacle, Some(ObstacleId(0)));
        assert!((hit.point.x - 9.0).abs() < 1e-9);
    }

    #[test]
    fn raycast_boundary_and_miss() {
        let w = test_world();
        // Looking straight up from the origin hits the world ceiling at z=30.
        let hit = w
            .raycast(&Vec3::new(0.0, 0.0, 1.0), &Vec3::UNIT_Z, 100.0)
            .unwrap();
        assert!((hit.distance - 29.0).abs() < 1e-9);
        assert_eq!(hit.obstacle, None);
        // Very short range sees nothing.
        assert!(w
            .raycast(&Vec3::new(0.0, 0.0, 1.0), &Vec3::UNIT_X, 1.0)
            .is_none());
        // Zero direction is rejected.
        assert!(w.raycast(&Vec3::ZERO, &Vec3::ZERO, 10.0).is_none());
    }

    #[test]
    fn clearance_decreases_near_obstacles() {
        let w = test_world();
        let far = w.clearance(&Vec3::new(-30.0, -30.0, 10.0));
        let near = w.clearance(&Vec3::new(11.5, 0.0, 1.0));
        assert!(near < far);
        assert_eq!(w.clearance(&Vec3::new(10.0, 0.0, 1.0)), 0.0);
    }

    #[test]
    fn obstacle_density_probe() {
        let w = test_world();
        let dense = w.obstacle_density_near(&Vec3::new(10.0, 0.0, 1.0), 2.0);
        let empty = w.obstacle_density_near(&Vec3::new(-30.0, -30.0, 10.0), 2.0);
        assert!(dense > 0.05);
        assert_eq!(empty, 0.0);
    }

    #[test]
    fn dynamic_obstacle_stepping_and_lookup() {
        let mut w = test_world();
        w.add_obstacle(Obstacle::moving(
            ObstacleId(100),
            Aabb::from_center_size(Vec3::new(0.0, 0.0, 1.0), Vec3::splat(1.0)),
            Vec3::new(1.0, 0.0, 0.0),
            ObstacleClass::PhotographySubject,
        ));
        let before = w.obstacle(ObstacleId(100)).unwrap().center();
        w.step_dynamics(2.0);
        let after = w.obstacle(ObstacleId(100)).unwrap().center();
        assert!((after.x - before.x - 2.0).abs() < 1e-9);
        assert!(w
            .dynamic_obstacle_of_class(ObstacleClass::PhotographySubject)
            .is_some());
        assert!(w.dynamic_obstacle_of_class(ObstacleClass::Person).is_none());
        assert_eq!(w.obstacles_of_class(ObstacleClass::Vegetation).len(), 1);
    }

    #[test]
    fn volume_accounting_and_display() {
        let w = test_world();
        assert!((w.total_obstacle_volume() - (8.0 + 32.0)).abs() < 1e-9);
        assert!(!format!("{w}").is_empty());
        assert_eq!(w.obstacle_count(), 2);
    }
}
