//! Obstacles populating a MAVBench-RS world.

use mav_types::{Aabb, Vec3};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique identifier of an obstacle within a [`crate::World`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObstacleId(pub u32);

impl fmt::Display for ObstacleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obstacle#{}", self.0)
    }
}

/// Whether an obstacle is fixed in place or moves during the mission.
///
/// The paper's simulation knobs include both *(static) obstacle density* and
/// *(dynamic) obstacle speed*; both are modelled here.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ObstacleKind {
    /// The obstacle never moves (buildings, walls, trees, furniture).
    Static,
    /// The obstacle translates with the given velocity (m/s) and bounces off
    /// the world bounds, e.g. a person or vehicle moving through the scene.
    Dynamic {
        /// Current velocity of the obstacle in the world frame.
        velocity: Vec3,
    },
}

/// Semantic label of an obstacle, used by the detection kernel to decide
/// whether a given obstacle is a "person", generic clutter, or the aerial
/// photography target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ObstacleClass {
    /// Buildings, walls, shelves — generic structure.
    Structure,
    /// Vegetation and other soft clutter.
    Vegetation,
    /// A human. Search-and-rescue missions look for these.
    Person,
    /// The moving subject tracked by the aerial photography workload.
    PhotographySubject,
    /// Anything else.
    Generic,
}

impl ObstacleClass {
    /// Returns `true` if the detection kernel should report this class as a
    /// person-like detection.
    pub fn is_person_like(&self) -> bool {
        matches!(
            self,
            ObstacleClass::Person | ObstacleClass::PhotographySubject
        )
    }
}

/// A single axis-aligned obstacle in the world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Obstacle {
    /// Identifier unique within the owning world.
    pub id: ObstacleId,
    /// Geometry of the obstacle.
    pub bounds: Aabb,
    /// Static or dynamic behaviour.
    pub kind: ObstacleKind,
    /// Semantic class.
    pub class: ObstacleClass,
}

impl Obstacle {
    /// Creates a static obstacle of the given class.
    pub fn fixed(id: ObstacleId, bounds: Aabb, class: ObstacleClass) -> Self {
        Obstacle {
            id,
            bounds,
            kind: ObstacleKind::Static,
            class,
        }
    }

    /// Creates a dynamic obstacle moving at `velocity`.
    pub fn moving(id: ObstacleId, bounds: Aabb, velocity: Vec3, class: ObstacleClass) -> Self {
        Obstacle {
            id,
            bounds,
            kind: ObstacleKind::Dynamic { velocity },
            class,
        }
    }

    /// Returns `true` for dynamic obstacles.
    pub fn is_dynamic(&self) -> bool {
        matches!(self.kind, ObstacleKind::Dynamic { .. })
    }

    /// Current velocity (zero for static obstacles).
    pub fn velocity(&self) -> Vec3 {
        match self.kind {
            ObstacleKind::Static => Vec3::ZERO,
            ObstacleKind::Dynamic { velocity } => velocity,
        }
    }

    /// Centre of the obstacle.
    pub fn center(&self) -> Vec3 {
        self.bounds.center()
    }

    /// Advances a dynamic obstacle by `dt` seconds, reflecting its velocity
    /// whenever it would leave `world_bounds`. Static obstacles are unchanged.
    pub fn step(&mut self, dt: f64, world_bounds: &Aabb) {
        let velocity = match &mut self.kind {
            ObstacleKind::Static => return,
            ObstacleKind::Dynamic { velocity } => velocity,
        };
        let delta = *velocity * dt;
        let moved = Aabb {
            min: self.bounds.min + delta,
            max: self.bounds.max + delta,
        };
        // Reflect on each axis independently so the obstacle slides along the
        // boundary it hit instead of sticking to it.
        let mut v = *velocity;
        let mut apply = moved;
        for axis in 0..3 {
            let out_low = moved.min[axis] < world_bounds.min[axis];
            let out_high = moved.max[axis] > world_bounds.max[axis];
            if out_low || out_high {
                match axis {
                    0 => v.x = -v.x,
                    1 => v.y = -v.y,
                    _ => v.z = -v.z,
                }
                apply = self.bounds; // stay put on this step along the blocked axis
            }
        }
        self.bounds = apply;
        *velocity = v;
    }
}

impl fmt::Display for Obstacle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {:?} {}", self.id, self.class, self.bounds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world_bounds() -> Aabb {
        Aabb::new(Vec3::splat(-50.0), Vec3::splat(50.0))
    }

    #[test]
    fn static_obstacle_never_moves() {
        let mut o = Obstacle::fixed(
            ObstacleId(1),
            Aabb::from_center_size(Vec3::ZERO, Vec3::splat(2.0)),
            ObstacleClass::Structure,
        );
        let before = o.bounds;
        o.step(10.0, &world_bounds());
        assert_eq!(o.bounds, before);
        assert_eq!(o.velocity(), Vec3::ZERO);
        assert!(!o.is_dynamic());
    }

    #[test]
    fn dynamic_obstacle_translates() {
        let mut o = Obstacle::moving(
            ObstacleId(2),
            Aabb::from_center_size(Vec3::ZERO, Vec3::splat(1.0)),
            Vec3::new(2.0, 0.0, 0.0),
            ObstacleClass::Person,
        );
        o.step(1.0, &world_bounds());
        assert!((o.center().x - 2.0).abs() < 1e-12);
        assert!(o.is_dynamic());
        assert_eq!(o.velocity(), Vec3::new(2.0, 0.0, 0.0));
    }

    #[test]
    fn dynamic_obstacle_bounces_at_bounds() {
        let mut o = Obstacle::moving(
            ObstacleId(3),
            Aabb::from_center_size(Vec3::new(49.0, 0.0, 0.0), Vec3::splat(1.0)),
            Vec3::new(5.0, 0.0, 0.0),
            ObstacleClass::Person,
        );
        o.step(1.0, &world_bounds());
        // The velocity flipped and the obstacle did not cross the boundary.
        assert_eq!(o.velocity().x, -5.0);
        assert!(o.bounds.max.x <= 50.0 + 1e-9);
    }

    #[test]
    fn class_person_like() {
        assert!(ObstacleClass::Person.is_person_like());
        assert!(ObstacleClass::PhotographySubject.is_person_like());
        assert!(!ObstacleClass::Structure.is_person_like());
        assert!(!ObstacleClass::Generic.is_person_like());
    }

    #[test]
    fn display_nonempty() {
        let o = Obstacle::fixed(
            ObstacleId(9),
            Aabb::from_center_size(Vec3::ZERO, Vec3::splat(1.0)),
            ObstacleClass::Generic,
        );
        assert!(!format!("{o}").is_empty());
        assert!(!format!("{}", ObstacleId(4)).is_empty());
    }
}
