//! Procedural 3D environments for MAVBench-RS.
//!
//! This crate is the substitute for the Unreal Engine geometry oracle used by
//! the original MAVBench: it provides worlds made of axis-aligned obstacles,
//! deterministic procedural generation with density knobs, collision queries
//! and ray casting. All perception and planning kernels in the workspace query
//! the environment exclusively through [`World`].
//!
//! # Example
//!
//! ```
//! use mav_env::EnvironmentConfig;
//! use mav_types::Vec3;
//!
//! let world = EnvironmentConfig::urban_outdoor().with_seed(1).generate();
//! // The spawn area is guaranteed to be free.
//! assert!(!world.collides_sphere(&Vec3::new(0.0, 0.0, 1.0), 0.5));
//! ```

#![warn(missing_docs)]

pub mod generator;
pub mod obstacle;
pub mod world;

pub use generator::EnvironmentConfig;
pub use obstacle::{Obstacle, ObstacleClass, ObstacleId, ObstacleKind};
pub use world::{RayHit, World};
