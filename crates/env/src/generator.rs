//! Procedural environment generation.
//!
//! The paper varies environments through Unreal maps plus knobs for static
//! obstacle density and dynamic obstacle speed. This module provides the same
//! knobs procedurally and deterministically (seeded), plus presets mirroring
//! the scenarios the five workloads run in: open farmland for Scanning, an
//! urban outdoor map for Package Delivery, an indoor space with door-width
//! openings for the OctoMap-resolution case study, a collapsed-building-like
//! rubble field for Search and Rescue, and a park with a moving subject for
//! Aerial Photography.

use crate::obstacle::{Obstacle, ObstacleClass, ObstacleId};
use crate::world::World;
use mav_types::{Aabb, Vec3};
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Knobs controlling procedural world generation.
///
/// # Example
///
/// ```
/// use mav_env::EnvironmentConfig;
/// let world = EnvironmentConfig::urban_outdoor().with_seed(7).generate();
/// assert!(world.obstacle_count() > 10);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvironmentConfig {
    /// Descriptive name copied into the generated [`World`].
    pub name: String,
    /// Horizontal half-extent of the world in metres (the world spans
    /// `[-extent, extent]` in x and y).
    pub extent: f64,
    /// Height of the world in metres (z spans `[0, height]`).
    pub height: f64,
    /// Number of static obstacles per 1000 m² of ground area.
    pub obstacle_density: f64,
    /// Static obstacle footprint range `[min, max]` in metres.
    pub obstacle_size: (f64, f64),
    /// Static obstacle height range `[min, max]` in metres.
    pub obstacle_height: (f64, f64),
    /// Number of dynamic obstacles.
    pub dynamic_obstacles: usize,
    /// Speed of dynamic obstacles, metres per second.
    pub dynamic_speed: f64,
    /// Number of person-class obstacles scattered in the world (targets for
    /// search-and-rescue).
    pub people: usize,
    /// When `true`, an indoor structure (rooms with door-width openings) is
    /// built around the world origin. Door width follows the paper's 0.82 m
    /// average door.
    pub indoor_structure: bool,
    /// Width of indoor door openings in metres.
    pub door_width: f64,
    /// Whether to include a dynamic photography subject.
    pub photography_subject: bool,
    /// RNG seed for reproducible generation.
    pub seed: u64,
    /// Radius around the origin kept free of obstacles so the drone always has
    /// a valid spawn location, metres.
    pub spawn_clearance: f64,
}

impl Default for EnvironmentConfig {
    fn default() -> Self {
        EnvironmentConfig {
            name: "default".to_string(),
            extent: 60.0,
            height: 25.0,
            obstacle_density: 2.0,
            obstacle_size: (1.0, 6.0),
            obstacle_height: (2.0, 12.0),
            dynamic_obstacles: 0,
            dynamic_speed: 1.0,
            people: 0,
            indoor_structure: false,
            door_width: 0.82,
            photography_subject: false,
            seed: 42,
            spawn_clearance: 6.0,
        }
    }
}

impl mav_types::ToJson for EnvironmentConfig {
    fn to_json(&self) -> mav_types::Json {
        mav_types::Json::object()
            .field("name", self.name.as_str())
            .field("extent", self.extent)
            .field("height", self.height)
            .field("obstacle_density", self.obstacle_density)
            .field("obstacle_size", self.obstacle_size)
            .field("obstacle_height", self.obstacle_height)
            .field("dynamic_obstacles", self.dynamic_obstacles)
            .field("dynamic_speed", self.dynamic_speed)
            .field("people", self.people)
            .field("indoor_structure", self.indoor_structure)
            .field("door_width", self.door_width)
            .field("photography_subject", self.photography_subject)
            .field("seed", self.seed)
            .field("spawn_clearance", self.spawn_clearance)
    }
}

impl mav_types::FromJson for EnvironmentConfig {
    /// Reads an environment description; omitted fields keep the
    /// [`Default`] values, so sparse wire specs only name what they change.
    fn from_json(json: &mav_types::Json) -> Result<Self, String> {
        json.check_fields(&[
            "name",
            "extent",
            "height",
            "obstacle_density",
            "obstacle_size",
            "obstacle_height",
            "dynamic_obstacles",
            "dynamic_speed",
            "people",
            "indoor_structure",
            "door_width",
            "photography_subject",
            "seed",
            "spawn_clearance",
        ])?;
        let base = EnvironmentConfig::default();
        Ok(EnvironmentConfig {
            name: json.parse_field_or("name", base.name)?,
            extent: json.parse_field_or("extent", base.extent)?,
            height: json.parse_field_or("height", base.height)?,
            obstacle_density: json.parse_field_or("obstacle_density", base.obstacle_density)?,
            obstacle_size: json.parse_field_or("obstacle_size", base.obstacle_size)?,
            obstacle_height: json.parse_field_or("obstacle_height", base.obstacle_height)?,
            dynamic_obstacles: json.parse_field_or("dynamic_obstacles", base.dynamic_obstacles)?,
            dynamic_speed: json.parse_field_or("dynamic_speed", base.dynamic_speed)?,
            people: json.parse_field_or("people", base.people)?,
            indoor_structure: json.parse_field_or("indoor_structure", base.indoor_structure)?,
            door_width: json.parse_field_or("door_width", base.door_width)?,
            photography_subject: json
                .parse_field_or("photography_subject", base.photography_subject)?,
            seed: json.parse_field_or("seed", base.seed)?,
            spawn_clearance: json.parse_field_or("spawn_clearance", base.spawn_clearance)?,
        })
    }
}

impl EnvironmentConfig {
    /// Open farmland: essentially obstacle-free, large area. Used by the
    /// Scanning workload.
    pub fn open_field() -> Self {
        EnvironmentConfig {
            name: "open-field".to_string(),
            extent: 120.0,
            height: 40.0,
            obstacle_density: 0.05,
            obstacle_size: (1.0, 3.0),
            obstacle_height: (1.0, 4.0),
            ..Default::default()
        }
    }

    /// Urban outdoor map with buildings: the Package Delivery environment.
    pub fn urban_outdoor() -> Self {
        EnvironmentConfig {
            name: "urban-outdoor".to_string(),
            extent: 80.0,
            height: 30.0,
            obstacle_density: 3.0,
            obstacle_size: (3.0, 10.0),
            obstacle_height: (5.0, 20.0),
            ..Default::default()
        }
    }

    /// Mixed indoor/outdoor map with door-width openings: the 3D Mapping and
    /// OctoMap-resolution case-study environment.
    pub fn indoor_outdoor() -> Self {
        EnvironmentConfig {
            name: "indoor-outdoor".to_string(),
            extent: 50.0,
            height: 15.0,
            obstacle_density: 1.5,
            obstacle_size: (2.0, 6.0),
            obstacle_height: (2.0, 6.0),
            indoor_structure: true,
            ..Default::default()
        }
    }

    /// Rubble-strewn disaster area with people to find: Search and Rescue.
    pub fn disaster_site() -> Self {
        EnvironmentConfig {
            name: "disaster-site".to_string(),
            extent: 60.0,
            height: 20.0,
            obstacle_density: 4.0,
            obstacle_size: (1.0, 5.0),
            obstacle_height: (1.0, 6.0),
            people: 3,
            indoor_structure: true,
            ..Default::default()
        }
    }

    /// Park with a moving subject: Aerial Photography.
    pub fn park_with_subject() -> Self {
        EnvironmentConfig {
            name: "park".to_string(),
            extent: 70.0,
            height: 25.0,
            obstacle_density: 0.8,
            obstacle_size: (1.0, 4.0),
            obstacle_height: (2.0, 8.0),
            photography_subject: true,
            dynamic_speed: 2.0,
            ..Default::default()
        }
    }

    /// Sets the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the static obstacle density in obstacles per 1000 m² (builder
    /// style).
    pub fn with_obstacle_density(mut self, density: f64) -> Self {
        self.obstacle_density = density.max(0.0);
        self
    }

    /// Sets the number and speed of dynamic obstacles (builder style).
    pub fn with_dynamic_obstacles(mut self, count: usize, speed: f64) -> Self {
        self.dynamic_obstacles = count;
        self.dynamic_speed = speed.max(0.0);
        self
    }

    /// Generates the world described by this configuration.
    pub fn generate(&self) -> World {
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let bounds = Aabb::new(
            Vec3::new(-self.extent, -self.extent, 0.0),
            Vec3::new(self.extent, self.extent, self.height),
        );
        let mut obstacles = Vec::new();
        let mut next_id = 0u32;
        let push = |obstacles: &mut Vec<Obstacle>, o: Obstacle| {
            obstacles.push(o);
        };

        // Static clutter driven by the density knob.
        let ground_area = (2.0 * self.extent) * (2.0 * self.extent);
        let count = ((ground_area / 1000.0) * self.obstacle_density).round() as usize;
        let mut placed = 0usize;
        let mut attempts = 0usize;
        while placed < count && attempts < count * 20 + 100 {
            attempts += 1;
            let x = rng.gen_range(-self.extent..self.extent);
            let y = rng.gen_range(-self.extent..self.extent);
            if (x * x + y * y).sqrt() < self.spawn_clearance {
                continue;
            }
            let w = rng.gen_range(self.obstacle_size.0..=self.obstacle_size.1);
            let d = rng.gen_range(self.obstacle_size.0..=self.obstacle_size.1);
            let h = rng.gen_range(self.obstacle_height.0..=self.obstacle_height.1);
            let center = Vec3::new(x, y, h / 2.0);
            let class = if rng.gen_bool(0.3) {
                ObstacleClass::Vegetation
            } else {
                ObstacleClass::Structure
            };
            push(
                &mut obstacles,
                Obstacle::fixed(
                    ObstacleId(next_id),
                    Aabb::from_center_size(center, Vec3::new(w, d, h)),
                    class,
                ),
            );
            next_id += 1;
            placed += 1;
        }

        // Indoor structure: two rooms connected by a door-width opening,
        // placed away from the spawn point.
        if self.indoor_structure {
            let ox = self.extent * 0.35;
            let oy = 0.0;
            let room = 12.0;
            let wall_t = 0.4;
            let wall_h = 3.0;
            let door = self.door_width;
            // Outer walls of a room spanning [ox, ox+2*room] x [-room, room].
            let walls = indoor_walls(ox, oy, room, wall_t, wall_h, door);
            for w in walls {
                push(
                    &mut obstacles,
                    Obstacle::fixed(ObstacleId(next_id), w, ObstacleClass::Structure),
                );
                next_id += 1;
            }
        }

        // People (static, person-class) for search and rescue.
        for _ in 0..self.people {
            let x = rng.gen_range(-self.extent * 0.8..self.extent * 0.8);
            let y = rng.gen_range(-self.extent * 0.8..self.extent * 0.8);
            push(
                &mut obstacles,
                Obstacle::fixed(
                    ObstacleId(next_id),
                    Aabb::from_center_size(Vec3::new(x, y, 0.9), Vec3::new(0.6, 0.6, 1.8)),
                    ObstacleClass::Person,
                ),
            );
            next_id += 1;
        }

        // Dynamic obstacles.
        for _ in 0..self.dynamic_obstacles {
            let x = rng.gen_range(-self.extent * 0.5..self.extent * 0.5);
            let y = rng.gen_range(-self.extent * 0.5..self.extent * 0.5);
            let heading: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
            let vel = Vec3::new(heading.cos(), heading.sin(), 0.0) * self.dynamic_speed;
            push(
                &mut obstacles,
                Obstacle::moving(
                    ObstacleId(next_id),
                    Aabb::from_center_size(Vec3::new(x, y, 1.0), Vec3::new(1.0, 1.0, 2.0)),
                    vel,
                    ObstacleClass::Generic,
                ),
            );
            next_id += 1;
        }

        // Photography subject: a dynamic person-sized obstacle that wanders.
        if self.photography_subject {
            let vel = Vec3::new(self.dynamic_speed, 0.3 * self.dynamic_speed, 0.0);
            push(
                &mut obstacles,
                Obstacle::moving(
                    ObstacleId(next_id),
                    Aabb::from_center_size(Vec3::new(10.0, 0.0, 0.9), Vec3::new(0.6, 0.6, 1.8)),
                    vel,
                    ObstacleClass::PhotographySubject,
                ),
            );
        }

        World::new(self.name.clone(), bounds, obstacles)
    }
}

/// Builds the wall boxes of a simple two-room indoor structure with a single
/// door-width opening between the rooms and one opening to the outside.
fn indoor_walls(ox: f64, oy: f64, room: f64, wall_t: f64, wall_h: f64, door: f64) -> Vec<Aabb> {
    let mut walls = Vec::new();
    let z = wall_h / 2.0;
    let x0 = ox;
    let x1 = ox + 2.0 * room;
    let y0 = oy - room;
    let y1 = oy + room;
    // North and south outer walls (full length).
    walls.push(Aabb::from_center_size(
        Vec3::new((x0 + x1) / 2.0, y1, z),
        Vec3::new(x1 - x0 + wall_t, wall_t, wall_h),
    ));
    walls.push(Aabb::from_center_size(
        Vec3::new((x0 + x1) / 2.0, y0, z),
        Vec3::new(x1 - x0 + wall_t, wall_t, wall_h),
    ));
    // East outer wall (full length).
    walls.push(Aabb::from_center_size(
        Vec3::new(x1, oy, z),
        Vec3::new(wall_t, y1 - y0 + wall_t, wall_h),
    ));
    // West outer wall with a door opening centred at oy.
    let seg = (y1 - y0 - door) / 2.0;
    walls.push(Aabb::from_center_size(
        Vec3::new(x0, y0 + seg / 2.0, z),
        Vec3::new(wall_t, seg, wall_h),
    ));
    walls.push(Aabb::from_center_size(
        Vec3::new(x0, y1 - seg / 2.0, z),
        Vec3::new(wall_t, seg, wall_h),
    ));
    // Interior dividing wall with a door opening centred at oy.
    let xm = ox + room;
    walls.push(Aabb::from_center_size(
        Vec3::new(xm, y0 + seg / 2.0, z),
        Vec3::new(wall_t, seg, wall_h),
    ));
    walls.push(Aabb::from_center_size(
        Vec3::new(xm, y1 - seg / 2.0, z),
        Vec3::new(wall_t, seg, wall_h),
    ));
    walls
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = EnvironmentConfig::urban_outdoor().with_seed(3).generate();
        let b = EnvironmentConfig::urban_outdoor().with_seed(3).generate();
        assert_eq!(a, b);
        let c = EnvironmentConfig::urban_outdoor().with_seed(4).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn density_knob_scales_obstacle_count() {
        let sparse = EnvironmentConfig::default()
            .with_obstacle_density(0.5)
            .generate();
        let dense = EnvironmentConfig::default()
            .with_obstacle_density(5.0)
            .generate();
        assert!(dense.obstacle_count() > sparse.obstacle_count() * 3);
    }

    #[test]
    fn spawn_area_is_clear() {
        let world = EnvironmentConfig::urban_outdoor().with_seed(11).generate();
        assert!(!world.collides_sphere(&Vec3::new(0.0, 0.0, 1.0), 0.5));
    }

    #[test]
    fn presets_have_expected_features() {
        let field = EnvironmentConfig::open_field().generate();
        let urban = EnvironmentConfig::urban_outdoor().generate();
        assert!(field.obstacle_count() < urban.obstacle_count());

        let sar = EnvironmentConfig::disaster_site().generate();
        assert_eq!(sar.obstacles_of_class(ObstacleClass::Person).len(), 3);

        let park = EnvironmentConfig::park_with_subject().generate();
        assert!(park
            .dynamic_obstacle_of_class(ObstacleClass::PhotographySubject)
            .is_some());
    }

    #[test]
    fn indoor_structure_has_a_door_opening() {
        let world = EnvironmentConfig::indoor_outdoor().with_seed(5).generate();
        // The west wall of the indoor structure sits at x = 0.35 * extent;
        // a ray fired through the door centre (y = 0) at door height must pass
        // deeper into the room than the wall plane, while a ray at y offset
        // half a room hits the wall.
        let ox = 50.0 * 0.35;
        let through_door = world.raycast(&Vec3::new(ox - 5.0, 0.0, 1.0), &Vec3::UNIT_X, 50.0);
        let into_wall = world.raycast(&Vec3::new(ox - 5.0, 6.0, 1.0), &Vec3::UNIT_X, 50.0);
        let wall_dist = into_wall.map(|h| h.distance).unwrap_or(f64::INFINITY);
        let door_dist = through_door.map(|h| h.distance).unwrap_or(f64::INFINITY);
        assert!(
            door_dist > wall_dist + 1.0,
            "expected the door ray to travel farther ({door_dist:.2}) than the wall ray ({wall_dist:.2})"
        );
    }

    #[test]
    fn dynamic_obstacles_requested_count() {
        let world = EnvironmentConfig::default()
            .with_dynamic_obstacles(4, 2.0)
            .with_seed(9)
            .generate();
        let dynamic = world.obstacles().iter().filter(|o| o.is_dynamic()).count();
        assert_eq!(dynamic, 4);
    }

    #[test]
    fn world_bounds_match_config() {
        let cfg = EnvironmentConfig::open_field();
        let world = cfg.generate();
        assert_eq!(world.bounds().max.z, cfg.height);
        assert_eq!(world.bounds().max.x, cfg.extent);
        assert_eq!(world.name(), "open-field");
    }
}
