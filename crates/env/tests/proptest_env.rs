//! Property-based tests for the environment substrate.

use mav_env::{EnvironmentConfig, World};
use mav_types::{Aabb, Vec3};
use proptest::prelude::*;

fn arb_point(extent: f64, height: f64) -> impl Strategy<Value = Vec3> {
    (-extent..extent, -extent..extent, 0.0..height).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn small_world(seed: u64) -> World {
    EnvironmentConfig::urban_outdoor()
        .with_seed(seed)
        .generate()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A point inside any obstacle must be reported as occupied, and an
    /// occupied point must have zero clearance.
    #[test]
    fn occupied_points_have_zero_clearance(seed in 0u64..32, idx in 0usize..64) {
        let world = small_world(seed);
        let obstacles = world.obstacles();
        prop_assume!(!obstacles.is_empty());
        let o = &obstacles[idx % obstacles.len()];
        let c = o.center();
        prop_assert!(world.is_occupied(&c));
        prop_assert_eq!(world.clearance(&c), 0.0);
    }

    /// Ray casting never reports a hit farther than the requested range and
    /// never reports a hit behind the origin.
    #[test]
    fn raycast_respects_range(seed in 0u64..16, p in arb_point(70.0, 25.0), yaw in 0.0..std::f64::consts::TAU, range in 1.0f64..80.0) {
        let world = small_world(seed);
        prop_assume!(world.in_bounds(&p));
        let dir = Vec3::new(yaw.cos(), yaw.sin(), 0.0);
        if let Some(hit) = world.raycast(&p, &dir, range) {
            prop_assert!(hit.distance >= 0.0);
            prop_assert!(hit.distance <= range + 1e-9);
            // The reported point is consistent with origin + dir * distance.
            let expected = p + dir * hit.distance;
            prop_assert!(expected.distance(&hit.point) < 1e-6);
        }
    }

    /// A segment reported free never passes through an obstacle centre cell.
    #[test]
    fn free_segments_avoid_obstacle_centres(seed in 0u64..16, a in arb_point(60.0, 20.0), b in arb_point(60.0, 20.0)) {
        let world = small_world(seed);
        prop_assume!(world.in_bounds(&a) && world.in_bounds(&b));
        if world.segment_free(&a, &b, 0.3) {
            // Sample the segment densely: none of the samples may be occupied.
            for i in 0..=50 {
                let t = i as f64 / 50.0;
                let p = a.lerp(&b, t);
                prop_assert!(!world.is_occupied(&p), "free segment passes through an obstacle at {p}");
            }
        }
    }

    /// Obstacle density is always within [0, 1] and monotone in the sense that
    /// a probe entirely inside an obstacle reports a strictly positive value.
    #[test]
    fn density_probe_is_bounded(seed in 0u64..16, p in arb_point(60.0, 20.0), radius in 0.5f64..10.0) {
        let world = small_world(seed);
        let d = world.obstacle_density_near(&p, radius);
        prop_assert!((0.0..=1.0).contains(&d));
    }

    /// Stepping dynamics never moves obstacles outside the world bounds.
    #[test]
    fn dynamics_stay_in_bounds(seed in 0u64..16, steps in 1usize..60) {
        let mut world = EnvironmentConfig::default()
            .with_dynamic_obstacles(5, 3.0)
            .with_seed(seed)
            .generate();
        let bounds: Aabb = *world.bounds();
        for _ in 0..steps {
            world.step_dynamics(0.5);
        }
        for o in world.obstacles() {
            if o.is_dynamic() {
                prop_assert!(o.bounds.min.x >= bounds.min.x - 1e-6);
                prop_assert!(o.bounds.max.x <= bounds.max.x + 1e-6);
                prop_assert!(o.bounds.min.y >= bounds.min.y - 1e-6);
                prop_assert!(o.bounds.max.y <= bounds.max.y + 1e-6);
            }
        }
    }
}
