//@ path: crates/fake/src/store.rs
//! PANIC-LIB fixture: panic paths in library crates.

pub fn bad_unwrap(xs: &[u32]) -> u32 {
    *xs.first().unwrap() //~ PANIC-LIB
}

pub fn bad_expect(xs: &[u32]) -> u32 {
    *xs.last().expect("non-empty") //~ PANIC-LIB
}

pub fn bad_panic(ok: bool) {
    if !ok {
        panic!("invariant broken"); //~ PANIC-LIB
    }
}

/// Silent: Result propagation is the required form.
pub fn good_checked(xs: &[u32]) -> Option<u32> {
    xs.first().copied()
}

/// Silent: annotated invariant.
pub fn annotated(xs: &[u32]) -> u32 {
    // mav-lint: allow(PANIC-LIB): fixture — caller guarantees non-empty
    *xs.first().unwrap()
}

/// Silent: decoys in comments and strings.
pub fn decoys() -> &'static str {
    // xs.first().unwrap()
    r#"macro_rules! in_a_string { () => { x.unwrap() }; }"#
}

/// A macro *body* is not a decoy: the expansion panics wherever the macro
/// is used, so the tokens inside still count.
macro_rules! get_or_die {
    ($opt:expr) => {
        $opt.unwrap() //~ PANIC-LIB
    };
}

pub fn uses_the_macro(x: Option<u32>) -> u32 {
    get_or_die!(x)
}

#[cfg(test)]
mod tests {
    /// Silent: unwrap/expect/panic! are idiomatic in tests.
    #[test]
    fn unwrap_in_tests_is_fine() {
        let xs = [1u32];
        assert_eq!(*xs.first().unwrap(), 1);
    }
}
