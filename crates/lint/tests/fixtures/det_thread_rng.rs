//@ path: crates/fake/src/draw.rs
//! DET-THREAD-RNG fixture: RNGs not threaded from the mission seed.

pub fn bad_thread_rng() -> f64 {
    let mut rng = rand::thread_rng(); //~ DET-THREAD-RNG
    rng.gen_range(0.0..1.0)
}

pub fn bad_entropy_seeding() -> u64 {
    let rng = SmallRng::from_entropy(); //~ DET-THREAD-RNG
    rng.next_u64()
}

pub fn bad_rand_random() -> f64 {
    rand::random() //~ DET-THREAD-RNG
}

/// Silent: seeded construction is the required form.
pub fn good_seeded(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Silent: decoys in comments and strings.
pub fn decoys() -> &'static str {
    // let mut rng = rand::thread_rng();
    "thread_rng is banned outside strings"
}

/// Silent: annotated with a justification.
pub fn annotated() -> u64 {
    // mav-lint: allow(DET-THREAD-RNG): fixture — jitter never reaches results
    let rng = SmallRng::from_entropy();
    rng.next_u64()
}
