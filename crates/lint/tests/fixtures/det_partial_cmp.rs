//@ path: crates/fake/src/rank.rs
//! DET-PARTIAL-CMP fixture: NaN-unsafe comparators.

pub fn bad_sort(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); //~ DET-PARTIAL-CMP PANIC-LIB
}

pub fn bad_max(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .max_by(|a, b| a.partial_cmp(b).expect("finite")) //~ DET-PARTIAL-CMP PANIC-LIB
}

pub fn bad_unwrap_or(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)); //~ DET-PARTIAL-CMP
}

/// Silent: total_cmp is the fix, not a finding.
pub fn good_sort(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

/// Silent: implementing `PartialOrd` mentions partial_cmp without calling
/// `.unwrap()` on it.
pub struct Score(pub f64);

impl PartialEq for Score {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl PartialOrd for Score {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.0.partial_cmp(&other.0)
    }
}

/// Silent: commented-out and raw-string decoys.
pub fn decoys() -> &'static str {
    // xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    r#"a.partial_cmp(b).unwrap()"#
}

#[cfg(test)]
mod tests {
    /// The rule fires even in test code: a NaN panic in a test comparator
    /// is still a flaky test.
    #[test]
    fn still_checked_in_tests() {
        let mut xs = [2.0, 1.0];
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); //~ DET-PARTIAL-CMP
        assert_eq!(xs[0], 1.0);
    }
}
