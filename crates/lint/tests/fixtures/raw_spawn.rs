//@ path: crates/fake/src/pool.rs
//! RAW-SPAWN fixture: unmanaged threads outside the rayon shim.

pub fn bad_spawn() {
    std::thread::spawn(|| {}); //~ RAW-SPAWN
}

pub fn bad_imported_spawn() {
    use std::thread;
    thread::spawn(|| {}); //~ RAW-SPAWN
}

/// Silent: the shim's deterministic pool is the sanctioned path.
pub fn good_parallel(xs: &[u64]) -> Vec<u64> {
    rayon::parallel_map_slice(xs, 2, |x| x * 2)
}

/// Silent: decoys in comments and strings.
pub fn decoys() -> &'static str {
    // std::thread::spawn(|| {});
    "thread::spawn mentioned in a string"
}

#[cfg(test)]
mod tests {
    /// Silent: tests may spawn scaffolding threads.
    #[test]
    fn spawn_in_tests_is_fine() {
        std::thread::spawn(|| {}).join().unwrap();
    }
}
