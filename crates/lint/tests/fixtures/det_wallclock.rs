//@ path: crates/fake/src/clock.rs
//! DET-WALLCLOCK fixture: wall-clock reads in a simulation crate.

pub fn bad_instant() -> f64 {
    let started = std::time::Instant::now(); //~ DET-WALLCLOCK
    started.elapsed().as_secs_f64()
}

pub fn bad_system_time() -> u64 {
    let now = std::time::SystemTime::now(); //~ DET-WALLCLOCK
    now.elapsed().map(|d| d.as_secs()).unwrap_or(0)
}

/// Silent: the violation only appears inside a raw string literal.
pub fn raw_string_decoy() -> &'static str {
    r#"let t = Instant::now(); SystemTime::now()"#
}

/// Silent: the violation is commented out.
pub fn commented_decoy() -> u32 {
    // let t = std::time::Instant::now();
    /* SystemTime::now() would also be banned here */
    7
}

/// Silent: annotated boundary with a written justification.
pub fn audited_boundary() -> std::time::Instant {
    // mav-lint: allow(DET-WALLCLOCK): fixture boundary — harness metadata only
    std::time::Instant::now()
}

#[cfg(test)]
mod tests {
    /// Silent: test code may time the host.
    #[test]
    fn timing_in_tests_is_fine() {
        let _ = std::time::Instant::now();
    }
}
