//@ path: crates/fake/src/index.rs
//! DET-HASH-ITER fixture: hash-order iteration feeding results.

use std::collections::{BTreeMap, HashMap, HashSet};

pub fn bad_method_iter(cells: &HashMap<u64, f64>) -> Vec<f64> {
    cells.values().copied().collect() //~ DET-HASH-ITER
}

pub fn bad_for_loop(seen: &HashSet<u64>) -> u64 {
    let mut acc = 0;
    for key in seen { //~ DET-HASH-ITER
        acc ^= key;
    }
    acc
}

/// Silent: the iteration result is sorted immediately afterwards.
pub fn sorted_method_iter(cells: &HashMap<u64, f64>) -> Vec<u64> {
    let mut keys: Vec<u64> = cells.keys().copied().collect();
    keys.sort_unstable();
    keys
}

/// Silent: the for-loop accumulates into a buffer that is sorted after the
/// loop (the collect-then-sort idiom used by the octree's voxel scans).
pub fn sorted_after_loop(cells: &HashMap<u64, f64>) -> Vec<u64> {
    let mut out = Vec::new();
    for (key, _value) in cells {
        out.push(*key);
    }
    out.sort_unstable();
    out
}

/// Silent: BTreeMap iteration is ordered by definition (the name is
/// distinct from the hash-typed ones above — the rule tracks names
/// file-wide).
pub fn btree_is_ordered(ordered_cells: &BTreeMap<u64, f64>) -> Vec<f64> {
    ordered_cells.values().copied().collect()
}

/// Silent: order provably does not matter and the site says why.
pub fn annotated_commutative_fold(cells: &HashMap<u64, u64>) -> u64 {
    // mav-lint: allow(DET-HASH-ITER): XOR fold is order-independent
    cells.values().fold(0, |acc, v| acc ^ v)
}

/// Silent: the violation lives inside a raw string.
pub fn raw_string_decoy() -> &'static str {
    r##"for k in map.keys() { emit(k) } // HashMap iteration"##
}
