//! The final acceptance gate, runnable as a plain test: auditing this
//! repository against the committed `lint-baseline.json` must produce zero
//! new findings and zero stale budget — the baseline describes the tree
//! exactly.

use mav_lint::baseline::Baseline;
use std::path::Path;

#[test]
fn repository_is_clean_against_committed_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .unwrap()
        .to_path_buf();
    let baseline = Baseline::load(&root.join("lint-baseline.json")).expect("baseline loads");
    let report = mav_lint::run(&root, &baseline).expect("walk succeeds");
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned ({}) — wrong root?",
        report.files_scanned
    );
    assert!(
        report.outcome.new.is_empty(),
        "non-baselined findings:\n{}",
        report
            .outcome
            .new
            .iter()
            .map(|f| f.render())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        report.outcome.stale.is_empty(),
        "baseline over-budgets (ratchet these down): {:?}",
        report.outcome.stale
    );
    assert!(report.ok());
}
