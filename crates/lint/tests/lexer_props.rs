//! Property tests for the lenient lexer: on adversarial token soup it must
//! never panic, and the spans it emits must tile the source exactly (ordered,
//! non-overlapping, whitespace-only gaps, char-boundary aligned, line/col
//! consistent with the byte offsets).

use mav_lint::lexer::{lex, TokenKind};
use proptest::prelude::*;

/// Fragments chosen to collide: raw-string openers at several hash depths,
/// unterminated strings/comments, lifetimes next to char literals, raw
/// identifiers, byte strings, numbers against ranges, stray quotes and
/// hashes, non-ASCII text, and the identifiers the rules look for (so a
/// lexer bug would surface as a rule false positive too).
const ALPHABET: &[&str] = &[
    "r#\"",
    "\"#",
    "r##\"",
    "\"##",
    "r#ident",
    "b\"bytes\"",
    "br#\"raw\"#",
    "\"",
    "\\\"",
    "\\",
    "'a",
    "'a'",
    "'\\''",
    "' '",
    "<'static>",
    "/*",
    "*/",
    "//",
    "///",
    "\n",
    " ",
    "\t",
    "HashMap",
    "Instant::now()",
    ".partial_cmp(",
    ".unwrap()",
    "thread_rng",
    "0.5e-3",
    "1..20",
    "0xFF_u32",
    "1.",
    "..=",
    "::",
    "#",
    "#[cfg(test)]",
    "mod",
    "{",
    "}",
    "(",
    ")",
    "é∀",
    "🦀",
    "r",
    "b",
];

fn assemble(ids: &[usize]) -> String {
    ids.iter().map(|&i| ALPHABET[i % ALPHABET.len()]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Lexing any splice of adversarial fragments terminates without
    /// panicking and the spans round-trip the source.
    #[test]
    fn lex_is_total_and_spans_tile_the_source(
        ids in proptest::collection::vec(0usize..ALPHABET.len(), 0..60),
    ) {
        let src = assemble(&ids);
        let tokens = lex(&src);

        let mut prev_end = 0usize;
        for t in &tokens {
            // Ordered, non-overlapping, in bounds, on char boundaries.
            prop_assert!(t.span.start >= prev_end, "overlapping spans in {src:?}");
            prop_assert!(t.span.end > t.span.start || t.kind == TokenKind::Unknown);
            prop_assert!(t.span.end <= src.len());
            prop_assert!(src.is_char_boundary(t.span.start));
            prop_assert!(src.is_char_boundary(t.span.end));
            // Gaps between tokens are whitespace only.
            prop_assert!(
                src[prev_end..t.span.start].chars().all(char::is_whitespace),
                "non-whitespace gap {:?} in {src:?}",
                &src[prev_end..t.span.start],
            );
            // line/col agree with the byte offset.
            let prefix = &src[..t.span.start];
            let line = 1 + prefix.matches('\n').count();
            let col = 1 + prefix
                .rsplit_once('\n')
                .map_or(prefix, |(_, tail)| tail)
                .chars()
                .count();
            prop_assert_eq!(t.span.line as usize, line, "line drift in {:?}", src.clone());
            prop_assert_eq!(t.span.col as usize, col, "col drift in {:?}", src.clone());
            prev_end = t.span.end;
        }
        // The tail after the last token is whitespace only.
        prop_assert!(src[prev_end..].chars().all(char::is_whitespace));
    }

    /// A raw string at arbitrary hash depth swallows everything up to its
    /// closing delimiter: no identifier tokens leak out of its body.
    #[test]
    fn raw_strings_swallow_their_body(hashes in 1usize..5, filler in 0usize..ALPHABET.len()) {
        let h = "#".repeat(hashes);
        // Quotes/hashes in the filler could legitimately close the raw
        // string early; strip them so the body provably runs to `"{h}`.
        let filler = ALPHABET[filler].replace(['"', '#'], "_");
        let src = format!("let s = r{h}\"HashMap {filler} Instant::now()\"{h};");
        let tokens = lex(&src);
        let idents: Vec<&str> = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(&src))
            .collect();
        prop_assert!(!idents.contains(&"HashMap"), "raw string leaked: {src:?}");
        prop_assert!(!idents.contains(&"Instant"), "raw string leaked: {src:?}");
        prop_assert_eq!(
            tokens.iter().filter(|t| t.kind == TokenKind::Str).count(),
            1
        );
    }
}

/// Hand-picked pathological inputs that have bitten real Rust lexers.
#[test]
fn pathological_corpus() {
    let corpus = [
        "",
        "r",
        "r#",
        "r#\"",
        "r##\"unterminated",
        "br###\"deep\"## not closed",
        "'",
        "'\\",
        "b'",
        "/* /* /* nested */ */",
        "\"\\\"",
        "// trailing line comment with no newline",
        "0x",
        "1e",
        "1e+",
        "r#match",
        "'static",
        "'a'b'c'd",
        "….. 🦀 ..=..",
        "#![allow(dead_code)]",
    ];
    for src in corpus {
        let tokens = lex(src);
        let mut prev = 0;
        for t in &tokens {
            assert!(t.span.start >= prev && t.span.end <= src.len(), "{src:?}");
            prev = t.span.end;
        }
    }
}
