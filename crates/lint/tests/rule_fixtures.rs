//! Golden fixtures for the six rules.
//!
//! Each file under `tests/fixtures/` is a seeded Rust source (never
//! compiled — the directory is also skipped by the repo walker) whose first
//! line declares the repo-relative path it pretends to live at:
//!
//! ```text
//! //@ path: crates/fake/src/clock.rs
//! ```
//!
//! Every line carrying a trailing `//~ RULE-ID` marker must produce exactly
//! that finding, and — the half that catches over-eager rules — every line
//! *without* a marker must stay silent. The fixtures deliberately mix
//! violations with decoys: raw strings containing banned identifiers,
//! commented-out violations, `#[cfg(test)]` regions, annotated allowances.

use mav_lint::rules::{check_file, RuleId};
use mav_lint::scope::classify;
use std::collections::BTreeSet;
use std::path::Path;

/// Parses `//~ RULE-ID [RULE-ID…]` markers into (line, rule) expectations.
fn expected_findings(src: &str) -> BTreeSet<(usize, String)> {
    let mut expected = BTreeSet::new();
    for (i, line) in src.lines().enumerate() {
        if let Some(rest) = line.split("//~").nth(1) {
            for word in rest.split_whitespace() {
                assert!(
                    RuleId::from_name(word).is_some(),
                    "fixture marker names unknown rule {word:?}"
                );
                expected.insert((i + 1, word.to_string()));
            }
        }
    }
    expected
}

fn declared_path(src: &str) -> &str {
    src.lines()
        .next()
        .and_then(|l| l.strip_prefix("//@ path: "))
        .expect("fixture must start with `//@ path: <rel-path>`")
        .trim()
}

fn check_fixture(fixture: &Path) {
    let src = std::fs::read_to_string(fixture).unwrap();
    let rel_path = declared_path(&src);
    let scope = classify(rel_path);
    let actual: BTreeSet<(usize, String)> = check_file(rel_path, &src, &scope)
        .into_iter()
        .map(|f| (f.line as usize, f.rule.name().to_string()))
        .collect();
    let expected = expected_findings(&src);
    let missing: Vec<_> = expected.difference(&actual).collect();
    let unexpected: Vec<_> = actual.difference(&expected).collect();
    assert!(
        missing.is_empty() && unexpected.is_empty(),
        "{}: rule findings diverge from //~ markers\n  missing:    {missing:?}\n  unexpected: {unexpected:?}",
        fixture.display(),
    );
}

#[test]
fn fixtures_match_their_markers() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let mut fixtures: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "rs"))
        .collect();
    fixtures.sort();
    assert!(
        fixtures.len() >= 6,
        "expected one fixture per rule, found {fixtures:?}"
    );
    let mut rules_covered = BTreeSet::new();
    for fixture in &fixtures {
        let src = std::fs::read_to_string(fixture).unwrap();
        for (_, rule) in expected_findings(&src) {
            rules_covered.insert(rule);
        }
        check_fixture(fixture);
    }
    // Every rule must be proven to fire by at least one fixture violation.
    for rule in RuleId::ALL {
        assert!(
            rules_covered.contains(rule.name()),
            "no fixture exercises {}",
            rule.name()
        );
    }
}

/// The pretend paths the fixtures declare must classify into the scope the
/// fixtures assume, or the marker expectations above test the wrong thing.
#[test]
fn fixture_scopes_resolve_as_declared() {
    use mav_lint::scope::FileScope;
    assert_eq!(classify("crates/fake/src/clock.rs"), FileScope::SimLib);
    assert_eq!(classify("crates/fake/src/pool.rs"), FileScope::SimLib);
}
