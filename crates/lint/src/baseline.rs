//! The committed allowlist: `lint-baseline.json`.
//!
//! Findings the repository has explicitly accepted live in a committed
//! baseline file. Each entry budgets one `(file, rule)` pair — `allowed` is
//! the number of findings of that rule tolerated in that file — and carries a
//! **written justification**; the loader rejects entries without one, so an
//! allowance can never be silent. Keying on counts rather than line numbers
//! makes the baseline robust to unrelated edits shifting lines, while still
//! failing the build the moment a *new* finding appears: the budget is a
//! ratchet, only deliberately raised (and reviewed) via `--update-baseline`.

use crate::rules::{Finding, RuleId};
use mav_types::{Json, ToJson};
use std::collections::BTreeMap;
use std::path::Path;

/// Budget for one `(file, rule)` pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Repo-relative path (forward slashes).
    pub file: String,
    /// The budgeted rule.
    pub rule: RuleId,
    /// How many findings of `rule` in `file` are accepted.
    pub allowed: u64,
    /// Why the findings are acceptable. Never empty.
    pub justification: String,
}

/// The full committed allowlist.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// Budgets, kept sorted by `(file, rule)` for deterministic rendering.
    pub entries: Vec<BaselineEntry>,
}

/// A baseline entry whose budget exceeds what the tree actually contains:
/// the code got cleaner and the baseline should be tightened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaleEntry {
    /// The entry's file.
    pub file: String,
    /// The entry's rule.
    pub rule: RuleId,
    /// The committed budget.
    pub allowed: u64,
    /// Findings actually present.
    pub actual: u64,
}

/// Result of diffing current findings against the baseline.
#[derive(Debug, Clone, Default)]
pub struct BaselineOutcome {
    /// Findings *not* covered by any budget — these fail the build.
    pub new: Vec<Finding>,
    /// How many findings the baseline absorbed.
    pub baselined: usize,
    /// Budgets larger than reality (warned, not fatal: tighten via
    /// `--update-baseline`).
    pub stale: Vec<StaleEntry>,
}

const SCHEMA: &str = "mav-lint-baseline";
const VERSION: i128 = 1;

impl Baseline {
    /// An empty baseline: every finding is new.
    pub fn empty() -> Baseline {
        Baseline::default()
    }

    /// Loads a baseline from disk; a missing file is an empty baseline (the
    /// bootstrap case), any other error is reported.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Baseline::parse(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::empty()),
            Err(e) => Err(format!("reading {}: {e}", path.display())),
        }
    }

    /// Parses the committed JSON document, validating schema, rule names and
    /// the every-entry-has-a-justification contract.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let doc = Json::parse(text).map_err(|e| format!("baseline is not valid JSON: {e:?}"))?;
        if doc.get("schema").and_then(Json::as_str) != Some(SCHEMA) {
            return Err(format!("baseline schema is not {SCHEMA:?}"));
        }
        if doc.get("version").and_then(Json::as_i128) != Some(VERSION) {
            return Err(format!("baseline version is not {VERSION}"));
        }
        let items = doc
            .get("entries")
            .and_then(Json::as_array)
            .ok_or("baseline has no entries array")?;
        let mut entries = Vec::new();
        for (i, item) in items.iter().enumerate() {
            let field_str = |k: &str| {
                item.get(k)
                    .and_then(Json::as_str)
                    .map(str::to_string)
                    .ok_or(format!("entry {i}: missing string field {k:?}"))
            };
            let file = field_str("file")?;
            let rule_name = field_str("rule")?;
            let rule = RuleId::from_name(&rule_name)
                .ok_or(format!("entry {i}: unknown rule {rule_name:?}"))?;
            let allowed = item
                .get("allowed")
                .and_then(Json::as_i128)
                .filter(|&n| n > 0)
                .ok_or(format!("entry {i}: allowed must be a positive integer"))?
                as u64;
            let justification = field_str("justification")?;
            if justification.trim().is_empty() {
                return Err(format!(
                    "entry {i} ({file} {}): empty justification — every baseline allowance \
                     must say why it is acceptable",
                    rule.name()
                ));
            }
            entries.push(BaselineEntry {
                file,
                rule,
                allowed,
                justification,
            });
        }
        let mut baseline = Baseline { entries };
        baseline.sort();
        Ok(baseline)
    }

    fn sort(&mut self) {
        self.entries
            .sort_by(|a, b| (&a.file, a.rule).cmp(&(&b.file, b.rule)));
    }

    /// Diffs `findings` (sorted by file/line) against the budgets. Within a
    /// `(file, rule)` group the *first* `allowed` findings (by position) are
    /// absorbed and the overflow is new — deterministic, and in the common
    /// case (budget N, N sites, one added) the report points at the
    /// newly-added site or the one that moved past the budget.
    pub fn apply(&self, findings: &[Finding]) -> BaselineOutcome {
        let budget: BTreeMap<(&str, RuleId), u64> = self
            .entries
            .iter()
            .map(|e| ((e.file.as_str(), e.rule), e.allowed))
            .collect();
        let mut groups: BTreeMap<(&str, RuleId), Vec<&Finding>> = BTreeMap::new();
        for f in findings {
            groups.entry((f.file.as_str(), f.rule)).or_default().push(f);
        }
        let mut outcome = BaselineOutcome::default();
        for (key, group) in &groups {
            let allowed = budget.get(key).copied().unwrap_or(0) as usize;
            outcome.baselined += group.len().min(allowed);
            for f in group.iter().skip(allowed) {
                outcome.new.push((*f).clone());
            }
        }
        outcome
            .new
            .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
        for e in &self.entries {
            let actual = groups
                .get(&(e.file.as_str(), e.rule))
                .map_or(0, |g| g.len() as u64);
            if actual < e.allowed {
                outcome.stale.push(StaleEntry {
                    file: e.file.clone(),
                    rule: e.rule,
                    allowed: e.allowed,
                    actual,
                });
            }
        }
        outcome
    }

    /// Regenerates budgets from the current findings (`--update-baseline`),
    /// preserving the justification of every surviving `(file, rule)` entry
    /// and marking genuinely new ones for a human to fill in.
    pub fn from_findings(findings: &[Finding], previous: &Baseline) -> Baseline {
        let mut counts: BTreeMap<(String, RuleId), u64> = BTreeMap::new();
        for f in findings {
            *counts.entry((f.file.clone(), f.rule)).or_insert(0) += 1;
        }
        let old: BTreeMap<(&str, RuleId), &str> = previous
            .entries
            .iter()
            .map(|e| ((e.file.as_str(), e.rule), e.justification.as_str()))
            .collect();
        let entries = counts
            .into_iter()
            .map(|((file, rule), allowed)| {
                let justification = old
                    .get(&(file.as_str(), rule))
                    .map(|j| j.to_string())
                    .unwrap_or_else(|| "TODO: justify this allowance".to_string());
                BaselineEntry {
                    file,
                    rule,
                    allowed,
                    justification,
                }
            })
            .collect();
        let mut baseline = Baseline { entries };
        baseline.sort();
        baseline
    }
}

impl ToJson for Baseline {
    fn to_json(&self) -> Json {
        Json::object()
            .field("schema", SCHEMA)
            .field("version", VERSION as i64)
            .field(
                "entries",
                Json::Array(
                    self.entries
                        .iter()
                        .map(|e| {
                            Json::object()
                                .field("file", e.file.as_str())
                                .field("rule", e.rule.name())
                                .field("allowed", e.allowed as i64)
                                .field("justification", e.justification.as_str())
                        })
                        .collect(),
                ),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, rule: RuleId) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            col: 1,
            rule,
            message: "m".to_string(),
        }
    }

    fn one_entry(allowed: u64) -> Baseline {
        Baseline {
            entries: vec![BaselineEntry {
                file: "a.rs".to_string(),
                rule: RuleId::PanicLib,
                allowed,
                justification: "j".to_string(),
            }],
        }
    }

    #[test]
    fn within_budget_is_absorbed() {
        let findings = vec![
            finding("a.rs", 1, RuleId::PanicLib),
            finding("a.rs", 9, RuleId::PanicLib),
        ];
        let outcome = one_entry(2).apply(&findings);
        assert!(outcome.new.is_empty());
        assert_eq!(outcome.baselined, 2);
        assert!(outcome.stale.is_empty());
    }

    #[test]
    fn overflow_is_new_and_deterministic() {
        let findings = vec![
            finding("a.rs", 1, RuleId::PanicLib),
            finding("a.rs", 9, RuleId::PanicLib),
            finding("a.rs", 30, RuleId::PanicLib),
        ];
        let outcome = one_entry(2).apply(&findings);
        assert_eq!(outcome.new.len(), 1);
        assert_eq!(outcome.new[0].line, 30);
    }

    #[test]
    fn unbudgeted_rule_or_file_is_new() {
        let findings = vec![
            finding("a.rs", 1, RuleId::RawSpawn),
            finding("b.rs", 1, RuleId::PanicLib),
        ];
        let outcome = one_entry(2).apply(&findings);
        assert_eq!(outcome.new.len(), 2);
        // The unused budget shows up as stale.
        assert_eq!(outcome.stale.len(), 1);
        assert_eq!(outcome.stale[0].actual, 0);
    }

    #[test]
    fn json_round_trip_preserves_everything() {
        let baseline = Baseline {
            entries: vec![
                BaselineEntry {
                    file: "crates/x/src/lib.rs".to_string(),
                    rule: RuleId::DetHashIter,
                    allowed: 3,
                    justification: "order-independent bitmask union".to_string(),
                },
                BaselineEntry {
                    file: "crates/y/src/lib.rs".to_string(),
                    rule: RuleId::PanicLib,
                    allowed: 7,
                    justification: "poisoned-lock expects".to_string(),
                },
            ],
        };
        let text = baseline.to_json().to_string_pretty();
        let parsed = Baseline::parse(&text).expect("round trip");
        assert_eq!(parsed, baseline);
    }

    #[test]
    fn empty_justification_is_rejected() {
        let text = r#"{"schema":"mav-lint-baseline","version":1,"entries":[
            {"file":"a.rs","rule":"PANIC-LIB","allowed":1,"justification":"  "}]}"#;
        assert!(Baseline::parse(text).is_err());
    }

    #[test]
    fn unknown_rule_is_rejected() {
        let text = r#"{"schema":"mav-lint-baseline","version":1,"entries":[
            {"file":"a.rs","rule":"NOT-A-RULE","allowed":1,"justification":"j"}]}"#;
        assert!(Baseline::parse(text).is_err());
    }

    #[test]
    fn update_preserves_justifications() {
        let findings = vec![
            finding("a.rs", 1, RuleId::PanicLib),
            finding("a.rs", 2, RuleId::PanicLib),
            finding("a.rs", 3, RuleId::PanicLib),
            finding("c.rs", 1, RuleId::RawSpawn),
        ];
        let updated = Baseline::from_findings(&findings, &one_entry(2));
        assert_eq!(updated.entries.len(), 2);
        assert_eq!(updated.entries[0].allowed, 3);
        assert_eq!(updated.entries[0].justification, "j");
        assert!(updated.entries[1].justification.starts_with("TODO"));
    }

    #[test]
    fn missing_file_loads_empty() {
        let loaded = Baseline::load(Path::new("/nonexistent/baseline.json")).unwrap();
        assert!(loaded.entries.is_empty());
    }
}
