//! A hand-rolled, lenient Rust lexer.
//!
//! The determinism audit has to read source *text*, not compiled items, so it
//! needs its own tokenizer — the same offline-shim discipline as
//! `mav_types::json`: no crates.io, implement exactly the subset we need.
//! "Lenient" means the lexer is **total**: any byte sequence produces a token
//! stream (malformed constructs become [`TokenKind::Unknown`] or run to end of
//! file) and lexing never panics — property-tested against adversarial inputs
//! in `tests/lexer_props.rs`.
//!
//! The subtleties that matter for not mis-firing rules:
//!
//! - **Raw strings** `r"…"`, `r#"…"#` (any hash depth): a `HashMap` inside a
//!   raw string is string payload, not an identifier.
//! - **Nested block comments** `/* /* … */ */`: commented-out violations must
//!   not fire.
//! - **Lifetimes vs. char literals**: `'a` in `Vec<'a>` is a lifetime, `'a'`
//!   is a char — disambiguated by the closing quote.
//! - **Raw identifiers** `r#match` vs. raw strings `r#"…"#` — disambiguated
//!   by what follows the `#`s.
//!
//! Comments are kept as tokens (the rule engine reads `mav-lint: allow(…)`
//! annotations out of them) but are skipped for pattern matching.

/// Byte range plus 1-based line/column of a token's first character.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based line of the first character.
    pub line: u32,
    /// 1-based character column of the first character.
    pub col: u32,
}

/// What kind of lexeme a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers like `r#match`).
    Ident,
    /// A lifetime such as `'a` or `'static`.
    Lifetime,
    /// A char literal `'x'` (including escapes).
    Char,
    /// A string literal `"…"`, byte string `b"…"`, or their raw forms.
    Str,
    /// A numeric literal.
    Number,
    /// A single punctuation character.
    Punct,
    /// A `//` line comment (including doc comments).
    LineComment,
    /// A `/* … */` block comment (nesting handled).
    BlockComment,
    /// Anything unclassifiable — lenient catch-all, one character.
    Unknown,
}

/// One lexeme: its kind and where it sits in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// The lexeme class.
    pub kind: TokenKind,
    /// Source location.
    pub span: Span,
}

impl Token {
    /// The token's text, sliced back out of the source it was lexed from.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.span.start..self.span.end]
    }
}

/// Lexes `src` into a complete token stream. Total: never panics, never
/// drops source bytes between token spans except whitespace.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    src: &'s str,
    /// Byte offset of the next unread character.
    pos: usize,
    line: u32,
    col: u32,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src,
            pos: 0,
            line: 1,
            col: 1,
            tokens: Vec::new(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn peek2(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next()
    }

    fn peek3(&self) -> Option<char> {
        let mut it = self.src[self.pos..].chars();
        it.next();
        it.next();
        it.next()
    }

    /// Consumes one character, maintaining line/col counters.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn bump_while(&mut self, pred: impl Fn(char) -> bool) {
        while let Some(c) = self.peek() {
            if pred(c) {
                self.bump();
            } else {
                break;
            }
        }
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek() {
            if c.is_whitespace() {
                // Whitespace lives in the gaps between token spans; the span
                // round-trip property checks gaps are whitespace-only.
                self.bump_while(|c| c.is_whitespace());
                continue;
            }
            let (start, line, col) = (self.pos, self.line, self.col);
            let kind = self.next_kind(c);
            debug_assert!(self.pos > start, "lexer must always make progress");
            self.tokens.push(Token {
                kind,
                span: Span {
                    start,
                    end: self.pos,
                    line,
                    col,
                },
            });
        }
        self.tokens
    }

    /// Dispatches on the first character of the next token (never
    /// whitespace — `run` consumes that into the inter-token gap).
    fn next_kind(&mut self, first: char) -> TokenKind {
        match first {
            '/' => match self.peek2() {
                Some('/') => {
                    self.bump_while(|c| c != '\n');
                    TokenKind::LineComment
                }
                Some('*') => {
                    self.block_comment();
                    TokenKind::BlockComment
                }
                _ => {
                    self.bump();
                    TokenKind::Punct
                }
            },
            '\'' => self.quote(),
            '"' => {
                self.string_literal();
                TokenKind::Str
            }
            'r' => self.r_prefixed(),
            'b' => self.b_prefixed(),
            c if is_ident_start(c) => {
                self.ident();
                TokenKind::Ident
            }
            c if c.is_ascii_digit() => {
                self.number();
                TokenKind::Number
            }
            _ => {
                self.bump();
                TokenKind::Punct
            }
        }
    }

    fn ident(&mut self) {
        self.bump();
        self.bump_while(is_ident_continue);
    }

    /// `r…`: raw string `r"…"`/`r#"…"#`, raw identifier `r#ident`, or a plain
    /// identifier starting with `r`.
    fn r_prefixed(&mut self) -> TokenKind {
        match self.peek2() {
            Some('"') => {
                self.bump(); // r
                self.raw_string(0);
                TokenKind::Str
            }
            Some('#') => {
                // Count hashes to see whether a quote follows (raw string)
                // or an identifier does (raw identifier).
                let rest = &self.src[self.pos..];
                let hashes = rest[1..].chars().take_while(|&c| c == '#').count();
                let after = rest[1..].chars().nth(hashes);
                if after == Some('"') {
                    self.bump(); // r
                    for _ in 0..hashes {
                        self.bump();
                    }
                    self.raw_string(hashes);
                    TokenKind::Str
                } else {
                    // r#ident (or stray `r#` — consumed leniently as ident).
                    self.bump(); // r
                    self.bump(); // #
                    self.bump_while(is_ident_continue);
                    TokenKind::Ident
                }
            }
            _ => {
                self.ident();
                TokenKind::Ident
            }
        }
    }

    /// `b…`: byte string `b"…"`, byte char `b'…'`, raw byte string
    /// `br"…"`/`br#"…"#`, or a plain identifier starting with `b`.
    fn b_prefixed(&mut self) -> TokenKind {
        match (self.peek2(), self.peek3()) {
            (Some('"'), _) => {
                self.bump(); // b
                self.string_literal();
                TokenKind::Str
            }
            (Some('\''), _) => {
                self.bump(); // b
                self.char_literal();
                TokenKind::Char
            }
            (Some('r'), Some('"')) => {
                self.bump(); // b
                self.bump(); // r
                self.raw_string(0);
                TokenKind::Str
            }
            (Some('r'), Some('#')) => {
                let rest = &self.src[self.pos..];
                let hashes = rest[2..].chars().take_while(|&c| c == '#').count();
                let after = rest[2..].chars().nth(hashes);
                if after == Some('"') {
                    self.bump(); // b
                    self.bump(); // r
                    for _ in 0..hashes {
                        self.bump();
                    }
                    self.raw_string(hashes);
                    TokenKind::Str
                } else {
                    self.ident();
                    TokenKind::Ident
                }
            }
            _ => {
                self.ident();
                TokenKind::Ident
            }
        }
    }

    /// A `'…` token: lifetime or char literal. Called with `pos` at the `'`.
    fn quote(&mut self) -> TokenKind {
        match (self.peek2(), self.peek3()) {
            // Escaped char literal: '\n', '\'', '\u{1F600}' …
            (Some('\\'), _) => {
                self.char_literal();
                TokenKind::Char
            }
            // 'x' — a single character directly followed by a closing quote
            // is a char literal, even when the character could start an
            // identifier ('a' vs 'a).
            (Some(c), Some('\'')) if c != '\'' => {
                self.bump(); // '
                self.bump(); // c
                self.bump(); // '
                TokenKind::Char
            }
            // 'ident — a lifetime (includes '_ and 'static).
            (Some(c), _) if is_ident_start(c) => {
                self.bump(); // '
                self.bump_while(is_ident_continue);
                TokenKind::Lifetime
            }
            // Non-identifier char not followed by a quote ('', '+x…): lone
            // quote, lenient.
            _ => {
                self.bump();
                TokenKind::Unknown
            }
        }
    }

    /// A char literal starting at `'` whose body may contain escapes.
    /// Lenient: unterminated literals run to end of line or file.
    fn char_literal(&mut self) {
        self.bump(); // opening '
        while let Some(c) = self.peek() {
            match c {
                '\\' => {
                    self.bump();
                    self.bump(); // the escaped char (or EOF)
                }
                '\'' => {
                    self.bump();
                    return;
                }
                '\n' => return, // unterminated: stop at the line break
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// A `"…"` string with escape handling. Lenient: unterminated runs to
    /// end of file. Called with `pos` at the opening quote.
    fn string_literal(&mut self) {
        self.bump(); // opening "
        while let Some(c) = self.peek() {
            match c {
                '\\' => {
                    self.bump();
                    self.bump(); // escaped char (also covers \" and \\)
                }
                '"' => {
                    self.bump();
                    return;
                }
                _ => {
                    self.bump();
                }
            }
        }
    }

    /// The body of a raw string: called with `pos` at the opening `"`, with
    /// `hashes` hashes expected after the closing quote. Lenient:
    /// unterminated runs to end of file.
    fn raw_string(&mut self, hashes: usize) {
        self.bump(); // opening "
        while let Some(c) = self.peek() {
            self.bump();
            if c == '"' {
                let rest = &self.src[self.pos..];
                if rest.chars().take(hashes).filter(|&c| c == '#').count() == hashes {
                    for _ in 0..hashes {
                        self.bump();
                    }
                    return;
                }
            }
        }
    }

    /// A `/* … */` comment with nesting. Lenient: unterminated runs to end
    /// of file. Called with `pos` at the `/`.
    fn block_comment(&mut self) {
        self.bump(); // /
        self.bump(); // *
        let mut depth = 1usize;
        while let Some(c) = self.peek() {
            if c == '/' && self.peek2() == Some('*') {
                self.bump();
                self.bump();
                depth += 1;
            } else if c == '*' && self.peek2() == Some('/') {
                self.bump();
                self.bump();
                depth -= 1;
                if depth == 0 {
                    return;
                }
            } else {
                self.bump();
            }
        }
    }

    /// A numeric literal: integers (decimal/hex/octal/binary), floats with
    /// optional exponent, underscores, and type suffixes. The lexer does not
    /// interpret the value, so the grammar here is deliberately permissive —
    /// what matters is making progress and not swallowing `..` ranges or
    /// method calls (`1..2`, `x.0.min(…)`).
    fn number(&mut self) {
        self.bump();
        self.digitish();
        // Fractional part: `.` followed by a digit, or a trailing `1.` —
        // but never `..` (range) and never `.ident` (field/method access).
        if self.peek() == Some('.') {
            match self.peek2() {
                Some(c) if c.is_ascii_digit() => {
                    self.bump();
                    self.digitish();
                }
                Some('.') => {}
                Some(c) if is_ident_start(c) => {}
                _ => {
                    self.bump(); // trailing dot float: `1.`
                }
            }
        }
    }

    /// Digits, underscores, suffix letters, and signed exponents.
    fn digitish(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                let is_exp = c == 'e' || c == 'E';
                self.bump();
                // A sign directly after e/E followed by a digit belongs to
                // the exponent: 1e-5, 2.5E+10.
                if is_exp {
                    if let (Some(s), Some(d)) = (self.peek(), self.peek2()) {
                        if (s == '+' || s == '-') && d.is_ascii_digit() {
                            self.bump();
                        }
                    }
                }
            } else {
                break;
            }
        }
    }
}

/// Whether `c` can start an identifier.
fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

/// Whether `c` can continue an identifier.
fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Unknown)
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = a.b::c;");
        assert_eq!(toks[0], (TokenKind::Ident, "let".into()));
        assert_eq!(toks[1], (TokenKind::Ident, "x".into()));
        assert_eq!(toks[2], (TokenKind::Punct, "=".into()));
        assert!(toks.iter().any(|t| t.1 == "::" || t.1 == ":"));
    }

    #[test]
    fn raw_string_hides_idents() {
        let src = r####"let s = r#"HashMap.iter() "quoted" inside"#; x"####;
        let toks = kinds(src);
        assert!(!toks
            .iter()
            .any(|t| t.0 == TokenKind::Ident && t.1 == "HashMap"));
        let raw = toks.iter().find(|t| t.0 == TokenKind::Str).unwrap();
        assert!(raw.1.starts_with("r#\"") && raw.1.ends_with("\"#"));
        assert_eq!(toks.last().unwrap().1, "x");
    }

    #[test]
    fn nested_block_comment() {
        let src = "a /* x /* y */ z */ b";
        let toks = kinds(src);
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokenKind::BlockComment);
        assert_eq!(toks[1].1, "/* x /* y */ z */");
        assert_eq!(toks[2].1, "b");
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Lifetime).collect();
        let chars: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Char).collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.1 == "'a"));
        assert_eq!(chars.len(), 2);
        assert_eq!(chars[0].1, "'a'");
        assert_eq!(chars[1].1, "'\\n'");
    }

    #[test]
    fn raw_identifier_is_ident() {
        let toks = kinds("let r#match = 1;");
        assert!(toks
            .iter()
            .any(|t| t.0 == TokenKind::Ident && t.1 == "r#match"));
    }

    #[test]
    fn byte_strings_and_raw_byte_strings() {
        let toks = kinds(r###"let a = b"bytes"; let b = br#"raw HashMap"#; let c = b'x';"###);
        let strs: Vec<_> = toks.iter().filter(|t| t.0 == TokenKind::Str).collect();
        assert_eq!(strs.len(), 2);
        assert!(toks.iter().any(|t| t.0 == TokenKind::Char && t.1 == "b'x'"));
        assert!(!toks
            .iter()
            .any(|t| t.0 == TokenKind::Ident && t.1 == "HashMap"));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let toks = kinds("for i in 1..20 { x.0.min(2.5e-3); let h = 0xFF_u32; let t = 1.; }");
        let nums: Vec<_> = toks
            .iter()
            .filter(|t| t.0 == TokenKind::Number)
            .map(|t| t.1.clone())
            .collect();
        assert_eq!(nums, vec!["1", "20", "0", "2.5e-3", "0xFF_u32", "1."]);
    }

    #[test]
    fn line_and_col_tracking() {
        let src = "ab\n  cd";
        let toks = lex(src);
        let cd = toks.iter().find(|t| t.text(src) == "cd").expect("cd lexed");
        assert_eq!(cd.span.line, 2);
        assert_eq!(cd.span.col, 3);
    }

    #[test]
    fn unterminated_constructs_run_to_eof_without_panicking() {
        for src in [
            "\"never closed",
            "r#\"never closed",
            "/* never closed /* nested",
            "'",
            "b'",
            "let x = 'a",
        ] {
            let toks = lex(src);
            assert!(!toks.is_empty());
            assert_eq!(toks.last().unwrap().span.end, src.len());
        }
    }

    #[test]
    fn string_escapes() {
        let src = r#"let s = "a \" b \\"; let t = "\u{1F600}";"#;
        let strs: Vec<_> = kinds(src)
            .into_iter()
            .filter(|t| t.0 == TokenKind::Str)
            .collect();
        assert_eq!(strs.len(), 2);
        assert_eq!(strs[0].1, r#""a \" b \\""#);
    }
}
