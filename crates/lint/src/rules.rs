//! The determinism-audit rules.
//!
//! Every rule guards an invariant the bit-identity tests depend on but cannot
//! see: golden_legacy pins exact f64 bit patterns and the reliability sweep is
//! SHA-256-identical across thread counts *today*, yet a single NaN-capable
//! `partial_cmp().unwrap()` comparator, a `HashMap` iteration feeding a
//! result path, or a wall-clock read inside simulation code breaks that
//! contract the next time a hot path changes. The rules run on the token
//! stream from [`crate::lexer`] — no type information, so each rule is a
//! deliberately conservative syntactic pattern plus a scoping story
//! ([`crate::scope`]), an annotation escape hatch, and the budgeted baseline
//! ([`crate::baseline`]) for accepted sites.
//!
//! Suppressing a finding at a site:
//!
//! ```text
//! // mav-lint: allow(DET-HASH-ITER): accumulation is order-independent (u64 sum)
//! for mask in self.occupied_blocks.values() { … }
//! ```
//!
//! The annotation must sit on the finding's line or the line directly above
//! it, and carries its justification inline.

use crate::lexer::{lex, Token, TokenKind};
use crate::scope::{spawn_allowed, wallclock_allowed, FileScope};
use std::collections::{BTreeMap, BTreeSet};

/// Identifies one audit rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// Wall-clock reads (`Instant::now`, `SystemTime`) in simulation crates.
    DetWallclock,
    /// `HashMap`/`HashSet` iteration feeding result paths without a sort.
    DetHashIter,
    /// `partial_cmp(…).unwrap()`-style NaN-unsafe comparators.
    DetPartialCmp,
    /// RNG construction not threaded from an explicit seed.
    DetThreadRng,
    /// `unwrap`/`expect`/`panic!` in library crates (budgeted).
    PanicLib,
    /// Raw `std::thread::spawn` outside the rayon shim.
    RawSpawn,
}

impl RuleId {
    /// Every rule, in reporting order.
    pub const ALL: [RuleId; 6] = [
        RuleId::DetWallclock,
        RuleId::DetHashIter,
        RuleId::DetPartialCmp,
        RuleId::DetThreadRng,
        RuleId::PanicLib,
        RuleId::RawSpawn,
    ];

    /// The stable rule name used in reports, annotations and the baseline.
    pub fn name(self) -> &'static str {
        match self {
            RuleId::DetWallclock => "DET-WALLCLOCK",
            RuleId::DetHashIter => "DET-HASH-ITER",
            RuleId::DetPartialCmp => "DET-PARTIAL-CMP",
            RuleId::DetThreadRng => "DET-THREAD-RNG",
            RuleId::PanicLib => "PANIC-LIB",
            RuleId::RawSpawn => "RAW-SPAWN",
        }
    }

    /// Parses a rule name (as written in annotations and baselines).
    pub fn from_name(name: &str) -> Option<RuleId> {
        RuleId::ALL.iter().copied().find(|r| r.name() == name)
    }

    /// One-line rationale, shown by `--explain`-style docs (README).
    pub fn rationale(self) -> &'static str {
        match self {
            RuleId::DetWallclock => {
                "simulation runs on SimTime; host wall time in a sim crate can leak into results"
            }
            RuleId::DetHashIter => {
                "HashMap/HashSet iteration order is unspecified; feeding it into results breaks \
                 bit-identity"
            }
            RuleId::DetPartialCmp => {
                "partial_cmp().unwrap() panics on NaN and unwrap_or() silently mis-sorts; \
                 total_cmp is total"
            }
            RuleId::DetThreadRng => "every random draw must be reproducible from the mission seed",
            RuleId::PanicLib => {
                "library panics abort whole sweeps; budgeted so new ones are a deliberate choice"
            }
            RuleId::RawSpawn => {
                "parallelism goes through the rayon shim/SweepRunner, which are proven \
                 bit-deterministic"
            }
        }
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Which rule fired.
    pub rule: RuleId,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl Finding {
    /// The canonical single-line rendering: `file:line:col RULE-ID message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{} {} {}",
            self.file,
            self.line,
            self.col,
            self.rule.name(),
            self.message
        )
    }
}

/// Whether `rule` applies to code in `scope` (for `rel_path`). In-file
/// `#[cfg(test)] mod` regions are re-scoped to [`FileScope::Test`] before
/// this is consulted, so "outside tests" falls out of the table.
fn rule_applies(rule: RuleId, scope: &FileScope, rel_path: &str) -> bool {
    match rule {
        // The server's job results are byte-pinned like simulation output,
        // so its service code is held to the SimLib wall-clock rule; only
        // the documented boundary files (sweep wall_secs, the load client)
        // are exempt.
        RuleId::DetWallclock => {
            matches!(scope, FileScope::SimLib | FileScope::Server) && !wallclock_allowed(rel_path)
        }
        RuleId::DetHashIter => *scope == FileScope::SimLib,
        // NaN-unsafe comparators are banned everywhere, tests and shims
        // included: a comparator that panics on NaN is wrong in any scope.
        RuleId::DetPartialCmp => true,
        RuleId::DetThreadRng => *scope != FileScope::Test,
        RuleId::PanicLib => *scope == FileScope::SimLib,
        RuleId::RawSpawn => {
            matches!(
                scope,
                FileScope::SimLib | FileScope::Harness | FileScope::Server
            ) && !spawn_allowed(rel_path)
        }
    }
}

/// Methods whose receiver being a hash container makes iteration order
/// observable.
const HASH_ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "into_iter",
    "drain",
];

/// RNG constructors that pull entropy from the environment instead of a seed.
const UNSEEDED_RNG_IDENTS: [&str; 5] = [
    "thread_rng",
    "ThreadRng",
    "from_entropy",
    "from_os_rng",
    "OsRng",
];

/// Runs every rule over one file. `src` is the file contents, `rel_path` its
/// repo-relative path, `scope` the classification from [`crate::scope`].
pub fn check_file(rel_path: &str, src: &str, scope: &FileScope) -> Vec<Finding> {
    let cx = FileCx::new(rel_path, src, scope.clone());
    let mut findings = Vec::new();
    cx.det_wallclock(&mut findings);
    cx.det_hash_iter(&mut findings);
    cx.det_partial_cmp(&mut findings);
    cx.det_thread_rng(&mut findings);
    cx.panic_lib(&mut findings);
    cx.raw_spawn(&mut findings);
    findings.retain(|f| !cx.suppressed(f));
    findings.sort_by(|a, b| (a.line, a.col, a.rule.name()).cmp(&(b.line, b.col, b.rule.name())));
    findings
}

/// Per-file analysis context: the significant (non-comment) token stream,
/// test-mod regions, and annotation lines.
struct FileCx<'s> {
    src: &'s str,
    rel_path: &'s str,
    scope: FileScope,
    /// Comment-free token stream — patterns match against this.
    sig: Vec<Token>,
    /// Byte ranges of `#[cfg(test)] mod … { … }` bodies.
    test_regions: Vec<(usize, usize)>,
    /// Line → rules allowed by `mav-lint: allow(RULE)` annotations there.
    allows: BTreeMap<u32, BTreeSet<RuleId>>,
}

impl<'s> FileCx<'s> {
    fn new(rel_path: &'s str, src: &'s str, scope: FileScope) -> Self {
        let tokens = lex(src);
        let mut allows: BTreeMap<u32, BTreeSet<RuleId>> = BTreeMap::new();
        for t in &tokens {
            if matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                for rule in parse_allow_annotations(t.text(src)) {
                    allows.entry(t.span.line).or_default().insert(rule);
                }
            }
        }
        let sig: Vec<Token> = tokens
            .into_iter()
            .filter(|t| {
                !matches!(
                    t.kind,
                    TokenKind::LineComment | TokenKind::BlockComment | TokenKind::Unknown
                )
            })
            .collect();
        let test_regions = find_test_regions(&sig, src);
        FileCx {
            src,
            rel_path,
            scope,
            sig,
            test_regions,
            allows,
        }
    }

    fn text(&self, i: usize) -> &str {
        self.sig[i].text(self.src)
    }

    fn is_ident(&self, i: usize, s: &str) -> bool {
        i < self.sig.len() && self.sig[i].kind == TokenKind::Ident && self.text(i) == s
    }

    fn ident(&self, i: usize) -> Option<&str> {
        (i < self.sig.len() && self.sig[i].kind == TokenKind::Ident).then(|| self.text(i))
    }

    fn is_punct(&self, i: usize, c: char) -> bool {
        i < self.sig.len() && self.sig[i].kind == TokenKind::Punct && self.text(i).starts_with(c)
    }

    /// The scope governing token `i`: the file's scope, demoted to `Test`
    /// inside `#[cfg(test)] mod` bodies.
    fn scope_at(&self, i: usize) -> FileScope {
        let at = self.sig[i].span.start;
        if self
            .test_regions
            .iter()
            .any(|&(lo, hi)| at >= lo && at < hi)
        {
            FileScope::Test
        } else {
            self.scope.clone()
        }
    }

    /// Whether `rule` fires for a match anchored at token `i`.
    fn fires(&self, rule: RuleId, i: usize) -> bool {
        rule_applies(rule, &self.scope_at(i), self.rel_path)
    }

    fn finding(&self, rule: RuleId, i: usize, message: impl Into<String>) -> Finding {
        Finding {
            file: self.rel_path.to_string(),
            line: self.sig[i].span.line,
            col: self.sig[i].span.col,
            rule,
            message: message.into(),
        }
    }

    /// An annotation on the finding's line or the line directly above
    /// suppresses it (the annotation text carries the justification).
    fn suppressed(&self, f: &Finding) -> bool {
        [f.line, f.line.saturating_sub(1)]
            .iter()
            .any(|l| self.allows.get(l).is_some_and(|set| set.contains(&f.rule)))
    }

    /// Index of the matching `)` for the `(` at `open`, if balanced.
    fn close_paren(&self, open: usize) -> Option<usize> {
        let mut depth = 0usize;
        for i in open..self.sig.len() {
            if self.is_punct(i, '(') {
                depth += 1;
            } else if self.is_punct(i, ')') {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
        }
        None
    }

    // ---- rules -----------------------------------------------------------

    fn det_wallclock(&self, out: &mut Vec<Finding>) {
        const MSG: &str = "wall-clock read in a simulation crate: simulation state must advance \
                           on SimTime only; host timing belongs to the harness (documented \
                           boundary: crates/core/src/sweep.rs)";
        for i in 0..self.sig.len() {
            if !self.fires(RuleId::DetWallclock, i) {
                continue;
            }
            let instant_now = self.is_ident(i, "Instant")
                && self.is_punct(i + 1, ':')
                && self.is_punct(i + 2, ':')
                && self.is_ident(i + 3, "now");
            if instant_now || self.is_ident(i, "SystemTime") {
                out.push(self.finding(RuleId::DetWallclock, i, MSG));
            }
        }
    }

    fn det_hash_iter(&self, out: &mut Vec<Finding>) {
        let names = self.hash_typed_names();
        if names.is_empty() {
            return;
        }
        for i in 0..self.sig.len() {
            if !self.fires(RuleId::DetHashIter, i) {
                continue;
            }
            // `name.values()` / `name.iter()` / … where `name` is known to
            // be hash-typed in this file (type annotation, field decl, or
            // `= HashMap::new()` binding).
            let method_form = i >= 2
                && self
                    .ident(i)
                    .is_some_and(|m| HASH_ITER_METHODS.contains(&m))
                && self.is_punct(i + 1, '(')
                && self.is_punct(i - 1, '.')
                && self.ident(i - 2).is_some_and(|r| names.contains(r));
            // `for pat in [&[mut]] path.to.name {` iterating the map itself.
            let for_body = if self.is_ident(i, "for") {
                self.for_loop_over_hash(i, &names)
            } else {
                None
            };
            // Sort evidence: a method-form iteration must re-order within the
            // current or next statement; a for-loop's effects are contained in
            // its body, so the window is the body plus the statement after it.
            let sorted = match for_body {
                Some(open) => self.sorted_after_loop(open),
                None => self.sorted_downstream(i),
            };
            if (method_form || for_body.is_some()) && !sorted {
                out.push(self.finding(
                    RuleId::DetHashIter,
                    i,
                    "hash-container iteration order is unspecified and can reach results: sort \
                     the collected values, or annotate the site with // mav-lint: \
                     allow(DET-HASH-ITER): <why order cannot matter>",
                ));
            }
        }
    }

    /// Names with hash-container types visible in this file: `x: HashMap<…>`
    /// (locals, fields, params — `&`/`&mut`/lifetimes skipped) and
    /// `x = HashMap::new()`-style bindings.
    fn hash_typed_names(&self) -> BTreeSet<String> {
        let mut names = BTreeSet::new();
        for m in 0..self.sig.len() {
            if !(self.is_ident(m, "HashMap") || self.is_ident(m, "HashSet")) {
                continue;
            }
            if m < 2 {
                continue;
            }
            // Walk back over `&`, `mut` and lifetimes: `x: &'a mut HashMap`.
            let mut b = m - 1;
            while b > 1
                && (self.is_punct(b, '&')
                    || self.is_ident(b, "mut")
                    || self.sig[b].kind == TokenKind::Lifetime)
            {
                b -= 1;
            }
            // `x: HashMap<…>` (not a `::` path) or `x = HashMap::new()`
            // (not a `==` comparison).
            let binds = (self.is_punct(b, ':') && !self.is_punct(b - 1, ':'))
                || (self.is_punct(b, '=') && !self.is_punct(b - 1, '='));
            if binds {
                if let Some(name) = self.ident(b - 1) {
                    names.insert(name.to_string());
                }
            }
        }
        names
    }

    /// Whether the `for` at `i` iterates (a reference to) a hash-typed
    /// variable or field directly (`for k in &self.cells {`); returns the
    /// index of the loop body's opening brace when it does.
    fn for_loop_over_hash(&self, i: usize, names: &BTreeSet<String>) -> Option<usize> {
        // Find the `in` keyword within a short window (patterns are small).
        let mut j = (i + 1..(i + 30).min(self.sig.len())).find(|&j| self.is_ident(j, "in"))?;
        j += 1;
        while self.is_punct(j, '&') || self.is_ident(j, "mut") {
            j += 1;
        }
        // Read an ident chain `a.b.c`; the loop body brace must follow, so a
        // trailing method call (`map.keys()`) is left to the method form.
        let mut last;
        loop {
            match self.ident(j) {
                Some(name) => {
                    last = Some(name);
                    j += 1;
                }
                None => return None,
            }
            if self.is_punct(j, '.') && self.ident(j + 1).is_some() {
                j += 1;
                continue;
            }
            break;
        }
        (self.is_punct(j, '{') && last.is_some_and(|n| names.contains(n))).then_some(j)
    }

    /// Sort evidence for a for-loop over a hash container whose body opens at
    /// `open`: a `sort*`/BTree ident anywhere in the body, or in the single
    /// statement following the loop (the collect-then-sort idiom).
    fn sorted_after_loop(&self, open: usize) -> bool {
        let mut depth = 0usize;
        let mut close = None;
        for j in open..self.sig.len() {
            if self.is_punct(j, '{') {
                depth += 1;
            } else if self.is_punct(j, '}') {
                depth -= 1;
                if depth == 0 {
                    close = Some(j);
                    break;
                }
            }
            if let Some(id) = self.ident(j) {
                if id.contains("sort") || id == "BTreeMap" || id == "BTreeSet" {
                    return true;
                }
            }
        }
        let Some(close) = close else { return false };
        let mut depth = 0i32;
        for j in (close + 1)..(close + 80).min(self.sig.len()) {
            if let Some(id) = self.ident(j) {
                if id.contains("sort") || id == "BTreeMap" || id == "BTreeSet" {
                    return true;
                }
            }
            if self.is_punct(j, '{') {
                depth += 1;
            }
            // A `;` at the loop's own level ends the following statement; a
            // `}` below it closes the enclosing block — either way the
            // window is over (evidence from the *next* item must not count).
            if depth == 0 && (self.is_punct(j, ';') || self.is_punct(j, '}')) {
                return false;
            }
            if self.is_punct(j, '}') {
                depth -= 1;
            }
        }
        false
    }

    /// Sort evidence downstream of an iteration site: a `sort*` call or a
    /// `BTreeMap`/`BTreeSet` collect within the current and next statement
    /// re-establishes a deterministic order, so the iteration is benign.
    fn sorted_downstream(&self, i: usize) -> bool {
        let mut semis = 0;
        let mut depth = 0i32;
        for j in i..(i + 150).min(self.sig.len()) {
            if let Some(id) = self.ident(j) {
                if id.contains("sort") || id == "BTreeMap" || id == "BTreeSet" {
                    return true;
                }
            }
            if self.is_punct(j, '{') {
                depth += 1;
            }
            if self.is_punct(j, '}') {
                if depth == 0 {
                    // The enclosing block closed: later evidence would come
                    // from a sibling item, not this statement's continuation.
                    return false;
                }
                depth -= 1;
            }
            if self.is_punct(j, ';') && depth == 0 {
                semis += 1;
                if semis == 2 {
                    return false;
                }
            }
        }
        false
    }

    fn det_partial_cmp(&self, out: &mut Vec<Finding>) {
        for i in 0..self.sig.len() {
            if !self.fires(RuleId::DetPartialCmp, i) {
                continue;
            }
            if !self.is_ident(i, "partial_cmp") || !self.is_punct(i + 1, '(') {
                continue;
            }
            // `fn partial_cmp(…)` is the PartialOrd impl itself, not a call.
            if i > 0 && self.is_ident(i - 1, "fn") {
                continue;
            }
            let Some(close) = self.close_paren(i + 1) else {
                continue;
            };
            if self.is_punct(close + 1, '.')
                && self.ident(close + 2).is_some_and(|m| {
                    matches!(m, "unwrap" | "expect" | "unwrap_or" | "unwrap_or_else")
                })
            {
                out.push(self.finding(
                    RuleId::DetPartialCmp,
                    i,
                    "NaN-unsafe comparator: partial_cmp().unwrap() panics on NaN and \
                     unwrap_or() silently mis-sorts — use total_cmp and argue its ±0.0/NaN \
                     ordering is equivalent at the site",
                ));
            }
        }
    }

    fn det_thread_rng(&self, out: &mut Vec<Finding>) {
        const MSG: &str = "RNG constructed without an explicit seed: every draw must be \
                           reproducible from the mission/scenario seed — use \
                           SeedableRng::seed_from_u64 / from_seed";
        for i in 0..self.sig.len() {
            if !self.fires(RuleId::DetThreadRng, i) {
                continue;
            }
            let unseeded = self
                .ident(i)
                .is_some_and(|id| UNSEEDED_RNG_IDENTS.contains(&id));
            let rand_random = self.is_ident(i, "random")
                && i >= 3
                && self.is_punct(i - 1, ':')
                && self.is_punct(i - 2, ':')
                && self.is_ident(i - 3, "rand");
            if unseeded || rand_random {
                out.push(self.finding(RuleId::DetThreadRng, i, MSG));
            }
        }
    }

    fn panic_lib(&self, out: &mut Vec<Finding>) {
        for i in 0..self.sig.len() {
            if !self.fires(RuleId::PanicLib, i) {
                continue;
            }
            let method_panic = i >= 1
                && self.is_punct(i - 1, '.')
                && (self.is_ident(i, "unwrap") || self.is_ident(i, "expect"))
                && self.is_punct(i + 1, '(');
            let macro_panic = self.is_ident(i, "panic") && self.is_punct(i + 1, '!');
            if method_panic || macro_panic {
                out.push(self.finding(
                    RuleId::PanicLib,
                    i,
                    "panic path in a library crate (aborts whole sweeps): return a Result, or \
                     keep it within the file's budget in lint-baseline.json with a written \
                     invariant",
                ));
            }
        }
    }

    fn raw_spawn(&self, out: &mut Vec<Finding>) {
        for i in 0..self.sig.len() {
            if !self.fires(RuleId::RawSpawn, i) {
                continue;
            }
            if self.is_ident(i, "thread")
                && self.is_punct(i + 1, ':')
                && self.is_punct(i + 2, ':')
                && self.is_ident(i + 3, "spawn")
            {
                out.push(self.finding(
                    RuleId::RawSpawn,
                    i,
                    "raw std::thread::spawn: route parallelism through the rayon shim / \
                     SweepRunner, whose schedules are proven bit-deterministic",
                ));
            }
        }
    }
}

/// Extracts `mav-lint: allow(RULE-ID)` annotations from a comment's text.
/// Several may appear in one comment; unknown rule names are ignored.
fn parse_allow_annotations(comment: &str) -> Vec<RuleId> {
    let mut rules = Vec::new();
    let mut rest = comment;
    while let Some(at) = rest.find("mav-lint: allow(") {
        rest = &rest[at + "mav-lint: allow(".len()..];
        if let Some(end) = rest.find(')') {
            if let Some(rule) = RuleId::from_name(&rest[..end]) {
                rules.push(rule);
            }
            rest = &rest[end..];
        } else {
            break;
        }
    }
    rules
}

/// Finds the byte ranges of `#[cfg(test)] mod name { … }` bodies, so rules
/// can demote code inside them to [`FileScope::Test`]. Further attributes
/// between the `cfg` and the `mod` are skipped.
fn find_test_regions(sig: &[Token], src: &str) -> Vec<(usize, usize)> {
    let text = |i: usize| sig[i].text(src);
    let is_p = |i: usize, c: char| {
        i < sig.len() && sig[i].kind == TokenKind::Punct && text(i).starts_with(c)
    };
    let is_i = |i: usize, s: &str| i < sig.len() && sig[i].kind == TokenKind::Ident && text(i) == s;
    let mut regions = Vec::new();
    let mut i = 0;
    while i + 6 < sig.len() {
        let cfg_test = is_p(i, '#')
            && is_p(i + 1, '[')
            && is_i(i + 2, "cfg")
            && is_p(i + 3, '(')
            && is_i(i + 4, "test")
            && is_p(i + 5, ')')
            && is_p(i + 6, ']');
        if !cfg_test {
            i += 1;
            continue;
        }
        let mut j = i + 7;
        // Skip any further attributes: `#[…]` with bracket matching.
        while is_p(j, '#') && is_p(j + 1, '[') {
            let mut depth = 0usize;
            let mut k = j + 1;
            while k < sig.len() {
                if is_p(k, '[') {
                    depth += 1;
                } else if is_p(k, ']') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                k += 1;
            }
            j = k + 1;
        }
        if is_i(j, "pub") {
            j += 1;
        }
        if is_i(j, "mod") && j + 2 < sig.len() && sig[j + 1].kind == TokenKind::Ident {
            // Find the matching close brace of the mod body.
            let open = j + 2;
            if is_p(open, '{') {
                let mut depth = 0usize;
                let mut k = open;
                while k < sig.len() {
                    if is_p(k, '{') {
                        depth += 1;
                    } else if is_p(k, '}') {
                        depth -= 1;
                        if depth == 0 {
                            regions.push((sig[open].span.start, sig[k].span.end));
                            break;
                        }
                    }
                    k += 1;
                }
                // Lenient: an unbalanced body simply extends to EOF.
                if depth != 0 {
                    regions.push((sig[open].span.start, src.len()));
                }
                i = open;
                continue;
            }
        }
        i += 1;
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(src: &str) -> Vec<Finding> {
        check_file("crates/fake/src/lib.rs", src, &FileScope::SimLib)
    }

    #[test]
    fn annotation_parsing() {
        assert_eq!(
            parse_allow_annotations("// mav-lint: allow(DET-HASH-ITER): order-independent fold"),
            vec![RuleId::DetHashIter]
        );
        assert_eq!(
            parse_allow_annotations("// mav-lint: allow(NOT-A-RULE): nope"),
            vec![]
        );
        assert_eq!(
            parse_allow_annotations(
                "/* mav-lint: allow(PANIC-LIB): x; mav-lint: allow(RAW-SPAWN): y */"
            ),
            vec![RuleId::PanicLib, RuleId::RawSpawn]
        );
    }

    #[test]
    fn cfg_test_mod_demotes_scope() {
        let src = r#"
            pub fn f(x: Option<u32>) -> u32 { x.unwrap() }
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { Some(1).unwrap(); panic!("fine in tests"); }
            }
        "#;
        let findings = sim(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, RuleId::PanicLib);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn partial_cmp_fires_even_in_tests_but_not_on_impls() {
        let src = r#"
            impl PartialOrd for X {
                fn partial_cmp(&self, other: &Self) -> Option<Ordering> { None }
            }
            #[cfg(test)]
            mod tests {
                fn t(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }
            }
        "#;
        let findings = sim(src);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, RuleId::DetPartialCmp);
    }

    #[test]
    fn hash_iter_sort_evidence_suppresses() {
        let clean = r#"
            fn ordered(m: &HashMap<u64, f64>) -> Vec<f64> {
                let mut v: Vec<f64> = m.values().copied().collect();
                v.sort_unstable_by(|a, b| a.total_cmp(b));
                v
            }
        "#;
        assert!(sim(clean).is_empty(), "{:?}", sim(clean));
        let dirty = r#"
            fn unordered(m: &HashMap<u64, f64>) -> f64 {
                let mut acc = 0.0;
                for v in m.values() { acc += v; }
                let x = acc + 1.0;
                let y = x * 2.0;
                acc
            }
        "#;
        let findings = sim(dirty);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, RuleId::DetHashIter);
    }

    #[test]
    fn server_scope_enforces_wallclock_and_spawn_boundaries() {
        let clock = "fn t() { let s = std::time::Instant::now(); }";
        let in_service = check_file("crates/server/src/service.rs", clock, &FileScope::Server);
        assert_eq!(in_service.len(), 1, "{in_service:?}");
        assert_eq!(in_service[0].rule, RuleId::DetWallclock);
        let in_load = check_file(
            "crates/server/src/bin/server_load.rs",
            clock,
            &FileScope::Server,
        );
        assert!(in_load.is_empty(), "{in_load:?}");

        let spawn = "fn t() { std::thread::spawn(|| {}); }";
        let in_spec = check_file("crates/server/src/spec.rs", spawn, &FileScope::Server);
        assert_eq!(in_spec.len(), 1, "{in_spec:?}");
        assert_eq!(in_spec[0].rule, RuleId::RawSpawn);
        let in_pool = check_file("crates/server/src/server.rs", spawn, &FileScope::Server);
        assert!(in_pool.is_empty(), "{in_pool:?}");
    }

    #[test]
    fn wallclock_allowlisted_file_is_silent() {
        let src = "fn t() -> f64 { let s = std::time::Instant::now(); 0.0 }";
        let in_sweep = check_file("crates/core/src/sweep.rs", src, &FileScope::SimLib);
        assert!(in_sweep.is_empty(), "{in_sweep:?}");
        let elsewhere = check_file("crates/core/src/flight.rs", src, &FileScope::SimLib);
        assert_eq!(elsewhere.len(), 1);
        assert_eq!(elsewhere[0].rule, RuleId::DetWallclock);
    }
}
