//! File classification: which rules apply where.
//!
//! The determinism contract is not uniform across the tree. Simulation
//! library crates must be bit-deterministic; the bench harness is *allowed*
//! to read the wall clock (that is its job: measuring host throughput); the
//! shims mirror external crate APIs; tests may do whatever proves the point.
//! Each rule declares the scopes it fires in, and this module maps a
//! repo-relative path to its scope.

/// The audit scope a file belongs to, derived from its repo-relative path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileScope {
    /// A simulation library crate (`crates/*` except the harness/tool
    /// crates): the code whose outputs are pinned bit-for-bit by the golden
    /// and SHA-256 determinism tests. The strictest scope.
    SimLib,
    /// Harness/tooling code: `crates/bench` (figures, tables, the CLI
    /// driver), the facade crate `src/`, and this lint tool itself. Allowed
    /// to measure wall time; still must not break determinism of *results*.
    Harness,
    /// The job server (`crates/server`): service code wrapping the
    /// simulation. Its *results* carry the full determinism contract (the
    /// cache-hit byte-identity test pins them), so wall-clock reads are
    /// banned as in `SimLib`; its listener/dispatcher/worker threads are
    /// documented allowlist entries ([`SPAWN_ALLOWED_FILES`]) rather than
    /// baseline budget, because threading is the crate's purpose.
    Server,
    /// Offline stand-ins for external crates (`shims/*`). They mirror
    /// foreign APIs (criterion reads the wall clock because criterion does),
    /// so only universally-safe rules apply.
    Shim,
    /// Test code: anything under a `tests/`, `benches/` or `examples/`
    /// directory. Exercises the contract rather than carrying it.
    Test,
}

/// Classifies a repo-relative path (forward slashes) into its scope.
pub fn classify(rel_path: &str) -> FileScope {
    let components: Vec<&str> = rel_path.split('/').collect();
    if components
        .iter()
        .any(|c| matches!(*c, "tests" | "benches" | "examples"))
    {
        return FileScope::Test;
    }
    match components.first().copied() {
        Some("shims") => FileScope::Shim,
        Some("crates") => match components.get(1).copied() {
            Some("bench") | Some("lint") => FileScope::Harness,
            Some("server") => FileScope::Server,
            _ => FileScope::SimLib,
        },
        // The facade crate `src/` plus any stray root-level file.
        _ => FileScope::Harness,
    }
}

/// Files inside simulation crates that are *documented* wall-clock holders:
/// DET-WALLCLOCK stays silent here. Keep this list short and justified —
/// every entry is a boundary where wall time is measured but provably never
/// flows into mission results.
///
/// - `crates/core/src/sweep.rs`: `SweepRunner` stamps `SweepReport::
///   wall_secs` purely as harness throughput metadata. Mission outcomes
///   inside that report come from `run_mission`, which runs entirely on the
///   simulated clock; the audit comment at the `Instant::now()` site
///   documents the boundary.
/// - `crates/server/src/bin/server_load.rs`: the load client measures host
///   jobs/sec for `mav-server`. Job *results* are pure functions of the job
///   spec (pinned by the cache-hit byte-identity test); the wall clock only
///   times the client's own request loop.
pub const WALLCLOCK_ALLOWED_FILES: &[&str] = &[
    "crates/core/src/sweep.rs",
    "crates/server/src/bin/server_load.rs",
];

/// Whether `rel_path` is one of the documented wall-clock boundary files.
pub fn wallclock_allowed(rel_path: &str) -> bool {
    WALLCLOCK_ALLOWED_FILES.contains(&rel_path)
}

/// Files allowed to call `std::thread::spawn` directly: the job server's
/// threading boundary. Everywhere else parallelism goes through the rayon
/// shim / `SweepRunner`, whose schedules are proven bit-deterministic; these
/// files *are* the service plumbing around that machinery.
///
/// - `crates/server/src/service.rs`: the dispatcher thread and the worker
///   pool. Workers run jobs through `run_mission_with_scratch` and the
///   sharded sweep, so scheduling order cannot reach result bytes — the
///   cache-hit byte-identity test would catch it if it did.
/// - `crates/server/src/server.rs`: the TCP accept loop and the
///   per-connection handler threads. Connections only shuttle bytes between
///   sockets and the service; no simulation state lives here.
pub const SPAWN_ALLOWED_FILES: &[&str] = &[
    "crates/server/src/service.rs",
    "crates/server/src/server.rs",
];

/// Whether `rel_path` is one of the documented raw-spawn boundary files.
pub fn spawn_allowed(rel_path: &str) -> bool {
    SPAWN_ALLOWED_FILES.contains(&rel_path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(
            classify("crates/perception/src/octomap.rs"),
            FileScope::SimLib
        );
        assert_eq!(classify("crates/core/src/sweep.rs"), FileScope::SimLib);
        // The fault injector lives inside the deterministic simulation core:
        // it must stay under the DET-THREAD-RNG / DET-WALLCLOCK rules, never
        // graduate into a harness or allowlisted boundary file.
        assert_eq!(classify("crates/core/src/faults.rs"), FileScope::SimLib);
        assert_eq!(classify("crates/bench/src/figures.rs"), FileScope::Harness);
        assert_eq!(classify("crates/lint/src/rules.rs"), FileScope::Harness);
        assert_eq!(classify("crates/server/src/service.rs"), FileScope::Server);
        assert_eq!(
            classify("crates/server/src/bin/server_load.rs"),
            FileScope::Server
        );
        assert_eq!(
            classify("crates/server/tests/server_api.rs"),
            FileScope::Test
        );
        assert_eq!(classify("src/lib.rs"), FileScope::Harness);
        assert_eq!(classify("shims/rayon/src/lib.rs"), FileScope::Shim);
        assert_eq!(classify("tests/golden_legacy.rs"), FileScope::Test);
        assert_eq!(classify("crates/runtime/tests/graph.rs"), FileScope::Test);
        assert_eq!(
            classify("crates/bench/examples/episode_ab.rs"),
            FileScope::Test
        );
        assert_eq!(classify("crates/bench/benches/energy.rs"), FileScope::Test);
    }

    #[test]
    fn wallclock_allowlist() {
        assert!(wallclock_allowed("crates/core/src/sweep.rs"));
        assert!(wallclock_allowed("crates/server/src/bin/server_load.rs"));
        assert!(!wallclock_allowed("crates/core/src/flight.rs"));
        assert!(!wallclock_allowed("crates/core/src/faults.rs"));
        // The server's service/routing code must NOT read the wall clock:
        // only the load client is a documented timing boundary.
        assert!(!wallclock_allowed("crates/server/src/service.rs"));
        assert!(!wallclock_allowed("crates/server/src/server.rs"));
    }

    #[test]
    fn spawn_allowlist() {
        assert!(spawn_allowed("crates/server/src/service.rs"));
        assert!(spawn_allowed("crates/server/src/server.rs"));
        // The spec layer and everything outside the server keep going
        // through the rayon shim / SweepRunner.
        assert!(!spawn_allowed("crates/server/src/spec.rs"));
        assert!(!spawn_allowed("crates/core/src/sweep.rs"));
        assert!(!spawn_allowed("crates/bench/src/figures.rs"));
    }
}
