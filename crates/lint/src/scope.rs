//! File classification: which rules apply where.
//!
//! The determinism contract is not uniform across the tree. Simulation
//! library crates must be bit-deterministic; the bench harness is *allowed*
//! to read the wall clock (that is its job: measuring host throughput); the
//! shims mirror external crate APIs; tests may do whatever proves the point.
//! Each rule declares the scopes it fires in, and this module maps a
//! repo-relative path to its scope.

/// The audit scope a file belongs to, derived from its repo-relative path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileScope {
    /// A simulation library crate (`crates/*` except the harness/tool
    /// crates): the code whose outputs are pinned bit-for-bit by the golden
    /// and SHA-256 determinism tests. The strictest scope.
    SimLib,
    /// Harness/tooling code: `crates/bench` (figures, tables, the CLI
    /// driver), the facade crate `src/`, and this lint tool itself. Allowed
    /// to measure wall time; still must not break determinism of *results*.
    Harness,
    /// Offline stand-ins for external crates (`shims/*`). They mirror
    /// foreign APIs (criterion reads the wall clock because criterion does),
    /// so only universally-safe rules apply.
    Shim,
    /// Test code: anything under a `tests/`, `benches/` or `examples/`
    /// directory. Exercises the contract rather than carrying it.
    Test,
}

/// Classifies a repo-relative path (forward slashes) into its scope.
pub fn classify(rel_path: &str) -> FileScope {
    let components: Vec<&str> = rel_path.split('/').collect();
    if components
        .iter()
        .any(|c| matches!(*c, "tests" | "benches" | "examples"))
    {
        return FileScope::Test;
    }
    match components.first().copied() {
        Some("shims") => FileScope::Shim,
        Some("crates") => match components.get(1).copied() {
            Some("bench") | Some("lint") => FileScope::Harness,
            _ => FileScope::SimLib,
        },
        // The facade crate `src/` plus any stray root-level file.
        _ => FileScope::Harness,
    }
}

/// Files inside simulation crates that are *documented* wall-clock holders:
/// DET-WALLCLOCK stays silent here. Keep this list short and justified —
/// every entry is a boundary where wall time is measured but provably never
/// flows into mission results.
///
/// - `crates/core/src/sweep.rs`: `SweepRunner` stamps `SweepReport::
///   wall_secs` purely as harness throughput metadata. Mission outcomes
///   inside that report come from `run_mission`, which runs entirely on the
///   simulated clock; the audit comment at the `Instant::now()` site
///   documents the boundary.
pub const WALLCLOCK_ALLOWED_FILES: &[&str] = &["crates/core/src/sweep.rs"];

/// Whether `rel_path` is one of the documented wall-clock boundary files.
pub fn wallclock_allowed(rel_path: &str) -> bool {
    WALLCLOCK_ALLOWED_FILES.contains(&rel_path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert_eq!(
            classify("crates/perception/src/octomap.rs"),
            FileScope::SimLib
        );
        assert_eq!(classify("crates/core/src/sweep.rs"), FileScope::SimLib);
        // The fault injector lives inside the deterministic simulation core:
        // it must stay under the DET-THREAD-RNG / DET-WALLCLOCK rules, never
        // graduate into a harness or allowlisted boundary file.
        assert_eq!(classify("crates/core/src/faults.rs"), FileScope::SimLib);
        assert_eq!(classify("crates/bench/src/figures.rs"), FileScope::Harness);
        assert_eq!(classify("crates/lint/src/rules.rs"), FileScope::Harness);
        assert_eq!(classify("src/lib.rs"), FileScope::Harness);
        assert_eq!(classify("shims/rayon/src/lib.rs"), FileScope::Shim);
        assert_eq!(classify("tests/golden_legacy.rs"), FileScope::Test);
        assert_eq!(classify("crates/runtime/tests/graph.rs"), FileScope::Test);
        assert_eq!(
            classify("crates/bench/examples/episode_ab.rs"),
            FileScope::Test
        );
        assert_eq!(classify("crates/bench/benches/energy.rs"), FileScope::Test);
    }

    #[test]
    fn wallclock_allowlist() {
        assert!(wallclock_allowed("crates/core/src/sweep.rs"));
        assert!(!wallclock_allowed("crates/core/src/flight.rs"));
        assert!(!wallclock_allowed("crates/core/src/faults.rs"));
    }
}
