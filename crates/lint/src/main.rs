//! The `mav-lint` CLI: audit the tree, diff against the committed baseline,
//! exit non-zero on any non-baselined finding. See the crate docs for the
//! rule catalogue and `README.md` ("Static analysis: the determinism audit")
//! for the operational story.

use mav_lint::baseline::Baseline;
use mav_types::ToJson;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "mav-lint — determinism audit for the MAVBench-RS tree

USAGE:
    mav-lint [--root DIR] [--baseline FILE] [--json] [--update-baseline]

OPTIONS:
    --root DIR          Repository root to scan (default: current directory)
    --baseline FILE     Baseline path (default: <root>/lint-baseline.json)
    --json              Emit the machine-readable report on stdout
    --update-baseline   Rewrite the baseline from current findings, keeping
                        existing justifications; new entries get a TODO
                        justification that must be filled in (the loader
                        rejects empty ones)
    -h, --help          This help

EXIT STATUS:
    0  no findings outside the baseline
    1  new findings (the CI gate)
    2  usage or I/O error";

struct Args {
    root: PathBuf,
    baseline: PathBuf,
    json: bool,
    update_baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut root = PathBuf::from(".");
    let mut baseline: Option<PathBuf> = None;
    let mut json = false;
    let mut update_baseline = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(args.next().ok_or("--root needs a directory")?);
            }
            "--baseline" => {
                baseline = Some(PathBuf::from(args.next().ok_or("--baseline needs a path")?));
            }
            "--json" => json = true,
            "--update-baseline" => update_baseline = true,
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}\n\n{USAGE}")),
        }
    }
    let baseline = baseline.unwrap_or_else(|| root.join("lint-baseline.json"));
    Ok(Args {
        root,
        baseline,
        json,
        update_baseline,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let baseline = match Baseline::load(&args.baseline) {
        Ok(b) => b,
        Err(msg) => {
            eprintln!("mav-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    let report = match mav_lint::run(&args.root, &baseline) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("mav-lint: scanning {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    if args.update_baseline {
        let updated = Baseline::from_findings(&report.findings, &baseline);
        let text = updated.to_json().to_string_pretty();
        if let Err(e) = std::fs::write(&args.baseline, text + "\n") {
            eprintln!("mav-lint: writing {}: {e}", args.baseline.display());
            return ExitCode::from(2);
        }
        let todo = updated
            .entries
            .iter()
            .filter(|e| e.justification.starts_with("TODO"))
            .count();
        eprintln!(
            "mav-lint: wrote {} entries ({} findings budgeted) to {}{}",
            updated.entries.len(),
            report.findings.len(),
            args.baseline.display(),
            if todo > 0 {
                format!("; {todo} entries need a justification before the baseline loads")
            } else {
                String::new()
            }
        );
        return ExitCode::SUCCESS;
    }

    if args.json {
        println!("{}", report.to_json().to_string_pretty());
    } else {
        for f in &report.outcome.new {
            println!("{}", f.render());
        }
        for s in &report.outcome.stale {
            eprintln!(
                "mav-lint: stale baseline entry: {} {} allows {} but only {} present — \
                 tighten with --update-baseline",
                s.file,
                s.rule.name(),
                s.allowed,
                s.actual
            );
        }
        eprintln!(
            "mav-lint: {} files, {} findings ({} baselined, {} new)",
            report.files_scanned,
            report.findings.len(),
            report.outcome.baselined,
            report.outcome.new.len()
        );
    }
    if report.ok() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
