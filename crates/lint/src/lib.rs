//! `mav-lint`: the determinism-auditing static-analysis pass.
//!
//! Every result in this reproduction rests on bit-identical determinism —
//! golden_legacy pins exact f64 bit patterns, the parallel scan insertion and
//! the sharded reliability sweep are proven SHA-256-identical across thread
//! counts — but nothing in `cargo test` *enforces the coding rules* that make
//! that true. This crate does: a hand-rolled Rust lexer ([`lexer`]), six
//! token-level rules ([`rules`]) with per-rule scoping ([`scope`]), and a
//! committed count-budgeted allowlist ([`baseline`]) so every accepted
//! violation is explicit and justified while any *new* one fails CI.
//!
//! Run it from the repo root:
//!
//! ```text
//! cargo run --release -p mav-lint            # human-readable findings
//! cargo run --release -p mav-lint -- --json  # machine-readable report
//! cargo run --release -p mav-lint -- --update-baseline
//! ```

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod scope;

use baseline::{Baseline, BaselineOutcome};
use mav_types::{Json, ToJson};
use rules::{check_file, Finding, RuleId};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// The directories scanned under the repo root. Everything else (target/,
/// BENCH records, workflows) holds no Rust source.
pub const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "shims"];

/// Directory names never descended into: build output and the lint fixture
/// corpus (fixture files *are* violations, checked by the fixture tests with
/// explicit scopes, and must not fail the repo audit).
const SKIP_DIRS: &[&str] = &["target", "fixtures"];

/// The result of auditing a tree.
#[derive(Debug)]
pub struct Report {
    /// How many `.rs` files were lexed and checked.
    pub files_scanned: usize,
    /// Every finding, baselined or not, sorted by (file, line, col).
    pub findings: Vec<Finding>,
    /// The baseline diff: what is new, what was absorbed, what is stale.
    pub outcome: BaselineOutcome,
}

impl Report {
    /// The gate: true when no finding escapes the baseline.
    pub fn ok(&self) -> bool {
        self.outcome.new.is_empty()
    }

    /// Total findings per rule (baselined included), deterministic order.
    pub fn per_rule(&self) -> BTreeMap<&'static str, usize> {
        let mut counts: BTreeMap<&'static str, usize> =
            RuleId::ALL.iter().map(|r| (r.name(), 0)).collect();
        for f in &self.findings {
            *counts.entry(f.rule.name()).or_insert(0) += 1;
        }
        counts
    }
}

impl ToJson for Finding {
    fn to_json(&self) -> Json {
        Json::object()
            .field("file", self.file.as_str())
            .field("line", self.line)
            .field("col", self.col)
            .field("rule", self.rule.name())
            .field("message", self.message.as_str())
            .field("rendered", self.render())
    }
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        let per_rule = self
            .per_rule()
            .into_iter()
            .fold(Json::object(), |obj, (rule, n)| obj.field(rule, n));
        Json::object()
            .field("schema", "mav-lint-report")
            .field("version", 1i64)
            .field("files_scanned", self.files_scanned)
            .field("findings_total", self.findings.len())
            .field("baselined", self.outcome.baselined)
            .field("per_rule", per_rule)
            .field(
                "new",
                Json::Array(self.outcome.new.iter().map(ToJson::to_json).collect()),
            )
            .field(
                "stale_baseline_entries",
                Json::Array(
                    self.outcome
                        .stale
                        .iter()
                        .map(|s| {
                            Json::object()
                                .field("file", s.file.as_str())
                                .field("rule", s.rule.name())
                                .field("allowed", s.allowed)
                                .field("actual", s.actual)
                        })
                        .collect(),
                ),
            )
            .field("ok", self.ok())
    }
}

/// Collects every `.rs` file under the scan roots, sorted, with
/// repo-relative forward-slash paths. Deterministic across platforms and
/// directory-entry orders.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<(PathBuf, String)>> {
    let mut files = Vec::new();
    for scan_root in SCAN_ROOTS {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            walk(&dir, scan_root, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.1.cmp(&b.1));
    Ok(files)
}

fn walk(dir: &Path, rel: &str, files: &mut Vec<(PathBuf, String)>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(|e| e.file_name());
    for entry in entries {
        let name = entry.file_name();
        let name = name.to_string_lossy();
        let path = entry.path();
        let rel_child = format!("{rel}/{name}");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            walk(&path, &rel_child, files)?;
        } else if name.ends_with(".rs") {
            files.push((path, rel_child));
        }
    }
    Ok(())
}

/// Audits the tree under `root` and diffs against `baseline`.
pub fn run(root: &Path, baseline: &Baseline) -> std::io::Result<Report> {
    let files = collect_rs_files(root)?;
    let files_scanned = files.len();
    let mut findings = Vec::new();
    for (path, rel) in &files {
        let src = std::fs::read_to_string(path)?;
        let file_scope = scope::classify(rel);
        findings.extend(check_file(rel, &src, &file_scope));
    }
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.col, a.rule.name()).cmp(&(&b.file, b.line, b.col, b.rule.name()))
    });
    let outcome = baseline.apply(&findings);
    Ok(Report {
        files_scanned,
        findings,
        outcome,
    })
}
