//! Vehicle kinematic state.

use mav_types::{Pose, Twist, Vec3};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Full kinematic state of the simulated MAV.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MavState {
    /// Position and heading.
    pub pose: Pose,
    /// Linear and angular velocity.
    pub twist: Twist,
    /// Current linear acceleration, m/s².
    pub acceleration: Vec3,
}

impl MavState {
    /// Creates a state at rest at the given pose.
    pub fn at_rest(pose: Pose) -> Self {
        MavState {
            pose,
            twist: Twist::ZERO,
            acceleration: Vec3::ZERO,
        }
    }

    /// Current speed in m/s.
    pub fn speed(&self) -> f64 {
        self.twist.speed()
    }

    /// Current horizontal speed in m/s.
    pub fn horizontal_speed(&self) -> f64 {
        self.twist.horizontal_speed()
    }

    /// Returns `true` when the vehicle is (numerically) stationary.
    pub fn is_stationary(&self) -> bool {
        self.speed() < 1e-3
    }
}

impl fmt::Display for MavState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "state[{} v={:.2} m/s]", self.pose, self.speed())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_rest_is_stationary() {
        let s = MavState::at_rest(Pose::new(Vec3::new(1.0, 2.0, 3.0), 0.5));
        assert!(s.is_stationary());
        assert_eq!(s.speed(), 0.0);
        assert_eq!(s.pose.position.z, 3.0);
    }

    #[test]
    fn speed_reflects_twist() {
        let s = MavState {
            twist: Twist::linear(Vec3::new(3.0, 4.0, 0.0)),
            ..MavState::default()
        };
        assert_eq!(s.speed(), 5.0);
        assert_eq!(s.horizontal_speed(), 5.0);
        assert!(!s.is_stationary());
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", MavState::default()).is_empty());
    }
}
