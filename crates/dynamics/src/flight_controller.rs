//! Flight controller: high-level command lowering and flight-phase tracking.
//!
//! This is the MAVBench-RS stand-in for the PX4/Pixhawk autopilot. It accepts
//! high-level commands (arm, take off, fly a velocity setpoint, hover, land),
//! lowers them to the velocity commands the point-mass quadrotor tracks, and
//! reports the flight phase used by the mission power traces (Fig. 9b of the
//! paper distinguishes arming, hovering, flying and landing power).

use crate::quadrotor::Quadrotor;
use crate::state::MavState;
use mav_types::Vec3;
use serde::{Deserialize, Serialize};
use std::fmt;

/// High-level commands issued by the application's control stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FlightCommand {
    /// Spin up the motors on the ground.
    Arm,
    /// Climb vertically to the given altitude (metres).
    TakeOff {
        /// Target altitude above ground, metres.
        altitude: f64,
    },
    /// Hold the current position.
    Hover,
    /// Track a world-frame velocity setpoint.
    Velocity {
        /// Commanded velocity, m/s.
        setpoint: Vec3,
    },
    /// Descend and disarm.
    Land,
}

/// The phase of flight the vehicle is currently in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlightPhase {
    /// Motors off, on the ground.
    Idle,
    /// Motors spinning, still on the ground.
    Armed,
    /// Climbing to the take-off altitude.
    TakingOff,
    /// Holding position in the air.
    Hovering,
    /// Tracking a velocity or trajectory.
    Flying,
    /// Descending to land.
    Landing,
    /// Back on the ground after landing.
    Landed,
}

impl FlightPhase {
    /// Returns `true` when the rotors are producing lift (i.e. the rotor power
    /// model applies).
    pub fn rotors_active(&self) -> bool {
        !matches!(self, FlightPhase::Idle | FlightPhase::Landed)
    }
}

impl fmt::Display for FlightPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FlightPhase::Idle => "idle",
            FlightPhase::Armed => "armed",
            FlightPhase::TakingOff => "taking-off",
            FlightPhase::Hovering => "hovering",
            FlightPhase::Flying => "flying",
            FlightPhase::Landing => "landing",
            FlightPhase::Landed => "landed",
        };
        f.write_str(s)
    }
}

/// The flight controller.
///
/// # Example
///
/// ```
/// use mav_dynamics::{FlightController, FlightCommand, FlightPhase, Quadrotor, QuadrotorConfig};
/// use mav_types::{Pose, Vec3};
///
/// let mut quad = Quadrotor::new(QuadrotorConfig::default(), Pose::origin());
/// let mut fc = FlightController::new();
/// fc.command(FlightCommand::Arm);
/// fc.command(FlightCommand::TakeOff { altitude: 2.5 });
/// for _ in 0..200 {
///     fc.update(&mut quad, 0.05);
/// }
/// assert_eq!(fc.phase(), FlightPhase::Hovering);
/// assert!((quad.state().pose.position.z - 2.5).abs() < 0.3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightController {
    phase: FlightPhase,
    takeoff_altitude: f64,
    velocity_setpoint: Vec3,
    hover_position: Option<Vec3>,
    /// Proportional gain used for hover position hold and take-off/landing
    /// altitude tracking.
    position_gain: f64,
}

impl FlightController {
    /// Creates a flight controller in the idle phase.
    pub fn new() -> Self {
        FlightController {
            phase: FlightPhase::Idle,
            takeoff_altitude: 2.0,
            velocity_setpoint: Vec3::ZERO,
            hover_position: None,
            position_gain: 1.2,
        }
    }

    /// The current flight phase.
    pub fn phase(&self) -> FlightPhase {
        self.phase
    }

    /// Returns `true` once the vehicle is airborne and accepting velocity
    /// commands (hovering or flying).
    pub fn is_airborne(&self) -> bool {
        matches!(self.phase, FlightPhase::Hovering | FlightPhase::Flying)
    }

    /// Accepts a high-level command. Illegal transitions (e.g. `TakeOff`
    /// while idle and unarmed) are ignored, matching autopilot behaviour of
    /// rejecting commands in the wrong mode.
    pub fn command(&mut self, cmd: FlightCommand) {
        match (self.phase, cmd) {
            (FlightPhase::Idle | FlightPhase::Landed, FlightCommand::Arm) => {
                self.phase = FlightPhase::Armed;
            }
            (FlightPhase::Armed, FlightCommand::TakeOff { altitude }) => {
                self.takeoff_altitude = altitude.max(0.5);
                self.phase = FlightPhase::TakingOff;
            }
            (FlightPhase::Hovering | FlightPhase::Flying, FlightCommand::Velocity { setpoint }) => {
                self.velocity_setpoint = setpoint;
                self.hover_position = None;
                self.phase = FlightPhase::Flying;
            }
            (FlightPhase::Flying | FlightPhase::Hovering, FlightCommand::Hover) => {
                self.phase = FlightPhase::Hovering;
                self.hover_position = None; // latched on next update
            }
            (
                FlightPhase::Hovering | FlightPhase::Flying | FlightPhase::TakingOff,
                FlightCommand::Land,
            ) => {
                self.phase = FlightPhase::Landing;
            }
            _ => {}
        }
    }

    /// Runs one control step: converts the current phase into a velocity
    /// command for the quadrotor and integrates it by `dt` seconds.
    ///
    /// Returns the vehicle state after the step.
    pub fn update(&mut self, quad: &mut Quadrotor, dt: f64) -> MavState {
        let state = *quad.state();
        let cmd = match self.phase {
            FlightPhase::Idle | FlightPhase::Armed | FlightPhase::Landed => Vec3::ZERO,
            FlightPhase::TakingOff => {
                if state.pose.position.z >= self.takeoff_altitude - 0.1 {
                    self.phase = FlightPhase::Hovering;
                    self.hover_position = Some(state.pose.position);
                    Vec3::ZERO
                } else {
                    Vec3::new(
                        0.0,
                        0.0,
                        (self.takeoff_altitude - state.pose.position.z).min(2.0),
                    )
                }
            }
            FlightPhase::Hovering => {
                let anchor = *self.hover_position.get_or_insert(state.pose.position);
                (anchor - state.pose.position) * self.position_gain
            }
            FlightPhase::Flying => self.velocity_setpoint,
            FlightPhase::Landing => {
                if state.pose.position.z <= 0.1 {
                    self.phase = FlightPhase::Landed;
                    quad.halt();
                    Vec3::ZERO
                } else {
                    Vec3::new(0.0, 0.0, -(state.pose.position.z).min(1.5))
                }
            }
        };
        if self.phase == FlightPhase::Landed || self.phase == FlightPhase::Idle {
            // Vehicle is on the ground; don't integrate.
            return *quad.state();
        }
        quad.step(cmd, dt);
        *quad.state()
    }
}

impl Default for FlightController {
    fn default() -> Self {
        FlightController::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quadrotor::QuadrotorConfig;
    use mav_types::Pose;

    fn setup() -> (Quadrotor, FlightController) {
        (
            Quadrotor::new(QuadrotorConfig::dji_matrice_100(), Pose::origin()),
            FlightController::new(),
        )
    }

    fn run(fc: &mut FlightController, quad: &mut Quadrotor, steps: usize) {
        for _ in 0..steps {
            fc.update(quad, 0.05);
        }
    }

    #[test]
    fn full_flight_cycle() {
        let (mut quad, mut fc) = setup();
        assert_eq!(fc.phase(), FlightPhase::Idle);
        fc.command(FlightCommand::Arm);
        assert_eq!(fc.phase(), FlightPhase::Armed);
        fc.command(FlightCommand::TakeOff { altitude: 3.0 });
        run(&mut fc, &mut quad, 300);
        assert_eq!(fc.phase(), FlightPhase::Hovering);
        assert!((quad.state().pose.position.z - 3.0).abs() < 0.3);

        fc.command(FlightCommand::Velocity {
            setpoint: Vec3::new(4.0, 0.0, 0.0),
        });
        run(&mut fc, &mut quad, 100);
        assert_eq!(fc.phase(), FlightPhase::Flying);
        assert!(quad.state().pose.position.x > 5.0);

        fc.command(FlightCommand::Hover);
        run(&mut fc, &mut quad, 200);
        assert_eq!(fc.phase(), FlightPhase::Hovering);
        assert!(quad.state().speed() < 0.5);

        fc.command(FlightCommand::Land);
        run(&mut fc, &mut quad, 400);
        assert_eq!(fc.phase(), FlightPhase::Landed);
        assert!(quad.state().pose.position.z < 0.2);
        assert!(!fc.is_airborne());
    }

    #[test]
    fn illegal_transitions_are_ignored() {
        let (mut quad, mut fc) = setup();
        // Take off before arming: ignored.
        fc.command(FlightCommand::TakeOff { altitude: 3.0 });
        assert_eq!(fc.phase(), FlightPhase::Idle);
        // Velocity on the ground: ignored.
        fc.command(FlightCommand::Velocity {
            setpoint: Vec3::UNIT_X,
        });
        assert_eq!(fc.phase(), FlightPhase::Idle);
        run(&mut fc, &mut quad, 20);
        assert!(quad.state().is_stationary());
    }

    #[test]
    fn hover_holds_position() {
        let (mut quad, mut fc) = setup();
        fc.command(FlightCommand::Arm);
        fc.command(FlightCommand::TakeOff { altitude: 2.0 });
        run(&mut fc, &mut quad, 200);
        let anchor = quad.state().pose.position;
        run(&mut fc, &mut quad, 200);
        assert!(quad.state().pose.position.distance(&anchor) < 0.2);
    }

    #[test]
    fn rotors_active_phases() {
        assert!(!FlightPhase::Idle.rotors_active());
        assert!(!FlightPhase::Landed.rotors_active());
        assert!(FlightPhase::Hovering.rotors_active());
        assert!(FlightPhase::Flying.rotors_active());
        assert!(FlightPhase::TakingOff.rotors_active());
    }

    #[test]
    fn rearming_after_landing() {
        let (mut quad, mut fc) = setup();
        fc.command(FlightCommand::Arm);
        fc.command(FlightCommand::TakeOff { altitude: 1.0 });
        run(&mut fc, &mut quad, 200);
        fc.command(FlightCommand::Land);
        run(&mut fc, &mut quad, 300);
        assert_eq!(fc.phase(), FlightPhase::Landed);
        fc.command(FlightCommand::Arm);
        assert_eq!(fc.phase(), FlightPhase::Armed);
    }

    #[test]
    fn display_nonempty() {
        for p in [
            FlightPhase::Idle,
            FlightPhase::Armed,
            FlightPhase::TakingOff,
            FlightPhase::Hovering,
            FlightPhase::Flying,
            FlightPhase::Landing,
            FlightPhase::Landed,
        ] {
            assert!(!format!("{p}").is_empty());
        }
    }
}
