//! Quadrotor dynamics and flight control for MAVBench-RS.
//!
//! This crate is the stand-in for AirSim's vehicle model plus the PX4 flight
//! stack: a point-mass quadrotor with velocity/acceleration limits and a
//! flight controller that lowers high-level commands (arm, take off, fly,
//! hover, land) into velocity tracking, while reporting the flight phase used
//! by the energy model's mission power traces.
//!
//! # Example
//!
//! ```
//! use mav_dynamics::{FlightCommand, FlightController, Quadrotor, QuadrotorConfig};
//! use mav_types::{Pose, Vec3};
//!
//! let mut quad = Quadrotor::new(QuadrotorConfig::dji_matrice_100(), Pose::origin());
//! let mut fc = FlightController::new();
//! fc.command(FlightCommand::Arm);
//! fc.command(FlightCommand::TakeOff { altitude: 2.0 });
//! for _ in 0..200 { fc.update(&mut quad, 0.05); }
//! assert!(fc.is_airborne());
//! ```

#![warn(missing_docs)]

pub mod flight_controller;
pub mod quadrotor;
pub mod state;

pub use flight_controller::{FlightCommand, FlightController, FlightPhase};
pub use quadrotor::{Quadrotor, QuadrotorConfig};
pub use state::MavState;
