//! Point-mass quadrotor model with velocity and acceleration limits.
//!
//! MAVBench's evaluation depends on the vehicle's velocity/acceleration
//! envelope (which bounds the compute-limited maximum safe velocity of the
//! paper's Eq. 2), its physical size (which sets the collision radius and the
//! OctoMap resolution the drone can tolerate) and its mass (which enters the
//! rotor power model). A point-mass integrator with commanded-velocity
//! tracking captures exactly that envelope.

use crate::state::MavState;
use mav_types::Vec3;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Physical parameters of a quadrotor airframe.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuadrotorConfig {
    /// Human-readable model name.
    pub name: String,
    /// Take-off mass including battery and payload, kilograms.
    pub mass: f64,
    /// Maximum horizontal velocity the airframe can mechanically sustain, m/s.
    pub max_velocity: f64,
    /// Maximum vertical velocity, m/s.
    pub max_vertical_velocity: f64,
    /// Maximum linear acceleration, m/s².
    pub max_acceleration: f64,
    /// Collision radius used for planning (half of the diagonal width), metres.
    pub radius: f64,
    /// Default cruise altitude used by the applications, metres.
    pub cruise_altitude: f64,
}

impl QuadrotorConfig {
    /// DJI Matrice 100 class vehicle — the drone the paper's heat-map
    /// experiments are configured for.
    pub fn dji_matrice_100() -> Self {
        QuadrotorConfig {
            name: "DJI Matrice 100".to_string(),
            mass: 2.431,
            max_velocity: 17.0,
            max_vertical_velocity: 4.0,
            max_acceleration: 5.0,
            radius: 0.325, // 0.65 m diagonal width per the paper's footnote
            cruise_altitude: 2.5,
        }
    }

    /// 3DR Solo class vehicle — the drone the paper's power measurements use.
    pub fn solo_3dr() -> Self {
        QuadrotorConfig {
            name: "3DR Solo".to_string(),
            mass: 1.8,
            max_velocity: 13.0,
            max_vertical_velocity: 3.0,
            max_acceleration: 4.0,
            radius: 0.25,
            cruise_altitude: 2.0,
        }
    }

    /// Validates the configuration, returning a descriptive error string for
    /// the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.mass.is_nan() || self.mass <= 0.0 {
            return Err(format!("mass must be positive, got {}", self.mass));
        }
        if self.max_velocity.is_nan() || self.max_velocity <= 0.0 {
            return Err("max_velocity must be positive".to_string());
        }
        if self.max_acceleration.is_nan() || self.max_acceleration <= 0.0 {
            return Err("max_acceleration must be positive".to_string());
        }
        if self.radius.is_nan() || self.radius <= 0.0 {
            return Err("radius must be positive".to_string());
        }
        Ok(())
    }
}

impl Default for QuadrotorConfig {
    fn default() -> Self {
        QuadrotorConfig::dji_matrice_100()
    }
}

impl mav_types::ToJson for QuadrotorConfig {
    fn to_json(&self) -> mav_types::Json {
        mav_types::Json::object()
            .field("name", self.name.as_str())
            .field("mass", self.mass)
            .field("max_velocity", self.max_velocity)
            .field("max_vertical_velocity", self.max_vertical_velocity)
            .field("max_acceleration", self.max_acceleration)
            .field("radius", self.radius)
            .field("cruise_altitude", self.cruise_altitude)
    }
}

impl mav_types::FromJson for QuadrotorConfig {
    /// Reads an airframe description; omitted fields keep the default
    /// (DJI Matrice 100) values.
    fn from_json(json: &mav_types::Json) -> Result<Self, String> {
        json.check_fields(&[
            "name",
            "mass",
            "max_velocity",
            "max_vertical_velocity",
            "max_acceleration",
            "radius",
            "cruise_altitude",
        ])?;
        let base = QuadrotorConfig::default();
        Ok(QuadrotorConfig {
            name: json.parse_field_or("name", base.name)?,
            mass: json.parse_field_or("mass", base.mass)?,
            max_velocity: json.parse_field_or("max_velocity", base.max_velocity)?,
            max_vertical_velocity: json
                .parse_field_or("max_vertical_velocity", base.max_vertical_velocity)?,
            max_acceleration: json.parse_field_or("max_acceleration", base.max_acceleration)?,
            radius: json.parse_field_or("radius", base.radius)?,
            cruise_altitude: json.parse_field_or("cruise_altitude", base.cruise_altitude)?,
        })
    }
}

impl fmt::Display for QuadrotorConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} kg, vmax {} m/s)",
            self.name, self.mass, self.max_velocity
        )
    }
}

/// Point-mass quadrotor integrator.
///
/// The vehicle tracks a commanded velocity: each step the commanded velocity
/// is clamped to the airframe envelope, the acceleration needed to reach it is
/// clamped to `max_acceleration`, and position/velocity are integrated with
/// semi-implicit Euler.
///
/// # Example
///
/// ```
/// use mav_dynamics::{Quadrotor, QuadrotorConfig};
/// use mav_types::{Pose, Vec3};
///
/// let mut quad = Quadrotor::new(QuadrotorConfig::dji_matrice_100(), Pose::origin());
/// for _ in 0..100 {
///     quad.step(Vec3::new(5.0, 0.0, 0.0), 0.1);
/// }
/// assert!(quad.state().speed() > 4.0);
/// assert!(quad.state().pose.position.x > 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Quadrotor {
    config: QuadrotorConfig,
    state: MavState,
}

impl Quadrotor {
    /// Creates a quadrotor at rest at `pose`.
    pub fn new(config: QuadrotorConfig, pose: mav_types::Pose) -> Self {
        Quadrotor {
            config,
            state: MavState::at_rest(pose),
        }
    }

    /// The airframe configuration.
    pub fn config(&self) -> &QuadrotorConfig {
        &self.config
    }

    /// The current state.
    pub fn state(&self) -> &MavState {
        &self.state
    }

    /// Overwrites the current state (used by tests and scenario setup).
    pub fn set_state(&mut self, state: MavState) {
        self.state = state;
    }

    /// Clamps a commanded velocity to the airframe envelope (horizontal and
    /// vertical limits applied separately).
    pub fn clamp_velocity(&self, commanded: Vec3) -> Vec3 {
        let horizontal = commanded.horizontal().clamp_norm(self.config.max_velocity);
        let vertical_z = commanded.z.clamp(
            -self.config.max_vertical_velocity,
            self.config.max_vertical_velocity,
        );
        Vec3::new(horizontal.x, horizontal.y, vertical_z)
    }

    /// Advances the vehicle by `dt` seconds while tracking `commanded_velocity`.
    ///
    /// Returns the achieved acceleration for this step.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `dt` is not strictly positive.
    pub fn step(&mut self, commanded_velocity: Vec3, dt: f64) -> Vec3 {
        debug_assert!(dt > 0.0, "dt must be positive");
        let target = self.clamp_velocity(commanded_velocity);
        let delta_v = target - self.state.twist.linear;
        // Acceleration needed this step, clamped to the airframe limit.
        let accel = (delta_v / dt).clamp_norm(self.config.max_acceleration);
        let new_velocity = self.state.twist.linear + accel * dt;
        let new_position = self.state.pose.position + new_velocity * dt;
        let yaw = if new_velocity.norm_xy() > 0.1 {
            new_velocity.heading()
        } else {
            self.state.pose.yaw
        };
        self.state.acceleration = accel;
        self.state.twist.linear = new_velocity;
        self.state.pose.position = new_position;
        self.state.pose.yaw = yaw;
        accel
    }

    /// Immediately halts the vehicle (used when the flight controller
    /// commands an emergency stop on imminent collision).
    pub fn halt(&mut self) {
        self.state.twist.linear = Vec3::ZERO;
        self.state.acceleration = Vec3::ZERO;
    }

    /// Minimum distance needed to come to a complete stop from the current
    /// speed, using the airframe's maximum deceleration: `v² / (2 a)`.
    pub fn stopping_distance(&self) -> f64 {
        let v = self.state.speed();
        v * v / (2.0 * self.config.max_acceleration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mav_types::Pose;

    fn quad() -> Quadrotor {
        Quadrotor::new(QuadrotorConfig::dji_matrice_100(), Pose::origin())
    }

    #[test]
    fn configs_validate() {
        assert!(QuadrotorConfig::dji_matrice_100().validate().is_ok());
        assert!(QuadrotorConfig::solo_3dr().validate().is_ok());
        let bad = QuadrotorConfig {
            mass: 0.0,
            ..QuadrotorConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn velocity_clamping_respects_envelope() {
        let q = quad();
        let clamped = q.clamp_velocity(Vec3::new(100.0, 0.0, 50.0));
        assert!((clamped.norm_xy() - q.config().max_velocity).abs() < 1e-9);
        assert_eq!(clamped.z, q.config().max_vertical_velocity);
        // Velocities inside the envelope are untouched.
        let inside = Vec3::new(1.0, 1.0, -1.0);
        assert_eq!(q.clamp_velocity(inside), inside);
    }

    #[test]
    fn acceleration_is_limited() {
        let mut q = quad();
        let accel = q.step(Vec3::new(100.0, 0.0, 0.0), 0.1);
        assert!(accel.norm() <= q.config().max_acceleration + 1e-9);
        // The velocity after one step cannot exceed a_max * dt.
        assert!(q.state().speed() <= q.config().max_acceleration * 0.1 + 1e-9);
    }

    #[test]
    fn converges_to_commanded_velocity() {
        let mut q = quad();
        for _ in 0..200 {
            q.step(Vec3::new(3.0, 4.0, 0.0), 0.05);
        }
        assert!((q.state().speed() - 5.0).abs() < 0.1);
        assert!((q.state().pose.yaw - Vec3::new(3.0, 4.0, 0.0).heading()).abs() < 0.05);
    }

    #[test]
    fn halt_zeroes_velocity() {
        let mut q = quad();
        for _ in 0..50 {
            q.step(Vec3::new(5.0, 0.0, 0.0), 0.1);
        }
        assert!(q.state().speed() > 1.0);
        q.halt();
        assert!(q.state().is_stationary());
    }

    #[test]
    fn stopping_distance_grows_with_speed() {
        let mut q = quad();
        assert_eq!(q.stopping_distance(), 0.0);
        for _ in 0..100 {
            q.step(Vec3::new(10.0, 0.0, 0.0), 0.1);
        }
        let d_fast = q.stopping_distance();
        assert!(d_fast > 5.0);
        // v²/(2a) with v≈10, a=5 → ≈10 m.
        assert!((d_fast - 10.0).abs() < 2.0);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", QuadrotorConfig::default()).is_empty());
    }
}
