//! The companion-computer platform model and cloud offload.
//!
//! A [`ComputePlatform`] answers one question for the closed-loop simulator:
//! *how long does kernel X take right now?* For the on-board TX2 the answer
//! comes from the Table I profile scaled to the current operating point. For
//! the sensor-cloud configuration of the paper's performance case study, some
//! kernels execute on a much faster cloud machine but pay a network round
//! trip, which is exactly how the paper's 3X planning speed-up (and the
//! resulting ~50 % mission-time reduction) arises.

use crate::kernel::{KernelId, KernelProfile};
use crate::operating_point::OperatingPoint;
use crate::profiles::{table1_profile, ApplicationId, ApplicationProfile};
use mav_types::SimDuration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A network link between the MAV and a cloud/edge server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkLink {
    /// Link bandwidth in megabits per second.
    pub bandwidth_mbps: f64,
    /// One-way latency in milliseconds.
    pub latency_ms: f64,
}

impl NetworkLink {
    /// The 1 Gb/s LAN used by the paper to mimic a future 5G deployment.
    pub fn gigabit_lan() -> Self {
        NetworkLink {
            bandwidth_mbps: 1000.0,
            latency_ms: 1.0,
        }
    }

    /// A contemporary LTE link (for sensitivity studies).
    pub fn lte() -> Self {
        NetworkLink {
            bandwidth_mbps: 50.0,
            latency_ms: 30.0,
        }
    }

    /// Time to move `megabytes` of data across the link plus one round trip.
    pub fn transfer_time(&self, megabytes: f64) -> SimDuration {
        let bits = megabytes * 8.0 * 1e6;
        let seconds = bits / (self.bandwidth_mbps * 1e6);
        SimDuration::from_secs(seconds + 2.0 * self.latency_ms / 1000.0)
    }
}

/// Where a kernel executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Placement {
    /// On the companion computer.
    Edge,
    /// On the cloud server, paying network costs.
    Cloud,
}

/// Cloud offload configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CloudConfig {
    /// Speed-up of the cloud server over the TX2 reference point for any
    /// offloaded kernel (the paper's i7-4790K + GTX 1080 runs the planning
    /// stage ≈3X faster).
    pub speedup: f64,
    /// The network link.
    pub link: NetworkLink,
    /// Data shipped per offloaded kernel invocation, megabytes (point cloud /
    /// map updates).
    pub payload_megabytes: f64,
    /// Which kernels are offloaded.
    pub offloaded: BTreeSet<KernelId>,
}

impl CloudConfig {
    /// The paper's sensor-cloud case study: the planning stage of 3D Mapping
    /// is offloaded over a gigabit link to a machine ~3X faster.
    pub fn planning_offload() -> Self {
        let mut offloaded = BTreeSet::new();
        offloaded.insert(KernelId::FrontierExploration);
        offloaded.insert(KernelId::MotionPlanning);
        offloaded.insert(KernelId::PathSmoothing);
        CloudConfig {
            speedup: 3.0,
            link: NetworkLink::gigabit_lan(),
            payload_megabytes: 0.5,
            offloaded,
        }
    }

    /// Returns `true` when the kernel runs in the cloud.
    pub fn offloads(&self, kernel: KernelId) -> bool {
        self.offloaded.contains(&kernel)
    }
}

impl mav_types::ToJson for NetworkLink {
    fn to_json(&self) -> mav_types::Json {
        mav_types::Json::object()
            .field("bandwidth_mbps", self.bandwidth_mbps)
            .field("latency_ms", self.latency_ms)
    }
}

impl mav_types::FromJson for NetworkLink {
    fn from_json(json: &mav_types::Json) -> Result<Self, String> {
        json.check_fields(&["bandwidth_mbps", "latency_ms"])?;
        let link = NetworkLink {
            bandwidth_mbps: json.parse_field("bandwidth_mbps")?,
            latency_ms: json.parse_field("latency_ms")?,
        };
        if !(link.bandwidth_mbps.is_finite() && link.bandwidth_mbps > 0.0) {
            return Err(format!(
                "bandwidth_mbps: must be positive, got {}",
                link.bandwidth_mbps
            ));
        }
        if !(link.latency_ms.is_finite() && link.latency_ms >= 0.0) {
            return Err(format!(
                "latency_ms: must be non-negative, got {}",
                link.latency_ms
            ));
        }
        Ok(link)
    }
}

impl mav_types::ToJson for CloudConfig {
    fn to_json(&self) -> mav_types::Json {
        mav_types::Json::object()
            .field("speedup", self.speedup)
            .field("link", self.link.to_json())
            .field("payload_megabytes", self.payload_megabytes)
            .field(
                "offloaded",
                self.offloaded.iter().collect::<Vec<_>>().as_slice(),
            )
    }
}

impl mav_types::FromJson for CloudConfig {
    fn from_json(json: &mav_types::Json) -> Result<Self, String> {
        json.check_fields(&["speedup", "link", "payload_megabytes", "offloaded"])?;
        let speedup: f64 = json.parse_field("speedup")?;
        if !(speedup.is_finite() && speedup > 0.0) {
            return Err(format!("speedup: must be positive, got {speedup}"));
        }
        let payload_megabytes: f64 = json.parse_field("payload_megabytes")?;
        if !(payload_megabytes.is_finite() && payload_megabytes >= 0.0) {
            return Err(format!(
                "payload_megabytes: must be non-negative, got {payload_megabytes}"
            ));
        }
        let offloaded: Vec<KernelId> = json.parse_field("offloaded")?;
        Ok(CloudConfig {
            speedup,
            link: json.parse_field("link")?,
            payload_megabytes,
            offloaded: offloaded.into_iter().collect(),
        })
    }
}

/// The companion-computer model used by the closed-loop simulator.
///
/// # Example
///
/// ```
/// use mav_compute::{ApplicationId, ComputePlatform, KernelId, OperatingPoint};
///
/// let fast = ComputePlatform::tx2(ApplicationId::PackageDelivery, OperatingPoint::reference());
/// let slow = ComputePlatform::tx2(ApplicationId::PackageDelivery, OperatingPoint::slowest());
/// let k = KernelId::OctomapGeneration;
/// assert!(slow.kernel_latency(k) > fast.kernel_latency(k));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComputePlatform {
    application: ApplicationId,
    profile: ApplicationProfile,
    operating_point: OperatingPoint,
    cloud: Option<CloudConfig>,
}

impl ComputePlatform {
    /// An on-board TX2 running `application` at `operating_point`, calibrated
    /// from Table I.
    pub fn tx2(application: ApplicationId, operating_point: OperatingPoint) -> Self {
        ComputePlatform {
            application,
            profile: table1_profile(application),
            operating_point,
            cloud: None,
        }
    }

    /// A TX2 with a cloud offload configuration attached.
    pub fn tx2_with_cloud(
        application: ApplicationId,
        operating_point: OperatingPoint,
        cloud: CloudConfig,
    ) -> Self {
        ComputePlatform {
            cloud: Some(cloud),
            ..ComputePlatform::tx2(application, operating_point)
        }
    }

    /// Replaces the kernel profile table (used to plug in custom kernels).
    pub fn with_profile(mut self, profile: ApplicationProfile) -> Self {
        self.profile = profile;
        self
    }

    /// The application this platform is configured for.
    pub fn application(&self) -> ApplicationId {
        self.application
    }

    /// The current operating point.
    pub fn operating_point(&self) -> &OperatingPoint {
        &self.operating_point
    }

    /// The cloud configuration, if any.
    pub fn cloud(&self) -> Option<&CloudConfig> {
        self.cloud.as_ref()
    }

    /// The kernel profile table.
    pub fn profile(&self) -> &ApplicationProfile {
        &self.profile
    }

    /// Where the given kernel executes.
    pub fn placement(&self, kernel: KernelId) -> Placement {
        match &self.cloud {
            Some(c) if c.offloads(kernel) => Placement::Cloud,
            _ => Placement::Edge,
        }
    }

    /// Latency of one invocation of `kernel` on this platform.
    ///
    /// Kernels the application does not use take zero time. Offloaded kernels
    /// run `speedup` times faster than the TX2 *reference* point but pay the
    /// network transfer.
    pub fn kernel_latency(&self, kernel: KernelId) -> SimDuration {
        self.kernel_latency_at(kernel, &self.operating_point)
    }

    /// Latency of one invocation of `kernel` with the *edge* stage pinned to
    /// `point` instead of the platform's own operating point — the per-node
    /// DVFS hook (big.LITTLE-style perception-vs-planning core/frequency
    /// mappings). Cloud-offloaded kernels are unaffected: their compute runs
    /// on the remote machine, so the companion computer's clock is irrelevant
    /// to them.
    pub fn kernel_latency_at(&self, kernel: KernelId, point: &OperatingPoint) -> SimDuration {
        let Some(profile) = self.profile.kernel(kernel) else {
            return SimDuration::ZERO;
        };
        match self.placement(kernel) {
            Placement::Edge => profile.latency(point),
            Placement::Cloud => {
                let cloud = self
                    .cloud
                    .as_ref()
                    .expect("cloud placement requires cloud config");
                let compute = profile.reference_latency() / cloud.speedup.max(1e-9);
                compute + cloud.link.transfer_time(cloud.payload_megabytes)
            }
        }
    }

    /// Scaled profile of a kernel at the current operating point (edge
    /// latency), if the application uses it.
    pub fn kernel_profile(&self, kernel: KernelId) -> Option<KernelProfile> {
        self.profile.kernel(kernel).copied()
    }

    /// Perception-to-actuation latency δt used by the paper's Eq. 2: the sum
    /// of the latencies of every kernel on the reactive path (perception +
    /// collision check + tracking/command issue). Planning kernels are *not*
    /// included — they determine hover time, not the reaction time that bounds
    /// velocity.
    pub fn reaction_latency(&self) -> SimDuration {
        let reactive = [
            KernelId::PointCloudGeneration,
            KernelId::OctomapGeneration,
            KernelId::CollisionCheck,
            KernelId::Localization,
            KernelId::ObjectDetection,
            KernelId::TrackingRealTime,
            KernelId::PidControl,
            KernelId::PathTracking,
        ];
        reactive.iter().map(|k| self.kernel_latency(*k)).sum()
    }

    /// Total latency of one planning episode (all planning-stage kernels the
    /// application uses). This is the time the MAV hovers waiting for a plan.
    pub fn planning_latency(&self) -> SimDuration {
        let planning = [
            KernelId::MotionPlanning,
            KernelId::FrontierExploration,
            KernelId::LawnmowerPlanning,
            KernelId::PathSmoothing,
        ];
        planning.iter().map(|k| self.kernel_latency(*k)).sum()
    }
}

impl fmt::Display for ComputePlatform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "platform[{} @ {}{}]",
            self.application,
            self.operating_point,
            if self.cloud.is_some() { " + cloud" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unused_kernels_cost_nothing() {
        let p = ComputePlatform::tx2(ApplicationId::Scanning, OperatingPoint::reference());
        assert!(p.kernel_latency(KernelId::OctomapGeneration).is_zero());
        assert!(p.kernel_latency(KernelId::ObjectDetection).is_zero());
        assert!(!p.kernel_latency(KernelId::LawnmowerPlanning).is_zero());
    }

    #[test]
    fn slower_operating_points_have_longer_latencies() {
        for &app in ApplicationId::all() {
            let fast = ComputePlatform::tx2(app, OperatingPoint::reference());
            let slow = ComputePlatform::tx2(app, OperatingPoint::slowest());
            assert!(slow.reaction_latency() >= fast.reaction_latency());
            assert!(slow.planning_latency() >= fast.planning_latency());
        }
    }

    #[test]
    fn reaction_latency_excludes_planning() {
        let p = ComputePlatform::tx2(ApplicationId::Mapping3D, OperatingPoint::reference());
        // Frontier exploration takes ~2.6 s; the reaction path must be much
        // shorter than that.
        assert!(p.reaction_latency().as_secs() < 1.0);
        assert!(p.planning_latency().as_secs() > 2.0);
    }

    #[test]
    fn cloud_offload_speeds_up_planning() {
        let edge = ComputePlatform::tx2(ApplicationId::Mapping3D, OperatingPoint::reference());
        let cloud = ComputePlatform::tx2_with_cloud(
            ApplicationId::Mapping3D,
            OperatingPoint::reference(),
            CloudConfig::planning_offload(),
        );
        let edge_planning = edge.planning_latency().as_secs();
        let cloud_planning = cloud.planning_latency().as_secs();
        assert!(
            cloud_planning < edge_planning / 2.0,
            "cloud planning {cloud_planning} vs edge {edge_planning}"
        );
        // The reactive path (not offloaded) is unchanged.
        assert_eq!(edge.reaction_latency(), cloud.reaction_latency());
        assert_eq!(
            cloud.placement(KernelId::FrontierExploration),
            Placement::Cloud
        );
        assert_eq!(
            cloud.placement(KernelId::OctomapGeneration),
            Placement::Edge
        );
    }

    #[test]
    fn slow_network_erodes_offload_benefit() {
        let mut cfg = CloudConfig::planning_offload();
        cfg.link = NetworkLink::lte();
        cfg.payload_megabytes = 20.0;
        let lan = ComputePlatform::tx2_with_cloud(
            ApplicationId::Mapping3D,
            OperatingPoint::reference(),
            CloudConfig::planning_offload(),
        );
        let lte = ComputePlatform::tx2_with_cloud(
            ApplicationId::Mapping3D,
            OperatingPoint::reference(),
            cfg,
        );
        assert!(lte.planning_latency() > lan.planning_latency());
    }

    #[test]
    fn network_transfer_time_model() {
        let lan = NetworkLink::gigabit_lan();
        // 1 MB over 1 Gb/s ≈ 8 ms + 2 ms RTT.
        let t = lan.transfer_time(1.0).as_millis();
        assert!((t - 10.0).abs() < 0.5, "transfer time {t} ms");
        let lte = NetworkLink::lte();
        assert!(lte.transfer_time(1.0) > lan.transfer_time(1.0));
    }

    #[test]
    fn per_node_latency_pins_the_edge_stage_only() {
        use mav_types::Frequency;
        let p = ComputePlatform::tx2(ApplicationId::PackageDelivery, OperatingPoint::reference());
        // Pinning a kernel to a slower point scales it like a platform built
        // at that point — `kernel_latency` is the `_at` of the platform's own
        // operating point.
        let little = OperatingPoint::little_cluster(Frequency::from_ghz(1.5));
        let slow_platform = ComputePlatform::tx2(ApplicationId::PackageDelivery, little);
        for kernel in [KernelId::MotionPlanning, KernelId::OctomapGeneration] {
            assert!(p.kernel_latency_at(kernel, &little) > p.kernel_latency(kernel));
            assert_eq!(
                p.kernel_latency_at(kernel, &little),
                slow_platform.kernel_latency(kernel)
            );
            assert_eq!(
                p.kernel_latency_at(kernel, p.operating_point()),
                p.kernel_latency(kernel)
            );
        }
        // Cloud-offloaded kernels ignore the companion computer's point: the
        // compute runs remotely.
        let cloud = ComputePlatform::tx2_with_cloud(
            ApplicationId::Mapping3D,
            OperatingPoint::reference(),
            CloudConfig::planning_offload(),
        );
        assert_eq!(
            cloud.kernel_latency_at(KernelId::MotionPlanning, &little),
            cloud.kernel_latency(KernelId::MotionPlanning)
        );
        // Clusters: big = 4 cores, little = 2 cores.
        assert_eq!(
            OperatingPoint::big_cluster(Frequency::from_ghz(2.2)).cores,
            4
        );
        assert_eq!(little.cores, 2);
    }

    #[test]
    fn display_nonempty() {
        let p = ComputePlatform::tx2(ApplicationId::PackageDelivery, OperatingPoint::reference());
        assert!(!format!("{p}").is_empty());
    }
}
