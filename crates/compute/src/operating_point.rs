//! Companion-computer operating points (core count × clock frequency).
//!
//! The paper sweeps the NVIDIA TX2 across 2/3/4 ARM A57 cores and 0.8 / 1.5 /
//! 2.2 GHz and reports every metric as a 3×3 heat map. The same grid is
//! provided here.

use mav_types::Frequency;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One (cores, frequency) operating point of the companion computer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Number of enabled CPU cores.
    pub cores: u32,
    /// Clock frequency.
    pub frequency: Frequency,
}

impl OperatingPoint {
    /// Creates an operating point.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: u32, frequency: Frequency) -> Self {
        assert!(cores > 0, "an operating point needs at least one core");
        OperatingPoint { cores, frequency }
    }

    /// The paper's reference point: 4 cores at 2.2 GHz (where Table I was
    /// profiled).
    pub fn reference() -> Self {
        OperatingPoint::new(4, Frequency::from_ghz(2.2))
    }

    /// The slowest point of the sweep: 2 cores at 0.8 GHz.
    pub fn slowest() -> Self {
        OperatingPoint::new(2, Frequency::from_ghz(0.8))
    }

    /// The "big" cluster of a big.LITTLE-style pairing: all four cores at the
    /// given clock. Used by the per-node operating-point CLI (`plan=big@2.2`)
    /// to pin heavy stages (planning) to the full complex.
    pub fn big_cluster(frequency: Frequency) -> Self {
        OperatingPoint::new(4, frequency)
    }

    /// The "little" cluster of a big.LITTLE-style pairing: two cores at the
    /// given clock. Used by the per-node operating-point CLI
    /// (`cam=little@1.4`) to park light or throughput-bound stages on the
    /// small complex.
    pub fn little_cluster(frequency: Frequency) -> Self {
        OperatingPoint::new(2, frequency)
    }

    /// The full 3×3 sweep used by Figs. 10–15: cores ∈ {2, 3, 4} ×
    /// frequency ∈ {0.8, 1.5, 2.2} GHz.
    pub fn tx2_sweep() -> Vec<OperatingPoint> {
        let mut out = Vec::with_capacity(9);
        for &cores in &[4u32, 3, 2] {
            for &f in &[0.8, 1.5, 2.2] {
                out.push(OperatingPoint::new(cores, Frequency::from_ghz(f)));
            }
        }
        out
    }

    /// A short label such as `"4c@2.2GHz"` for table headers.
    pub fn label(&self) -> String {
        format!("{}c@{:.1}GHz", self.cores, self.frequency.as_ghz())
    }
}

impl mav_types::ToJson for OperatingPoint {
    fn to_json(&self) -> mav_types::Json {
        mav_types::Json::object()
            .field("cores", self.cores)
            .field("frequency_ghz", self.frequency.as_ghz())
    }
}

impl Default for OperatingPoint {
    fn default() -> Self {
        OperatingPoint::reference()
    }
}

impl fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cores @ {}", self.cores, self.frequency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_nine_points() {
        let sweep = OperatingPoint::tx2_sweep();
        assert_eq!(sweep.len(), 9);
        assert!(sweep.contains(&OperatingPoint::reference()));
        assert!(sweep.contains(&OperatingPoint::slowest()));
        // All cores × frequency combinations are distinct.
        let labels: std::collections::HashSet<String> = sweep.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 9);
    }

    #[test]
    fn reference_point_is_fastest() {
        let r = OperatingPoint::reference();
        assert_eq!(r.cores, 4);
        assert_eq!(r.frequency.as_ghz(), 2.2);
    }

    #[test]
    #[should_panic]
    fn zero_cores_rejected() {
        let _ = OperatingPoint::new(0, Frequency::from_ghz(1.0));
    }

    #[test]
    fn labels_and_display() {
        let p = OperatingPoint::new(3, Frequency::from_ghz(1.5));
        assert_eq!(p.label(), "3c@1.5GHz");
        assert!(!format!("{p}").is_empty());
    }
}
