//! Companion-computer operating points (core count × clock frequency).
//!
//! The paper sweeps the NVIDIA TX2 across 2/3/4 ARM A57 cores and 0.8 / 1.5 /
//! 2.2 GHz and reports every metric as a 3×3 heat map. The same grid is
//! provided here.

use mav_types::Frequency;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One (cores, frequency) operating point of the companion computer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperatingPoint {
    /// Number of enabled CPU cores.
    pub cores: u32,
    /// Clock frequency.
    pub frequency: Frequency,
}

impl OperatingPoint {
    /// Creates an operating point.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn new(cores: u32, frequency: Frequency) -> Self {
        assert!(cores > 0, "an operating point needs at least one core");
        OperatingPoint { cores, frequency }
    }

    /// The paper's reference point: 4 cores at 2.2 GHz (where Table I was
    /// profiled).
    pub fn reference() -> Self {
        OperatingPoint::new(4, Frequency::from_ghz(2.2))
    }

    /// The slowest point of the sweep: 2 cores at 0.8 GHz.
    pub fn slowest() -> Self {
        OperatingPoint::new(2, Frequency::from_ghz(0.8))
    }

    /// The "big" cluster of a big.LITTLE-style pairing: all four cores at the
    /// given clock. Used by the per-node operating-point CLI (`plan=big@2.2`)
    /// to pin heavy stages (planning) to the full complex.
    pub fn big_cluster(frequency: Frequency) -> Self {
        OperatingPoint::new(4, frequency)
    }

    /// The "little" cluster of a big.LITTLE-style pairing: two cores at the
    /// given clock. Used by the per-node operating-point CLI
    /// (`cam=little@1.4`) to park light or throughput-bound stages on the
    /// small complex.
    pub fn little_cluster(frequency: Frequency) -> Self {
        OperatingPoint::new(2, frequency)
    }

    /// The full 3×3 sweep used by Figs. 10–15: cores ∈ {2, 3, 4} ×
    /// frequency ∈ {0.8, 1.5, 2.2} GHz.
    pub fn tx2_sweep() -> Vec<OperatingPoint> {
        let mut out = Vec::with_capacity(9);
        for &cores in &[4u32, 3, 2] {
            for &f in &[0.8, 1.5, 2.2] {
                out.push(OperatingPoint::new(cores, Frequency::from_ghz(f)));
            }
        }
        out
    }

    /// A short label such as `"4c@2.2GHz"` for table headers.
    pub fn label(&self) -> String {
        format!("{}c@{:.1}GHz", self.cores, self.frequency.as_ghz())
    }

    /// Parses the CLI/wire spelling of an operating point: `big@2.2`
    /// (4 cores), `little@1.4` (2 cores) or an explicit `3c@1.5`. A trailing
    /// `GHz` is tolerated so [`OperatingPoint::label`] output round-trips.
    ///
    /// This is the single source of truth for the syntax: the harness
    /// `--node-op` flag and the `mav-server` job spec both route through it.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for malformed input (missing `@`,
    /// non-positive frequency, unknown cluster, zero cores).
    pub fn parse(value: &str) -> Result<OperatingPoint, String> {
        let Some((cluster, ghz)) = value.split_once('@') else {
            return Err(format!(
                "operating point `{value}` must look like big@2.2, little@1.4 or 3c@1.5"
            ));
        };
        let ghz: f64 = ghz
            .trim()
            .trim_end_matches("GHz")
            .parse()
            .map_err(|_| format!("invalid frequency `{ghz}`"))?;
        if !(ghz.is_finite() && ghz > 0.0) {
            return Err(format!("frequency must be positive, got {ghz} GHz"));
        }
        let frequency = Frequency::from_ghz(ghz);
        match cluster.trim() {
            "big" => Ok(OperatingPoint::big_cluster(frequency)),
            "little" => Ok(OperatingPoint::little_cluster(frequency)),
            cores => {
                let cores: u32 = cores
                    .strip_suffix('c')
                    .and_then(|n| n.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| {
                        format!("unknown cluster `{cores}` (expected big, little or <cores>c)")
                    })?;
                Ok(OperatingPoint::new(cores, frequency))
            }
        }
    }
}

impl mav_types::ToJson for OperatingPoint {
    fn to_json(&self) -> mav_types::Json {
        mav_types::Json::object()
            .field("cores", self.cores)
            .field("frequency_ghz", self.frequency.as_ghz())
    }
}

impl mav_types::FromJson for OperatingPoint {
    /// Accepts the structured form `{"cores": 4, "frequency_ghz": 2.2}` (what
    /// [`mav_types::ToJson`] emits) or the CLI string form `"big@2.2"` /
    /// `"3c@1.5"` routed through [`OperatingPoint::parse`].
    fn from_json(json: &mav_types::Json) -> Result<Self, String> {
        if let Some(s) = json.as_str() {
            return OperatingPoint::parse(s);
        }
        json.check_fields(&["cores", "frequency_ghz"])?;
        let cores: u32 = json.parse_field("cores")?;
        if cores == 0 {
            return Err("cores: an operating point needs at least one core".to_string());
        }
        let ghz: f64 = json.parse_field("frequency_ghz")?;
        if !(ghz.is_finite() && ghz > 0.0) {
            return Err(format!("frequency_ghz: must be positive, got {ghz}"));
        }
        Ok(OperatingPoint::new(cores, Frequency::from_ghz(ghz)))
    }
}

impl Default for OperatingPoint {
    fn default() -> Self {
        OperatingPoint::reference()
    }
}

impl fmt::Display for OperatingPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cores @ {}", self.cores, self.frequency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_nine_points() {
        let sweep = OperatingPoint::tx2_sweep();
        assert_eq!(sweep.len(), 9);
        assert!(sweep.contains(&OperatingPoint::reference()));
        assert!(sweep.contains(&OperatingPoint::slowest()));
        // All cores × frequency combinations are distinct.
        let labels: std::collections::HashSet<String> = sweep.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 9);
    }

    #[test]
    fn reference_point_is_fastest() {
        let r = OperatingPoint::reference();
        assert_eq!(r.cores, 4);
        assert_eq!(r.frequency.as_ghz(), 2.2);
    }

    #[test]
    #[should_panic]
    fn zero_cores_rejected() {
        let _ = OperatingPoint::new(0, Frequency::from_ghz(1.0));
    }

    #[test]
    fn labels_and_display() {
        let p = OperatingPoint::new(3, Frequency::from_ghz(1.5));
        assert_eq!(p.label(), "3c@1.5GHz");
        assert!(!format!("{p}").is_empty());
    }
}
