//! Companion-computer latency and placement model for MAVBench-RS.
//!
//! The original MAVBench runs its kernels on a physical NVIDIA TX2 and sweeps
//! core count and clock frequency. This crate substitutes an analytic model
//! calibrated from the paper's Table I: each kernel has a reference runtime at
//! 4 cores / 2.2 GHz and a parallel fraction, and its latency at any other
//! operating point follows linear frequency scaling on the critical path plus
//! Amdahl scaling across cores. A cloud-offload configuration reproduces the
//! paper's sensor-cloud case study.
//!
//! # Example
//!
//! ```
//! use mav_compute::{ApplicationId, ComputePlatform, OperatingPoint};
//!
//! let platform = ComputePlatform::tx2(ApplicationId::Mapping3D, OperatingPoint::reference());
//! // Frontier exploration dominates the planning latency of 3D Mapping.
//! assert!(platform.planning_latency().as_secs() > 2.0);
//! ```

#![warn(missing_docs)]

pub mod kernel;
pub mod operating_point;
pub mod platform;
pub mod profiles;

pub use kernel::{KernelId, KernelProfile, PipelineStage};
pub use operating_point::OperatingPoint;
pub use platform::{CloudConfig, ComputePlatform, NetworkLink, Placement};
pub use profiles::{table1_profile, ApplicationId, ApplicationProfile};
