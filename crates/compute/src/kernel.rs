//! Computational kernels and their latency profiles.
//!
//! Each MAVBench kernel (object detection, OctoMap generation, motion
//! planning, …) is described by a [`KernelProfile`]: its measured runtime at
//! the reference operating point (the paper's Table I, taken at 4 cores /
//! 2.2 GHz) plus a parallel fraction. Runtime at any other operating point is
//! derived by scaling the critical path linearly with clock frequency and the
//! parallel portion with core count (Amdahl's law).

use crate::operating_point::OperatingPoint;
use mav_types::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The computational kernels that make up the MAVBench workloads (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum KernelId {
    /// YOLO/HOG-style object detection (perception).
    ObjectDetection,
    /// Buffered KCF-style tracking (perception).
    TrackingBuffered,
    /// Real-time KCF-style tracking (perception).
    TrackingRealTime,
    /// GPS / visual-SLAM localization (perception).
    Localization,
    /// Depth image to point cloud conversion (perception).
    PointCloudGeneration,
    /// OctoMap occupancy-map update (perception).
    OctomapGeneration,
    /// Collision checking of a candidate trajectory (planning).
    CollisionCheck,
    /// Sampling-based shortest-path motion planning, RRT/PRM+A* (planning).
    MotionPlanning,
    /// Frontier-exploration / next-best-view planning (planning).
    FrontierExploration,
    /// Lawnmower coverage planning (planning).
    LawnmowerPlanning,
    /// Trajectory smoothing (planning).
    PathSmoothing,
    /// PID target-following controller (planning/control for photography).
    PidControl,
    /// Path tracking / command issue (control).
    PathTracking,
}

impl KernelId {
    /// Every kernel, in a stable order.
    pub fn all() -> &'static [KernelId] {
        &[
            KernelId::ObjectDetection,
            KernelId::TrackingBuffered,
            KernelId::TrackingRealTime,
            KernelId::Localization,
            KernelId::PointCloudGeneration,
            KernelId::OctomapGeneration,
            KernelId::CollisionCheck,
            KernelId::MotionPlanning,
            KernelId::FrontierExploration,
            KernelId::LawnmowerPlanning,
            KernelId::PathSmoothing,
            KernelId::PidControl,
            KernelId::PathTracking,
        ]
    }

    /// The pipeline stage (perception / planning / control) the kernel belongs
    /// to, as in the paper's Fig. 5.
    pub fn stage(&self) -> PipelineStage {
        match self {
            KernelId::ObjectDetection
            | KernelId::TrackingBuffered
            | KernelId::TrackingRealTime
            | KernelId::Localization
            | KernelId::PointCloudGeneration
            | KernelId::OctomapGeneration => PipelineStage::Perception,
            KernelId::CollisionCheck
            | KernelId::MotionPlanning
            | KernelId::FrontierExploration
            | KernelId::LawnmowerPlanning
            | KernelId::PathSmoothing
            | KernelId::PidControl => PipelineStage::Planning,
            KernelId::PathTracking => PipelineStage::Control,
        }
    }

    /// Short name used in tables.
    pub fn short_name(&self) -> &'static str {
        match self {
            KernelId::ObjectDetection => "OD",
            KernelId::TrackingBuffered => "Track-B",
            KernelId::TrackingRealTime => "Track-RT",
            KernelId::Localization => "Loc",
            KernelId::PointCloudGeneration => "PCL",
            KernelId::OctomapGeneration => "OMG",
            KernelId::CollisionCheck => "CC",
            KernelId::MotionPlanning => "MP",
            KernelId::FrontierExploration => "FE",
            KernelId::LawnmowerPlanning => "LM",
            KernelId::PathSmoothing => "Smooth",
            KernelId::PidControl => "PID",
            KernelId::PathTracking => "PT",
        }
    }
}

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

impl mav_types::ToJson for KernelId {
    fn to_json(&self) -> mav_types::Json {
        mav_types::Json::String(self.short_name().to_string())
    }
}

impl mav_types::FromJson for KernelId {
    /// Parses the [`KernelId::short_name`] spelling (`"MP"`, `"OMG"`, …),
    /// case-insensitively — the same strings [`mav_types::ToJson`] emits.
    fn from_json(json: &mav_types::Json) -> Result<Self, String> {
        let name = json
            .as_str()
            .ok_or_else(|| format!("expected a kernel short name string, got {json}"))?;
        KernelId::all()
            .iter()
            .copied()
            .find(|k| k.short_name().eq_ignore_ascii_case(name.trim()))
            .ok_or_else(|| format!("unknown kernel `{name}` (expected a Table I short name)"))
    }
}

/// The three stages of the MAVBench application pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PipelineStage {
    /// Sensor interpretation.
    Perception,
    /// Path and motion planning.
    Planning,
    /// Trajectory following and command issue.
    Control,
}

impl fmt::Display for PipelineStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PipelineStage::Perception => "perception",
            PipelineStage::Planning => "planning",
            PipelineStage::Control => "control",
        };
        f.write_str(s)
    }
}

/// Latency profile of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelProfile {
    /// Runtime at the reference operating point (4 cores / 2.2 GHz), in
    /// milliseconds. These are the Table I numbers.
    pub reference_ms: f64,
    /// Fraction of the work that parallelises across cores (Amdahl).
    pub parallel_fraction: f64,
}

impl KernelProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `reference_ms` is negative or `parallel_fraction` is outside
    /// `[0, 1]`.
    pub fn new(reference_ms: f64, parallel_fraction: f64) -> Self {
        assert!(reference_ms >= 0.0, "reference runtime cannot be negative");
        assert!(
            (0.0..=1.0).contains(&parallel_fraction),
            "parallel fraction must be in [0, 1], got {parallel_fraction}"
        );
        KernelProfile {
            reference_ms,
            parallel_fraction,
        }
    }

    /// Runtime at an arbitrary operating point.
    ///
    /// The serial critical path scales inversely with frequency; the parallel
    /// portion additionally scales inversely with core count relative to the
    /// 4-core reference.
    pub fn latency(&self, point: &OperatingPoint) -> SimDuration {
        let reference = OperatingPoint::reference();
        let freq_scale = reference.frequency.as_ghz() / point.frequency.as_ghz();
        // Amdahl relative to the reference core count.
        let p = self.parallel_fraction;
        let time_at = |cores: u32| (1.0 - p) + p / cores as f64;
        let core_scale = time_at(point.cores) / time_at(reference.cores);
        SimDuration::from_millis(self.reference_ms * freq_scale * core_scale)
    }

    /// Runtime at the reference operating point.
    pub fn reference_latency(&self) -> SimDuration {
        SimDuration::from_millis(self.reference_ms)
    }

    /// Speed-up of `point` over the slowest point of the TX2 sweep.
    pub fn speedup_over_slowest(&self, point: &OperatingPoint) -> f64 {
        let slow = self.latency(&OperatingPoint::slowest()).as_secs();
        let fast = self.latency(point).as_secs();
        if fast <= 0.0 {
            1.0
        } else {
            slow / fast
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mav_types::Frequency;

    #[test]
    fn all_kernels_have_stage_and_name() {
        assert_eq!(KernelId::all().len(), 13);
        for k in KernelId::all() {
            assert!(!k.short_name().is_empty());
            assert!(!format!("{k}").is_empty());
            let _ = k.stage();
        }
        assert_eq!(
            KernelId::OctomapGeneration.stage(),
            PipelineStage::Perception
        );
        assert_eq!(KernelId::MotionPlanning.stage(), PipelineStage::Planning);
        assert_eq!(KernelId::PathTracking.stage(), PipelineStage::Control);
    }

    #[test]
    fn reference_latency_matches_table() {
        let p = KernelProfile::new(630.0, 0.3);
        assert!((p.latency(&OperatingPoint::reference()).as_millis() - 630.0).abs() < 1e-9);
        assert!((p.reference_latency().as_millis() - 630.0).abs() < 1e-9);
    }

    #[test]
    fn frequency_scaling_is_linear_on_serial_kernels() {
        let p = KernelProfile::new(100.0, 0.0);
        let slow = p.latency(&OperatingPoint::new(4, Frequency::from_ghz(0.8)));
        let fast = p.latency(&OperatingPoint::new(4, Frequency::from_ghz(2.2)));
        assert!((slow.as_millis() / fast.as_millis() - 2.2 / 0.8).abs() < 1e-9);
        // Core count does not matter for a fully serial kernel.
        let two_cores = p.latency(&OperatingPoint::new(2, Frequency::from_ghz(2.2)));
        assert!((two_cores.as_millis() - fast.as_millis()).abs() < 1e-9);
    }

    #[test]
    fn core_scaling_follows_amdahl() {
        let p = KernelProfile::new(100.0, 0.8);
        let four = p
            .latency(&OperatingPoint::new(4, Frequency::from_ghz(2.2)))
            .as_millis();
        let two = p
            .latency(&OperatingPoint::new(2, Frequency::from_ghz(2.2)))
            .as_millis();
        let one = p
            .latency(&OperatingPoint::new(1, Frequency::from_ghz(2.2)))
            .as_millis();
        assert!(two > four);
        assert!(one > two);
        // Expected ratios: t(c) ∝ 0.2 + 0.8/c.
        let expected_two_over_four = (0.2 + 0.4) / (0.2 + 0.2);
        assert!((two / four - expected_two_over_four).abs() < 1e-9);
        assert!((one / four - (1.0 / 0.4)).abs() < 1e-9);
    }

    #[test]
    fn speedup_over_slowest_is_at_least_one() {
        for &pf in &[0.0, 0.3, 0.7, 1.0] {
            let p = KernelProfile::new(250.0, pf);
            for point in OperatingPoint::tx2_sweep() {
                assert!(p.speedup_over_slowest(&point) >= 1.0 - 1e-9);
            }
            // The reference point achieves the largest speed-up.
            let best = p.speedup_over_slowest(&OperatingPoint::reference());
            assert!(best >= 2.2 / 0.8 - 1e-9);
        }
    }

    #[test]
    #[should_panic]
    fn invalid_parallel_fraction_rejected() {
        let _ = KernelProfile::new(10.0, 1.5);
    }

    #[test]
    fn zero_cost_kernels_stay_zero() {
        let p = KernelProfile::new(0.0, 0.5);
        for point in OperatingPoint::tx2_sweep() {
            assert!(p.latency(&point).is_zero());
        }
    }
}
