//! Per-application kernel latency profiles (the paper's Table I).
//!
//! Table I of the paper reports, per application, the runtime of every kernel
//! measured on the TX2 at 2.2 GHz with 4 cores enabled. Those numbers are the
//! calibration anchor of the MAVBench-RS compute model: each application gets
//! a profile table mapping its kernels to [`KernelProfile`]s whose reference
//! runtimes are the Table I milliseconds.

use crate::kernel::{KernelId, KernelProfile};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The five MAVBench applications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ApplicationId {
    /// Lawnmower-pattern area scanning (agriculture).
    Scanning,
    /// Follow a moving subject with detection + tracking.
    AerialPhotography,
    /// Navigate to a delivery point and back through obstacles.
    PackageDelivery,
    /// Build a 3D map of an unknown environment.
    Mapping3D,
    /// Explore an unknown area looking for people.
    SearchAndRescue,
}

impl ApplicationId {
    /// All five applications in the paper's order.
    pub fn all() -> &'static [ApplicationId] {
        &[
            ApplicationId::Scanning,
            ApplicationId::AerialPhotography,
            ApplicationId::PackageDelivery,
            ApplicationId::Mapping3D,
            ApplicationId::SearchAndRescue,
        ]
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            ApplicationId::Scanning => "Scanning",
            ApplicationId::AerialPhotography => "Aerial Photography",
            ApplicationId::PackageDelivery => "Package Delivery",
            ApplicationId::Mapping3D => "3D Mapping",
            ApplicationId::SearchAndRescue => "Search and Rescue",
        }
    }

    /// Parses an application name, case-insensitively, accepting both the
    /// human-readable [`ApplicationId::name`] (`"Package Delivery"`) and a
    /// hyphenated slug (`"package-delivery"`).
    ///
    /// # Errors
    ///
    /// Lists the valid names when the input matches none of them.
    pub fn parse(value: &str) -> Result<ApplicationId, String> {
        let normalized: String = value
            .trim()
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        for &app in ApplicationId::all() {
            let canonical: String = app
                .name()
                .chars()
                .filter(|c| c.is_ascii_alphanumeric())
                .collect::<String>()
                .to_ascii_lowercase();
            if normalized == canonical {
                return Ok(app);
            }
        }
        Err(format!(
            "unknown application `{value}` (expected one of: Scanning, Aerial Photography, \
             Package Delivery, 3D Mapping, Search and Rescue)"
        ))
    }
}

impl fmt::Display for ApplicationId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl mav_types::ToJson for ApplicationId {
    fn to_json(&self) -> mav_types::Json {
        mav_types::Json::String(self.name().to_string())
    }
}

impl mav_types::FromJson for ApplicationId {
    fn from_json(json: &mav_types::Json) -> Result<Self, String> {
        let name = json
            .as_str()
            .ok_or_else(|| format!("expected an application name string, got {json}"))?;
        ApplicationId::parse(name)
    }
}

/// The kernel-latency profile of one application: a map from kernel to its
/// [`KernelProfile`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ApplicationProfile {
    kernels: BTreeMap<KernelId, KernelProfile>,
}

impl ApplicationProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        ApplicationProfile {
            kernels: BTreeMap::new(),
        }
    }

    /// Adds or replaces a kernel profile (builder style).
    pub fn with(mut self, kernel: KernelId, reference_ms: f64, parallel_fraction: f64) -> Self {
        self.kernels
            .insert(kernel, KernelProfile::new(reference_ms, parallel_fraction));
        self
    }

    /// The profile of a kernel, if the application uses it.
    pub fn kernel(&self, kernel: KernelId) -> Option<&KernelProfile> {
        self.kernels.get(&kernel)
    }

    /// Returns `true` when the application uses this kernel.
    pub fn uses(&self, kernel: KernelId) -> bool {
        self.kernels.contains_key(&kernel)
    }

    /// Iterates over the kernels of this application in a stable order.
    pub fn iter(&self) -> impl Iterator<Item = (&KernelId, &KernelProfile)> {
        self.kernels.iter()
    }

    /// Number of kernels in the profile.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// Returns `true` when no kernels are registered.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }
}

/// Table I: per-application kernel runtimes (ms at 4 cores / 2.2 GHz) plus
/// parallel fractions chosen per kernel family (vision kernels parallelise
/// well, sampling-based planners and the octree update are mostly serial —
/// the paper calls motion planning and OctoMap generation the *sequential
/// bottlenecks*).
pub fn table1_profile(app: ApplicationId) -> ApplicationProfile {
    match app {
        ApplicationId::Scanning => ApplicationProfile::new()
            .with(KernelId::LawnmowerPlanning, 89.0, 0.10)
            .with(KernelId::Localization, 0.5, 0.0)
            .with(KernelId::PathTracking, 1.0, 0.0),
        ApplicationId::AerialPhotography => ApplicationProfile::new()
            .with(KernelId::ObjectDetection, 307.0, 0.75)
            .with(KernelId::TrackingBuffered, 80.0, 0.60)
            .with(KernelId::TrackingRealTime, 18.0, 0.60)
            .with(KernelId::PidControl, 0.3, 0.0)
            .with(KernelId::PathTracking, 1.0, 0.0),
        ApplicationId::PackageDelivery => ApplicationProfile::new()
            .with(KernelId::PointCloudGeneration, 2.0, 0.70)
            .with(KernelId::OctomapGeneration, 630.0, 0.25)
            .with(KernelId::CollisionCheck, 1.0, 0.20)
            .with(KernelId::Localization, 0.5, 0.0)
            .with(KernelId::PathSmoothing, 55.0, 0.30)
            .with(KernelId::MotionPlanning, 182.0, 0.15)
            .with(KernelId::PathTracking, 1.0, 0.0),
        ApplicationId::Mapping3D => ApplicationProfile::new()
            .with(KernelId::PointCloudGeneration, 2.0, 0.70)
            .with(KernelId::OctomapGeneration, 482.0, 0.25)
            .with(KernelId::CollisionCheck, 1.0, 0.20)
            .with(KernelId::Localization, 0.5, 0.0)
            .with(KernelId::PathSmoothing, 46.0, 0.30)
            .with(KernelId::FrontierExploration, 2647.0, 0.35)
            .with(KernelId::PathTracking, 1.0, 0.0),
        ApplicationId::SearchAndRescue => ApplicationProfile::new()
            .with(KernelId::PointCloudGeneration, 2.0, 0.70)
            .with(KernelId::OctomapGeneration, 427.0, 0.25)
            .with(KernelId::CollisionCheck, 1.0, 0.20)
            .with(KernelId::ObjectDetection, 271.0, 0.75)
            .with(KernelId::Localization, 0.5, 0.0)
            .with(KernelId::PathSmoothing, 45.0, 0.30)
            .with(KernelId::FrontierExploration, 2693.0, 0.35)
            .with(KernelId::PathTracking, 1.0, 0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operating_point::OperatingPoint;

    #[test]
    fn every_application_has_a_profile() {
        for &app in ApplicationId::all() {
            let profile = table1_profile(app);
            assert!(!profile.is_empty(), "{app} has an empty profile");
            // Every application ends its pipeline with path tracking.
            assert!(profile.uses(KernelId::PathTracking));
            assert!(!app.name().is_empty());
            assert!(!format!("{app}").is_empty());
        }
        assert_eq!(ApplicationId::all().len(), 5);
    }

    #[test]
    fn table1_reference_numbers_match_the_paper() {
        let pd = table1_profile(ApplicationId::PackageDelivery);
        assert_eq!(
            pd.kernel(KernelId::OctomapGeneration).unwrap().reference_ms,
            630.0
        );
        assert_eq!(
            pd.kernel(KernelId::MotionPlanning).unwrap().reference_ms,
            182.0
        );
        assert_eq!(
            pd.kernel(KernelId::PathSmoothing).unwrap().reference_ms,
            55.0
        );

        let map = table1_profile(ApplicationId::Mapping3D);
        assert_eq!(
            map.kernel(KernelId::FrontierExploration)
                .unwrap()
                .reference_ms,
            2647.0
        );
        assert_eq!(
            map.kernel(KernelId::OctomapGeneration)
                .unwrap()
                .reference_ms,
            482.0
        );

        let sar = table1_profile(ApplicationId::SearchAndRescue);
        assert_eq!(
            sar.kernel(KernelId::ObjectDetection).unwrap().reference_ms,
            271.0
        );
        assert_eq!(
            sar.kernel(KernelId::FrontierExploration)
                .unwrap()
                .reference_ms,
            2693.0
        );

        let ap = table1_profile(ApplicationId::AerialPhotography);
        assert_eq!(
            ap.kernel(KernelId::ObjectDetection).unwrap().reference_ms,
            307.0
        );
        assert_eq!(
            ap.kernel(KernelId::TrackingBuffered).unwrap().reference_ms,
            80.0
        );

        let sc = table1_profile(ApplicationId::Scanning);
        assert_eq!(
            sc.kernel(KernelId::LawnmowerPlanning).unwrap().reference_ms,
            89.0
        );
    }

    #[test]
    fn scanning_does_not_use_octomap() {
        let sc = table1_profile(ApplicationId::Scanning);
        assert!(!sc.uses(KernelId::OctomapGeneration));
        assert!(!sc.uses(KernelId::ObjectDetection));
    }

    #[test]
    fn bottleneck_kernels_speed_up_with_frequency() {
        // The paper reports up to ~2.9X OctoMap and ~9.2X motion-planning
        // improvements when scaling from the slowest to the fastest operating
        // point; our model must show the same direction with a ≥2X magnitude.
        let pd = table1_profile(ApplicationId::PackageDelivery);
        let omg = pd.kernel(KernelId::OctomapGeneration).unwrap();
        let speedup = omg.speedup_over_slowest(&OperatingPoint::reference());
        assert!(speedup >= 2.0, "octomap speed-up {speedup}");
        let mp = pd.kernel(KernelId::MotionPlanning).unwrap();
        assert!(mp.speedup_over_slowest(&OperatingPoint::reference()) >= 2.0);
    }

    #[test]
    fn profile_iteration_is_stable() {
        let a: Vec<KernelId> = table1_profile(ApplicationId::SearchAndRescue)
            .iter()
            .map(|(k, _)| *k)
            .collect();
        let b: Vec<KernelId> = table1_profile(ApplicationId::SearchAndRescue)
            .iter()
            .map(|(k, _)| *k)
            .collect();
        assert_eq!(a, b);
        assert_eq!(
            a.len(),
            table1_profile(ApplicationId::SearchAndRescue).len()
        );
    }
}
