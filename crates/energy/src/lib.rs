//! Energy modelling for MAVBench-RS: the paper's Eq. 1 rotor power model, a
//! TX2-class compute power model, a coulomb-counting battery and mission
//! energy accounting, plus the commercial-MAV catalogue behind Fig. 2.
//!
//! # Example
//!
//! ```
//! use mav_energy::{Battery, BatteryConfig, RotorPowerModel};
//! use mav_types::{SimDuration, Vec3};
//!
//! let model = RotorPowerModel::dji_matrice_100();
//! let mut battery = Battery::new(BatteryConfig::matrice_tb47());
//! let p = model.power(&Vec3::new(5.0, 0.0, 0.0), &Vec3::ZERO, &Vec3::ZERO);
//! battery.discharge(p, SimDuration::from_secs(30.0));
//! assert!(battery.percentage() < 100.0);
//! ```

#![warn(missing_docs)]

pub mod accounting;
pub mod battery;
pub mod catalog;
pub mod power;

pub use accounting::{mav_dynamics_phase::FlightPhaseLabel, EnergyAccount, PowerSample};
pub use battery::{Battery, BatteryConfig};
pub use catalog::{commercial_mav_catalog, CommercialMav, WingType};
pub use power::{ComputePowerModel, PowerCoefficients, RotorPowerModel};
